//! Eq. 3 end-to-end: after the balancer has run, per-core load (including
//! the interference term) sits near the average, and the refinement
//! approach migrates far less than greedy while achieving it.

use cloudlb::balance::{ImbalanceMetrics, LbStats, TaskId, TaskInfo};
use cloudlb::prelude::*;

fn interfered_run(strategy: &str, period: usize) -> RunResult {
    let app = Jacobi2D::for_pes(4);
    let mut cfg = RunConfig::paper(4, 40);
    cfg.lb = LbConfig { strategy: strategy.into(), period, ..Default::default() };
    let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
    SimExecutor::new(&app, cfg, bg).run()
}

/// Rebuild a per-core *application CPU* profile from the final mapping and
/// the app's cost model, accounting the interfered core at half speed.
fn effective_loads(app: &Jacobi2D, mapping: &[usize], interfered: usize) -> Vec<f64> {
    let mut loads = vec![0.0; 4];
    for (chare, &pe) in mapping.iter().enumerate() {
        loads[pe] += app.task_cost(chare, 0);
    }
    loads[interfered] *= 2.0; // fair share with one bg task
    loads
}

#[test]
fn final_mapping_equalizes_effective_load() {
    let app = Jacobi2D::for_pes(4);
    let run = interfered_run("cloudrefine", 10);
    assert!(run.migrations > 0);
    let loads = effective_loads(&app, &run.final_mapping, 0);
    let avg = loads.iter().sum::<f64>() / 4.0;
    let max = loads.iter().copied().fold(0.0, f64::max);
    assert!(
        max / avg < 1.25,
        "effective imbalance {:.3} too high: {loads:?}",
        max / avg
    );
}

#[test]
fn refinement_migrates_less_than_greedy_for_similar_balance() {
    let refine = interfered_run("cloudrefine", 10);
    let greedy = interfered_run("greedybg", 10);
    assert!(refine.migrations > 0 && greedy.migrations > 0);
    assert!(
        refine.migrations < greedy.migrations,
        "refine {} !< greedy {}",
        refine.migrations,
        greedy.migrations
    );
    // And refinement is at least competitive on wall time.
    assert!(
        refine.app_time.as_secs_f64() <= greedy.app_time.as_secs_f64() * 1.15,
        "refine {:.3}s vs greedy {:.3}s",
        refine.app_time.as_secs_f64(),
        greedy.app_time.as_secs_f64()
    );
}

#[test]
fn eq3_holds_on_a_synthetic_database_after_planning() {
    use cloudlb::balance::strategy::apply_plan;
    // 64 tasks, one interfered core — plan then check Eq. 3 violations.
    let mut db = LbStats::new(4);
    for i in 0..64u64 {
        db.tasks.push(TaskInfo { id: TaskId(i), pe: (i % 4) as usize, load: 0.1, bytes: 4096 });
    }
    db.bg_load = vec![1.2, 0.0, 0.0, 0.0];
    let plan = CloudRefineLb::default().plan(&db);
    let after = apply_plan(&db, &plan);
    let m = ImbalanceMetrics::compute(&after, 0.05);
    // The donor (core 0) can reach T_avg ± ε; receivers must all comply.
    assert!(m.max_load / m.t_avg < 1.06, "max/avg {:.3}", m.max_load / m.t_avg);
}

#[test]
fn instrumentation_modes_both_converge() {
    // ABL-INSTR end-to-end: wall-time instrumentation (the Projections
    // artifact) still lets the balancer fix the imbalance, though CPU-time
    // mode is the paper's design point.
    let app = Jacobi2D::for_pes(4);
    let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
    let mut cfg = RunConfig::paper(4, 40);
    cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 10, ..Default::default() };
    cfg.lb.instrument = cloudlb::runtime::InstrumentMode::WallTime;
    let wall = SimExecutor::new(&app, cfg.clone(), bg.clone()).run();
    cfg.lb.instrument = cloudlb::runtime::InstrumentMode::CpuTime;
    let cpu = SimExecutor::new(&app, cfg, bg).run();
    assert!(wall.migrations > 0 && cpu.migrations > 0);
    // Both end within 25 % of each other (wall mode over-estimates the
    // interfered tasks' future cost, so it may over- or under-shift).
    let ratio = wall.app_time.as_secs_f64() / cpu.app_time.as_secs_f64();
    assert!((0.75..1.35).contains(&ratio), "wall/cpu ratio {ratio:.3}");
}
