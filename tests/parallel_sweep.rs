//! Determinism of the parallel sweep engine: fanning runs across worker
//! threads must be invisible in the results. Every `EvalPoint` and every
//! raw `RunResult` produced with `--jobs 4` has to be bit-identical to
//! the serial (`jobs = 1`) evaluation — same floats, same event counts,
//! same migrations — because results are reduced in submission order
//! regardless of which worker finishes first.

use cloudlb_core::{evaluate_cells, par_map, run_scenario, CellSpec, Scenario};

/// A reduced paper matrix: two apps × two core counts × three CI seeds.
fn matrix() -> Vec<CellSpec> {
    ["jacobi2d", "wave2d"]
        .iter()
        .flat_map(|app| [4usize, 8].iter().map(move |&c| CellSpec::paper(app, c, 24, "cloudrefine")))
        .collect()
}

const SEEDS: [u64; 3] = [1, 2, 3];

#[test]
fn parallel_eval_points_are_bit_identical_to_serial() {
    let cells = matrix();
    let serial = evaluate_cells(&cells, &SEEDS, 1);
    for jobs in [2, 4] {
        let parallel = evaluate_cells(&cells, &SEEDS, jobs);
        assert_eq!(
            parallel, serial,
            "EvalPoints diverged between jobs={jobs} and serial"
        );
    }
    // Sanity: the comparison covered real data, not empty vectors.
    assert_eq!(serial.len(), cells.len());
    assert!(serial.iter().all(|p| p.sim_events > 0 && p.peak_queue_depth > 0));
}

#[test]
fn parallel_run_results_are_bit_identical_to_serial() {
    // Raw per-run results (before any reduction): every field of
    // `RunResult` — iteration times, migrations, power, event counts —
    // must match the serial runs exactly, in submission order.
    let scenarios: Vec<Scenario> = SEEDS
        .iter()
        .flat_map(|&seed| {
            ["nolb", "cloudrefine"].iter().map(move |&strategy| Scenario {
                seed,
                iterations: 24,
                ..Scenario::paper("wave2d", 4, strategy)
            })
        })
        .collect();

    let serial: Vec<_> = scenarios.iter().map(run_scenario).collect();
    let parallel = par_map(4, scenarios.clone(), |s| run_scenario(&s));
    assert_eq!(parallel.len(), serial.len());
    for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
        assert_eq!(p, s, "RunResult {i} diverged between jobs=4 and serial");
    }
}
