//! Acceptance test for the flaky-network chaos layer and the reliable
//! migration protocol (ISSUE 4).
//!
//! Under the `flaky_cloud` degradation model (~1 % loss, duplication,
//! reordering, latency jitter, occasional bandwidth collapse, one
//! transient full-rack partition), a `cloudrefine` run must:
//! * complete every iteration with zero lost or duplicated chares,
//! * keep its timing penalty against the clean-network twin bounded,
//! * and produce bit-identical retry/abort counters on reruns,
//!
//! across the 3 CI seeds.

use cloudlb::prelude::*;

const SEEDS: [u64; 3] = [1, 2, 3];
const APP: &str = "jacobi2d";
const CORES: usize = 8;

fn run_with(seed: u64, flaky: bool) -> RunResult {
    let mut scn = if flaky {
        Scenario::flaky_cloud(APP, CORES, "cloudrefine")
    } else {
        Scenario::paper(APP, CORES, "cloudrefine")
    };
    scn.seed = seed;
    run_scenario(&scn)
}

#[test]
fn flaky_network_penalty_is_bounded_across_seeds() {
    for seed in SEEDS {
        let clean = run_with(seed, false);
        let flaky = run_with(seed, true);
        let penalty = flaky.timing_penalty_vs(&clean);
        eprintln!(
            "seed {seed}: network penalty {:+.1} %, damage {:?}",
            penalty * 100.0,
            flaky.net
        );
        assert_eq!(
            flaky.iter_times.len(),
            clean.iter_times.len(),
            "seed {seed}: chaos may delay iterations but never lose them"
        );
        // Measured ~10–14 % across the CI seeds; 30 % leaves headroom
        // without letting a regression hide.
        assert!(
            penalty <= 0.30,
            "seed {seed}: flaky-network penalty {:.1} % exceeds 30 %",
            penalty * 100.0
        );
        // Chare conservation: every chare exists exactly once, on a real
        // core — nothing lost to the partition, nothing double-delivered.
        assert_eq!(flaky.final_mapping.len(), clean.final_mapping.len());
        assert!(flaky.final_mapping.iter().all(|&p| p < CORES));
    }
}

#[test]
fn chaos_runs_are_bit_identical_on_reruns() {
    for seed in SEEDS {
        let a = run_with(seed, true);
        let b = run_with(seed, true);
        assert_eq!(a.app_time, b.app_time, "seed {seed}");
        assert_eq!(a.final_mapping, b.final_mapping, "seed {seed}");
        assert_eq!(a.net, b.net, "seed {seed}: retry/abort counters must be deterministic");
        assert_eq!(a.migrations, b.migrations, "seed {seed}");
    }
}

#[test]
fn damage_is_reported_and_clean_runs_stay_clean() {
    let flaky = run_with(1, true);
    assert!(
        flaky.net.lost_copies + flaky.net.retransmits + flaky.net.duplicates_dropped > 0,
        "flaky_cloud must damage some traffic: {:?}",
        flaky.net
    );
    assert!(flaky.net.partition_us > 0, "the scheduled partition must be accounted");
    let clean = run_with(1, false);
    assert_eq!(clean.net, NetStats::default(), "a clean network reports zero damage");
}

#[test]
fn network_impact_summary_matches_the_counters() {
    let mut scn = Scenario::flaky_cloud(APP, CORES, "cloudrefine");
    scn.iterations = 40;
    let mut clean = scn.clone();
    clean.net_fault = None;
    let f = run_scenario(&scn);
    let c = run_scenario(&clean);
    let imp = network_impact(&f, &c);
    assert_eq!(imp.lost_copies, f.net.lost_copies);
    assert_eq!(imp.migration_aborts, f.net.migration_aborts);
    assert!(imp.partition_s > 0.0);
    assert!((imp.net_penalty - f.timing_penalty_vs(&c)).abs() < 1e-12);
}
