//! End-to-end guarantees of the streaming sweep pipeline: the packet
//! engine behind `evaluate_cells` / `eval_matrix` must be invisible in
//! the results. Streaming consumers see exactly the collect-all points,
//! collect-all is bit-identical to serial for any worker count across
//! the CI seeds, and the in-flight window bounds peak live results no
//! matter how large the sweep grows.

use cloudlb::core_api::figures;
use cloudlb::core_api::{
    evaluate_cells, evaluate_cells_stream, par_map, pipeline_map, run_scenario, CellSpec,
    PipelineConfig, Scenario, StreamSummary,
};

/// A reduced paper matrix: two apps × two core counts.
fn matrix() -> Vec<CellSpec> {
    ["jacobi2d", "mol3d"]
        .iter()
        .flat_map(|app| {
            [4usize, 8].iter().map(move |&c| CellSpec::paper(app, c, 24, "cloudrefine"))
        })
        .collect()
}

const SEEDS: [u64; 3] = [1, 2, 3];

#[test]
fn streaming_consumer_sees_the_collect_all_points_in_order() {
    let cells = matrix();
    let collected = evaluate_cells(&cells, &SEEDS, 1);
    for jobs in [1, 2, 4] {
        let mut streamed = Vec::new();
        let stats = evaluate_cells_stream(&cells, &SEEDS, jobs, |ci, p| {
            assert_eq!(ci, streamed.len(), "cells must finish in submission order");
            streamed.push(p);
        });
        assert_eq!(streamed, collected, "jobs={jobs}");
        assert_eq!(stats.packets, cells.len() * SEEDS.len() * 3);
    }
}

#[test]
fn pipeline_map_is_bit_identical_to_par_map_on_real_runs() {
    let scenarios: Vec<Scenario> = SEEDS
        .iter()
        .flat_map(|&seed| {
            ["nolb", "cloudrefine"].iter().map(move |&strategy| Scenario {
                seed,
                iterations: 24,
                ..Scenario::paper("wave2d", 4, strategy)
            })
        })
        .collect();
    let baseline = par_map(4, scenarios.clone(), |s| run_scenario(&s));
    for jobs in [2, 4] {
        let (piped, stats) =
            pipeline_map(&PipelineConfig::new(jobs), scenarios.clone(), |s| run_scenario(&s));
        assert_eq!(piped, baseline, "jobs={jobs}");
        assert!(stats.live_peak <= stats.window, "jobs={jobs}");
    }
}

#[test]
fn eval_matrix_stream_matches_the_batch_matrix() {
    let batch = figures::eval_matrix("jacobi2d", &[4, 8], 24, &SEEDS);
    let mut streamed = Vec::new();
    let (summary, stats) =
        figures::eval_matrix_stream("jacobi2d", &[4, 8], 24, &SEEDS, 4, |p| {
            streamed.push(p.clone());
        });
    assert_eq!(streamed, batch);
    assert!(stats.live_peak <= stats.window);

    // The online summary folds exactly the streamed points: its means
    // must be bit-identical to the batch means (same arrival-order sum).
    let mut nolb = StreamSummary::new();
    for p in &batch {
        nolb.push(p.penalty_nolb);
    }
    assert_eq!(summary.penalty_nolb.mean(), nolb.mean());
    assert_eq!(summary.cells, batch.len() as u64);
}

#[test]
fn live_results_stay_bounded_on_a_sweep_much_larger_than_the_window() {
    // A long synthetic sweep (no simulator, just packets): whatever the
    // input size, peak live results must respect jobs + reorder_window.
    let cfg = PipelineConfig { jobs: 4, reorder_window: 8 };
    let mut consumed = 0usize;
    let stats = cloudlb::core_api::pipeline_stream(
        &cfg,
        0..5_000u64,
        |x| x.wrapping_mul(3),
        |_, _| consumed += 1,
    );
    assert_eq!(consumed, 5_000);
    assert!(
        stats.live_peak <= cfg.window(),
        "live peak {} exceeded window {}",
        stats.live_peak,
        cfg.window()
    );
    assert!(stats.reorder_peak <= cfg.window());
}
