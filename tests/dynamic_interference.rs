//! FIG3 semantics end-to-end: the balancer must *track* interference that
//! comes and goes (paper §V-A: "a successful load balancing mechanism
//! should be robust to dynamic changes in interfering tasks as they might
//! come and go randomly").

use cloudlb::core_api::figures;
use cloudlb::prelude::*;
use cloudlb::sim::SimRng;

#[test]
fn fig3_phases_recover_after_each_disturbance() {
    let out = figures::fig3(60, 6);
    let v: Vec<f64> = out.phases.iter().map(|(_, x)| *x).collect();
    assert!(out.migrations > 0);
    // Overloaded peaks exceed their rebalanced floors by a clear margin.
    assert!(v[0] > 1.3 * v[1], "(a) {:.4} vs (b) {:.4}", v[0], v[1]);
    assert!(v[3] > 1.3 * v[4], "(d) {:.4} vs (e) {:.4}", v[3], v[4]);
    // The quiet middle phase runs no slower than the overloaded peaks.
    assert!(v[2] < v[0] && v[2] < v[3]);
}

#[test]
fn balancer_survives_random_interference() {
    // Poisson-ish pulses on random cores; the LB run must complete, beat
    // the noLB run, and remain deterministic per seed.
    let app = Jacobi2D::for_pes(4);
    // Sparse pulses (relative to the ~0.15 s base run): mostly one core
    // interfered at a time, which is the regime the balancer targets.
    // Dense multi-core interference (every core overloaded) is covered by
    // failure_injection::all_cores_interfered_still_completes.
    let horizon = Time::from_us(400_000);
    let mk_script = |seed: u64| {
        let mut rng = SimRng::new(seed);
        BgScript::random(&mut rng, 4, horizon, Dur::from_ms(120), Dur::from_ms(150), 1.0, 50)
    };

    let mut cfg = RunConfig::paper(4, 60);
    cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 6, ..Default::default() };
    let lb = SimExecutor::new(&app, cfg.clone(), mk_script(7)).run();

    let mut nolb_cfg = cfg.clone();
    nolb_cfg.lb.strategy = "nolb".into();
    let nolb = SimExecutor::new(&app, nolb_cfg, mk_script(7)).run();

    assert!(lb.migrations > 0, "random interference should trigger migrations");
    assert!(
        lb.app_time.as_secs_f64() < nolb.app_time.as_secs_f64(),
        "LB {:.3}s !< noLB {:.3}s under random interference",
        lb.app_time.as_secs_f64(),
        nolb.app_time.as_secs_f64()
    );

    let lb2 = SimExecutor::new(&app, cfg, mk_script(7)).run();
    assert_eq!(lb.app_time, lb2.app_time, "determinism per seed");
}

#[test]
fn interference_arriving_mid_iteration_is_absorbed() {
    // A pulse that starts and stops in the middle of iterations (not at
    // boundaries) must stretch exactly the overlapping iterations.
    let app = Jacobi2D::for_pes(4);
    let mut cfg = RunConfig::paper(4, 30);
    cfg.lb = LbConfig::nolb();
    let base = SimExecutor::new(&app, cfg.clone(), BgScript::none()).run();
    let iter_us = (base.mean_iter_s() * 1e6) as u64;

    // Pulse covering iterations ~10.5 .. ~14.5.
    let bg = BgScript::pulse(
        0,
        2,
        Time::from_us(iter_us * 21 / 2),
        Time::from_us(iter_us * 29 / 2),
        1.0,
    );
    let run = SimExecutor::new(&app, cfg, bg).run();
    let times = &run.iter_times;
    // Avoid iterations straddling LB barriers (boundaries at 10 and 20
    // pause the app even under noLB): compare 2 vs the hit window vs 22.
    let quiet = times[2].as_secs_f64();
    let hit = times[11..14].iter().map(|d| d.as_secs_f64()).fold(0.0, f64::max);
    let after = times[22].as_secs_f64();
    assert!(hit > 1.5 * quiet, "iterations 11-13 should stretch: {hit} vs {quiet}");
    assert!(after < 1.2 * quiet, "iteration 22 should recover: {after} vs {quiet}");
}
