//! Differential gate for the steady-state fast-forward engine: with
//! macro-stepping ON, every scenario preset must produce a `RunResult`
//! bit-identical (after [`RunResult::scrub_ff`], which zeroes only the
//! two observability counters) to the event-by-event run with it OFF —
//! same iteration times, same migrations, same energy, same event
//! accounting. The matrix covers every preset constructor × four apps ×
//! both arms × the three CI seeds, so interference, dirty telemetry,
//! network chaos, and a permanent core kill are all exercised.
//!
//! Two property tests pin the engine's conservatism: a clean run
//! actually coalesces almost every LB window, and a mid-run disturbance
//! forces the fallback for exactly as long as the disturbance is
//! pending, with replay resuming once it drains.

use cloudlb_core::{par_map, try_run_scenario, BgPattern, Scenario};
use cloudlb_runtime::{FastForward, RunResult, RuntimeError};

const SEEDS: [u64; 3] = [1, 2, 3];
// Four LB windows: capture needs one, replay another, and the engine
// always runs the final window live — fewer than 40 iterations at the
// default period of 10 would leave nothing to macro-step.
const ITERS: usize = 40;

fn with_ff(mut scn: Scenario, ff: FastForward) -> Scenario {
    scn.fast_forward = ff;
    scn
}

/// Every preset constructor × app × arm × CI seed, with iterations
/// reduced so the whole matrix stays CI-sized.
fn preset_matrix() -> Vec<(String, Scenario)> {
    // Clean machine (the normalization base), with the arm's strategy
    // restored after `base_of` forces `nolb`: the presets below all keep
    // scheduled disturbances live in the queue for most of a short run,
    // so this row is where the replay path itself gets exercised.
    fn clean(app: &str, cores: usize, strategy: &str) -> Scenario {
        let mut scn = Scenario::paper(app, cores, strategy).base_of();
        scn.strategy = strategy.to_string();
        scn
    }
    type Preset = (&'static str, fn(&str, usize, &str) -> Scenario, &'static str);
    let presets: [Preset; 5] = [
        ("clean", clean, "cloudrefine"),
        ("paper", Scenario::paper, "cloudrefine"),
        ("noisy_cloud", Scenario::noisy_cloud, "robustcloudrefine"),
        ("flaky_cloud", Scenario::flaky_cloud, "cloudrefine"),
        ("failure_drill", Scenario::failure_drill, "cloudrefine"),
    ];
    let mut out = Vec::new();
    for (name, make, lb_arm) in presets {
        for app in ["jacobi2d", "wave2d", "mol3d", "stencil3d"] {
            for arm in ["nolb", lb_arm] {
                for seed in SEEDS {
                    let mut scn = make(app, 8, arm);
                    scn.iterations = ITERS;
                    scn.seed = seed;
                    out.push((format!("{name}/{app}/{arm}/seed{seed}"), scn));
                }
            }
        }
    }
    out
}

fn run(scn: &Scenario) -> Result<RunResult, RuntimeError> {
    try_run_scenario(scn)
}

#[test]
fn fast_forward_is_bit_identical_across_every_preset() {
    let matrix = preset_matrix();
    let runs: Vec<Scenario> = matrix
        .iter()
        .flat_map(|(_, scn)| {
            [with_ff(scn.clone(), FastForward::On), with_ff(scn.clone(), FastForward::Off)]
        })
        .collect();
    let mut results = par_map(cloudlb_core::default_jobs(), runs, |scn| run(&scn)).into_iter();

    let mut replayed_anywhere = false;
    for (label, _) in &matrix {
        let (on_res, off_res) = (results.next().unwrap(), results.next().unwrap());
        match (on_res, off_res) {
            (Ok(on), Ok(off)) => {
                replayed_anywhere |= on.ff_windows > 0;
                assert_eq!(
                    off.ff_windows, 0,
                    "the off arm must never macro-step ({label})"
                );
                assert_eq!(
                    on.scrub_ff(),
                    off,
                    "fast-forward diverged from the event-by-event run for {label}"
                );
            }
            // A scenario that cannot complete must fail identically in
            // both modes (same error, not just "both failed").
            (Err(on), Err(off)) => assert_eq!(on, off, "error diverged for {label}"),
            (on, off) => panic!(
                "one arm failed and the other did not for {label}: on={on:?} off={off:?}"
            ),
        }
    }
    // Sanity: the matrix contained at least one scenario where the fast
    // path actually engaged, so the equality above covered real replays.
    assert!(replayed_anywhere, "no scenario in the matrix ever fast-forwarded");
}

#[test]
fn clean_runs_coalesce_almost_every_window() {
    // On a clean machine with a static mapping, every LB window after the
    // first (the capture) is identical, so at most a couple of windows at
    // the edges may run live.
    let mut scn = Scenario::paper("jacobi2d", 8, "nolb").base_of();
    scn.iterations = 80;
    scn.fast_forward = FastForward::On;
    let r = try_run_scenario(&scn).expect("clean run");
    let windows = scn.iterations / scn.lb_period;
    assert!(
        r.ff_windows >= windows - 3,
        "expected nearly all {windows} windows coalesced, got {}",
        r.ff_windows
    );
    assert!(r.events_skipped > 0);
}

#[test]
fn a_pending_disturbance_forces_fallback_until_it_drains() {
    // The window scan refuses to capture or replay while *any* scheduled
    // background event is still live in the queue, so a finite bg pulse
    // suppresses macro-stepping from t = 0 until the pulse fully drains —
    // and replay resumes afterwards. A longer pulse therefore strictly
    // shrinks the number of coalesced windows, and every variant stays
    // bit-identical to its event-by-event twin.
    let clean = {
        let mut s = Scenario::paper("wave2d", 8, "nolb").base_of();
        s.iterations = 80;
        s
    };
    let pulse = |demand_frac: f64| {
        let mut s = clean.clone();
        s.bg = BgPattern::TwoCore { demand_frac };
        s
    };

    let mut windows = Vec::new();
    for scn in [clean.clone(), pulse(0.15), pulse(0.5)] {
        let on = try_run_scenario(&with_ff(scn.clone(), FastForward::On)).unwrap();
        let off = try_run_scenario(&with_ff(scn, FastForward::Off)).unwrap();
        windows.push(on.ff_windows);
        assert_eq!(on.scrub_ff(), off, "disturbed run diverged");
    }
    let (clean_w, short_w, long_w) = (windows[0], windows[1], windows[2]);
    assert!(
        short_w < clean_w,
        "a pulse must cost at least one window (clean {clean_w}, short {short_w})"
    );
    assert!(
        short_w > 0,
        "replay must resume once the short pulse drains"
    );
    assert!(
        long_w < short_w,
        "a longer pulse must suppress more windows (short {short_w}, long {long_w})"
    );
}
