//! Gates for the scale configuration (32 chares/core, 30 iterations,
//! LB every 3, fast-forward ON) and the hierarchical `hiercloudrefine`
//! arm. The cheap tests cover quality parity at the paper's own scale,
//! determinism and chare conservation at a CI-sized slice of the scale
//! shape, and the boundary-ghost capture regression; the `#[ignore]`d
//! test runs the full 32k-core / 1M-chare configuration (minutes, run
//! with `cargo test --release --test hierarchical_scale -- --ignored`).

use cloudlb_apps::grids::{near_square_factors, Block2D};
use cloudlb_apps::Jacobi2D;
use cloudlb_core::{run_scenario, Scenario};
use cloudlb_runtime::{FastForward, RunResult, SimExecutor};

/// Chares per core in the scale configuration (mirrors the bench).
const ODF: usize = 32;
/// Grid points per chare side — small on purpose: block size scales the
/// simulated time, not the event count, so tiny blocks keep the gates
/// cheap without changing what is exercised.
const BLOCK: usize = 32;

/// Run the scale scenario on `cores` with the app built directly at
/// `ODF` chares per core (the `Scenario` constructors fix 16/core).
fn scale_run(cores: usize, strategy: &str, ff: FastForward) -> RunResult {
    let (cx, cy) = near_square_factors(ODF * cores);
    let app = Jacobi2D::new(Block2D::new(cx * BLOCK, cy * BLOCK, cx, cy));
    let mut scn = Scenario::scale("jacobi2d", cores, strategy);
    scn.fast_forward = ff;
    SimExecutor::new(&app, scn.run_config(), scn.bg_script(&app)).run()
}

fn assert_conserving(r: &RunResult, cores: usize, chares: usize, iters: usize) {
    assert_eq!(r.final_mapping.len(), chares, "mapping must cover every chare");
    assert!(
        r.final_mapping.iter().all(|&pe| pe < cores),
        "a chare landed outside the cluster"
    );
    assert_eq!(r.iter_times.len(), iters, "run must complete every iteration");
}

/// At the paper's own scale (8 nodes x 4 cores, interference on), the
/// hierarchical arm must stay within 5% of flat CloudRefine's makespan:
/// restricting refinement to per-node scope plus a surplus exchange may
/// not cost real balance quality where the flat algorithm works well.
#[test]
fn hiercloudrefine_matches_flat_at_paper_scale() {
    for seed in [1, 2, 3] {
        let run_arm = |strategy: &str| {
            let mut scn = Scenario::paper("jacobi2d", 32, strategy);
            scn.seed = seed;
            run_scenario(&scn)
        };
        let flat = run_arm("cloudrefine");
        let hier = run_arm("hiercloudrefine");
        let ratio = hier.app_time.as_secs_f64() / flat.app_time.as_secs_f64();
        assert!(
            ratio <= 1.05,
            "hiercloudrefine makespan is {:.1}% of flat at seed {seed} (allowed 105%)",
            ratio * 100.0
        );
    }
}

/// Regression: a boundary ghost that pops at the same instant as the
/// window's final park must land in the capture template. The capture
/// used to close while that ghost sat in the pop buffer — out of the
/// queue, not yet in the inbox — so the template silently dropped it and
/// every replay deadlocked the receiving chare. This exact shape (32
/// cores, 32 chares/core) hits the race in its first captured window.
#[test]
fn boundary_ghost_at_the_final_park_survives_capture() {
    let on = scale_run(32, "nolb", FastForward::On);
    let off = scale_run(32, "nolb", FastForward::Off);
    assert!(on.ff_windows > 0, "the scale shape must actually macro-step");
    assert_eq!(off.ff_windows, 0);
    assert_eq!(
        on.scrub_ff(),
        off,
        "fast-forward diverged from the event-by-event run on the race shape"
    );
}

/// A CI-sized slice of the scale configuration: rerunning the same
/// scenario is bit-identical, both arms conserve chares, and the
/// fast-forward engine engages.
#[test]
fn modest_scale_run_is_deterministic_and_conserving() {
    let cores = 64;
    let chares = ODF * cores;
    for strategy in ["cloudrefine", "hiercloudrefine"] {
        let first = scale_run(cores, strategy, FastForward::On);
        assert_conserving(&first, cores, chares, 30);
        assert!(first.ff_windows > 0, "{strategy}: scale windows must coalesce");
        let rerun = scale_run(cores, strategy, FastForward::On);
        assert_eq!(first, rerun, "{strategy}: rerun diverged");
    }
}

/// The full 32k-core / 1M-chare configuration from `BENCH_scale.json`:
/// conservation and bit-identical reruns at the headline scale. Takes
/// minutes even in release, so it only runs when asked for explicitly.
#[test]
#[ignore = "minutes-long: run with --release -- --ignored"]
fn full_scale_32k_cores_1m_chares_conserves() {
    let cores = 32_768;
    let chares = ODF * cores;
    assert_eq!(chares, 1_048_576);
    let first = scale_run(cores, "cloudrefine", FastForward::On);
    assert_conserving(&first, cores, chares, 30);
    assert!(first.ff_windows > 0);
    let rerun = scale_run(cores, "cloudrefine", FastForward::On);
    assert_eq!(first, rerun, "full-scale rerun diverged");
}
