//! CLAIM-50: the paper's headline — "we were able to reduce the execution
//! time penalty and energy overhead by at least 50%" (§I), "reduce timing
//! penalty and energy consumption by more than 50% compared to the case
//! where there is no load balancing" (§VI).
//!
//! We assert the timing-penalty half of the claim at 8+ cores for all
//! three applications (4 cores sits at the capacity bound `P/(P−1)` where
//! the reduction is ~46 % — see EXPERIMENTS.md), and the energy direction
//! everywhere, with the ≥ 50 % energy reduction at Mol3D where the paper's
//! effect is strongest.

use cloudlb::prelude::*;

fn cell(app: &str, cores: usize) -> EvalPoint {
    // 100 iterations (the paper-scenario default): shorter horizons leave
    // the pre-first-LB transient dominating the mean and understate the
    // steady-state reduction.
    evaluate(app, cores, 100, "cloudrefine", &[1])
}

#[test]
fn timing_penalty_halved_for_all_apps_at_8_cores() {
    for app in ["jacobi2d", "wave2d", "mol3d"] {
        let p = cell(app, 8);
        assert!(
            p.penalty_reduction() >= 0.5,
            "{app}: reduction {:.2} (noLB {:.2} → LB {:.2})",
            p.penalty_reduction(),
            p.penalty_nolb,
            p.penalty_lb
        );
    }
}

#[test]
fn timing_penalty_halved_at_16_cores() {
    for app in ["jacobi2d", "mol3d"] {
        let p = cell(app, 16);
        assert!(
            p.penalty_reduction() >= 0.5,
            "{app}@16: reduction {:.2}",
            p.penalty_reduction()
        );
    }
}

#[test]
fn mol3d_nolb_penalty_reaches_the_papers_magnitude() {
    // Fig. 2(c): "the timing penalty for Mol3D for the noLB case was very
    // high (up to 400%)".
    let p = cell("mol3d", 8);
    assert!(p.penalty_nolb > 2.5, "Mol3D noLB penalty only {:.2}", p.penalty_nolb);
    // "our load balancing scheme reduces the timing penalty significantly"
    assert!(p.penalty_lb < 1.0, "Mol3D LB penalty {:.2}", p.penalty_lb);
}

#[test]
fn energy_overhead_always_improves_and_mol3d_halves_it() {
    for app in ["jacobi2d", "wave2d", "mol3d"] {
        let p = cell(app, 8);
        assert!(
            p.energy_overhead_lb < p.energy_overhead_nolb,
            "{app}: energy overhead LB {:.2} !< noLB {:.2}",
            p.energy_overhead_lb,
            p.energy_overhead_nolb
        );
        // Fig. 4 shape: balanced runs draw more power...
        assert!(p.power_lb_w > p.power_nolb_w, "{app}: power shape inverted");
        // ...and never exceed the machine's envelope.
        assert!(p.power_lb_w <= 170.0 + 1e-6);
        assert!(p.power_nolb_w >= 40.0 - 1e-6);
    }
    let m = cell("mol3d", 8);
    assert!(
        m.energy_reduction() >= 0.5,
        "Mol3D energy overhead reduction {:.2}",
        m.energy_reduction()
    );
}

#[test]
fn penalties_shrink_as_cores_grow() {
    // §V-A: "our load balancing scheme helps reducing the timing penalty
    // as we increase the number of cores for all applications."
    let p8 = cell("jacobi2d", 8);
    let p16 = cell("jacobi2d", 16);
    assert!(
        p16.penalty_lb <= p8.penalty_lb + 0.03,
        "LB penalty grew with cores: {:.3} @8 vs {:.3} @16",
        p8.penalty_lb,
        p16.penalty_lb
    );
}

#[test]
fn background_job_also_benefits_for_fair_shared_apps() {
    // §V-A: "Our scheme significantly reduces the timing penalty for the
    // background load ... in case of Jacobi2D and Wave2D."
    for app in ["jacobi2d", "wave2d"] {
        let p = cell(app, 8);
        assert!(
            p.bg_penalty_lb < p.bg_penalty_nolb,
            "{app}: BG penalty LB {:.2} !< noLB {:.2}",
            p.bg_penalty_lb,
            p.bg_penalty_nolb
        );
    }
}
