//! End-to-end tests of the `cloudlb` CLI binary.

use std::process::Command;

fn cloudlb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cloudlb"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn run_subcommand_reports_penalty() {
    let out = cloudlb(&["run", "--app", "jacobi2d", "--cores", "4", "--iters", "20"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("jacobi2d on 4 cores"), "{stdout}");
    assert!(stdout.contains("penalty"), "{stdout}");
    assert!(stdout.contains("W/node"), "{stdout}");
}

#[test]
fn run_subcommand_json_is_parseable() {
    let out = cloudlb(&[
        "run", "--app", "wave2d", "--cores", "4", "--iters", "20", "--json",
    ]);
    assert!(out.status.success());
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON on stdout");
    assert_eq!(v["app"], "wave2d");
    assert_eq!(v["cores"], 4);
    assert!(v["penalty_nolb"].as_f64().expect("number") > 0.0);
}

#[test]
fn fig1_subcommand_prints_a_timeline() {
    let out = cloudlb(&["fig1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("interfered"), "{stdout}");
    assert!(stdout.contains("pe   0"), "{stdout}");
}

#[test]
fn bad_flags_fail_with_usage() {
    for args in [&["run", "--cores", "7"][..], &["bogus"][..], &[][..]] {
        let out = cloudlb(args);
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{stderr}");
    }
}

#[test]
fn trace_subcommand_renders_timeline_and_profile() {
    let out = cloudlb(&["trace", "--app", "jacobi2d", "--cores", "4", "--iters", "10"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("legend:"), "{stdout}");
    assert!(stdout.contains("usage profile"), "{stdout}");
    assert!(stdout.contains("% app"), "{stdout}");
}

#[test]
fn scenario_file_drives_a_run() {
    let path = std::env::temp_dir().join("cloudlb_cli_test_scenario.json");
    std::fs::write(
        &path,
        r#"{"app":"wave2d","cores":4,"iterations":15,"strategy":"cloudrefine",
            "lb_period":5,"bg":{"TwoCore":{"demand_frac":1.0}},"bg_weight":1.0,
            "seed":3,"trace":false}"#,
    )
    .expect("temp file");
    let out = cloudlb(&["run", "--scenario", path.to_str().expect("utf8")]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wave2d on 4 cores"), "{stdout}");
}

#[test]
fn missing_scenario_file_fails_cleanly() {
    let out = cloudlb(&["run", "--scenario", "/nonexistent/scn.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}
