//! Acceptance test for the robust-telemetry layer (ISSUE 2).
//!
//! Under the `noisy_cloud` corruption model, CloudRefineLB wrapped in
//! robust estimation + hysteresis (`robustcloudrefine`) must:
//! * keep its timing penalty within 15 % of its own clean-telemetry
//!   result,
//! * perform strictly fewer migrations than the unguarded balancer on
//!   the same corrupted counters,
//! * and do both deterministically across the 3 CI seeds.
//!
//! The unguarded baseline's degradation is reported alongside so a CI
//! log shows what the guard is buying.

use cloudlb::prelude::*;

const SEEDS: [u64; 3] = [1, 2, 3];
const APP: &str = "jacobi2d";
const CORES: usize = 8;

fn run_with(strategy: &str, seed: u64, noisy: bool) -> RunResult {
    let mut scn = if noisy {
        Scenario::noisy_cloud(APP, CORES, strategy)
    } else {
        Scenario::paper(APP, CORES, strategy)
    };
    scn.seed = seed;
    run_scenario(&scn)
}

#[test]
fn guarded_balancer_keeps_noise_penalty_bounded_across_seeds() {
    for seed in SEEDS {
        let clean = run_with("robustcloudrefine", seed, false);
        let noisy = run_with("robustcloudrefine", seed, true);
        let penalty = noisy.timing_penalty_vs(&clean);

        let unguarded_clean = run_with("cloudrefine", seed, false);
        let unguarded_noisy = run_with("cloudrefine", seed, true);
        let unguarded_penalty = unguarded_noisy.timing_penalty_vs(&unguarded_clean);

        eprintln!(
            "seed {seed}: guarded noise penalty {:+.1} % ({} migrations), \
             unguarded {:+.1} % ({} migrations)",
            penalty * 100.0,
            noisy.migrations,
            unguarded_penalty * 100.0,
            unguarded_noisy.migrations,
        );

        assert!(
            penalty <= 0.15,
            "seed {seed}: guarded noise penalty {:.1} % exceeds 15 %",
            penalty * 100.0
        );
        assert!(
            noisy.migrations < unguarded_noisy.migrations,
            "seed {seed}: guarded performed {} migrations, unguarded {} — \
             the guard must strictly reduce churn",
            noisy.migrations,
            unguarded_noisy.migrations
        );
    }
}

#[test]
fn noisy_runs_are_bit_identical_on_reruns() {
    for seed in SEEDS {
        let a = run_with("robustcloudrefine", seed, true);
        let b = run_with("robustcloudrefine", seed, true);
        assert_eq!(a.app_time, b.app_time, "seed {seed}");
        assert_eq!(a.migrations, b.migrations, "seed {seed}");
        assert_eq!(a.final_mapping, b.final_mapping, "seed {seed}");
        assert_eq!(a.telemetry, b.telemetry, "seed {seed}");
        assert_eq!(a.decisions, b.decisions, "seed {seed}");
    }
}

#[test]
fn corruption_is_detected_and_decisions_are_audited() {
    let scn = Scenario::noisy_cloud(APP, CORES, "robustcloudrefine");
    let mut clean = scn.clone();
    clean.telemetry = None;
    let imp = telemetry_impact(&run_scenario(&scn), &run_scenario(&clean));
    let anomalies =
        imp.clamped_op + imp.missing_samples + imp.task_overrun + imp.implausible_idle;
    assert!(anomalies > 0, "noisy_cloud must trip at least one window-quality counter");
    assert!(
        imp.suppressed + imp.oscillations + imp.outliers_rejected > 0,
        "the guard stack should exercise at least one defence"
    );
}

#[test]
fn clean_runs_report_no_telemetry_anomalies() {
    let r = run_with("robustcloudrefine", 1, false);
    assert_eq!(r.telemetry.total(), 0, "clean counters must not trip the validators");
}
