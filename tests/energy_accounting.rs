//! Energy/power invariants end-to-end through the public API.

use cloudlb::prelude::*;
use cloudlb::sim::PowerModel;

fn run(strategy: &str, bg: BgScript, iters: usize) -> RunResult {
    let app = Jacobi2D::for_pes(4);
    let mut cfg = RunConfig::paper(4, iters);
    cfg.lb = LbConfig { strategy: strategy.into(), period: 10, ..Default::default() };
    SimExecutor::new(&app, cfg, bg).run()
}

#[test]
fn power_stays_within_the_machine_envelope() {
    let bg = BgScript::steady(0, &[0, 1], Time::ZERO, None, 1.0);
    for r in [run("nolb", BgScript::none(), 30), run("nolb", bg.clone(), 30), run("cloudrefine", bg, 30)] {
        let p = r.energy.avg_power_per_node_w;
        assert!((40.0..=170.0).contains(&p), "node power {p} W outside envelope");
        // Energy is consistent with average power and duration.
        let recomputed = p * r.energy.duration_s * r.energy.nodes as f64;
        assert!((recomputed - r.energy.energy_j).abs() < 1e-6 * r.energy.energy_j.max(1.0));
    }
}

#[test]
fn energy_never_less_than_base_power_floor() {
    let r = run("nolb", BgScript::none(), 20);
    let floor = 40.0 * r.energy.duration_s * r.energy.nodes as f64;
    assert!(r.energy.energy_j >= floor - 1e-9, "{} < {}", r.energy.energy_j, floor);
}

#[test]
fn interference_free_base_run_is_nearly_saturated() {
    // A balanced compute-bound app keeps every core busy: power near max.
    let r = run("nolb", BgScript::none(), 30);
    assert!(
        r.energy.avg_power_per_node_w > 150.0,
        "base run power {:.1} W — cores unexpectedly idle",
        r.energy.avg_power_per_node_w
    );
}

#[test]
fn lb_trades_power_for_energy() {
    // The Fig. 4 trade-off on one cell, via raw runs.
    let bg = BgScript::steady(0, &[0, 1], Time::ZERO, Some(Dur::from_secs_f64(0.3)), 1.0);
    let nolb = run("nolb", bg.clone(), 60);
    let lb = run("cloudrefine", bg, 60);
    assert!(lb.energy.avg_power_per_node_w > nolb.energy.avg_power_per_node_w);
    assert!(lb.energy.energy_j < nolb.energy.energy_j);
}

#[test]
fn custom_power_models_scale_linearly() {
    // Doubling the dynamic range doubles the dynamic part of energy.
    let app = Jacobi2D::for_pes(4);
    let mut cfg = RunConfig::paper(4, 20);
    cfg.lb = LbConfig::nolb();
    cfg.power = PowerModel { base_w: 0.0, max_w: 100.0 };
    let r1 = SimExecutor::new(&app, cfg.clone(), BgScript::none()).run();
    cfg.power = PowerModel { base_w: 0.0, max_w: 200.0 };
    let r2 = SimExecutor::new(&app, cfg, BgScript::none()).run();
    assert!((r2.energy.energy_j / r1.energy.energy_j - 2.0).abs() < 1e-9);
}
