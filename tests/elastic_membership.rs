//! Acceptance tests for elastic cluster membership (ISSUE 7).
//!
//! Under the `spot_storm` preset — a replacement node acquired at 30 % of
//! the run, then both original nodes spot-preempted with lead time — a
//! `cloudrefine` run must:
//! * complete every iteration with **zero** chares restored from
//!   checkpoint (the notice lead covers the proactive drain),
//! * keep its capacity-adjusted penalty against the static-cluster twin
//!   within 35 %,
//! * never leave a chare on a revoked node,
//! * and be bit-identical on reruns,
//!
//! across the 3 CI seeds.

use cloudlb::prelude::*;

const SEEDS: [u64; 3] = [1, 2, 3];
const APP: &str = "jacobi2d";
const CORES: usize = 8;

fn storm_scenario(seed: u64) -> Scenario {
    let mut scn = Scenario::spot_storm(APP, CORES, "cloudrefine");
    scn.seed = seed;
    scn
}

fn clean_twin(seed: u64) -> Scenario {
    let mut scn = storm_scenario(seed);
    scn.membership = None;
    scn
}

#[test]
fn spot_storm_loses_zero_epochs_across_seeds() {
    for seed in SEEDS {
        let run = run_scenario(&storm_scenario(seed));
        eprintln!("seed {seed}: elastic {:?}", run.elastic);
        assert_eq!(run.iter_times.len(), 100, "seed {seed}: every iteration ran");
        assert_eq!(
            run.recoveries, 0,
            "seed {seed}: a survivable storm must not roll back to checkpoint"
        );
        assert_eq!(run.elastic.chares_rolled_back, 0, "seed {seed}");
        assert!(run.elastic.notices >= 1, "seed {seed}: the storm noticed nodes");
        assert!(run.elastic.nodes_revoked >= 1, "seed {seed}");
        assert_eq!(run.elastic.acquisitions, 1, "seed {seed}");
        assert_eq!(run.elastic.warmups, 1, "seed {seed}");
        assert!(
            run.elastic.chares_drained + run.elastic.chares_rescued > 0,
            "seed {seed}: evacuation moved chares proactively"
        );
    }
}

#[test]
fn capacity_adjusted_penalty_is_bounded_across_seeds() {
    for seed in SEEDS {
        let scn = storm_scenario(seed);
        let storm = run_scenario(&scn);
        let clean = run_scenario(&clean_twin(seed));
        let imp = elasticity_impact(&storm, &clean, &scn);
        eprintln!(
            "seed {seed}: penalty {:+.1} %, capacity-adjusted {:+.1} % at {:.0} % avg capacity",
            imp.penalty * 100.0,
            imp.capacity_adjusted_penalty * 100.0,
            imp.capacity_avg_frac * 100.0,
        );
        assert!(
            imp.capacity_adjusted_penalty <= 0.35,
            "seed {seed}: capacity-adjusted penalty {:.1} % exceeds 35 %",
            imp.capacity_adjusted_penalty * 100.0,
        );
        // The static twin saw no churn at all.
        assert_eq!(clean.elastic, ElasticStats::default(), "seed {seed}");
    }
}

#[test]
fn no_chare_ends_on_a_revoked_node_and_the_cluster_conserves_chares() {
    for seed in SEEDS {
        let scn = storm_scenario(seed);
        let run = run_scenario(&scn);
        let clean = run_scenario(&clean_twin(seed));
        // Conservation across shrink -> expand: same chare count, every
        // chare on exactly one in-range core of the grown cluster.
        assert_eq!(run.final_mapping.len(), clean.final_mapping.len(), "seed {seed}");
        let total = scn.total_cores();
        assert!(
            run.final_mapping.iter().all(|&p| p < total),
            "seed {seed}: mapping beyond the {total}-core grown cluster: {:?}",
            run.final_mapping
        );
        // Node 1 is noticed at 40 % and revoked at 65 % — well before the
        // interfered run ends — so its cores (4..8) must be empty.
        assert!(
            run.final_mapping.iter().all(|&p| !(4..8).contains(&p)),
            "seed {seed}: chare left on revoked node 1: {:?}",
            run.final_mapping
        );
        // The acquired node took real work.
        assert!(
            run.final_mapping.iter().any(|&p| p >= CORES),
            "seed {seed}: acquired node took no work: {:?}",
            run.final_mapping
        );
    }
}

#[test]
fn evacuated_nodes_are_empty_before_revocation() {
    // Completed evacuations mean the node had no mapped chares at its
    // revoke instant; with spot_storm's generous leads every attempted
    // evacuation must complete (in-flight rescues also count as success —
    // what is forbidden is rollback).
    for seed in SEEDS {
        let run = run_scenario(&storm_scenario(seed));
        assert!(run.elastic.evacuations_attempted >= 1, "seed {seed}");
        assert_eq!(
            run.elastic.evacuations_completed + run.elastic.chares_rescued.min(1),
            run.elastic.evacuations_attempted,
            "seed {seed}: an evacuation neither completed nor rescued: {:?}",
            run.elastic
        );
        assert_eq!(run.elastic.chares_rolled_back, 0, "seed {seed}");
    }
}

#[test]
fn elastic_runs_are_bit_identical_per_seed() {
    for seed in SEEDS {
        let a = run_scenario(&storm_scenario(seed));
        let b = run_scenario(&storm_scenario(seed));
        assert_eq!(a, b, "seed {seed}: elastic rerun diverged");
    }
}

#[test]
fn impact_report_matches_run_counters() {
    let scn = storm_scenario(1);
    let run = run_scenario(&scn);
    let clean = run_scenario(&clean_twin(1));
    let imp = elasticity_impact(&run, &clean, &scn);
    assert_eq!(imp.notices, run.elastic.notices);
    assert_eq!(imp.nodes_revoked, run.elastic.nodes_revoked);
    assert_eq!(imp.acquisitions, run.elastic.acquisitions);
    assert_eq!(imp.warmups, run.elastic.warmups);
    assert_eq!(imp.evacuations_attempted, run.elastic.evacuations_attempted);
    assert_eq!(imp.evacuations_completed, run.elastic.evacuations_completed);
    assert_eq!(imp.chares_drained, run.elastic.chares_drained);
    assert_eq!(imp.chares_rescued, run.elastic.chares_rescued);
    assert_eq!(imp.chares_rolled_back, run.elastic.chares_rolled_back);
    assert!((imp.penalty - run.timing_penalty_vs(&clean)).abs() < 1e-12);
    assert!((imp.capacity_avg_frac - scn.capacity_avg_frac()).abs() < 1e-12);
}

#[test]
fn autoscale_grows_the_cluster_without_losing_work() {
    for seed in SEEDS {
        let mut scn = Scenario::autoscale(APP, CORES, "cloudrefine");
        scn.seed = seed;
        let run = run_scenario(&scn);
        assert_eq!(run.iter_times.len(), 100, "seed {seed}");
        assert_eq!(run.elastic.acquisitions, 2, "seed {seed}");
        assert_eq!(run.elastic.warmups, 2, "seed {seed}");
        assert_eq!(run.elastic.chares_rolled_back, 0, "seed {seed}");
        assert!(
            run.final_mapping.iter().all(|&p| p < scn.total_cores()),
            "seed {seed}"
        );
    }
}
