//! Cross-executor guarantees: the thread executor computes exactly what a
//! serial execution computes (for every application, with and without
//! migration), and both executors' balancers react to interference.

use cloudlb::apps::grids::{Block2D, Block3D};
use cloudlb::apps::{Jacobi2D, Mol3D, Stencil3D, Wave2D};
use cloudlb::prelude::*;
use cloudlb::runtime::thread_exec::{serial_reference, ThreadBg};

fn thread_cfg(pes: usize, iters: usize, strategy: &str) -> ThreadRunConfig {
    let mut cfg = ThreadRunConfig::new(pes, iters);
    cfg.lb = LbConfig { strategy: strategy.into(), period: 4, ..Default::default() };
    cfg
}

#[test]
fn jacobi_threads_match_serial_with_migrations() {
    let app = Jacobi2D::new(Block2D::new(48, 48, 4, 3));
    let mut cfg = thread_cfg(3, 12, "cloudrefine");
    cfg.bg.push(ThreadBg { pe: 1, from_iter: 0, to_iter: 12, weight: 2.0 });
    let run = ThreadExecutor::run(&app, cfg);
    assert_eq!(run.checksums, serial_reference(&app, 12));
}

#[test]
fn wave_threads_match_serial() {
    let app = Wave2D::new(Block2D::new(40, 40, 4, 2));
    let run = ThreadExecutor::run(&app, thread_cfg(4, 10, "greedy"));
    assert_eq!(run.checksums, serial_reference(&app, 10));
}

#[test]
fn mol3d_threads_match_serial_under_interference() {
    let app = Mol3D::with_gradient(Block3D::new(3, 2, 2), 5);
    let mut cfg = thread_cfg(3, 9, "cloudrefine");
    cfg.bg.push(ThreadBg { pe: 0, from_iter: 2, to_iter: 7, weight: 3.0 });
    let run = ThreadExecutor::run(&app, cfg);
    assert_eq!(run.checksums, serial_reference(&app, 9));
}

#[test]
fn stencil3d_threads_match_serial() {
    let app = Stencil3D::new(Block3D::new(2, 2, 2), 6);
    let run = ThreadExecutor::run(&app, thread_cfg(2, 8, "refine"));
    assert_eq!(run.checksums, serial_reference(&app, 8));
}

#[test]
fn both_executors_migrate_under_interference() {
    // Same app, same strategy: the simulator's balancer and the thread
    // executor's balancer both shed the interfered core. Blocks are sized
    // so a real task costs tens of µs — well above per-message runtime
    // overhead, which Eq. 2 would otherwise pick up as noise.
    let app = Jacobi2D::new(Block2D::new(512, 512, 8, 4)); // 32 chares, 64×128 points each

    // Thread executor: noisy neighbour on worker 0.
    let mut tcfg = thread_cfg(4, 16, "cloudrefine");
    tcfg.bg.push(ThreadBg { pe: 0, from_iter: 0, to_iter: 16, weight: 2.0 });
    let trun = ThreadExecutor::run(&app, tcfg);
    assert!(trun.migrations > 0, "thread executor never migrated");
    let moved_off_0 = trun.final_mapping.iter().filter(|&&p| p == 0).count();
    assert!(moved_off_0 < 8, "worker 0 still holds {moved_off_0} of 32 chares");

    // Simulator: equivalent interference on core 0.
    let mut scfg = RunConfig::paper(4, 16);
    scfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 4, ..Default::default() };
    let bg = BgScript::steady(0, &[0], Time::ZERO, None, 2.0);
    let srun = SimExecutor::new(&app, scfg, bg).run();
    assert!(srun.migrations > 0, "simulator never migrated");
    let sim_on_0 = srun.final_mapping.iter().filter(|&&p| p == 0).count();
    assert!(sim_on_0 < 8, "sim core 0 still holds {sim_on_0} of 32 chares");
}

#[test]
fn nolb_threads_never_migrate() {
    let app = Wave2D::new(Block2D::new(32, 32, 4, 2));
    let mut cfg = thread_cfg(2, 8, "nolb");
    cfg.bg.push(ThreadBg { pe: 0, from_iter: 0, to_iter: 8, weight: 2.0 });
    let run = ThreadExecutor::run(&app, cfg);
    assert_eq!(run.migrations, 0);
    assert_eq!(run.checksums, serial_reference(&app, 8));
}

#[test]
fn serialized_migration_preserves_numerics_for_every_app() {
    // Charm++-style PUP path: chares travel as bytes, not boxes. Each app
    // must round-trip its state exactly.
    let jacobi = Jacobi2D::new(Block2D::new(48, 48, 4, 3));
    let wave = Wave2D::new(Block2D::new(40, 40, 4, 2));
    let mol = Mol3D::with_gradient(Block3D::new(3, 2, 2), 5);
    let sten = Stencil3D::new(Block3D::new(2, 2, 2), 6);
    let apps: [&dyn cloudlb::runtime::IterativeApp; 4] = [&jacobi, &wave, &mol, &sten];
    for app in apps {
        let mut cfg = thread_cfg(3, 9, "greedy");
        cfg.serialize_migration = true;
        let run = ThreadExecutor::run(app, cfg);
        assert!(run.migrations > 0, "{}: greedy should migrate", app.name());
        assert_eq!(
            run.checksums,
            serial_reference(app, 9),
            "{}: PUP round-trip corrupted state",
            app.name()
        );
    }
}

#[test]
fn pup_roundtrip_is_identity_after_real_compute() {
    // Drive kernels a few iterations, pack, unpack, compare checksums and
    // subsequent behaviour.
    let app = Wave2D::new(Block2D::new(32, 32, 2, 2));
    let mut kernels: Vec<_> = (0..4).map(|i| app.make_kernel(i)).collect();
    let mut inbox: Vec<Vec<(usize, Vec<f64>)>> = vec![Vec::new(); 4];
    for iter in 0..5 {
        let mut next: Vec<Vec<(usize, Vec<f64>)>> = vec![Vec::new(); 4];
        for (i, k) in kernels.iter_mut().enumerate() {
            inbox[i].sort_by_key(|e| e.0);
            for (nb, data) in k.compute(iter, &inbox[i]) {
                next[nb].push((i, data));
            }
        }
        inbox = next;
    }
    for (i, k) in kernels.iter().enumerate() {
        let bytes = k.pack().expect("wave kernels pack");
        let back = app.unpack_kernel(i, &bytes).expect("wave unpacks");
        assert_eq!(back.checksum(), k.checksum(), "chare {i}");
    }
}
