//! Cross-executor guarantees: the thread executor computes exactly what a
//! serial execution computes (for every application, with and without
//! migration), and both executors' balancers react to interference.

use cloudlb::apps::grids::{Block2D, Block3D};
use cloudlb::apps::{Jacobi2D, Mol3D, Stencil3D, Wave2D};
use cloudlb::prelude::*;
use cloudlb::runtime::thread_exec::{serial_reference, ThreadBg};
use cloudlb::runtime::IterativeApp;

fn thread_cfg(pes: usize, iters: usize, strategy: &str) -> ThreadRunConfig {
    let mut cfg = ThreadRunConfig::new(pes, iters);
    cfg.lb = LbConfig { strategy: strategy.into(), period: 4, ..Default::default() };
    cfg
}

#[test]
fn jacobi_threads_match_serial_with_migrations() {
    let app = Jacobi2D::new(Block2D::new(48, 48, 4, 3));
    let mut cfg = thread_cfg(3, 12, "cloudrefine");
    cfg.bg.push(ThreadBg { pe: 1, from_iter: 0, to_iter: 12, weight: 2.0 });
    let run = ThreadExecutor::run(&app, cfg).expect("run");
    assert_eq!(run.checksums, serial_reference(&app, 12));
}

#[test]
fn wave_threads_match_serial() {
    let app = Wave2D::new(Block2D::new(40, 40, 4, 2));
    let run = ThreadExecutor::run(&app, thread_cfg(4, 10, "greedy")).expect("run");
    assert_eq!(run.checksums, serial_reference(&app, 10));
}

#[test]
fn mol3d_threads_match_serial_under_interference() {
    let app = Mol3D::with_gradient(Block3D::new(3, 2, 2), 5);
    let mut cfg = thread_cfg(3, 9, "cloudrefine");
    cfg.bg.push(ThreadBg { pe: 0, from_iter: 2, to_iter: 7, weight: 3.0 });
    let run = ThreadExecutor::run(&app, cfg).expect("run");
    assert_eq!(run.checksums, serial_reference(&app, 9));
}

#[test]
fn stencil3d_threads_match_serial() {
    let app = Stencil3D::new(Block3D::new(2, 2, 2), 6);
    let run = ThreadExecutor::run(&app, thread_cfg(2, 8, "refine")).expect("run");
    assert_eq!(run.checksums, serial_reference(&app, 8));
}

#[test]
fn both_executors_migrate_under_interference() {
    // Same app, same strategy: the simulator's balancer and the thread
    // executor's balancer both shed the interfered core. Blocks are sized
    // so a real task costs tens of µs — well above per-message runtime
    // overhead, which Eq. 2 would otherwise pick up as noise.
    let app = Jacobi2D::new(Block2D::new(512, 512, 8, 4)); // 32 chares, 64×128 points each

    // Thread executor: noisy neighbour on worker 0.
    let mut tcfg = thread_cfg(4, 16, "cloudrefine");
    tcfg.bg.push(ThreadBg { pe: 0, from_iter: 0, to_iter: 16, weight: 2.0 });
    let trun = ThreadExecutor::run(&app, tcfg).expect("run");
    assert!(trun.migrations > 0, "thread executor never migrated");
    let moved_off_0 = trun.final_mapping.iter().filter(|&&p| p == 0).count();
    assert!(moved_off_0 < 8, "worker 0 still holds {moved_off_0} of 32 chares");

    // Simulator: equivalent interference on core 0.
    let mut scfg = RunConfig::paper(4, 16);
    scfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 4, ..Default::default() };
    let bg = BgScript::steady(0, &[0], Time::ZERO, None, 2.0);
    let srun = SimExecutor::new(&app, scfg, bg).run();
    assert!(srun.migrations > 0, "simulator never migrated");
    let sim_on_0 = srun.final_mapping.iter().filter(|&&p| p == 0).count();
    assert!(sim_on_0 < 8, "sim core 0 still holds {sim_on_0} of 32 chares");
}

#[test]
fn nolb_threads_never_migrate() {
    let app = Wave2D::new(Block2D::new(32, 32, 4, 2));
    let mut cfg = thread_cfg(2, 8, "nolb");
    cfg.bg.push(ThreadBg { pe: 0, from_iter: 0, to_iter: 8, weight: 2.0 });
    let run = ThreadExecutor::run(&app, cfg).expect("run");
    assert_eq!(run.migrations, 0);
    assert_eq!(run.checksums, serial_reference(&app, 8));
}

#[test]
fn serialized_migration_preserves_numerics_for_every_app() {
    // Charm++-style PUP path: chares travel as bytes, not boxes. Each app
    // must round-trip its state exactly.
    let jacobi = Jacobi2D::new(Block2D::new(48, 48, 4, 3));
    let wave = Wave2D::new(Block2D::new(40, 40, 4, 2));
    let mol = Mol3D::with_gradient(Block3D::new(3, 2, 2), 5);
    let sten = Stencil3D::new(Block3D::new(2, 2, 2), 6);
    let apps: [&dyn IterativeApp; 4] = [&jacobi, &wave, &mol, &sten];
    for app in apps {
        let mut cfg = thread_cfg(3, 9, "greedy");
        cfg.serialize_migration = true;
        let run = ThreadExecutor::run(app, cfg).expect("run");
        assert!(run.migrations > 0, "{}: greedy should migrate", app.name());
        assert_eq!(
            run.checksums,
            serial_reference(app, 9),
            "{}: PUP round-trip corrupted state",
            app.name()
        );
    }
}

/// Serialize→deserialize every chare of `app` after `warm` serial
/// iterations, then run both the originals and the reconstructions one
/// more iteration on identical inputs: checksums must be bit-identical at
/// both points. This is what checkpoint/restart relies on.
fn assert_pup_roundtrip_identity(app: &dyn IterativeApp, warm: usize) {
    let n = app.num_chares();
    let mut kernels: Vec<_> = (0..n).map(|i| app.make_kernel(i)).collect();
    let mut inbox: Vec<Vec<(usize, Vec<f64>)>> = vec![Vec::new(); n];
    for iter in 0..warm {
        let mut next: Vec<Vec<(usize, Vec<f64>)>> = vec![Vec::new(); n];
        for (i, k) in kernels.iter_mut().enumerate() {
            inbox[i].sort_by_key(|e| e.0);
            for (nb, data) in k.compute(iter, &inbox[i]) {
                next[nb].push((i, data));
            }
        }
        inbox = next;
    }

    // Round-trip every kernel through its PUP bytes.
    let mut restored: Vec<_> = kernels
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let bytes = k.pack().unwrap_or_else(|| panic!("{}: chare {i} must pack", app.name()));
            app.unpack_kernel(i, &bytes)
                .unwrap_or_else(|| panic!("{}: chare {i} must unpack", app.name()))
        })
        .collect();
    for (i, (orig, back)) in kernels.iter().zip(&restored).enumerate() {
        assert_eq!(
            orig.checksum().to_bits(),
            back.checksum().to_bits(),
            "{}: chare {i} checksum changed across PUP",
            app.name()
        );
    }

    // One more iteration on both copies, bit-identical inputs.
    for (i, inb) in inbox.iter_mut().enumerate() {
        inb.sort_by_key(|e| e.0);
        let out_orig = kernels[i].compute(warm, inb);
        let out_back = restored[i].compute(warm, inb);
        assert_eq!(
            out_orig.len(),
            out_back.len(),
            "{}: chare {i} emitted different message counts after PUP",
            app.name()
        );
        for ((nb_a, data_a), (nb_b, data_b)) in out_orig.iter().zip(&out_back) {
            assert_eq!(nb_a, nb_b, "{}: chare {i} message routing diverged", app.name());
            let bits_a: Vec<u64> = data_a.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u64> = data_b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "{}: chare {i} payload diverged after PUP", app.name());
        }
        assert_eq!(
            kernels[i].checksum().to_bits(),
            restored[i].checksum().to_bits(),
            "{}: chare {i} state diverged one iteration after PUP",
            app.name()
        );
    }
}

#[test]
fn pup_roundtrip_is_identity_after_real_compute_jacobi2d() {
    assert_pup_roundtrip_identity(&Jacobi2D::new(Block2D::new(32, 32, 2, 2)), 5);
}

#[test]
fn pup_roundtrip_is_identity_after_real_compute_wave2d() {
    assert_pup_roundtrip_identity(&Wave2D::new(Block2D::new(32, 32, 2, 2)), 5);
}

#[test]
fn pup_roundtrip_is_identity_after_real_compute_mol3d() {
    assert_pup_roundtrip_identity(&Mol3D::with_gradient(Block3D::new(2, 2, 2), 6), 5);
}

#[test]
fn pup_roundtrip_is_identity_after_real_compute_stencil3d() {
    assert_pup_roundtrip_identity(&Stencil3D::new(Block3D::new(2, 2, 2), 6), 5);
}
