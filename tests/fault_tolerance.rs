//! Acceptance tests for the fault-tolerant runtime (the ISSUE's bar):
//! a 4-core Wave2D run that loses PE 2 mid-run still completes with the
//! same numerics as a failure-free serial execution, on both executors,
//! and every failure path surfaces as a typed error — no `.expect()`
//! panic escapes to the caller.

use cloudlb::apps::Wave2D;
use cloudlb::core_api::{failure_impact, try_run_scenario, Scenario};
use cloudlb::prelude::*;
use cloudlb::runtime::checkpoint::CheckpointPolicy;
use cloudlb::runtime::thread_exec::{serial_reference, ThreadFault};
use cloudlb::sim::failure::FailureScript;
use cloudlb::sim::ClusterConfig;

fn thread_cfg(pes: usize, iters: usize) -> ThreadRunConfig {
    let mut cfg = ThreadRunConfig::new(pes, iters);
    cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 4, ..Default::default() };
    cfg
}

fn sim_cfg(iters: usize) -> RunConfig {
    let mut cfg = RunConfig {
        cluster: ClusterConfig { nodes: 1, cores_per_node: 4, trace: false },
        ..RunConfig::paper(4, iters)
    };
    cfg.iterations = iters;
    cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 5, ..Default::default() };
    cfg
}

/// Thread executor: worker 2 panics mid-run; the supervisor restarts it,
/// restores every chare from checkpoints, replays, and the final numbers
/// are bit-identical to a failure-free serial execution.
#[test]
fn wave2d_survives_worker_panic_with_exact_numerics() {
    let app = Wave2D::for_pes(4);
    let mut cfg = thread_cfg(4, 12);
    cfg.inject.push(ThreadFault::Panic { pe: 2, iter: 1 });
    let run = ThreadExecutor::run(&app, cfg).expect("supervised run must recover");
    assert!(run.restarts >= 1, "the dead worker must have been restarted");
    assert!(run.checkpoints >= 1);
    assert_eq!(run.checksums, serial_reference(&app, 12), "recovery must not corrupt state");
}

/// Simulated executor: core 2 dies mid-run; the run rolls back to the
/// last checkpoint, re-balances over the survivors, and completes every
/// iteration with nothing left on the dead core.
#[test]
fn wave2d_survives_losing_core_2_mid_run() {
    let app = Wave2D::for_pes(4);
    let clean = SimExecutor::new(&app, sim_cfg(30), BgScript::none()).run();
    // Half-way through the failure-free run.
    let half = Time::ZERO + Dur::from_secs_f64(clean.app_time.as_secs_f64() / 2.0);
    let r = SimExecutor::new(&app, sim_cfg(30), BgScript::none())
        .with_failures(FailureScript::kill_core(2, half))
        .try_run()
        .expect("recoverable failure");
    assert_eq!(r.iter_times.len(), 30, "every iteration must be accounted");
    assert_eq!(r.failures, 1);
    assert_eq!(r.recoveries, 1);
    assert!(r.replayed_iters > 0);
    assert!(r.final_mapping.iter().all(|&p| p != 2), "dead core must end empty");
    assert!(r.app_time > clean.app_time, "losing a core must cost wall time");
}

/// The scenario layer end to end: the failure drill (interference plus a
/// permanent core loss) survives and quantifies its own cost.
#[test]
fn failure_drill_scenario_reports_recovery_cost() {
    let mut drill = Scenario::failure_drill("wave2d", 4, "cloudrefine");
    drill.iterations = 24;
    let failed = try_run_scenario(&drill).expect("drill is recoverable");
    let mut clean = drill.clone();
    clean.fail.clear();
    let imp = failure_impact(&failed, &try_run_scenario(&clean).expect("failure-free twin"));
    assert_eq!(imp.failures, 1);
    assert_eq!(imp.recoveries, 1);
    assert!(imp.recovery_time_s > 0.0);
    assert!(imp.failure_penalty > 0.0);
}

/// Every unrecoverable path is a typed error — nothing panics.
#[test]
fn unrecoverable_paths_are_typed_errors_not_panics() {
    let app = Wave2D::for_pes(4);

    // Thread executor, checkpoints off: the panic cannot be recovered.
    let mut tc = thread_cfg(4, 8);
    tc.checkpoints = CheckpointPolicy::Disabled;
    tc.inject.push(ThreadFault::Panic { pe: 1, iter: 1 });
    match ThreadExecutor::run(&app, tc) {
        Err(RuntimeError::WorkerPanicked { pe, .. }) => assert_eq!(pe, 1),
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }

    // Simulated executor, checkpoints off: same story.
    let mut sc = sim_cfg(20);
    sc.checkpoints = CheckpointPolicy::Disabled;
    let err = SimExecutor::new(&app, sc, BgScript::none())
        .with_failures(FailureScript::kill_core(0, Time::from_us(20_000)))
        .try_run()
        .expect_err("no checkpoint, no recovery");
    assert!(matches!(err, RuntimeError::Unrecoverable { .. }), "got {err}");

    // Killing every core leaves nothing to recover onto.
    let err = SimExecutor::new(&app, sim_cfg(20), BgScript::none())
        .with_failures(FailureScript::kill_node(0, Time::from_us(20_000)))
        .try_run()
        .expect_err("no survivors");
    assert!(matches!(err, RuntimeError::AllPesDead), "got {err}");
}
