//! Failure injection and awkward configurations: the runtime must stay
//! correct (or fail loudly) outside the happy path.

use cloudlb::apps::grids::Block2D;
use cloudlb::prelude::*;
use cloudlb::runtime::program::SyntheticApp;

fn cfg(cores: usize, iters: usize, strategy: &str, period: usize) -> RunConfig {
    let mut c = RunConfig::paper(cores, iters);
    c.lb = LbConfig { strategy: strategy.into(), period, ..Default::default() };
    c
}

#[test]
fn all_cores_interfered_still_completes() {
    // Nowhere to migrate: the balancer must do nothing harmful.
    let app = SyntheticApp::ring(16, 0.001);
    let bg = BgScript::steady(0, &[0, 1, 2, 3], Time::ZERO, None, 1.0);
    let r = SimExecutor::new(&app, cfg(4, 12, "cloudrefine", 4), bg).run();
    assert_eq!(r.iter_times.len(), 12);
    assert_eq!(r.migrations, 0, "no useful migration exists");
}

#[test]
fn chare_count_not_divisible_by_cores() {
    let app = SyntheticApp::ring(13, 0.001); // 13 chares on 4 cores
    let r = SimExecutor::new(&app, cfg(4, 10, "cloudrefine", 5), BgScript::none()).run();
    assert_eq!(r.iter_times.len(), 10);
    assert_eq!(r.final_mapping.len(), 13);
    assert!(r.final_mapping.iter().all(|&p| p < 4));
}

#[test]
fn fewer_chares_than_cores() {
    // Under-decomposition: 3 chares on 8 cores. Most cores idle; must
    // still run and never panic in the balancer.
    let app = SyntheticApp::ring(3, 0.001);
    let r = SimExecutor::new(&app, cfg(8, 8, "cloudrefine", 4), BgScript::none()).run();
    assert_eq!(r.iter_times.len(), 8);
}

#[test]
fn interference_flapping_every_few_iterations() {
    // Pathological on/off interference faster than the LB period: runs to
    // completion and stays deterministic.
    let app = SyntheticApp::ring(32, 0.0005);
    let mut script = BgScript::none();
    for k in 0..10u32 {
        let t0 = Time::from_us(3_000 * k as u64 + 500);
        let t1 = Time::from_us(3_000 * k as u64 + 2_000);
        script = script.merge(BgScript::pulse(k, (k % 4) as usize, t0, t1, 1.0));
    }
    let a = SimExecutor::new(&app, cfg(4, 30, "cloudrefine", 3), script.clone()).run();
    let b = SimExecutor::new(&app, cfg(4, 30, "cloudrefine", 3), script).run();
    assert_eq!(a.app_time, b.app_time);
    assert_eq!(a.final_mapping, b.final_mapping);
}

#[test]
fn zero_cost_tasks_terminate() {
    // Degenerate cost model: instantaneous tasks. The run must terminate
    // (message latency still advances virtual time).
    let app = SyntheticApp::ring(8, 0.0);
    let r = SimExecutor::new(&app, cfg(4, 5, "cloudrefine", 2), BgScript::none()).run();
    assert_eq!(r.iter_times.len(), 5);
}

#[test]
fn stop_for_unknown_bg_job_is_harmless() {
    let app = SyntheticApp::ring(8, 0.001);
    let script = BgScript {
        actions: vec![(
            Time::from_us(100),
            cloudlb::sim::BgAction::Stop { job: 99, core: 1 },
        )],
    };
    let r = SimExecutor::new(&app, cfg(4, 6, "nolb", 3), script).run();
    assert_eq!(r.iter_times.len(), 6);
}

#[test]
fn gain_gated_strategy_vetoes_expensive_plans_end_to_end() {
    use cloudlb::balance::{CloudRefineLb, GainGatedLb, GateConfig};
    let app = Jacobi2D::new(Block2D::new(96, 96, 6, 4));
    let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
    // Prohibitive per-object cost: the gate must veto every plan.
    let gate = GateConfig { bytes_per_sec: 1e3, per_object_cost_s: 10.0, horizon_windows: 1.0 };
    let gated = GainGatedLb::new(CloudRefineLb::default(), gate);
    let r = SimExecutor::new(&app, cfg(4, 12, "cloudrefine", 4), bg)
        .run_with_strategy(Box::new(gated));
    assert_eq!(r.migrations, 0, "gate should have vetoed all migrations");
    assert_eq!(r.iter_times.len(), 12);
}

#[test]
#[should_panic(expected = "beyond cluster")]
fn bg_outside_cluster_is_rejected_loudly() {
    let app = SyntheticApp::ring(8, 0.001);
    let bg = BgScript::steady(0, &[17], Time::ZERO, None, 1.0);
    SimExecutor::new(&app, cfg(4, 5, "nolb", 5), bg);
}

#[test]
#[should_panic(expected = "at least one iteration")]
fn zero_iterations_rejected() {
    let app = SyntheticApp::ring(8, 0.001);
    SimExecutor::new(&app, cfg(4, 0, "nolb", 5), BgScript::none());
}
