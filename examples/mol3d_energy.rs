//! Mol3D power/energy study (the paper's Figure 4(c) scenario).
//!
//! Mol3D suffers the paper's worst interference (the OS prefers the
//! background job ~4:1, driving noLB timing penalties toward 400 %). This
//! example sweeps core counts and prints the power/energy trade-off: load
//! balancing raises average power but cuts energy, because base power
//! (40 W of the 170 W peak) dominates the stretched noLB runs.
//!
//! ```text
//! cargo run --release --example mol3d_energy
//! ```

use cloudlb::prelude::*;

fn main() {
    println!("Mol3D with a preferred 2-core background job (paper Fig. 2c / 4c)\n");
    println!(
        "{:>5} | {:>10} {:>10} | {:>12} {:>12} | {:>10} {:>10}",
        "cores", "noLB pen%", "LB pen%", "noLB W/node", "LB W/node", "noLB EO%", "LB EO%"
    );
    for cores in [4, 8, 16, 32] {
        let p = evaluate("mol3d", cores, 100, "cloudrefine", &[1, 2, 3]);
        println!(
            "{cores:>5} | {:>10.1} {:>10.1} | {:>12.1} {:>12.1} | {:>10.1} {:>10.1}",
            p.penalty_nolb * 100.0,
            p.penalty_lb * 100.0,
            p.power_nolb_w,
            p.power_lb_w,
            p.energy_overhead_nolb * 100.0,
            p.energy_overhead_lb * 100.0,
        );
    }
    println!(
        "\nNote the paper's Fig. 4 signature: the balanced runs draw MORE power\n\
         per node yet consume LESS total energy — shorter runs amortize the\n\
         40 W per-node base power."
    );
}
