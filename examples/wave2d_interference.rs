//! Dynamic interference demo (the paper's Figure 3 scenario).
//!
//! Wave2D runs on 4 simulated cores while an interfering job lands on
//! core 1, departs, and a new one lands on core 3. The example prints the
//! five-phase iteration-time summary, an ASCII Projections-style timeline,
//! and writes an SVG timeline next to the binary.
//!
//! ```text
//! cargo run --release --example wave2d_interference
//! ```

use cloudlb::core_api::figures;

fn main() {
    let out = figures::fig3(60, 6);

    println!("Wave2D, 4 cores, CloudRefineLB, interference moving core 1 → core 3\n");
    println!("{:<24} mean iteration time", "phase");
    for (label, secs) in &out.phases {
        println!("{label:<24} {:.2} ms", secs * 1e3);
    }
    println!("\nmigrations committed: {}", out.migrations);

    println!("\n{}", out.timeline);

    let path = std::env::temp_dir().join("cloudlb_fig3.svg");
    match std::fs::write(&path, &out.svg) {
        Ok(()) => println!("SVG timeline written to {}", path.display()),
        Err(e) => eprintln!("could not write SVG: {e}"),
    }
}
