//! AMPI-style program on the migratable runtime.
//!
//! The paper (§III) notes that "MPI programs can leverage the capabilities
//! of Charm++ runtime system using the adaptive implementation of MPI
//! (AMPI)". This example writes an MPI-shaped bulk-synchronous program —
//! a 1-D ring halo exchange with skewed per-rank work — and runs it
//! unmodified under the interference-aware balancer: the ranks are
//! over-decomposed user-level "processes" that the runtime migrates.
//!
//! ```text
//! cargo run --release --example ampi_ring
//! ```

use cloudlb::prelude::*;
use cloudlb::runtime::ampi::{AmpiAdapter, RingHalo};

fn main() {
    // 64 "MPI processes" on 4 cores (virtualization ratio 16), upper half
    // doing 2x the work — a typical irregular MPI code.
    let app = AmpiAdapter(RingHalo::new(64, 0.0005, 2.0));
    let cores = 4;

    let mut cfg = RunConfig::paper(cores, 80);
    cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 10, ..Default::default() };
    // Plus a cloud neighbour interfering with core 0.
    let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);

    println!("AMPI ring-halo: 64 skewed ranks on {cores} cores, interference on core 0\n");

    let mut nolb_cfg = cfg.clone();
    nolb_cfg.lb.strategy = "nolb".into();
    let nolb = SimExecutor::new(&app, nolb_cfg, bg.clone()).run();
    let lb = SimExecutor::new(&app, cfg, bg).run();

    println!("noLB : {:8.3} s", nolb.app_time.as_secs_f64());
    println!(
        "LB   : {:8.3} s   ({} migrations over {} LB steps)",
        lb.app_time.as_secs_f64(),
        lb.migrations,
        lb.lb_steps
    );
    println!(
        "\nspeedup from migratable ranks: {:.2}x",
        nolb.app_time.as_secs_f64() / lb.app_time.as_secs_f64()
    );
    assert!(lb.app_time < nolb.app_time);
}
