//! Live object migration on real OS threads.
//!
//! Everything else in this repository uses the deterministic simulator;
//! this example shows the runtime is real: Jacobi2D chares execute actual
//! stencil math on worker threads, an injected noisy neighbour slows
//! worker 0, the interference-aware balancer migrates live chare state
//! between threads, and the final checksums still match a single-threaded
//! reference execution exactly.
//!
//! ```text
//! cargo run --release --example live_migration
//! ```

use cloudlb::apps::grids::Block2D;
use cloudlb::apps::Jacobi2D;
use cloudlb::prelude::*;
use cloudlb::runtime::thread_exec::{serial_reference, ThreadBg};

fn main() {
    let app = Jacobi2D::new(Block2D::new(192, 192, 6, 4)); // 24 chares
    let pes = 4;
    let iterations = 24;

    let mut cfg = ThreadRunConfig::new(pes, iterations);
    cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 6, ..Default::default() };
    // A noisy neighbour on worker 0 for the whole run, fair-share weight.
    cfg.bg.push(ThreadBg { pe: 0, from_iter: 0, to_iter: iterations, weight: 1.0 });

    println!("Jacobi2D: 24 live chares on {pes} OS threads, interference on worker 0\n");
    let run = ThreadExecutor::run(&app, cfg).expect("threaded run");

    println!("wall time      : {:?}", run.wall);
    println!("LB steps       : {}", run.lb_steps);
    println!("migrations     : {}", run.migrations);
    println!("final mapping  : {:?}", run.final_mapping);
    println!(
        "per-worker CPU : {:?} µs",
        run.per_pe_task_us
    );

    let reference = serial_reference(&app, iterations);
    let matches = run.checksums == reference;
    println!(
        "\nchecksums vs single-threaded reference: {}",
        if matches { "IDENTICAL (migration preserved all state)" } else { "MISMATCH" }
    );
    assert!(matches, "live migration corrupted state");
    assert!(
        run.migrations > 0,
        "expected the balancer to migrate chares away from the noisy worker"
    );
}
