//! Quickstart: the paper's headline experiment in ~40 lines.
//!
//! Runs Jacobi2D on 8 simulated cores three ways — interference-free,
//! interfered without load balancing, and interfered with the paper's
//! CloudRefineLB — and prints the timing penalties and energy overheads.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cloudlb::prelude::*;

fn main() {
    let cores = 8;
    let iterations = 100;

    // The paper's scenario: a 2-core background job (their Wave2D 2-core
    // run) interfering with the application on cores 0 and 1.
    let lb = Scenario::paper("jacobi2d", cores, "cloudrefine");
    let nolb = Scenario { strategy: "nolb".into(), ..lb.clone() };
    let base = lb.base_of();

    println!("Jacobi2D on {cores} cores, {iterations} iterations, 2-core interfering job\n");

    let base_run = run_scenario(&base);
    println!(
        "interference-free base : {:>8.3} s  @ {:>5.1} W/node",
        base_run.app_time.as_secs_f64(),
        base_run.energy.avg_power_per_node_w
    );

    let nolb_run = run_scenario(&nolb);
    println!(
        "interfered, noLB       : {:>8.3} s  @ {:>5.1} W/node  (timing penalty {:>5.1} %)",
        nolb_run.app_time.as_secs_f64(),
        nolb_run.energy.avg_power_per_node_w,
        nolb_run.timing_penalty_vs(&base_run) * 100.0
    );

    let lb_run = run_scenario(&lb);
    println!(
        "interfered, CloudRefine: {:>8.3} s  @ {:>5.1} W/node  (timing penalty {:>5.1} %, {} migrations over {} LB steps)",
        lb_run.app_time.as_secs_f64(),
        lb_run.energy.avg_power_per_node_w,
        lb_run.timing_penalty_vs(&base_run) * 100.0,
        lb_run.migrations,
        lb_run.lb_steps
    );

    let e_nolb = nolb_run.energy_overhead_vs(&base_run) * 100.0;
    let e_lb = lb_run.energy_overhead_vs(&base_run) * 100.0;
    println!("\nenergy overhead vs base: noLB {e_nolb:.1} %  → LB {e_lb:.1} %");
    let reduction =
        (1.0 - lb_run.timing_penalty_vs(&base_run) / nolb_run.timing_penalty_vs(&base_run)) * 100.0;
    println!("timing-penalty reduction from load balancing: {reduction:.1} %");
}
