//! `cloudlb` command-line interface.
//!
//! ```text
//! cloudlb run   --app jacobi2d --cores 8 --strategy cloudrefine [--iters N] [--seed S] [--json]
//! cloudlb fig1 | fig2 | fig3 | fig4 [--fast]
//! cloudlb matrix --app mol3d [--fast] [--json]
//! ```
//!
//! `run` executes one paper scenario (base + interfered) and reports the
//! timing penalty, power and energy overhead; the `fig*` subcommands
//! regenerate the paper's figures; `matrix` prints both the Fig. 2 and
//! Fig. 4 tables for one application.

use cloudlb::core_api::experiment::{
    elasticity_impact, evaluate_cells, failure_impact, network_impact, run_scenario,
    telemetry_impact, try_run_scenario, CellSpec,
};
use cloudlb::core_api::default_jobs;
use cloudlb::core_api::figures;
use cloudlb::core_api::scenario::{BgPattern, FailSpec, Scenario};
use cloudlb::runtime::FastForward;
use cloudlb::sim::{MembershipSpec, NetFaultSpec, TelemetrySpec};
use cloudlb::trace::profile::{render_profile, ProfileOptions};
use cloudlb::trace::svg::{render_svg, SvgOptions};
use cloudlb::trace::timeline::{render_ascii, TimelineOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(jobs) = opts.jobs {
        // The sweep engine resolves its worker count from CLOUDLB_JOBS
        // (see cloudlb_core::parallel::default_jobs); --jobs overrides it
        // process-wide before any sweep starts.
        std::env::set_var("CLOUDLB_JOBS", jobs.to_string());
    }
    match cmd.as_str() {
        "run" => cmd_run(&opts),
        "fig1" => {
            let out = figures::fig1(20);
            println!(
                "quiet {:.2} ms, interfered {:.2} ms ({:.2}x)\n{}",
                out.quiet_iter_s * 1e3,
                out.interfered_iter_s * 1e3,
                out.interfered_iter_s / out.quiet_iter_s,
                out.timeline
            );
            ExitCode::SUCCESS
        }
        "fig2" | "fig4" => {
            if opts.stream_summary {
                let mut table = if cmd == "fig2" {
                    figures::fig2_table(&[])
                } else {
                    figures::fig4_table(&[])
                };
                let (summary, stats) = figures::eval_matrix_stream(
                    &opts.app,
                    &opts.cores_list(),
                    opts.iters,
                    &opts.seeds,
                    default_jobs(),
                    |p| {
                        if cmd == "fig2" {
                            figures::fig2_row(&mut table, p)
                        } else {
                            figures::fig4_row(&mut table, p)
                        }
                    },
                );
                print!("{}", table.markdown());
                print_stream_summary(&summary, &stats);
            } else {
                let points =
                    figures::eval_matrix(&opts.app, &opts.cores_list(), opts.iters, &opts.seeds);
                let table = if cmd == "fig2" {
                    figures::fig2_table(&points)
                } else {
                    figures::fig4_table(&points)
                };
                print!("{}", table.markdown());
            }
            ExitCode::SUCCESS
        }
        "fig3" => {
            let out = figures::fig3(60, 6);
            for (label, s) in &out.phases {
                println!("{label:<26} {:8.2} ms", s * 1e3);
            }
            println!("\n{}", out.timeline);
            ExitCode::SUCCESS
        }
        "trace" => cmd_trace(&opts),
        "matrix" => {
            if opts.stream_summary {
                // Memory-bounded path: cells stream through the pipeline,
                // table rows accumulate incrementally, and only online
                // summaries survive the sweep — no Vec<EvalPoint>.
                let mut t2 = figures::fig2_table(&[]);
                let mut t4 = figures::fig4_table(&[]);
                let (summary, stats) = figures::eval_matrix_stream(
                    &opts.app,
                    &opts.cores_list(),
                    opts.iters,
                    &opts.seeds,
                    default_jobs(),
                    |p| {
                        figures::fig2_row(&mut t2, p);
                        figures::fig4_row(&mut t4, p);
                    },
                );
                println!("Fig. 2 ({})", opts.app);
                print!("{}", t2.markdown());
                println!("\nFig. 4 ({})", opts.app);
                print!("{}", t4.markdown());
                print_stream_summary(&summary, &stats);
            } else {
                let points =
                    figures::eval_matrix(&opts.app, &opts.cores_list(), opts.iters, &opts.seeds);
                if opts.json {
                    println!("{}", serde_json_string(&points));
                } else {
                    println!("Fig. 2 ({})", opts.app);
                    print!("{}", figures::fig2_table(&points).markdown());
                    println!("\nFig. 4 ({})", opts.app);
                    print!("{}", figures::fig4_table(&points).markdown());
                }
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Resolve the scenario: either from `--scenario file.json` or from flags.
fn scenario_from(opts: &Opts) -> Result<Scenario, String> {
    if let Some(path) = &opts.scenario_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let mut scn: Scenario = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
        scn.fail.extend(opts.fail.iter().copied());
        if opts.telemetry.is_some() {
            scn.telemetry = opts.telemetry;
        }
        if opts.net_fault.is_some() {
            scn.net_fault = opts.net_fault.clone();
        }
        if opts.membership.is_some() {
            scn.membership = opts.membership.clone();
        }
        if let Some(ff) = opts.fast_forward {
            scn.fast_forward = ff;
        }
        if let Some(bg) = opts.bg {
            scn.bg = bg;
        }
        return Ok(scn);
    }
    let mut scn = Scenario::paper(&opts.app, opts.cores, &opts.strategy);
    scn.iterations = opts.iters;
    scn.seed = opts.seeds[0];
    scn.fail.extend(opts.fail.iter().copied());
    scn.telemetry = opts.telemetry;
    scn.net_fault = opts.net_fault.clone();
    scn.membership = opts.membership.clone();
    if let Some(ff) = opts.fast_forward {
        scn.fast_forward = ff;
    }
    if let Some(bg) = opts.bg {
        scn.bg = bg;
    }
    Ok(scn)
}

fn cmd_trace(opts: &Opts) -> ExitCode {
    let mut scn = match scenario_from(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    scn.trace = true;
    let run = run_scenario(&scn);
    let trace = run.trace.expect("tracing enabled");
    println!("{}", render_ascii(&trace, &TimelineOptions { width: 110, ..Default::default() }));
    println!("{}", render_profile(&trace, &ProfileOptions::default()));
    let path = std::env::temp_dir().join("cloudlb_trace.svg");
    let svg = render_svg(
        &trace,
        &SvgOptions { title: format!("{} on {} cores", scn.app, scn.cores), ..Default::default() },
    );
    match std::fs::write(&path, svg) {
        Ok(()) => println!("SVG timeline: {}", path.display()),
        Err(e) => eprintln!("could not write SVG: {e}"),
    }
    ExitCode::SUCCESS
}

fn cmd_run(opts: &Opts) -> ExitCode {
    let scn = match scenario_from(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base = run_scenario(&scn.base_of());
    let run = match try_run_scenario(&scn) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Under --json, stdout carries exactly one JSON document; the impact
    // summaries below go to stderr so the output stays parseable.
    let report = |line: String| {
        if opts.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    if opts.json {
        // Same paper cell as `evaluate`, but carrying the run's
        // fast-forward mode so `--fast-forward off` shows in the record.
        let mut cell = CellSpec::paper(&scn.app, scn.cores, scn.iterations, &scn.strategy);
        cell.fast_forward = scn.fast_forward;
        let p = evaluate_cells(std::slice::from_ref(&cell), &opts.seeds, default_jobs())
            .pop()
            .expect("one cell evaluated");
        println!("{}", serde_json_string(&p));
    } else {
        println!(
            "{} on {} cores, strategy {}: base {:.3} s, interfered {:.3} s \
             (penalty {:.1} %), {} migrations, {:.1} W/node, energy overhead {:.1} %",
            scn.app,
            scn.cores,
            scn.strategy,
            base.app_time.as_secs_f64(),
            run.app_time.as_secs_f64(),
            run.timing_penalty_vs(&base) * 100.0,
            run.migrations,
            run.energy.avg_power_per_node_w,
            run.energy_overhead_vs(&base) * 100.0,
        );
    }
    if run.ff_windows > 0 {
        report(format!(
            "fast-forwarded {}/{} iterations ({} windows, {} events skipped)",
            run.ff_windows * scn.lb_period,
            scn.iterations,
            run.ff_windows,
            run.events_skipped,
        ));
    }
    if run.failures > 0 {
        // A failure-free twin isolates the cost of the injected failures
        // from the cost of the interference.
        let mut clean = scn.clone();
        clean.fail.clear();
        let imp = failure_impact(&run, &run_scenario(&clean));
        report(format!(
            "failures: {} core(s) lost, {} recover{}, {} iteration(s) replayed, \
             {:.3} s recovering (failure penalty {:.1} %)",
            imp.failures,
            imp.recoveries,
            if imp.recoveries == 1 { "y" } else { "ies" },
            imp.replayed_iters,
            imp.recovery_time_s,
            imp.failure_penalty * 100.0,
        ));
    }
    if scn.telemetry.is_some() {
        // A clean-telemetry twin isolates what the corrupted counters cost.
        let mut clean = scn.clone();
        clean.telemetry = None;
        let imp = telemetry_impact(&run, &run_scenario(&clean));
        report(format!(
            "telemetry: {} clamped O_p, {} stale window(s), {} task overrun(s), \
             {} implausible idle; {} migration(s) suppressed, {} oscillation(s) damped, \
             {} outlier(s) rejected; noise penalty {:.1} %",
            imp.clamped_op,
            imp.missing_samples,
            imp.task_overrun,
            imp.implausible_idle,
            imp.suppressed,
            imp.oscillations,
            imp.outliers_rejected,
            imp.noise_penalty * 100.0,
        ));
    }
    if scn.net_fault.is_some() {
        // A clean-network twin isolates what the flaky interconnect cost.
        let mut clean = scn.clone();
        clean.net_fault = None;
        let imp = network_impact(&run, &run_scenario(&clean));
        report(format!(
            "network: {} cop(ies) lost, {} ghost retransmit(s), {} duplicate(s) dropped, \
             {} migration retr(ies), {} abort(s), {:.3} s partitioned \
             (network penalty {:.1} %)",
            imp.lost_copies,
            imp.retransmits,
            imp.duplicates_dropped,
            imp.migration_retries,
            imp.migration_aborts,
            imp.partition_s,
            imp.net_penalty * 100.0,
        ));
    }
    if scn.membership.as_ref().is_some_and(|m| m.is_active()) {
        // A static-cluster twin isolates what membership churn cost beyond
        // the capacity it took away.
        let mut clean = scn.clone();
        clean.membership = None;
        let imp = elasticity_impact(&run, &run_scenario(&clean), &scn);
        report(format!(
            "membership: {} notice(s), {} node(s) revoked, {} acquired ({} warmed up); \
             {}/{} evacuation(s) completed, {} chare(s) drained, {} rescued, {} rolled back; \
             penalty {:.1} % ({:.1} % capacity-adjusted at {:.0} % avg capacity)",
            imp.notices,
            imp.nodes_revoked,
            imp.acquisitions,
            imp.warmups,
            imp.evacuations_completed,
            imp.evacuations_attempted,
            imp.chares_drained,
            imp.chares_rescued,
            imp.chares_rolled_back,
            imp.penalty * 100.0,
            imp.capacity_adjusted_penalty * 100.0,
            imp.capacity_avg_frac * 100.0,
        ));
    }
    ExitCode::SUCCESS
}

fn serde_json_string<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("serializable")
}

/// Footer for `--stream-summary` runs: the online metric summaries plus
/// the pipeline's own counters.
fn print_stream_summary(summary: &figures::MatrixSummary, stats: &cloudlb::core_api::PipelineStats) {
    println!("\nstreaming summary");
    print!("{}", summary.render());
    println!(
        "pipeline: {:.1} cells-arms/s, utilization {:.2}, reorder peak {}, \
         live peak {} (bound {}), {} steals, {} injector claims",
        stats.packets_per_sec,
        stats.utilization,
        stats.reorder_peak,
        stats.live_peak,
        stats.window,
        stats.steals,
        stats.injector_claims,
    );
}

const USAGE: &str = "usage:
  cloudlb run    --app <name> --cores <n> [--strategy <s>] [--iters <n>] [--seed <s>]
                 [--fail <spec>[,<spec>...]] [--telemetry-noise <spec>]
                 [--net-fault <spec>] [--membership <spec>]
                 [--fast-forward on|off|auto]
                 [--bg paper|none|twocore:<frac>] [--json]
  cloudlb run    --scenario <file.json> [--fail <spec>[,<spec>...]] [--json]
  cloudlb trace  --app <name> --cores <n> [--strategy <s>] [--iters <n>]
  cloudlb fig1 | fig3
  cloudlb fig2 | fig4 [--app <name>] [--fast] [--jobs <n>] [--stream-summary]
  cloudlb matrix --app <name> [--fast] [--json] [--jobs <n>] [--stream-summary]

--jobs <n> (or CLOUDLB_JOBS=<n>) spreads the sweep's independent runs over
n worker threads; results are bit-identical to --jobs 1. Defaults to the
machine's available parallelism.

--stream-summary runs the matrix through the streaming pipeline: cells are
consumed as they finish (peak live runs is O(jobs + reorder window), not
O(cells×seeds)) and an online count/mean/min/max/quantile summary per
metric is printed after the tables, plus the pipeline's throughput,
utilization and high-water marks. Tables stay bit-identical to the
batch path.

--fast-forward on|off|auto controls the steady-state macro-stepper: clean
LB windows are replayed analytically instead of event by event, with
bit-identical results. 'auto' (default) disables it only while tracing,
where coalescing would blur the timeline.

--bg overrides the interference pattern: 'paper' (default: the paper's
2-core background job, sized to outlive the run), 'none' (clean machine),
or twocore:<frac> (same job with its CPU demand scaled to <frac> of the
base run, so it drains mid-run).

apps: jacobi2d wave2d mol3d stencil3d
strategies: nolb greedy greedybg refine cloudrefine commrefine
  hiercloudrefine gatedcloudrefine hysteresiscloudrefine robustcloudrefine
fail specs: kind:index@when[~restore], e.g. core:2@0.5 kills core 2 halfway
  through the estimated run; node:1@0.3~0.8 takes node 1 down over that window
telemetry noise: 'noisy_cloud', 'none', or a comma list of
  jitter:<frac> skew:<frac> drop:<frac> steal:<frac> wrap:<us>, e.g.
  --telemetry-noise jitter:0.1,drop:0.2 (pair with --strategy robustcloudrefine)
net faults: 'flaky_cloud', 'none', or a comma list of
  loss:<frac> dup:<frac> reorder:<frac> jitter:<frac> collapse:<frac>
  slowdown:<x> rack:<from>~<to> part:<a>-<b>@<from>~<to>, e.g.
  --net-fault loss:0.02,rack:0.4~0.5 (times are fractions of the estimated
  run; migrations ride a retry/abort protocol and aborted moves re-plan)
membership: 'spot_storm', 'autoscale', 'none', or a comma list of
  notice:<node>@<at>+<lead> acquire:<at> warmup:<frac> warmup_jitter:<frac>,
  e.g. --membership notice:1@0.4+0.25,acquire:0.3 — node 1 gets a spot
  preemption notice at 40 % of the estimated run and is hard-revoked 25 %
  later; a fresh 4-core node attaches at 30 %. On a notice the runtime
  proactively drains the node's chares before the revocation deadline;
  acquired nodes warm up, then take migrations";

/// Hand-rolled flag parsing (no CLI dependency).
struct Opts {
    app: String,
    cores: usize,
    strategy: String,
    iters: usize,
    seeds: Vec<u64>,
    json: bool,
    fast: bool,
    scenario_file: Option<String>,
    fail: Vec<FailSpec>,
    telemetry: Option<TelemetrySpec>,
    net_fault: Option<NetFaultSpec>,
    membership: Option<MembershipSpec>,
    jobs: Option<usize>,
    fast_forward: Option<FastForward>,
    bg: Option<BgPattern>,
    stream_summary: bool,
}

/// Parse a `--bg` value: `paper` (keep the scenario's own pattern),
/// `none`, or `twocore:<demand_frac>`.
fn parse_bg(spec: &str) -> Result<Option<BgPattern>, String> {
    match spec.to_ascii_lowercase().as_str() {
        "paper" => Ok(None),
        "none" => Ok(Some(BgPattern::None)),
        s => {
            let frac = s
                .strip_prefix("twocore:")
                .ok_or_else(|| format!("expected paper, none or twocore:<frac>, got {spec:?}"))?
                .parse::<f64>()
                .map_err(|e| format!("twocore demand fraction: {e}"))?;
            if !(frac > 0.0 && frac.is_finite()) {
                return Err("twocore demand fraction must be positive".into());
            }
            Ok(Some(BgPattern::TwoCore { demand_frac: frac }))
        }
    }
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut o = Opts {
            app: "jacobi2d".into(),
            cores: 8,
            strategy: "cloudrefine".into(),
            iters: 100,
            seeds: vec![1],
            json: false,
            fast: false,
            scenario_file: None,
            fail: Vec::new(),
            telemetry: None,
            net_fault: None,
            membership: None,
            jobs: None,
            fast_forward: None,
            bg: None,
            stream_summary: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().cloned().ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--app" => o.app = value("--app")?,
                "--cores" => {
                    o.cores = value("--cores")?.parse().map_err(|e| format!("--cores: {e}"))?
                }
                "--strategy" => o.strategy = value("--strategy")?,
                "--iters" => {
                    o.iters = value("--iters")?.parse().map_err(|e| format!("--iters: {e}"))?
                }
                "--seed" => {
                    o.seeds = vec![value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?]
                }
                "--json" => o.json = true,
                "--fast" => o.fast = true,
                "--stream-summary" => o.stream_summary = true,
                "--jobs" => {
                    let jobs: usize =
                        value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                    if jobs == 0 {
                        return Err("--jobs must be >= 1".into());
                    }
                    o.jobs = Some(jobs);
                }
                "--fast-forward" => {
                    o.fast_forward = Some(
                        FastForward::parse(&value("--fast-forward")?)
                            .map_err(|e| format!("--fast-forward: {e}"))?,
                    );
                }
                "--bg" => {
                    o.bg = parse_bg(&value("--bg")?).map_err(|e| format!("--bg: {e}"))?;
                }
                "--scenario" => o.scenario_file = Some(value("--scenario")?),
                "--fail" => {
                    for spec in value("--fail")?.split(',') {
                        o.fail.push(
                            FailSpec::parse(spec).map_err(|e| format!("--fail: {e}"))?,
                        );
                    }
                }
                "--telemetry-noise" => {
                    let spec = TelemetrySpec::parse(&value("--telemetry-noise")?)
                        .map_err(|e| format!("--telemetry-noise: {e}"))?;
                    o.telemetry = spec.is_active().then_some(spec);
                }
                "--net-fault" => {
                    let spec = NetFaultSpec::parse(&value("--net-fault")?)
                        .map_err(|e| format!("--net-fault: {e}"))?;
                    o.net_fault = spec.is_active().then_some(spec);
                }
                "--membership" => {
                    let raw = value("--membership")?;
                    if raw == "none" {
                        o.membership = None;
                    } else {
                        let spec = MembershipSpec::parse(&raw)
                            .map_err(|e| format!("--membership: {e}"))?;
                        o.membership = spec.is_active().then_some(spec);
                    }
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if o.cores == 0 || !o.cores.is_multiple_of(4) {
            return Err("--cores must be a positive multiple of 4 (4-core nodes)".into());
        }
        if o.iters == 0 {
            return Err("--iters must be positive".into());
        }
        Ok(o)
    }

    fn cores_list(&self) -> Vec<usize> {
        if self.fast {
            vec![4, 8]
        } else {
            vec![4, 8, 16, 32]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        Opts::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.app, "jacobi2d");
        assert_eq!(o.cores, 8);
        assert!(!o.json);
        assert_eq!(o.cores_list(), vec![4, 8, 16, 32]);
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "--app", "mol3d", "--cores", "16", "--strategy", "commrefine", "--iters", "50",
            "--seed", "9", "--json", "--fast",
        ])
        .unwrap();
        assert_eq!(o.app, "mol3d");
        assert_eq!(o.cores, 16);
        assert_eq!(o.strategy, "commrefine");
        assert_eq!(o.iters, 50);
        assert_eq!(o.seeds, vec![9]);
        assert!(o.json && o.fast);
        assert_eq!(o.cores_list(), vec![4, 8]);
    }

    #[test]
    fn rejections() {
        assert!(parse(&["--cores", "6"]).is_err());
        assert!(parse(&["--cores"]).is_err());
        assert!(parse(&["--iters", "0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--fail", "core:2"]).is_err());
        assert!(parse(&["--fail", "disk:0@0.5"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs", "four"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
    }

    #[test]
    fn jobs_flag_parses() {
        assert_eq!(parse(&[]).unwrap().jobs, None);
        assert_eq!(parse(&["--jobs", "4"]).unwrap().jobs, Some(4));
    }

    #[test]
    fn stream_summary_flag_parses() {
        assert!(!parse(&[]).unwrap().stream_summary);
        assert!(parse(&["--stream-summary"]).unwrap().stream_summary);
    }

    #[test]
    fn fast_forward_flag_parses() {
        assert_eq!(parse(&[]).unwrap().fast_forward, None);
        assert_eq!(parse(&["--fast-forward", "on"]).unwrap().fast_forward, Some(FastForward::On));
        assert_eq!(
            parse(&["--fast-forward", "off"]).unwrap().fast_forward,
            Some(FastForward::Off)
        );
        assert_eq!(
            parse(&["--fast-forward", "auto"]).unwrap().fast_forward,
            Some(FastForward::Auto)
        );
        assert!(parse(&["--fast-forward", "warp"]).is_err());
        assert!(parse(&["--fast-forward"]).is_err());
    }

    #[test]
    fn bg_flag_parses() {
        assert_eq!(parse(&[]).unwrap().bg, None);
        assert_eq!(parse(&["--bg", "paper"]).unwrap().bg, None);
        assert_eq!(parse(&["--bg", "none"]).unwrap().bg, Some(BgPattern::None));
        assert_eq!(
            parse(&["--bg", "twocore:0.25"]).unwrap().bg,
            Some(BgPattern::TwoCore { demand_frac: 0.25 })
        );
        assert!(parse(&["--bg", "threecore"]).is_err());
        assert!(parse(&["--bg", "twocore:-1"]).is_err());
        assert!(parse(&["--bg"]).is_err());
    }

    #[test]
    fn telemetry_noise_flag_parses_presets_and_custom_specs() {
        let o = parse(&["--telemetry-noise", "noisy_cloud"]).unwrap();
        let spec = o.telemetry.expect("preset is active");
        assert!(spec.is_active());
        assert!(spec.drop > 0.0 && spec.steal > 0.0);

        let o = parse(&["--telemetry-noise", "jitter:0.1,drop:0.2"]).unwrap();
        let spec = o.telemetry.unwrap();
        assert!((spec.jitter - 0.1).abs() < 1e-12);
        assert!((spec.drop - 0.2).abs() < 1e-12);

        // An inactive spec is treated as "no telemetry corruption".
        assert!(parse(&["--telemetry-noise", "none"]).unwrap().telemetry.is_none());
        assert!(parse(&["--telemetry-noise", "bogus:1"]).is_err());
        assert!(parse(&["--telemetry-noise"]).is_err());
    }

    #[test]
    fn net_fault_flag_parses_presets_and_custom_specs() {
        let o = parse(&["--net-fault", "flaky_cloud"]).unwrap();
        let spec = o.net_fault.expect("preset is active");
        assert!(spec.is_active());
        assert!(spec.loss > 0.0 && !spec.partitions.is_empty());

        let o = parse(&["--net-fault", "loss:0.05,rack:0.4~0.5"]).unwrap();
        let spec = o.net_fault.unwrap();
        assert!((spec.loss - 0.05).abs() < 1e-12);
        assert_eq!(spec.partitions.len(), 1);

        // An inactive spec is treated as "no network chaos".
        assert!(parse(&["--net-fault", "none"]).unwrap().net_fault.is_none());
        assert!(parse(&["--net-fault", "bogus:1"]).is_err());
        assert!(parse(&["--net-fault"]).is_err());
    }

    #[test]
    fn membership_flag_parses_presets_and_custom_specs() {
        let o = parse(&["--membership", "spot_storm"]).unwrap();
        let spec = o.membership.expect("preset is active");
        assert!(spec.is_active());
        assert_eq!(spec.notices.len(), 2);
        assert_eq!(spec.acquisitions.len(), 1);

        let o = parse(&["--membership", "notice:1@0.4+0.25,acquire:0.3"]).unwrap();
        let spec = o.membership.unwrap();
        assert_eq!(spec.notices.len(), 1);
        assert_eq!(spec.notices[0].node, 1);
        assert_eq!(spec.acquisitions.len(), 1);

        // An inactive spec is treated as "static membership".
        assert!(parse(&["--membership", "none"]).unwrap().membership.is_none());
        assert!(parse(&["--membership", "warmup:0.05"]).unwrap().membership.is_none());
        assert!(parse(&["--membership", "bogus:1"]).is_err());
        assert!(parse(&["--membership", "notice:1@0.4"]).is_err());
        assert!(parse(&["--membership"]).is_err());
    }

    #[test]
    fn fail_specs_parse_as_a_comma_list() {
        let o = parse(&["--fail", "core:2@0.5,node:1@0.3~0.8"]).unwrap();
        assert_eq!(o.fail.len(), 2);
        assert!(!o.fail[0].node);
        assert_eq!(o.fail[0].index, 2);
        assert!(o.fail[1].node);
        assert_eq!(o.fail[1].restore_frac, Some(0.8));
    }
}
