#![warn(missing_docs)]
//! # cloudlb — Cloud Friendly Load Balancing for HPC Applications
//!
//! A from-scratch Rust reproduction of *Sarood, Gupta, Kalé — "Cloud
//! Friendly Load Balancing for HPC Applications: Preliminary Work"*
//! (ICPP Workshops 2012): a Charm++-style migratable-objects runtime, a
//! deterministic cluster/interference/power simulator, the paper's
//! interference-aware refinement load balancer (its Algorithm 1), the
//! three evaluation applications, and a harness that regenerates every
//! figure in the paper.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name and hosts the runnable examples and integration tests.
//!
//! ```
//! use cloudlb::balance::{CloudRefineLb, LbStats, LbStrategy, TaskId, TaskInfo};
//!
//! // 8 equal tasks on 2 cores, with an interfering job on core 0.
//! let mut db = LbStats::new(2);
//! for i in 0..8 {
//!     db.tasks.push(TaskInfo { id: TaskId(i), pe: (i % 2) as usize, load: 0.25, bytes: 1 << 12 });
//! }
//! db.bg_load = vec![1.0, 0.0];
//!
//! let plan = CloudRefineLb::default().plan(&db);
//! assert!(plan.iter().all(|m| m.from == 0), "sheds only the interfered core");
//! ```

pub use cloudlb_apps as apps;
pub use cloudlb_balance as balance;
pub use cloudlb_core as core_api;
pub use cloudlb_runtime as runtime;
pub use cloudlb_sim as sim;
pub use cloudlb_trace as trace;

/// Convenient re-exports for the common experiment workflow.
pub mod prelude {
    pub use cloudlb_apps::{Jacobi2D, Mol3D, Stencil3D, Wave2D};
    pub use cloudlb_balance::{CloudRefineLb, GreedyLb, LbStrategy, NoLb, RefineLb};
    pub use cloudlb_core::experiment::{
        elasticity_impact, evaluate, failure_impact, network_impact, run_scenario,
        telemetry_impact, try_run_scenario, ElasticityImpact, EvalPoint, FailureImpact,
        NetworkImpact, TelemetryImpact,
    };
    pub use cloudlb_core::figures;
    pub use cloudlb_core::scenario::{BgPattern, FailSpec, Scenario};
    pub use cloudlb_runtime::{
        ElasticStats, IterativeApp, LbConfig, RunConfig, RunResult, RuntimeError, SimExecutor,
        ThreadExecutor, ThreadRunConfig,
    };
    pub use cloudlb_sim::failure::{FailureAction, FailureScript};
    pub use cloudlb_sim::interference::BgScript;
    pub use cloudlb_sim::{
        Dur, MembershipSpec, NetFaultSpec, NetStats, TelemetrySpec, Time,
    };
}
