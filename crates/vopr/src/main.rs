//! `cloudlb-vopr` command-line interface.
//!
//! ```text
//! cloudlb-vopr --seed S            [--out DIR] [--inject-break faults] [--json]
//! cloudlb-vopr --swarm N [--seed-base S] [--jobs J] [--out DIR] [--inject-break faults]
//! cloudlb-vopr --repro FILE        [--inject-break faults] [--json]
//! ```
//!
//! `--seed` fuzzes one seed: generate the scenario, run the oracle
//! battery, and on failure shrink to a minimal repro and write a JSON
//! bundle with the exact replay line. `--swarm` fans a contiguous seed
//! range across the deterministic parallel pool and prints a summary
//! table (bit-identical across reruns and worker counts). `--repro`
//! replays a previously written bundle.

use cloudlb_vopr::oracle::{check, InjectBreak, OracleOpts, Outcome};
use cloudlb_vopr::repro::{cli_line, ReproBundle};
use cloudlb_vopr::swarm::{kind_name, run_swarm_stream};
use cloudlb_vopr::{generate, shrink};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage:
  cloudlb-vopr --seed S            [--out DIR] [--inject-break faults] [--json]
  cloudlb-vopr --swarm N [--seed-base S] [--jobs J] [--out DIR] [--inject-break faults]
  cloudlb-vopr --repro FILE        [--inject-break faults] [--json]";

struct Opts {
    seed: Option<u64>,
    swarm: Option<u64>,
    seed_base: u64,
    jobs: Option<usize>,
    out: PathBuf,
    repro: Option<PathBuf>,
    inject: Option<InjectBreak>,
    json: bool,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut o = Opts {
            seed: None,
            swarm: None,
            seed_base: 1,
            jobs: None,
            out: PathBuf::from("."),
            repro: None,
            inject: None,
            json: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--seed" => o.seed = Some(parse_num(&value()?, flag)?),
                "--swarm" => o.swarm = Some(parse_num(&value()?, flag)?),
                "--seed-base" => o.seed_base = parse_num(&value()?, flag)?,
                "--jobs" => o.jobs = Some(parse_num::<usize>(&value()?, flag)?),
                "--out" => o.out = PathBuf::from(value()?),
                "--repro" => o.repro = Some(PathBuf::from(value()?)),
                "--inject-break" => o.inject = Some(InjectBreak::parse(&value()?)?),
                "--json" => o.json = true,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        let modes =
            o.seed.is_some() as u8 + o.swarm.is_some() as u8 + o.repro.is_some() as u8;
        if modes != 1 {
            return Err("pick exactly one of --seed, --swarm, --repro".to_string());
        }
        if let Some(n) = o.swarm {
            if n == 0 {
                return Err("--swarm needs at least one seed".to_string());
            }
        }
        Ok(o)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: bad number {s:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(jobs) = opts.jobs {
        // The parallel pool resolves its worker count from CLOUDLB_JOBS
        // (see cloudlb_core::parallel::default_jobs).
        std::env::set_var("CLOUDLB_JOBS", jobs.to_string());
    }
    let oracle_opts = OracleOpts { inject: opts.inject };
    if let Some(n) = opts.swarm {
        cmd_swarm(&opts, n, &oracle_opts)
    } else if let Some(seed) = opts.seed {
        cmd_seed(&opts, seed, &oracle_opts)
    } else {
        cmd_repro(&opts, opts.repro.as_ref().expect("mode checked"), &oracle_opts)
    }
}

/// Shrink a failing seed's scenario and write its repro bundle.
fn emit_repro(
    opts: &Opts,
    seed: u64,
    kind: cloudlb_vopr::FailureKind,
    oracle_opts: &OracleOpts,
) -> Result<(ReproBundle, PathBuf), String> {
    let shrunk = shrink(&generate(seed), kind, oracle_opts);
    let path = opts.out.join(cloudlb_vopr::repro::file_name(seed));
    let mut bundle = ReproBundle {
        seed,
        scenario: shrunk.scenario,
        failure: shrunk.failure,
        shrink_steps: shrunk.steps,
        inject: opts.inject,
        cli: cli_line(&path, opts.inject),
    };
    let written = bundle
        .write_to(&opts.out)
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    bundle.cli = cli_line(&written, opts.inject);
    Ok((bundle, written))
}

fn cmd_swarm(opts: &Opts, n: u64, oracle_opts: &OracleOpts) -> ExitCode {
    let jobs = opts.jobs.unwrap_or_else(cloudlb_core::default_jobs);
    // Seeds stream through the pipeline and fold as they finish — only
    // failing rows stay resident. Progress goes to stderr (stdout is
    // diffed across worker counts in CI and must stay bit-identical).
    let (report, stats) = run_swarm_stream(opts.seed_base, n, jobs, oracle_opts, true);
    eprintln!(
        "swarm pipeline: {:.1} seeds/s, utilization {:.2}, live peak {} (bound {})",
        stats.packets_per_sec, stats.utilization, stats.live_peak, stats.window,
    );
    print!("{}", report.summary_table());
    let mut code = ExitCode::SUCCESS;
    for row in report.failures() {
        code = ExitCode::FAILURE;
        match emit_repro(opts, row.seed, row.verdict.as_ref().unwrap_err().kind, oracle_opts)
        {
            Ok((bundle, path)) => {
                println!("  repro: {} → replay: {}", path.display(), bundle.cli);
            }
            Err(e) => eprintln!("  seed {}: {e}", row.seed),
        }
    }
    code
}

fn cmd_seed(opts: &Opts, seed: u64, oracle_opts: &OracleOpts) -> ExitCode {
    let scn = generate(seed);
    match check(&scn, oracle_opts) {
        Ok(outcome) => {
            print_outcome(seed, &scn, &outcome, opts.json);
            ExitCode::SUCCESS
        }
        Err(failure) => {
            println!(
                "seed {seed}: ORACLE FAILURE [{}] {}",
                kind_name(failure.kind),
                failure.detail
            );
            match emit_repro(opts, seed, failure.kind, oracle_opts) {
                Ok((bundle, path)) => {
                    println!(
                        "  shrunk in {} steps to {} fault entr{}; repro: {}",
                        bundle.shrink_steps,
                        bundle.scenario.fail.len(),
                        if bundle.scenario.fail.len() == 1 { "y" } else { "ies" },
                        path.display()
                    );
                    println!("  replay: {}", bundle.cli);
                }
                Err(e) => eprintln!("  {e}"),
            }
            ExitCode::FAILURE
        }
    }
}

fn cmd_repro(opts: &Opts, path: &Path, oracle_opts: &OracleOpts) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let bundle = match ReproBundle::from_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // The CLI hook wins; otherwise replay with the hook the bundle recorded.
    let effective = OracleOpts { inject: oracle_opts.inject.or(bundle.inject) };
    match check(&bundle.scenario, &effective) {
        Err(failure) => {
            let same = failure.kind == bundle.failure.kind;
            println!(
                "seed {}: reproduced [{}] {}{}",
                bundle.seed,
                kind_name(failure.kind),
                failure.detail,
                if same { "" } else { " (kind differs from the bundle!)" }
            );
            ExitCode::FAILURE
        }
        Ok(outcome) => {
            println!(
                "seed {}: bundle no longer fails (recorded [{}])",
                bundle.seed,
                kind_name(bundle.failure.kind)
            );
            print_outcome(bundle.seed, &bundle.scenario, &outcome, opts.json);
            ExitCode::SUCCESS
        }
    }
}

fn print_outcome(seed: u64, scn: &cloudlb_core::Scenario, outcome: &Outcome, json: bool) {
    if json {
        println!(
            "{{\"seed\":{seed},\"outcome\":{}}}",
            serde_json::to_string(outcome).expect("outcomes serialize")
        );
        return;
    }
    match outcome {
        Outcome::Completed { app_time_s, clean_ratio, migrations, failures } => println!(
            "seed {seed}: ok — {} on {} cores, {}, {} iters: {:.3}s ({:.2}x clean), \
             {} migrations, {} failures",
            scn.app, scn.cores, scn.strategy, scn.iterations, app_time_s, clean_ratio,
            migrations, failures
        ),
        Outcome::TypedError(e) => {
            println!("seed {seed}: ok — typed error termination: {e}")
        }
    }
}
