//! Self-contained failure repros.
//!
//! When a swarm seed fails its oracles, the shrinker's minimized scenario
//! is packaged into a JSON bundle carrying everything needed to replay
//! the failure on another machine: the root seed, the minimized scenario
//! itself (not just the seed — shrinking detaches the scenario from the
//! generator), the oracle verdict, and the exact CLI line to run.

use crate::oracle::{InjectBreak, OracleFailure};
use cloudlb_core::Scenario;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Everything needed to replay one oracle failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproBundle {
    /// Root seed the failing scenario was generated from.
    pub seed: u64,
    /// The minimized scenario (replayed as-is; regenerate the original
    /// with `cloudlb-vopr --seed <seed>`).
    pub scenario: Scenario,
    /// The oracle failure the minimized scenario still triggers.
    pub failure: OracleFailure,
    /// Shrink steps accepted on the way here.
    pub shrink_steps: usize,
    /// Active injected-break hook, if any (the replay must carry it).
    #[serde(default)]
    pub inject: Option<InjectBreak>,
    /// The exact replay command.
    pub cli: String,
}

/// Canonical repro file name for a seed.
pub fn file_name(seed: u64) -> String {
    format!("vopr-repro-{seed}.json")
}

/// The CLI line that replays a bundle written to `path`.
pub fn cli_line(path: &Path, inject: Option<InjectBreak>) -> String {
    let mut line = format!("cloudlb-vopr --repro {}", path.display());
    if inject == Some(InjectBreak::Faults) {
        line.push_str(" --inject-break faults");
    }
    line
}

impl ReproBundle {
    /// Serialize to pretty JSON (stable field order — the derive emits
    /// fields in declaration order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("repro bundles always serialize")
    }

    /// Parse a bundle back from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad repro bundle: {e}"))
    }

    /// Write the bundle under `dir` using the canonical file name and
    /// return the path.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(file_name(self.seed));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FailureKind;

    fn bundle() -> ReproBundle {
        let mut scenario = Scenario::failure_drill("jacobi2d", 4, "nolb");
        scenario.iterations = 4;
        ReproBundle {
            seed: 42,
            scenario,
            failure: OracleFailure {
                kind: FailureKind::InjectedBreak,
                detail: "injected break: scenario schedules 1 failure(s)".into(),
            },
            shrink_steps: 3,
            inject: Some(InjectBreak::Faults),
            cli: "cloudlb-vopr --repro vopr-repro-42.json --inject-break faults".into(),
        }
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let b = bundle();
        assert_eq!(ReproBundle::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn bundle_records_the_membership_script() {
        // A minimized elastic repro must replay the same churn: the
        // membership spec rides inside the scenario JSON losslessly.
        let mut b = bundle();
        b.scenario = Scenario::spot_storm("jacobi2d", 8, "cloudrefine");
        let back = ReproBundle::from_json(&b.to_json()).unwrap();
        assert_eq!(back, b);
        assert!(back.scenario.membership.as_ref().is_some_and(|m| m.is_active()));
    }

    #[test]
    fn cli_line_carries_the_inject_hook() {
        let p = Path::new("out/vopr-repro-7.json");
        assert_eq!(cli_line(p, None), "cloudlb-vopr --repro out/vopr-repro-7.json");
        assert_eq!(
            cli_line(p, Some(InjectBreak::Faults)),
            "cloudlb-vopr --repro out/vopr-repro-7.json --inject-break faults"
        );
    }

    #[test]
    fn write_creates_canonical_file() {
        let dir = std::env::temp_dir().join("cloudlb-vopr-test-repro");
        let path = bundle().write_to(&dir).unwrap();
        assert!(path.ends_with("vopr-repro-42.json"));
        let back = ReproBundle::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, bundle());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
