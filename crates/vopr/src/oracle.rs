//! Correctness oracles.
//!
//! A scenario passes when every invariant holds:
//!
//! * **No panics** — the runtime must terminate normally or with a typed
//!   [`RuntimeError`]; any unwind is a bug.
//! * **Determinism** — a second run from the same seed must be
//!   bit-identical ([`RunResult`]'s full `PartialEq`), including the exact
//!   same typed error when the run fails.
//! * **Completion** — a normally-terminating run must have executed every
//!   iteration.
//! * **Chare conservation** — every chare mapped to exactly one in-range
//!   core at the end, and never to a core lost permanently to a failure
//!   (the runtime re-validates committed plans against the live mapping,
//!   so a stranded chare here means a plan referenced a dead PE).
//! * **Fast-forward equivalence** — when the scenario allows
//!   macro-stepping, rerunning with `--fast-forward off` must produce the
//!   same result modulo the two skip counters ([`RunResult::scrub_ff`]).
//! * **Bounded makespan** — the run must finish within a generous factor
//!   of its clean twin (same topology and length, no chaos); the bound
//!   scales with lost capacity and interference weight so it only trips
//!   on genuine runaways (e.g. migration thrash livelock).

use cloudlb_core::{try_run_scenario, Scenario};
use cloudlb_runtime::{FastForward, RunResult, RuntimeError};
use serde::{Deserialize, Serialize};

/// Test hook: deliberately break an invariant so the oracle→shrink→repro
/// pipeline can be exercised end to end (the acceptance drill).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectBreak {
    /// Report a (fake) conservation violation whenever the scenario
    /// schedules any failure — shrinks to a single fault-script entry.
    Faults,
}

impl InjectBreak {
    /// Parse the CLI value (`faults`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "faults" => Ok(InjectBreak::Faults),
            _ => Err(format!("unknown break {s:?} (expected: faults)")),
        }
    }
}

/// Oracle configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OracleOpts {
    /// Deliberate invariant break (test hook).
    pub inject: Option<InjectBreak>,
}

/// What kind of invariant broke (the shrinker preserves this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The runtime unwound instead of returning a typed error.
    Panic,
    /// Two runs from the same seed disagreed.
    Nondeterminism,
    /// A normally-terminating run skipped iterations.
    Incomplete,
    /// A chare was lost, duplicated or mapped out of range.
    Conservation,
    /// A chare ended on a core permanently lost to a failure.
    DeadPe,
    /// Fast-forwarded and event-by-event runs disagreed.
    FastForwardDivergence,
    /// The clean reference twin itself failed to run.
    CleanTwinError,
    /// The run blew past the generous makespan bound vs its clean twin.
    MakespanBlowup,
    /// The [`InjectBreak`] test hook fired.
    InjectedBreak,
}

/// One oracle violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleFailure {
    /// Which invariant broke.
    pub kind: FailureKind,
    /// Human-readable specifics.
    pub detail: String,
}

impl OracleFailure {
    fn new(kind: FailureKind, detail: impl Into<String>) -> Self {
        OracleFailure { kind, detail: detail.into() }
    }
}

/// How a passing scenario terminated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// Ran to completion with every oracle green.
    Completed {
        /// Application wall time, seconds.
        app_time_s: f64,
        /// Makespan relative to the clean twin.
        clean_ratio: f64,
        /// Migrations committed.
        migrations: usize,
        /// Kill events applied.
        failures: usize,
    },
    /// Terminated with a typed error — acceptable (and deterministic).
    TypedError(String),
}

/// A scenario's oracle verdict.
pub type Verdict = Result<Outcome, OracleFailure>;

/// Cores permanently lost to the scenario's failure schedule (restored
/// outages do not count).
pub fn dead_cores(s: &Scenario) -> Vec<usize> {
    let mut dead = Vec::new();
    for spec in &s.fail {
        if spec.restore_frac.is_some() {
            continue;
        }
        if spec.node {
            dead.extend(4 * spec.index..4 * spec.index + 4);
        } else {
            dead.push(spec.index);
        }
    }
    dead.sort_unstable();
    dead.dedup();
    dead
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_caught(s: &Scenario) -> Result<Result<RunResult, RuntimeError>, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| try_run_scenario(s)))
        .map_err(panic_detail)
}

/// Run every oracle against `scn`.
pub fn check(scn: &Scenario, opts: &OracleOpts) -> Verdict {
    if opts.inject == Some(InjectBreak::Faults) && !scn.fail.is_empty() {
        return Err(OracleFailure::new(
            FailureKind::InjectedBreak,
            format!("injected break: scenario schedules {} failure(s)", scn.fail.len()),
        ));
    }

    let first = run_caught(scn)
        .map_err(|p| OracleFailure::new(FailureKind::Panic, format!("first run: {p}")))?;
    let second = run_caught(scn)
        .map_err(|p| OracleFailure::new(FailureKind::Panic, format!("rerun: {p}")))?;
    if first != second {
        return Err(OracleFailure::new(
            FailureKind::Nondeterminism,
            "rerun from the same seed diverged from the first run",
        ));
    }

    let result = match first {
        Err(e) => return Ok(Outcome::TypedError(e.to_string())),
        Ok(r) => r,
    };

    if result.iter_times.len() != scn.iterations {
        return Err(OracleFailure::new(
            FailureKind::Incomplete,
            format!("{} of {} iterations ran", result.iter_times.len(), scn.iterations),
        ));
    }

    let chares = scn.build_app().num_chares();
    let dead = dead_cores(scn);
    // Membership growth widens the legal core range; revoked nodes are NOT
    // in the static dead set because a late notice's revocation can fall
    // past the end of the run, where ending on the node is legitimate.
    if let Err(detail) = result.check_conservation(chares, scn.total_cores(), &dead) {
        let kind = if detail.contains("dead core") {
            FailureKind::DeadPe
        } else {
            FailureKind::Conservation
        };
        return Err(OracleFailure::new(kind, detail));
    }

    // Fast-forward differential: macro-stepping may only change the skip
    // counters, never the physics.
    let result = result.scrub_ff();
    if scn.fast_forward != FastForward::Off {
        let off = Scenario { fast_forward: FastForward::Off, ..scn.clone() };
        let off_result = run_caught(&off)
            .map_err(|p| OracleFailure::new(FailureKind::Panic, format!("ff-off twin: {p}")))?
            .map_err(|e| {
                OracleFailure::new(
                    FailureKind::FastForwardDivergence,
                    format!("ff-off twin errored where the original completed: {e}"),
                )
            })?;
        if off_result.scrub_ff() != result {
            return Err(OracleFailure::new(
                FailureKind::FastForwardDivergence,
                "fast-forwarded run differs from the event-by-event run",
            ));
        }
    }

    // Makespan bound vs the clean twin (no chaos, noLB, same shape).
    let clean = run_caught(&scn.base_of())
        .map_err(|p| OracleFailure::new(FailureKind::CleanTwinError, format!("panic: {p}")))?
        .map_err(|e| OracleFailure::new(FailureKind::CleanTwinError, e.to_string()))?;
    let clean_s = clean.app_time.as_secs_f64();
    let app_time_s = result.app_time.as_secs_f64();
    let clean_ratio = if clean_s > 0.0 { app_time_s / clean_s } else { f64::INFINITY };
    // Capacity scaling: the static lost-core ratio, or the time-integrated
    // capacity fraction when the scenario schedules membership churn or
    // restored outages — whichever is more generous, so the elastic bound
    // never tightens the static one.
    let alive = scn.cores.saturating_sub(dead.len()).max(1) as f64;
    let capacity_scale = (scn.cores as f64 / alive).max(1.0 / scn.capacity_avg_frac());
    let allowed = 25.0 * capacity_scale * (1.0 + scn.bg_weight);
    if clean_ratio > allowed {
        return Err(OracleFailure::new(
            FailureKind::MakespanBlowup,
            format!("{clean_ratio:.1}x the clean twin (bound {allowed:.1}x)"),
        ));
    }

    Ok(Outcome::Completed {
        app_time_s,
        clean_ratio,
        migrations: result.migrations,
        failures: result.failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn dead_core_accounting() {
        let mut s = Scenario::paper("jacobi2d", 8, "cloudrefine");
        s.fail = vec![
            cloudlb_core::FailSpec { node: false, index: 5, at_frac: 0.3, restore_frac: None },
            cloudlb_core::FailSpec {
                node: false,
                index: 2,
                at_frac: 0.2,
                restore_frac: Some(0.5),
            },
            cloudlb_core::FailSpec { node: true, index: 0, at_frac: 0.4, restore_frac: None },
        ];
        assert_eq!(dead_cores(&s), vec![0, 1, 2, 3, 5]);
    }

    #[test]
    fn clean_generated_scenarios_pass() {
        // A few cheap seeds through the full battery.
        for seed in [0, 1, 2] {
            let mut s = generate(seed);
            s.iterations = s.iterations.min(12);
            let verdict = check(&s, &OracleOpts::default());
            assert!(verdict.is_ok(), "seed {seed}: {verdict:?}\n{s:?}");
        }
    }

    #[test]
    fn pinned_seed_25_terminates_with_a_typed_unrecoverable_error() {
        // Swarm-discovered: seed 25 composes two kills that lose a
        // chare's owner and buddy checkpoint copies at once. That must
        // stay a typed, deterministic termination — it panicked before
        // the runtime learned to report double losses as
        // RuntimeError::Unrecoverable.
        match check(&generate(25), &OracleOpts::default()) {
            Ok(Outcome::TypedError(e)) => {
                assert!(e.contains("unrecoverable PE failure"), "{e}")
            }
            other => panic!("expected TypedError, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_is_an_acceptable_typed_termination() {
        let s = Scenario { strategy: "wat".into(), ..Scenario::paper("jacobi2d", 4, "nolb") };
        match check(&s, &OracleOpts::default()) {
            Ok(Outcome::TypedError(e)) => assert!(e.contains("unknown LB strategy"), "{e}"),
            other => panic!("expected TypedError, got {other:?}"),
        }
    }

    #[test]
    fn injected_break_fires_only_with_failures() {
        let opts = OracleOpts { inject: Some(InjectBreak::Faults) };
        let clean = Scenario { fail: vec![], ..Scenario::paper("jacobi2d", 4, "nolb") };
        let mut with_fail = Scenario::failure_drill("jacobi2d", 4, "nolb");
        with_fail.iterations = 10;
        assert!(check(&clean, &opts).is_ok());
        let err = check(&with_fail, &opts).unwrap_err();
        assert_eq!(err.kind, FailureKind::InjectedBreak);
    }
}
