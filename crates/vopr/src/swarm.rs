//! Seed-range fan-out over the deterministic parallel pool.
//!
//! Each seed's generate→oracle pipeline is an independent deterministic
//! computation, so a swarm maps the seed range over
//! [`cloudlb_core::par_map`] — results come back in submission order, so
//! the report (and anything printed from it) is bit-identical for any
//! worker count.

use crate::gen::generate;
use crate::oracle::{check, FailureKind, OracleOpts, Outcome, Verdict};
use cloudlb_core::par_map;

/// One seed's verdict.
#[derive(Debug, Clone)]
pub struct SwarmRow {
    /// The seed.
    pub seed: u64,
    /// What the oracles said.
    pub verdict: Verdict,
}

/// Verdicts for a contiguous seed range, in seed order.
#[derive(Debug, Clone)]
pub struct SwarmReport {
    /// First seed of the range.
    pub seed_base: u64,
    /// Per-seed verdicts, ordered by seed.
    pub rows: Vec<SwarmRow>,
}

impl SwarmReport {
    /// Seeds that completed with every oracle green.
    pub fn completed(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.verdict, Ok(Outcome::Completed { .. })))
            .count()
    }

    /// Seeds that terminated with an acceptable typed error.
    pub fn typed_errors(&self) -> usize {
        self.rows.iter().filter(|r| matches!(r.verdict, Ok(Outcome::TypedError(_)))).count()
    }

    /// Rows whose oracles tripped.
    pub fn failures(&self) -> Vec<&SwarmRow> {
        self.rows.iter().filter(|r| r.verdict.is_err()).collect()
    }

    /// Deterministic human-readable summary table.
    pub fn summary_table(&self) -> String {
        let mut kinds: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for row in &self.rows {
            if let Err(f) = &row.verdict {
                *kinds.entry(kind_name(f.kind)).or_default() += 1;
            }
        }
        let n = self.rows.len();
        let mut out = String::new();
        out.push_str(&format!(
            "seeds {}..{}: {n} run, {} completed, {} typed errors, {} oracle failures\n",
            self.seed_base,
            self.seed_base + n as u64,
            self.completed(),
            self.typed_errors(),
            self.failures().len(),
        ));
        for (kind, count) in kinds {
            out.push_str(&format!("  {kind}: {count}\n"));
        }
        for row in self.failures() {
            if let Err(f) = &row.verdict {
                out.push_str(&format!(
                    "  seed {}: {} — {}\n",
                    row.seed,
                    kind_name(f.kind),
                    f.detail
                ));
            }
        }
        out
    }
}

/// Stable display name for a failure kind.
pub fn kind_name(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::Panic => "panic",
        FailureKind::Nondeterminism => "nondeterminism",
        FailureKind::Incomplete => "incomplete",
        FailureKind::Conservation => "conservation",
        FailureKind::DeadPe => "dead-pe",
        FailureKind::FastForwardDivergence => "ff-divergence",
        FailureKind::CleanTwinError => "clean-twin-error",
        FailureKind::MakespanBlowup => "makespan-blowup",
        FailureKind::InjectedBreak => "injected-break",
    }
}

/// Run the oracle battery over `n` consecutive seeds starting at
/// `seed_base`, fanned over `jobs` workers.
pub fn run_swarm(seed_base: u64, n: u64, jobs: usize, opts: &OracleOpts) -> SwarmReport {
    let seeds: Vec<u64> = (seed_base..seed_base + n).collect();
    let rows = par_map(jobs, seeds, |seed| SwarmRow {
        seed,
        verdict: check(&generate(seed), opts),
    });
    SwarmReport { seed_base, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swarm_is_deterministic_across_worker_counts() {
        let opts = OracleOpts::default();
        let serial = run_swarm(10, 6, 1, &opts);
        let parallel = run_swarm(10, 6, 4, &opts);
        assert_eq!(serial.rows.len(), 6);
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.verdict, b.verdict, "seed {}", a.seed);
        }
        assert_eq!(serial.summary_table(), parallel.summary_table());
    }

    #[test]
    fn summary_counts_add_up() {
        let report = run_swarm(0, 5, 2, &OracleOpts::default());
        assert_eq!(
            report.completed() + report.typed_errors() + report.failures().len(),
            report.rows.len()
        );
        let table = report.summary_table();
        assert!(table.starts_with("seeds 0..5: 5 run"), "{table}");
    }
}
