//! Seed-range fan-out over the streaming sweep pipeline.
//!
//! Each seed's generate→oracle pipeline is an independent deterministic
//! computation, so a swarm streams the seed range through
//! [`cloudlb_core::pipeline_stream`]: seeds are packets, verdicts come
//! back to the reducer in seed order, and the report folds them online —
//! counts, per-kind tallies and the failing rows are all that stay
//! resident, O(failures) instead of O(N) for an N-seed swarm. Because
//! the fold consumes verdicts in submission order, the report (and
//! anything printed from it) is bit-identical for any worker count.

use crate::gen::generate;
use crate::oracle::{check, FailureKind, OracleOpts, Outcome, Verdict};
use cloudlb_core::{pipeline_stream, PipelineConfig, PipelineStats};
use std::collections::BTreeMap;

/// One seed's verdict.
#[derive(Debug, Clone)]
pub struct SwarmRow {
    /// The seed.
    pub seed: u64,
    /// What the oracles said.
    pub verdict: Verdict,
}

/// Streaming fold of a contiguous seed range's verdicts. Only failing
/// rows are retained; green seeds contribute to the counters and are
/// dropped.
#[derive(Debug, Clone)]
pub struct SwarmReport {
    /// First seed of the range.
    pub seed_base: u64,
    /// Seeds run.
    pub total: u64,
    /// Seeds that completed with every oracle green.
    completed: u64,
    /// Seeds that terminated with an acceptable typed error.
    typed_errors: u64,
    /// Oracle failures per kind name, ordered by name.
    kinds: BTreeMap<&'static str, usize>,
    /// The failing rows, in seed order.
    failures: Vec<SwarmRow>,
}

impl SwarmReport {
    fn new(seed_base: u64) -> Self {
        SwarmReport {
            seed_base,
            total: 0,
            completed: 0,
            typed_errors: 0,
            kinds: BTreeMap::new(),
            failures: Vec::new(),
        }
    }

    /// Fold the next seed's verdict (must arrive in seed order).
    fn push(&mut self, row: SwarmRow) {
        self.total += 1;
        match &row.verdict {
            Ok(Outcome::Completed { .. }) => self.completed += 1,
            Ok(Outcome::TypedError(_)) => self.typed_errors += 1,
            Err(f) => {
                *self.kinds.entry(kind_name(f.kind)).or_default() += 1;
                self.failures.push(row);
            }
        }
    }

    /// Seeds that completed with every oracle green.
    pub fn completed(&self) -> usize {
        self.completed as usize
    }

    /// Seeds that terminated with an acceptable typed error.
    pub fn typed_errors(&self) -> usize {
        self.typed_errors as usize
    }

    /// Rows whose oracles tripped, in seed order.
    pub fn failures(&self) -> &[SwarmRow] {
        &self.failures
    }

    /// Deterministic human-readable summary table.
    pub fn summary_table(&self) -> String {
        let n = self.total;
        let mut out = String::new();
        out.push_str(&format!(
            "seeds {}..{}: {n} run, {} completed, {} typed errors, {} oracle failures\n",
            self.seed_base,
            self.seed_base + n,
            self.completed,
            self.typed_errors,
            self.failures.len(),
        ));
        for (kind, count) in &self.kinds {
            out.push_str(&format!("  {kind}: {count}\n"));
        }
        for row in &self.failures {
            if let Err(f) = &row.verdict {
                out.push_str(&format!(
                    "  seed {}: {} — {}\n",
                    row.seed,
                    kind_name(f.kind),
                    f.detail
                ));
            }
        }
        out
    }
}

/// Stable display name for a failure kind.
pub fn kind_name(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::Panic => "panic",
        FailureKind::Nondeterminism => "nondeterminism",
        FailureKind::Incomplete => "incomplete",
        FailureKind::Conservation => "conservation",
        FailureKind::DeadPe => "dead-pe",
        FailureKind::FastForwardDivergence => "ff-divergence",
        FailureKind::CleanTwinError => "clean-twin-error",
        FailureKind::MakespanBlowup => "makespan-blowup",
        FailureKind::InjectedBreak => "injected-break",
    }
}

/// Progress prints to stderr every this many folded seeds (stdout must
/// stay bit-identical across worker counts — CI diffs it).
const PROGRESS_EVERY: u64 = 50;

/// Run the oracle battery over `n` consecutive seeds starting at
/// `seed_base`, streamed over `jobs` work-stealing workers. With
/// `progress`, a status line goes to **stderr** every 50 seeds.
pub fn run_swarm_stream(
    seed_base: u64,
    n: u64,
    jobs: usize,
    opts: &OracleOpts,
    progress: bool,
) -> (SwarmReport, PipelineStats) {
    let cfg = PipelineConfig::new(jobs);
    let mut report = SwarmReport::new(seed_base);
    let stats = pipeline_stream(
        &cfg,
        seed_base..seed_base + n,
        |seed| SwarmRow { seed, verdict: check(&generate(seed), opts) },
        |_, row| {
            report.push(row);
            if progress && report.total.is_multiple_of(PROGRESS_EVERY) && report.total < n {
                eprintln!(
                    "swarm: {}/{n} seeds ({} completed, {} typed errors, {} failures)",
                    report.total,
                    report.completed,
                    report.typed_errors,
                    report.failures.len(),
                );
            }
        },
    );
    (report, stats)
}

/// [`run_swarm_stream`] without progress output, for library callers.
pub fn run_swarm(seed_base: u64, n: u64, jobs: usize, opts: &OracleOpts) -> SwarmReport {
    run_swarm_stream(seed_base, n, jobs, opts, false).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swarm_is_deterministic_across_worker_counts() {
        let opts = OracleOpts::default();
        let serial = run_swarm(10, 6, 1, &opts);
        let parallel = run_swarm(10, 6, 4, &opts);
        assert_eq!(serial.total, 6);
        assert_eq!(parallel.total, 6);
        assert_eq!(serial.completed(), parallel.completed());
        assert_eq!(serial.typed_errors(), parallel.typed_errors());
        assert_eq!(serial.failures().len(), parallel.failures().len());
        for (a, b) in serial.failures().iter().zip(parallel.failures()) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.verdict, b.verdict, "seed {}", a.seed);
        }
        assert_eq!(serial.summary_table(), parallel.summary_table());
    }

    #[test]
    fn summary_counts_add_up() {
        let report = run_swarm(0, 5, 2, &OracleOpts::default());
        assert_eq!(
            report.completed() + report.typed_errors() + report.failures().len(),
            report.total as usize
        );
        let table = report.summary_table();
        assert!(table.starts_with("seeds 0..5: 5 run"), "{table}");
    }

    #[test]
    fn only_failing_rows_stay_resident() {
        // The streaming fold must not buffer green seeds: resident rows
        // equals oracle failures, whatever the swarm size.
        let report = run_swarm(1, 8, 4, &OracleOpts::default());
        assert_eq!(report.failures().len(), report.total as usize - report.completed() - report.typed_errors());
    }
}
