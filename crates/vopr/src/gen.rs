//! Seeded scenario generation.
//!
//! A single root seed expands into a full [`Scenario`] through independent
//! per-layer random streams ([`stream_rng`]): topology, application, LB
//! arm, interference, failures, network chaos and telemetry corruption
//! each draw from their own stream, so enabling or reshaping one layer
//! never shifts another layer's dice. Every generated scenario passes
//! [`Scenario::validate`] by construction (a property test pins this), and
//! the scenario's own `seed` field is the root seed — so the repro line
//! `cloudlb-vopr --seed <root>` regenerates it exactly.

use cloudlb_core::{BgPattern, FailSpec, Scenario};
use cloudlb_runtime::FastForward;
use cloudlb_sim::{
    stream_rng, AcquireSpec, MembershipSpec, NetFaultSpec, NoticeSpec, PartitionScope,
    PartitionWindow, SimRng, StreamLayer, TelemetrySpec,
};

/// LB arms the generator samples, spanning plain strategies and every
/// robustness wrapper in the registry.
pub const ARMS: [&str; 10] = [
    "nolb",
    "greedy",
    "greedybg",
    "refine",
    "cloudrefine",
    "commrefine",
    "hiercloudrefine",
    "gatedcloudrefine",
    "hysteresiscloudrefine",
    "robustcloudrefine",
];

fn pick<'a>(rng: &mut SimRng, xs: &[&'a str]) -> &'a str {
    xs[rng.below(xs.len() as u64) as usize]
}

/// Expand `seed` into a scenario. Deterministic: the same seed always
/// yields the same scenario, field for field.
pub fn generate(seed: u64) -> Scenario {
    // Topology: 1-4 nodes of 4 cores, occasionally heterogeneous.
    let mut topo = stream_rng(seed, StreamLayer::Topology);
    let cores = 4 * topo.range_u64(1, 5) as usize;
    let pe_speeds = if topo.f64() < 0.3 {
        (0..cores).map(|_| topo.range_f64(0.5, 1.5)).collect()
    } else {
        Vec::new()
    };

    // Application, grain and run length.
    let mut app_rng = stream_rng(seed, StreamLayer::App);
    let app = pick(&mut app_rng, &Scenario::KNOWN_APPS).to_string();
    let iterations = app_rng.range_u64(8, 37) as usize;
    let lb_period = app_rng.range_u64(2, 11).min(iterations as u64) as usize;

    // LB arm.
    let mut arm = stream_rng(seed, StreamLayer::Arm);
    let strategy = pick(&mut arm, &ARMS).to_string();
    let fast_forward = match arm.below(10) {
        0 => FastForward::Off,
        1 => FastForward::On,
        _ => FastForward::Auto,
    };

    // Interference.
    let mut bg_rng = stream_rng(seed, StreamLayer::Interference);
    let bg_weight = if bg_rng.f64() < 0.25 {
        Scenario::OS_PREFERENCE
    } else {
        bg_rng.range_f64(0.5, 2.0)
    };
    let bg = match bg_rng.below(4) {
        0 => BgPattern::None,
        1 => BgPattern::TwoCore { demand_frac: bg_rng.range_f64(0.25, 2.0) },
        2 => BgPattern::SingleCore {
            core: bg_rng.below(cores as u64) as usize,
            start_frac: bg_rng.range_f64(0.0, 0.7),
        },
        _ => BgPattern::Phased,
    };

    // Failure schedule: up to two kills, each target used once; node
    // kills only when losing a whole node still leaves the rest of the
    // cluster (and never the whole rack).
    let mut fail_rng = stream_rng(seed, StreamLayer::Failures);
    let nodes = cores / 4;
    let mut fail = Vec::new();
    let kills = match fail_rng.below(10) {
        0..=5 => 0,
        6..=8 => 1,
        _ => 2,
    };
    let mut used_cores = Vec::new();
    let mut used_nodes = Vec::new();
    for _ in 0..kills {
        let node = nodes >= 2 && fail_rng.f64() < 0.3;
        let limit = if node { nodes } else { cores };
        let index = fail_rng.below(limit as u64) as usize;
        let clashes = if node {
            used_nodes.contains(&index) || used_cores.iter().any(|&c: &usize| c / 4 == index)
        } else {
            used_cores.contains(&index) || used_nodes.contains(&(index / 4))
        };
        if clashes {
            continue;
        }
        if node {
            used_nodes.push(index);
        } else {
            used_cores.push(index);
        }
        let at_frac = fail_rng.range_f64(0.1, 0.6);
        let restore_frac =
            (fail_rng.f64() < 0.4).then(|| at_frac + fail_rng.range_f64(0.05, 0.3));
        fail.push(FailSpec { node, index, at_frac, restore_frac });
    }

    // Network chaos.
    let mut net_rng = stream_rng(seed, StreamLayer::NetScript);
    let net_fault = if net_rng.f64() < 0.5 {
        let mut spec = NetFaultSpec {
            loss: net_rng.range_f64(0.0, 0.02),
            dup: net_rng.range_f64(0.0, 0.01),
            reorder: net_rng.range_f64(0.0, 0.08),
            jitter: net_rng.range_f64(0.0, 0.4),
            collapse: net_rng.range_f64(0.0, 0.03),
            slowdown: (net_rng.f64() < 0.3).then(|| net_rng.range_f64(2.0, 8.0)),
            partitions: Vec::new(),
        };
        if net_rng.f64() < 0.4 {
            let from_frac = net_rng.range_f64(0.2, 0.7);
            let to_frac = from_frac + net_rng.range_f64(0.02, 0.15);
            let scope = if nodes >= 2 && net_rng.f64() < 0.5 {
                let a = net_rng.below(nodes as u64) as usize;
                let b = (a + 1 + net_rng.below(nodes as u64 - 1) as usize) % nodes;
                PartitionScope::NodePair { a: a.min(b), b: a.max(b) }
            } else {
                PartitionScope::Rack
            };
            spec.partitions.push(PartitionWindow { scope, from_frac, to_frac });
        }
        spec.is_active().then_some(spec)
    } else {
        None
    };

    // Elastic membership: at most one spot notice (never a node already in
    // the failure schedule — a doomed node dying twice is a different bug
    // class) and up to two acquisitions. Needs ≥ 2 nodes so a revocation
    // leaves survivors.
    let mut mem_rng = stream_rng(seed, StreamLayer::MembershipScript);
    let membership = if nodes >= 2 && mem_rng.f64() < 0.4 {
        let mut spec = MembershipSpec::none();
        if mem_rng.f64() < 0.7 {
            let node = mem_rng.below(nodes as u64) as usize;
            let clashes = used_nodes.contains(&node)
                || used_cores.iter().any(|&c: &usize| c / 4 == node);
            if !clashes {
                spec.notices.push(NoticeSpec {
                    node,
                    at_frac: mem_rng.range_f64(0.2, 0.6),
                    lead_frac: mem_rng.range_f64(0.15, 0.35),
                });
            }
        }
        for _ in 0..mem_rng.below(3) {
            spec.acquisitions.push(AcquireSpec { at_frac: mem_rng.range_f64(0.1, 0.7) });
        }
        if mem_rng.f64() < 0.3 {
            spec.warmup_jitter_frac = mem_rng.range_f64(0.0, 0.05);
        }
        spec.is_active().then_some(spec)
    } else {
        None
    };

    // Telemetry corruption.
    let mut tel_rng = stream_rng(seed, StreamLayer::TelemetryScript);
    let telemetry = if tel_rng.f64() < 0.5 {
        let spec = TelemetrySpec {
            jitter: tel_rng.range_f64(0.0, 0.3),
            skew: tel_rng.range_f64(0.0, 0.05),
            drop: tel_rng.range_f64(0.0, 0.3),
            wrap_us: (tel_rng.f64() < 0.1).then(|| tel_rng.range_u64(1 << 28, 1 << 32)),
            steal: tel_rng.range_f64(0.0, 0.5),
        };
        spec.is_active().then_some(spec)
    } else {
        None
    };

    Scenario {
        app,
        cores,
        iterations,
        strategy,
        lb_period,
        bg,
        bg_weight,
        seed,
        trace: false,
        fail,
        telemetry,
        net_fault,
        membership,
        fast_forward,
        pe_speeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..100 {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn every_generated_scenario_validates() {
        for seed in 0..500 {
            let s = generate(seed);
            s.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}\n{s:?}"));
            assert_eq!(s.seed, seed, "the scenario carries its root seed");
        }
    }

    #[test]
    fn generator_covers_every_layer() {
        let scns: Vec<Scenario> = (0..300).map(generate).collect();
        let apps: std::collections::HashSet<_> = scns.iter().map(|s| s.app.clone()).collect();
        let arms: std::collections::HashSet<_> =
            scns.iter().map(|s| s.strategy.clone()).collect();
        assert_eq!(apps.len(), Scenario::KNOWN_APPS.len(), "all apps reached");
        assert_eq!(arms.len(), ARMS.len(), "all LB arms reached");
        assert!(scns.iter().any(|s| !s.fail.is_empty()), "failures reached");
        assert!(scns.iter().any(|s| s.fail.iter().any(|f| f.node)), "node kills reached");
        assert!(scns.iter().any(|s| s.telemetry.is_some()), "telemetry chaos reached");
        assert!(scns.iter().any(|s| s.net_fault.is_some()), "network chaos reached");
        assert!(
            scns.iter()
                .any(|s| s.net_fault.as_ref().is_some_and(|n| !n.partitions.is_empty())),
            "partitions reached"
        );
        assert!(scns.iter().any(|s| !s.pe_speeds.is_empty()), "heterogeneity reached");
        assert!(scns.iter().any(|s| s.bg != BgPattern::None), "interference reached");
        assert!(scns.iter().any(|s| s.fast_forward == FastForward::Off), "ff off reached");
        assert!(scns.iter().any(|s| s.membership.is_some()), "membership churn reached");
        assert!(
            scns.iter()
                .any(|s| s.membership.as_ref().is_some_and(|m| !m.notices.is_empty())),
            "spot notices reached"
        );
        assert!(
            scns.iter()
                .any(|s| s.membership.as_ref().is_some_and(|m| !m.acquisitions.is_empty())),
            "acquisitions reached"
        );
    }

    #[test]
    fn layers_draw_from_independent_streams() {
        // Perturbing one layer's stream must not reshape the others: two
        // roots that agree on a layer's stream seed generate the same
        // draws for that layer. Here we just pin the cheap global
        // property — same root, rerun, field-for-field equal — plus the
        // documented derivation.
        use cloudlb_sim::stream_seed;
        assert_eq!(stream_seed(3, StreamLayer::Topology), 3 ^ StreamLayer::Topology.tag());
        let a = generate(0xC0FFEE);
        let b = generate(0xC0FFEE);
        assert_eq!(a, b);
    }
}
