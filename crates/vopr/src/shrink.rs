//! Scenario minimization.
//!
//! Greedy fixpoint shrinking: propose one-step-smaller candidates (drop a
//! fault entry, strip a chaos layer, simplify the LB arm, halve the run,
//! halve the cluster), re-run the oracle battery after each step, and
//! accept a candidate only when it still fails with the **same**
//! [`FailureKind`] — accepting a different kind (or a pass) would be the
//! classic shrink-to-pass bug where minimization walks away from the
//! defect it is meant to isolate. Repeat until no candidate is accepted
//! or the evaluation budget runs out.

use crate::oracle::{check, FailureKind, OracleFailure, OracleOpts};
use cloudlb_core::Scenario;

/// Outcome of shrinking one failing scenario.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized scenario (still failing).
    pub scenario: Scenario,
    /// Its oracle failure — same [`FailureKind`] as the original.
    pub failure: OracleFailure,
    /// Shrink steps accepted.
    pub steps: usize,
    /// Oracle evaluations spent.
    pub evals: usize,
}

/// Upper bound on oracle evaluations per shrink (each evaluation is up to
/// four simulated runs).
const EVAL_BUDGET: usize = 500;

/// One-step-smaller candidates. Fault-script entries go first (the repro
/// should isolate the smallest fault schedule), then run-shortening (so
/// every later evaluation simulates less), then layer stripping and arm
/// simplification.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    // Drop fault-script entries one at a time.
    for i in 0..s.fail.len() {
        let mut c = s.clone();
        c.fail.remove(i);
        out.push(c);
    }
    // Shorten the run.
    if s.iterations > 2 {
        let iterations = (s.iterations / 2).max(2);
        let lb_period = s.lb_period.min(iterations);
        out.push(Scenario { iterations, lb_period, ..s.clone() });
    }
    if s.lb_period > 1 {
        out.push(Scenario { lb_period: (s.lb_period / 2).max(1), ..s.clone() });
    }
    // Halve the cluster (candidates referencing out-of-range cores are
    // rejected by validate() below).
    if s.cores >= 8 && (s.cores / 2).is_multiple_of(4) {
        let cores = s.cores / 2;
        let mut c = Scenario { cores, ..s.clone() };
        c.pe_speeds.truncate(cores);
        out.push(c);
    }
    // Drop membership entries one at a time, then the whole layer —
    // strictly downward, so the fixpoint loop terminates.
    if let Some(m) = &s.membership {
        for i in 0..m.notices.len() {
            let mut c = s.clone();
            c.membership.as_mut().unwrap().notices.remove(i);
            if !c.membership.as_ref().unwrap().is_active() {
                c.membership = None;
            }
            out.push(c);
        }
        for i in 0..m.acquisitions.len() {
            let mut c = s.clone();
            c.membership.as_mut().unwrap().acquisitions.remove(i);
            if !c.membership.as_ref().unwrap().is_active() {
                c.membership = None;
            }
            out.push(c);
        }
        out.push(Scenario { membership: None, ..s.clone() });
    }
    // Strip whole chaos layers.
    if s.telemetry.is_some() {
        out.push(Scenario { telemetry: None, ..s.clone() });
    }
    if let Some(net) = &s.net_fault {
        if !net.partitions.is_empty() {
            let mut c = s.clone();
            c.net_fault.as_mut().unwrap().partitions.clear();
            out.push(c);
        }
        out.push(Scenario { net_fault: None, ..s.clone() });
    }
    if s.bg != cloudlb_core::BgPattern::None {
        out.push(Scenario { bg: cloudlb_core::BgPattern::None, ..s.clone() });
    }
    if !s.pe_speeds.is_empty() {
        out.push(Scenario { pe_speeds: Vec::new(), ..s.clone() });
    }
    // Simplify the LB arm — strictly downward in complexity, or the
    // fixpoint loop would swap two "still failing" arms forever.
    let rank = |name: &str| match name {
        "nolb" => 0,
        "cloudrefine" => 1,
        // Hierarchy is one layer over CloudRefine; the wrappers stack more.
        "hiercloudrefine" => 2,
        _ => 3,
    };
    for simpler in ["cloudrefine", "nolb"] {
        if rank(simpler) < rank(&s.strategy) {
            out.push(Scenario { strategy: simpler.to_string(), ..s.clone() });
        }
    }
    out
}

/// Minimize `scn`, which must fail the oracle with `kind`. Returns the
/// smallest scenario found that still fails with the same kind.
pub fn shrink(scn: &Scenario, kind: FailureKind, opts: &OracleOpts) -> ShrinkResult {
    let mut best = scn.clone();
    let mut failure = match check(&best, opts) {
        Err(f) => f,
        Ok(_) => panic!("shrink() called on a passing scenario"),
    };
    assert_eq!(failure.kind, kind, "shrink() seeded with the wrong failure kind");
    let mut steps = 0;
    let mut evals = 1;

    'outer: loop {
        for cand in candidates(&best) {
            if evals >= EVAL_BUDGET {
                break 'outer;
            }
            if cand.validate().is_err() {
                continue;
            }
            evals += 1;
            if let Err(f) = check(&cand, opts) {
                if f.kind == kind {
                    best = cand;
                    failure = f;
                    steps += 1;
                    continue 'outer;
                }
            }
        }
        break;
    }

    ShrinkResult { scenario: best, failure, steps, evals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::oracle::InjectBreak;

    /// Find a generated seed whose scenario schedules failures (the
    /// injected-break hook trips on those).
    pub(crate) fn seed_with_failures() -> u64 {
        (0..500)
            .find(|&s| !generate(s).fail.is_empty())
            .expect("some seed in 0..500 generates failures")
    }

    #[test]
    fn injected_break_shrinks_to_one_fault_entry() {
        let opts = OracleOpts { inject: Some(InjectBreak::Faults) };
        let seed = seed_with_failures();
        let scn = generate(seed);
        let kind = check(&scn, &opts).unwrap_err().kind;
        assert_eq!(kind, FailureKind::InjectedBreak);
        let shrunk = shrink(&scn, kind, &opts);
        // Minimal repro: exactly one fault entry, no other chaos, the
        // trivial arm, a short run.
        assert_eq!(shrunk.failure.kind, FailureKind::InjectedBreak, "no shrink-to-pass");
        assert_eq!(shrunk.scenario.fail.len(), 1, "{:?}", shrunk.scenario);
        assert!(shrunk.scenario.telemetry.is_none());
        assert!(shrunk.scenario.net_fault.is_none());
        assert_eq!(shrunk.scenario.strategy, "nolb");
        assert!(shrunk.scenario.iterations <= 4);
        assert!(shrunk.scenario.validate().is_ok(), "shrunk output must stay runnable");
        // And the emitted scenario genuinely still fails.
        assert_eq!(check(&shrunk.scenario, &opts).unwrap_err().kind, kind);
    }

    #[test]
    fn membership_candidates_shrink_strictly_downward() {
        let s = Scenario::spot_storm("jacobi2d", 8, "cloudrefine");
        let cands = candidates(&s);
        // One candidate per notice drop, per acquisition drop, plus the
        // whole-layer strip.
        assert!(cands
            .iter()
            .any(|c| c.membership.as_ref().is_some_and(|m| m.notices.len() == 1)));
        assert!(cands
            .iter()
            .any(|c| c.membership.as_ref().is_some_and(|m| m.acquisitions.is_empty())));
        assert!(cands.iter().any(|c| c.membership.is_none()));
        // Dropping the last active entry collapses the layer to None
        // rather than leaving an inert spec behind.
        let only_notice = Scenario {
            membership: Some(cloudlb_sim::MembershipSpec {
                notices: vec![cloudlb_sim::NoticeSpec { node: 1, at_frac: 0.3, lead_frac: 0.2 }],
                ..cloudlb_sim::MembershipSpec::default()
            }),
            ..Scenario::paper("jacobi2d", 8, "cloudrefine")
        };
        assert!(!candidates(&only_notice)
            .iter()
            .any(|c| c.membership.as_ref().is_some_and(|m| !m.is_active())));
    }

    #[test]
    #[should_panic(expected = "passing scenario")]
    fn shrink_rejects_passing_input() {
        let mut s = Scenario::paper("jacobi2d", 4, "nolb");
        s.iterations = 8;
        shrink(&s, FailureKind::Panic, &OracleOpts::default());
    }
}
