#![warn(missing_docs)]
//! `cloudlb-vopr`: a VOPR-style seeded scenario fuzzer for the `cloudlb`
//! simulator (the name nods to TigerBeetle's Viewstamped Operation
//! Replicator, the best-known harness of this shape).
//!
//! One `u64` seed deterministically composes a random cluster topology,
//! application, LB arm and a script for every chaos layer in the repo —
//! interference, PE/node failures, telemetry corruption and network
//! faults — via the unified [`cloudlb_sim::stream_seed`] derivation
//! ([`gen`]). The composed scenario then runs under a battery of
//! correctness oracles ([`oracle`]): chare conservation, no chare left on
//! a dead core, bit-identical rerun, fast-forward equivalence, bounded
//! makespan against a clean twin, and typed-error (never panic)
//! termination. On failure, a shrinker ([`shrink`]) minimizes the
//! scenario while preserving the failure kind and emits a self-contained
//! JSON repro with the exact CLI line that replays it ([`repro`]).
//! [`swarm`] fans seed ranges across the deterministic parallel pool.

pub mod gen;
pub mod oracle;
pub mod repro;
pub mod shrink;
pub mod swarm;

pub use gen::generate;
pub use oracle::{check, FailureKind, InjectBreak, OracleFailure, OracleOpts, Outcome, Verdict};
pub use repro::ReproBundle;
pub use shrink::{shrink, ShrinkResult};
pub use swarm::{run_swarm, run_swarm_stream, SwarmReport};
