//! End-to-end tests of the `cloudlb-vopr` binary: deterministic swarm
//! output, the injected-break → shrink → repro → replay pipeline, and
//! usage errors.

use cloudlb_vopr::generate;
use cloudlb_vopr::repro::ReproBundle;
use std::path::PathBuf;
use std::process::{Command, Output};

fn vopr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cloudlb-vopr"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

/// A seed whose generated scenario schedules failures — the
/// `--inject-break faults` hook trips on those.
fn seed_with_failures() -> u64 {
    (0..500)
        .find(|&s| !generate(s).fail.is_empty())
        .expect("some seed in 0..500 generates failures")
}

#[test]
fn swarm_stdout_is_bit_identical_across_runs_and_worker_counts() {
    let a = vopr(&["--swarm", "12", "--seed-base", "1", "--jobs", "2"]);
    let b = vopr(&["--swarm", "12", "--seed-base", "1", "--jobs", "2"]);
    let serial = vopr(&["--swarm", "12", "--seed-base", "1", "--jobs", "1"]);
    assert!(a.status.success(), "{}", stdout(&a));
    assert_eq!(stdout(&a), stdout(&b), "same invocation must print the same bytes");
    assert_eq!(stdout(&a), stdout(&serial), "worker count must not change the report");
    assert!(stdout(&a).starts_with("seeds 1..13: 12 run"), "{}", stdout(&a));
    assert!(stdout(&a).contains("0 oracle failures"), "{}", stdout(&a));
}

#[test]
fn injected_break_shrinks_to_tiny_repro_and_replays() {
    let seed = seed_with_failures().to_string();
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("vopr-inject");
    let _ = std::fs::remove_dir_all(&dir);
    let out_dir = dir.to_str().unwrap();

    let run = vopr(&["--seed", &seed, "--inject-break", "faults", "--out", out_dir]);
    assert_eq!(run.status.code(), Some(1), "injected break must fail the run");
    let text = stdout(&run);
    assert!(text.contains("ORACLE FAILURE [injected-break]"), "{text}");
    assert!(text.contains("replay: cloudlb-vopr --repro "), "{text}");

    // The bundle is self-contained and minimized to a <=5-line fault
    // script (this hook shrinks all the way to one entry).
    let path = dir.join(format!("vopr-repro-{seed}.json"));
    let bundle =
        ReproBundle::from_json(&std::fs::read_to_string(&path).expect("repro written"))
            .expect("bundle parses");
    assert_eq!(bundle.scenario.fail.len(), 1, "{:?}", bundle.scenario);
    assert!(bundle.scenario.validate().is_ok());
    assert!(bundle.cli.ends_with("--inject-break faults"), "{}", bundle.cli);

    // The emitted CLI line reproduces the failure exactly.
    let replay = vopr(&["--repro", path.to_str().unwrap(), "--inject-break", "faults"]);
    assert_eq!(replay.status.code(), Some(1), "{}", stdout(&replay));
    assert!(stdout(&replay).contains("reproduced [injected-break]"), "{}", stdout(&replay));

    // Without the hook the minimized scenario is healthy — the bundle's
    // recorded hook is honored even when the flag is omitted.
    let implicit = vopr(&["--repro", path.to_str().unwrap()]);
    assert_eq!(implicit.status.code(), Some(1), "{}", stdout(&implicit));
}

#[test]
fn single_seed_mode_reports_ok() {
    let run = vopr(&["--seed", "2"]);
    assert!(run.status.success(), "{}", stdout(&run));
    assert!(stdout(&run).starts_with("seed 2: ok"), "{}", stdout(&run));
    let twice = vopr(&["--seed", "2"]);
    assert_eq!(stdout(&run), stdout(&twice));
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(vopr(&[]).status.code(), Some(2));
    assert_eq!(vopr(&["--swarm", "5", "--seed", "1"]).status.code(), Some(2));
    assert_eq!(vopr(&["--bogus"]).status.code(), Some(2));
    assert_eq!(vopr(&["--swarm", "0"]).status.code(), Some(2));
}
