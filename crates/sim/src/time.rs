//! Virtual time types.
//!
//! The simulator counts microseconds in `u64`. Two newtypes keep instants
//! and spans from being mixed up: [`Time`] is an absolute instant since the
//! start of the simulation, [`Dur`] is a span. Microsecond resolution is
//! fine for the paper's workloads (task grains are hundreds of microseconds
//! to milliseconds; runs last seconds to minutes).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant in virtual time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

/// A span of virtual time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Dur(u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);
    /// Largest representable instant; used as an "never" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us)
    }

    /// Instant as microseconds.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Span from `earlier` to `self`; saturates at zero if `earlier` is later.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Dur(us)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * 1_000)
    }

    /// Construct from fractional seconds, rounding to the nearest µs.
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Dur((s.max(0.0) * 1e6).round() as u64)
    }

    /// Span in microseconds.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` for the empty span.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        debug_assert!(self >= rhs, "time went backwards: {self:?} - {rhs:?}");
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<f64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: f64) -> Dur {
        debug_assert!(rhs >= 0.0, "negative duration scale {rhs}");
        Dur((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Time::from_us(1_500_000).as_secs_f64(), 1.5);
        assert_eq!(Dur::from_secs_f64(0.25).as_us(), 250_000);
        assert_eq!(Dur::from_ms(3).as_us(), 3_000);
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_us(100) + Dur::from_us(50);
        assert_eq!(t.as_us(), 150);
        assert_eq!((t - Time::from_us(100)).as_us(), 50);
        assert_eq!((Dur::from_us(30) + Dur::from_us(12)).as_us(), 42);
        assert_eq!((Dur::from_us(30) - Dur::from_us(12)).as_us(), 18);
        assert_eq!((Dur::from_us(100) * 0.5).as_us(), 50);
        assert_eq!((Dur::from_us(100) / 4).as_us(), 25);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Time::from_us(5).since(Time::from_us(9)), Dur::ZERO);
        assert_eq!(Time::from_us(9).since(Time::from_us(5)).as_us(), 4);
    }

    #[test]
    fn ordering() {
        assert!(Time::from_us(1) < Time::from_us(2));
        assert!(Time::MAX > Time::from_us(u64::MAX - 1));
        assert!(Dur::from_us(7) > Dur::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Time::from_us(1_500_000)), "1.500s");
        assert_eq!(format!("{}", Dur::from_us(2_000)), "0.002s");
    }
}
