//! Deterministic discrete-event queue.
//!
//! A thin priority queue over `(time, sequence)` pairs. Ties at the same
//! virtual instant pop in insertion (FIFO) order, which makes whole-cluster
//! simulations bit-for-bit reproducible regardless of hash-map iteration or
//! allocation order elsewhere.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: payload `E` scheduled at an instant.
#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

/// Deterministic event queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Time, u64)>>,
    // Payloads are kept out of the heap so `E` needs no ordering traits.
    slots: std::collections::HashMap<u64, Entry<E>>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: std::collections::HashMap::new(),
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// Current virtual time — the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `payload` at instant `at`. Scheduling in the past (before
    /// `now`) is a logic error and panics in debug builds; in release it
    /// clamps to `now` to keep time monotonic.
    pub fn schedule(&mut self, at: Time, payload: E) -> u64 {
        debug_assert!(at >= self.now, "scheduling into the past: {at:?} < {:?}", self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.slots.insert(seq, Entry { at, seq, payload });
        seq
    }

    /// Cancel a previously scheduled event by the handle `schedule` returned.
    /// Returns the payload if it had not fired yet.
    pub fn cancel(&mut self, handle: u64) -> Option<E> {
        self.slots.remove(&handle).map(|e| e.payload)
    }

    /// Pop the earliest pending event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if let Some(entry) = self.slots.remove(&seq) {
                debug_assert_eq!(entry.at, at);
                debug_assert_eq!(entry.seq, seq);
                self.now = at;
                return Some((at, entry.payload));
            }
            // Cancelled: skip the stale heap node.
        }
        None
    }

    /// Timestamp of the earliest pending event without popping it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(Reverse((at, seq))) = self.heap.peek().copied() {
            if self.slots.contains_key(&seq) {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(30), "c");
        q.schedule(Time::from_us(10), "a");
        q.schedule(Time::from_us(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_us(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(100), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_us(100));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h = q.schedule(Time::from_us(10), "x");
        q.schedule(Time::from_us(20), "y");
        assert_eq!(q.cancel(h), Some("x"));
        assert_eq!(q.cancel(h), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "y");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(Time::from_us(10), 1);
        q.schedule(Time::from_us(25), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(Time::from_us(25)));
    }

    #[test]
    fn schedule_relative_pattern() {
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO + Dur::from_ms(1), 1u32);
        let (t, _) = q.pop().unwrap();
        q.schedule(t + Dur::from_ms(1), 2u32);
        let (t2, v) = q.pop().unwrap();
        assert_eq!(v, 2);
        assert_eq!(t2, Time::from_us(2_000));
    }

    #[test]
    fn len_and_is_empty_track_cancellations() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        let h = q.schedule(Time::from_us(1), ());
        assert_eq!(q.len(), 1);
        q.cancel(h);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
