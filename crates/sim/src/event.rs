//! Deterministic discrete-event queue.
//!
//! A thin priority queue over `(time, sequence)` pairs. Ties at the same
//! virtual instant pop in insertion (FIFO) order, which makes whole-cluster
//! simulations bit-for-bit reproducible regardless of hash-map iteration or
//! allocation order elsewhere.
//!
//! # Storage
//!
//! This is the hottest structure in the repo: every simulated message,
//! wake-up, interference action and LB step passes through it. Payloads
//! live in a slab (`Vec`-indexed slots recycled through a free-list), so
//! the schedule/pop cycle costs two array writes and a heap push/pop — no
//! hashing, no per-event allocation once the slab has warmed up. Each heap
//! node carries its slot index; cancellation empties the slot and leaves
//! the heap node behind to be skipped lazily on pop. When stale nodes
//! outnumber live events the heap is compacted in one O(n) pass, so
//! cancel-heavy workloads (e.g. the per-core wake-reschedule pattern) keep
//! the heap proportional to the live event count.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, as returned by [`EventQueue::schedule`].
///
/// Handles are invalidated by [`EventQueue::cancel`] and by the event
/// firing; a stale handle (including one whose slot has been recycled for
/// a newer event) cancels nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    seq: u64,
}

/// One slab slot. `seq` identifies the current (or last) occupant so stale
/// heap nodes and stale handles can be recognized; `payload` is `None`
/// while the slot sits on the free-list.
#[derive(Debug)]
struct Slot<E> {
    seq: u64,
    at: Time,
    payload: Option<E>,
}

/// Deterministic event queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Min-heap over `(time, seq, slot)`. `seq` is globally unique, so the
    /// slot index never participates in an ordering decision.
    heap: BinaryHeap<Reverse<(Time, u64, u32)>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    now: Time,
    /// Live (scheduled, not yet popped or cancelled) events.
    live: usize,
    /// Lifetime counters for perf baselines.
    scheduled: u64,
    popped: u64,
    peak_live: usize,
    /// High-water mark of live events since the last [`EventQueue::mark_window`].
    window_peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: Time::ZERO,
            live: 0,
            scheduled: 0,
            popped: 0,
            peak_live: 0,
            window_peak: 0,
        }
    }

    /// Current virtual time — the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `payload` at instant `at`. Scheduling in the past (before
    /// `now`) is a logic error and panics in debug builds; in release it
    /// clamps to `now` to keep time monotonic.
    pub fn schedule(&mut self, at: Time, payload: E) -> EventHandle {
        debug_assert!(at >= self.now, "scheduling into the past: {at:?} < {:?}", self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Slot { seq, at, payload: Some(payload) };
                slot
            }
            None => {
                self.slots.push(Slot { seq, at, payload: Some(payload) });
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(Reverse((at, seq, slot)));
        self.live += 1;
        self.scheduled += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.window_peak = self.window_peak.max(self.live);
        EventHandle { slot, seq }
    }

    /// Cancel a previously scheduled event by the handle `schedule`
    /// returned. Returns the payload if it had not fired yet. The stale
    /// heap node is skipped lazily on pop, or swept by compaction once
    /// stale nodes outnumber live events.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<E> {
        let slot = self.slots.get_mut(handle.slot as usize)?;
        if slot.seq != handle.seq {
            return None; // the slot has been recycled for a newer event
        }
        let payload = slot.payload.take()?;
        self.free.push(handle.slot);
        self.live -= 1;
        self.maybe_compact();
        Some(payload)
    }

    /// Pop the earliest pending event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(Reverse((at, seq, slot))) = self.heap.pop() {
            let entry = &mut self.slots[slot as usize];
            if entry.seq != seq {
                continue; // cancelled and recycled: stale heap node
            }
            let Some(payload) = entry.payload.take() else {
                continue; // cancelled, slot not yet recycled
            };
            debug_assert_eq!(entry.at, at);
            self.free.push(slot);
            self.live -= 1;
            self.popped += 1;
            self.now = at;
            return Some((at, payload));
        }
        None
    }

    /// Timestamp of the earliest pending event without popping it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(&Reverse((at, seq, slot))) = self.heap.peek() {
            let entry = &self.slots[slot as usize];
            if entry.seq == seq && entry.payload.is_some() {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events popped (fired) over the queue's lifetime.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// High-water mark of live pending events.
    pub fn peak_depth(&self) -> usize {
        self.peak_live
    }

    /// Start a fresh windowed high-water mark at the current live count.
    /// [`EventQueue::window_peak`] then reports the max live count reached
    /// since this call. Used by the fast-forward engine to measure how much
    /// a steady-state window raises queue depth above its starting level.
    pub fn mark_window(&mut self) {
        self.window_peak = self.live;
    }

    /// Max live count since the last [`EventQueue::mark_window`] (or since
    /// construction, if never marked).
    pub fn window_peak(&self) -> usize {
        self.window_peak
    }

    /// Raise the lifetime high-water mark to at least `candidate` without
    /// scheduling anything. The fast-forward engine uses this to account
    /// for the queue depth the skipped events *would* have reached, so
    /// `peak_depth` stays bit-identical to a run that popped them all.
    pub fn raise_peak(&mut self, candidate: usize) {
        self.peak_live = self.peak_live.max(candidate);
    }

    /// Iterate over every live (scheduled, not yet popped or cancelled)
    /// event as `(handle, time, seq, payload)`, in slab order — *not* pop
    /// order; sort by `seq` for FIFO-consistent views. The handle can be
    /// passed to [`EventQueue::cancel`].
    pub fn iter_live(&self) -> impl Iterator<Item = (EventHandle, Time, u64, &E)> + '_ {
        self.slots.iter().enumerate().filter_map(|(slot, s)| {
            s.payload
                .as_ref()
                .map(|p| (EventHandle { slot: slot as u32, seq: s.seq }, s.at, s.seq, p))
        })
    }

    /// Heap nodes currently allocated, live *and* stale. Exposed so the
    /// compaction regression test can assert cancel churn stays bounded.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Rebuild the heap without stale nodes once they outnumber the live
    /// events. Amortized O(1) per cancel: a rebuild costs O(n) and at
    /// least n/2 cancels must happen before the next one.
    fn maybe_compact(&mut self) {
        if self.heap.len() > 16 && self.heap.len() - self.live > self.live {
            let slots = &self.slots;
            self.heap.retain(|&Reverse((_, seq, slot))| {
                let s = &slots[slot as usize];
                s.seq == seq && s.payload.is_some()
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(30), "c");
        q.schedule(Time::from_us(10), "a");
        q.schedule(Time::from_us(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_us(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn fifo_ties_survive_slot_recycling() {
        // Slot indices get scrambled by cancels, but ties must still pop
        // in schedule order (the heap orders on seq, not slot).
        let mut q = EventQueue::new();
        let t = Time::from_us(5);
        let warm: Vec<_> = (0..8).map(|i| q.schedule(t, i)).collect();
        for h in warm {
            q.cancel(h);
        }
        for i in 100..110 {
            q.schedule(t, i);
        }
        for i in 100..110 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(100), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_us(100));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h = q.schedule(Time::from_us(10), "x");
        q.schedule(Time::from_us(20), "y");
        assert_eq!(q.cancel(h), Some("x"));
        assert_eq!(q.cancel(h), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "y");
    }

    #[test]
    fn stale_handle_to_recycled_slot_cancels_nothing() {
        let mut q = EventQueue::new();
        let h = q.schedule(Time::from_us(10), "old");
        assert_eq!(q.cancel(h), Some("old"));
        // The freed slot is recycled for a new event; the old handle must
        // not be able to cancel the new occupant.
        let h2 = q.schedule(Time::from_us(20), "new");
        assert_eq!(h.slot, h2.slot, "slot should be recycled");
        assert_eq!(q.cancel(h), None);
        assert_eq!(q.pop().unwrap().1, "new");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(Time::from_us(10), 1);
        q.schedule(Time::from_us(25), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(Time::from_us(25)));
    }

    #[test]
    fn schedule_relative_pattern() {
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO + Dur::from_ms(1), 1u32);
        let (t, _) = q.pop().unwrap();
        q.schedule(t + Dur::from_ms(1), 2u32);
        let (t2, v) = q.pop().unwrap();
        assert_eq!(v, 2);
        assert_eq!(t2, Time::from_us(2_000));
    }

    #[test]
    fn len_and_is_empty_track_cancellations() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        let h = q.schedule(Time::from_us(1), ());
        assert_eq!(q.len(), 1);
        q.cancel(h);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..6).map(|i| q.schedule(Time::from_us(i), i)).collect();
        assert_eq!(q.total_scheduled(), 6);
        assert_eq!(q.peak_depth(), 6);
        q.cancel(handles[0]);
        while q.pop().is_some() {}
        assert_eq!(q.total_popped(), 5);
        assert_eq!(q.peak_depth(), 6, "peak is a high-water mark");
    }

    #[test]
    fn heavy_cancel_churn_keeps_the_heap_compact() {
        // The wake-reschedule pattern: every event that fires causes the
        // cancellation of another pending one. Without compaction the heap
        // (and its stale nodes) grows linearly with the total number of
        // schedules; with it, the heap stays proportional to live events.
        let mut q = EventQueue::new();
        let live = 64usize;
        let mut handles: Vec<EventHandle> = (0..live as u64)
            .map(|i| q.schedule(Time::from_us(10 + i), i))
            .collect();
        for round in 0..10_000u64 {
            let at = Time::from_us(1_000_000 + round);
            let victim = (round as usize * 7) % handles.len();
            q.cancel(handles[victim]);
            handles[victim] = q.schedule(at, round);
        }
        assert_eq!(q.len(), live);
        assert!(
            q.heap_len() <= 2 * live + 1,
            "heap grew to {} nodes for {} live events",
            q.heap_len(),
            live
        );
        // The slab recycles slots rather than growing with churn.
        assert!(q.slots.len() <= 2 * live + 1, "slab grew to {}", q.slots.len());
        // And the queue still drains correctly, in time order.
        let mut last = Time::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, live);
    }

    #[test]
    fn window_peak_tracks_since_mark() {
        let mut q = EventQueue::new();
        let hs: Vec<_> = (0..4).map(|i| q.schedule(Time::from_us(10 + i), i)).collect();
        assert_eq!(q.window_peak(), 4);
        q.cancel(hs[0]);
        q.cancel(hs[1]);
        q.mark_window(); // live = 2
        assert_eq!(q.window_peak(), 2);
        q.schedule(Time::from_us(50), 9);
        assert_eq!(q.window_peak(), 3);
        q.pop();
        assert_eq!(q.window_peak(), 3, "window peak is a high-water mark");
        // The lifetime peak is unaffected by marking.
        assert_eq!(q.peak_depth(), 4);
        q.raise_peak(17);
        assert_eq!(q.peak_depth(), 17);
        q.raise_peak(3);
        assert_eq!(q.peak_depth(), 17, "raise_peak never lowers the mark");
    }

    #[test]
    fn iter_live_sees_exactly_the_pending_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_us(10), "a");
        let b = q.schedule(Time::from_us(5), "b");
        q.schedule(Time::from_us(20), "c");
        q.cancel(b);
        q.pop(); // pops "a"
        let mut live: Vec<_> = q.iter_live().map(|(_, t, seq, &p)| (t, seq, p)).collect();
        live.sort_by_key(|&(_, seq, _)| seq);
        assert_eq!(live, vec![(Time::from_us(20), 2, "c")]);
        // Returned handles are cancellable.
        let (h, _, _, _) = q.iter_live().next().unwrap();
        assert_eq!(q.cancel(h), Some("c"));
        assert!(q.is_empty());
        assert_eq!(q.cancel(a), None, "popped events yield stale handles");
    }

    #[test]
    fn cancel_all_then_reschedule_drains_clean() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..100u64).map(|i| q.schedule(Time::from_us(i), i)).collect();
        for h in handles {
            assert!(q.cancel(h).is_some());
        }
        assert!(q.is_empty());
        q.schedule(Time::from_us(500), 999);
        assert_eq!(q.pop().unwrap().1, 999);
        assert!(q.pop().is_none());
    }
}
