//! Telemetry corruption: what `/proc/stat` looks like on a *real* cloud node.
//!
//! The paper's Eq. 2 (`O_p = T_lb − Σ t_i − t_idle`) assumes the idle
//! counters and the wall clock are exact. On a virtualized node they are
//! not: counters jitter with sampling granularity, the guest clock skews
//! against the hypervisor's accounting, reads get dropped or arrive late,
//! counters wrap, and hypervisor steal time is misattributed. This module
//! models those corruptions as a deterministic, seeded channel between the
//! simulator's ground-truth counters ([`crate::procstat::ProcStat`]) and
//! what the runtime's LB database gets to see — scriptable the same way
//! [`crate::interference`] scripts background load.
//!
//! The channel never mutates ground truth; it produces a corrupted *view*,
//! so the same run can be replayed with and without dirty telemetry.

use crate::procstat::ProcStat;
use crate::rng::{stream_seed, SimRng, StreamLayer};
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Declarative description of how telemetry is corrupted. All knobs
/// default to zero/off (the clean channel).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TelemetrySpec {
    /// Multiplicative counter jitter: each per-read counter increment is
    /// scaled by `1 + U(−jitter, jitter)` independently per counter.
    #[serde(default)]
    pub jitter: f64,
    /// Clock skew: the wall clock used for `T_lb` drifts against the
    /// per-core counters at a constant rate sampled once from
    /// `U(−skew, skew)` per channel.
    #[serde(default)]
    pub skew: f64,
    /// Dropped/late snapshots: with this probability a core's counters
    /// read stale (unchanged since the previous read); the next good read
    /// catches up all at once.
    #[serde(default)]
    pub drop: f64,
    /// Counter wraparound: emitted counters wrap modulo this many
    /// microseconds (`None` = 64-bit counters that never wrap in practice).
    #[serde(default)]
    pub wrap_us: Option<u64>,
    /// Steal-time misattribution: this fraction of background (stolen)
    /// time is misreported as *idle* — the guest kernel cannot see what
    /// the hypervisor ran, so Eq. 2 silently under-estimates `O_p`.
    #[serde(default)]
    pub steal: f64,
}

impl TelemetrySpec {
    /// The clean channel (no corruption).
    pub fn none() -> Self {
        TelemetrySpec::default()
    }

    /// The default dirty-cloud corruption script used by the robustness
    /// experiments and CI noise sweep: moderate jitter, a slow clock
    /// drift, occasional stale reads and sizable steal misattribution.
    pub fn noisy_cloud() -> Self {
        TelemetrySpec {
            jitter: 0.08,
            skew: 0.01,
            drop: 0.12,
            wrap_us: None,
            steal: 0.25,
        }
    }

    /// `true` when any corruption is configured.
    pub fn is_active(&self) -> bool {
        self.jitter > 0.0
            || self.skew > 0.0
            || self.drop > 0.0
            || self.wrap_us.is_some()
            || self.steal > 0.0
    }

    /// Parse the CLI syntax: either a preset name (`noisy_cloud`, `none`)
    /// or a comma list of `key:value` pairs with keys `jitter`, `skew`,
    /// `drop`, `wrap` (µs) and `steal`, e.g.
    /// `jitter:0.05,drop:0.1,steal:0.3`.
    pub fn parse(s: &str) -> Result<TelemetrySpec, String> {
        match s {
            "noisy_cloud" => return Ok(Self::noisy_cloud()),
            "none" | "" => return Ok(Self::none()),
            _ => {}
        }
        let mut spec = TelemetrySpec::none();
        for part in s.split(',') {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("bad telemetry spec {part:?}: missing ':'"))?;
            let frac = |what: &str| -> Result<f64, String> {
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("bad telemetry spec {part:?}: value {value:?}"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("bad telemetry spec {part:?}: {what} must be in [0, 1]"));
                }
                Ok(v)
            };
            match key {
                "jitter" => spec.jitter = frac("jitter")?,
                "skew" => spec.skew = frac("skew")?,
                "drop" => spec.drop = frac("drop")?,
                "steal" => spec.steal = frac("steal")?,
                "wrap" => {
                    let us: u64 = value
                        .parse()
                        .map_err(|_| format!("bad telemetry spec {part:?}: value {value:?}"))?;
                    if us == 0 {
                        return Err(format!("bad telemetry spec {part:?}: wrap must be > 0"));
                    }
                    spec.wrap_us = Some(us);
                }
                other => {
                    return Err(format!("bad telemetry spec {part:?}: unknown key {other:?}"))
                }
            }
        }
        Ok(spec)
    }
}

/// The stateful corruption channel: feed it ground-truth snapshots in time
/// order, get back what a runtime on a noisy cloud node would observe.
/// Fully deterministic from `(spec, seed)`.
#[derive(Debug, Clone)]
pub struct TelemetryChannel {
    spec: TelemetrySpec,
    rng: SimRng,
    /// Constant clock-drift rate for this channel, sampled once.
    drift: f64,
    /// Ground truth at the previous read.
    last_true: Option<ProcStat>,
    /// Emitted (pre-wraparound) counters at the previous read; kept
    /// monotone so corrupted counters still look like counters.
    last_emitted: Option<ProcStat>,
    /// Last emitted clock reading (observed clocks never run backwards).
    last_clock: Time,
    /// Stale (dropped/late) core reads emitted so far — ground truth for
    /// tests; the runtime has to *infer* these from counter coverage.
    pub stale_reads: usize,
}

impl TelemetryChannel {
    /// Open a channel with the given corruption spec and seed.
    pub fn new(spec: TelemetrySpec, seed: u64) -> Self {
        let mut rng = SimRng::new(stream_seed(seed, StreamLayer::Telemetry));
        let drift = if spec.skew > 0.0 { rng.range_f64(-spec.skew, spec.skew) } else { 0.0 };
        TelemetryChannel {
            spec,
            rng,
            drift,
            last_true: None,
            last_emitted: None,
            last_clock: Time::ZERO,
            stale_reads: 0,
        }
    }

    /// Observe the cluster counters at instant `now`. Returns the
    /// corrupted snapshot and the (possibly skewed) clock reading the
    /// runtime would pair with it.
    pub fn observe(&mut self, truth: &ProcStat, now: Time) -> (ProcStat, Time) {
        let clock = self.skewed_clock(now);
        let n = truth.cores.len();
        let mut emitted = match &self.last_emitted {
            Some(prev) => {
                assert_eq!(prev.cores.len(), n, "core count changed under the channel");
                prev.clone()
            }
            None => truth.clone(),
        };
        if let Some(last_true) = self.last_true.clone() {
            for core in 0..n {
                let stale = self.spec.drop > 0.0 && self.rng.f64() < self.spec.drop;
                if stale {
                    // Dropped/late read: counters do not advance this time.
                    self.stale_reads += 1;
                    continue;
                }
                let t_new = &truth.cores[core];
                let t_old = &last_true.cores[core];
                let mut d_fg = t_new.fg_us.saturating_sub(t_old.fg_us);
                let mut d_bg = t_new.bg_us.saturating_sub(t_old.bg_us);
                let mut d_idle = t_new.idle_us.saturating_sub(t_old.idle_us);
                // Steal misattribution: part of the background (stolen)
                // time shows up as idle in the guest's counters.
                if self.spec.steal > 0.0 {
                    let moved = (d_bg as f64 * self.spec.steal) as u64;
                    d_bg -= moved;
                    d_idle += moved;
                }
                // Multiplicative jitter on each counter increment.
                if self.spec.jitter > 0.0 {
                    d_fg = self.jittered(d_fg);
                    d_bg = self.jittered(d_bg);
                    d_idle = self.jittered(d_idle);
                }
                let e = &mut emitted.cores[core];
                e.fg_us += d_fg;
                e.bg_us += d_bg;
                e.idle_us += d_idle;
            }
        }
        self.last_true = Some(truth.clone());
        self.last_emitted = Some(emitted.clone());
        // Wraparound applies to the emitted view only; the internal
        // monotone counters keep accumulating.
        if let Some(m) = self.spec.wrap_us {
            for c in &mut emitted.cores {
                c.fg_us %= m;
                c.bg_us %= m;
                c.idle_us %= m;
            }
        }
        (emitted, clock)
    }

    /// Scale a counter increment by `1 + U(−jitter, jitter)`.
    fn jittered(&mut self, delta: u64) -> u64 {
        let f = 1.0 + self.rng.range_f64(-self.spec.jitter, self.spec.jitter);
        (delta as f64 * f).round().max(0.0) as u64
    }

    /// The guest clock: drifts at a constant rate, never runs backwards.
    fn skewed_clock(&mut self, now: Time) -> Time {
        let skewed =
            Time::from_us((now.as_us() as f64 * (1.0 + self.drift)).round().max(0.0) as u64);
        self.last_clock = self.last_clock.max(skewed);
        self.last_clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_sched::CoreStat;

    fn stat(per_core: &[(u64, u64, u64)]) -> ProcStat {
        ProcStat {
            cores: per_core
                .iter()
                .map(|&(fg, bg, idle)| CoreStat { fg_us: fg, bg_us: bg, idle_us: idle })
                .collect(),
        }
    }

    #[test]
    fn clean_channel_is_transparent() {
        let mut ch = TelemetryChannel::new(TelemetrySpec::none(), 1);
        let a = stat(&[(0, 0, 0), (0, 0, 0)]);
        let b = stat(&[(1_000, 500, 8_500), (2_000, 0, 8_000)]);
        let (ea, ta) = ch.observe(&a, Time::ZERO);
        let (eb, tb) = ch.observe(&b, Time::from_us(10_000));
        assert_eq!(ea, a);
        assert_eq!(eb, b);
        assert_eq!(ta, Time::ZERO);
        assert_eq!(tb, Time::from_us(10_000));
        assert_eq!(ch.stale_reads, 0);
    }

    #[test]
    fn channel_is_deterministic() {
        let run = || {
            let mut ch = TelemetryChannel::new(TelemetrySpec::noisy_cloud(), 42);
            let mut out = Vec::new();
            for k in 1..=5u64 {
                let s = stat(&[(k * 1_000, k * 400, k * 8_600), (k * 2_000, 0, k * 8_000)]);
                out.push(ch.observe(&s, Time::from_us(k * 10_000)));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn emitted_counters_stay_monotone_without_wrap() {
        let mut ch = TelemetryChannel::new(TelemetrySpec::noisy_cloud(), 7);
        let mut prev: Option<ProcStat> = None;
        for k in 0..50u64 {
            let s = stat(&[(k * 900, k * 300, k * 8_800)]);
            let (e, _) = ch.observe(&s, Time::from_us(k * 10_000));
            if let Some(p) = &prev {
                assert!(e.cores[0].idle_us >= p.cores[0].idle_us, "idle went backwards");
                assert!(e.cores[0].fg_us >= p.cores[0].fg_us, "fg went backwards");
            }
            prev = Some(e);
        }
    }

    #[test]
    fn drop_produces_stale_reads() {
        let spec = TelemetrySpec { drop: 1.0, ..TelemetrySpec::none() };
        let mut ch = TelemetryChannel::new(spec, 3);
        let a = stat(&[(0, 0, 0)]);
        let b = stat(&[(5_000, 0, 5_000)]);
        let (ea, _) = ch.observe(&a, Time::ZERO);
        let (eb, _) = ch.observe(&b, Time::from_us(10_000));
        // Every post-baseline read is stale: counters froze at the baseline.
        assert_eq!(eb, ea);
        assert_eq!(ch.stale_reads, 1);
    }

    #[test]
    fn steal_moves_bg_into_idle() {
        let spec = TelemetrySpec { steal: 0.5, ..TelemetrySpec::none() };
        let mut ch = TelemetryChannel::new(spec, 3);
        ch.observe(&stat(&[(0, 0, 0)]), Time::ZERO);
        let (e, _) = ch.observe(&stat(&[(1_000, 4_000, 5_000)]), Time::from_us(10_000));
        assert_eq!(e.cores[0].bg_us, 2_000, "half the bg time stolen from view");
        assert_eq!(e.cores[0].idle_us, 7_000, "...and misattributed to idle");
        assert_eq!(e.cores[0].fg_us, 1_000);
    }

    #[test]
    fn wraparound_wraps_emitted_counters() {
        let spec = TelemetrySpec { wrap_us: Some(4_000), ..TelemetrySpec::none() };
        let mut ch = TelemetryChannel::new(spec, 1);
        ch.observe(&stat(&[(0, 0, 0)]), Time::ZERO);
        let (e, _) = ch.observe(&stat(&[(1_000, 0, 9_000)]), Time::from_us(10_000));
        assert_eq!(e.cores[0].idle_us, 1_000, "9000 mod 4000");
        // Internal state keeps accumulating past the wrap.
        let (e2, _) = ch.observe(&stat(&[(1_000, 0, 13_000)]), Time::from_us(14_000));
        assert_eq!(e2.cores[0].idle_us, 1_000, "13000 mod 4000");
    }

    #[test]
    fn clock_skew_drifts_but_never_reverses() {
        let spec = TelemetrySpec { skew: 0.05, ..TelemetrySpec::none() };
        let mut ch = TelemetryChannel::new(spec, 9);
        let s = stat(&[(0, 0, 0)]);
        let mut prev = Time::ZERO;
        let mut drifted = false;
        for k in 1..=20u64 {
            let now = Time::from_us(k * 1_000_000);
            let (_, clock) = ch.observe(&s, now);
            assert!(clock >= prev, "observed clock ran backwards");
            if clock != now {
                drifted = true;
            }
            prev = clock;
        }
        assert!(drifted, "a 5% skew amplitude should visibly drift over 20 s");
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(TelemetrySpec::parse("noisy_cloud").unwrap(), TelemetrySpec::noisy_cloud());
        assert_eq!(TelemetrySpec::parse("none").unwrap(), TelemetrySpec::none());
        let s = TelemetrySpec::parse("jitter:0.05,drop:0.1,wrap:2000000,steal:0.3").unwrap();
        assert_eq!(s.jitter, 0.05);
        assert_eq!(s.drop, 0.1);
        assert_eq!(s.wrap_us, Some(2_000_000));
        assert_eq!(s.steal, 0.3);
        assert!(s.is_active());
        assert!(!TelemetrySpec::none().is_active());
        assert!(TelemetrySpec::parse("bogus:1").is_err());
        assert!(TelemetrySpec::parse("jitter").is_err());
        assert!(TelemetrySpec::parse("jitter:2.0").is_err(), "fractions capped at 1");
        assert!(TelemetrySpec::parse("wrap:0").is_err());
        assert!(TelemetrySpec::parse("drop:x").is_err());
    }

    #[test]
    fn jitter_perturbs_but_preserves_scale() {
        let spec = TelemetrySpec { jitter: 0.1, ..TelemetrySpec::none() };
        let mut ch = TelemetryChannel::new(spec, 11);
        ch.observe(&stat(&[(0, 0, 0)]), Time::ZERO);
        let (e, _) = ch.observe(&stat(&[(0, 0, 1_000_000)]), Time::from_us(1_000_000));
        let idle = e.cores[0].idle_us;
        assert!(idle != 1_000_000, "jitter should perturb the counter");
        assert!((900_000..=1_100_000).contains(&idle), "±10% bound violated: {idle}");
    }
}
