//! PE/node failure scripts.
//!
//! Mirrors [`crate::interference::BgScript`]: a deterministic, timed list
//! of failure actions the executor applies at virtual instants. A *kill*
//! fails a core (or a whole node — all of its cores at once), aborting
//! whatever ran there; a *restore* brings the hardware back empty, modeling
//! a replacement VM that re-joins the job and receives work again at the
//! next load-balancing step.
//!
//! The scripts only say *what fails when*; the recovery protocol
//! (checkpoints, rollback, re-balancing over the survivors) lives in the
//! runtime crate's executors.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// A timed failure action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureAction {
    /// Fail one core.
    KillCore {
        /// Global core index.
        core: usize,
    },
    /// Fail a whole node (every core on it).
    KillNode {
        /// Node index.
        node: usize,
    },
    /// Bring a failed core back, empty.
    RestoreCore {
        /// Global core index.
        core: usize,
    },
    /// Bring a failed node back, empty.
    RestoreNode {
        /// Node index.
        node: usize,
    },
}

/// A deterministic schedule of failures, sorted by time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureScript {
    /// `(when, what)` pairs in nondecreasing time order.
    pub actions: Vec<(Time, FailureAction)>,
}

impl FailureScript {
    /// Empty script (failure-free runs).
    pub fn none() -> Self {
        FailureScript::default()
    }

    /// Kill `core` at `at`, permanently.
    pub fn kill_core(core: usize, at: Time) -> Self {
        FailureScript { actions: vec![(at, FailureAction::KillCore { core })] }
    }

    /// Kill `node` at `at`, permanently.
    pub fn kill_node(node: usize, at: Time) -> Self {
        FailureScript { actions: vec![(at, FailureAction::KillNode { node })] }
    }

    /// `core` is dead during `[from, to)` and then comes back empty.
    pub fn core_outage(core: usize, from: Time, to: Time) -> Self {
        assert!(to > from, "outage must have positive length");
        FailureScript {
            actions: vec![
                (from, FailureAction::KillCore { core }),
                (to, FailureAction::RestoreCore { core }),
            ],
        }
    }

    /// `node` is dead during `[from, to)` and then comes back empty.
    pub fn node_outage(node: usize, from: Time, to: Time) -> Self {
        assert!(to > from, "outage must have positive length");
        FailureScript {
            actions: vec![
                (from, FailureAction::KillNode { node }),
                (to, FailureAction::RestoreNode { node }),
            ],
        }
    }

    /// Combine two scripts, keeping time order (stable for equal times).
    pub fn merge(mut self, other: FailureScript) -> Self {
        self.actions.extend(other.actions);
        self.actions.sort_by_key(|(t, _)| *t);
        self
    }

    /// First scripted failure strictly after `after`, if any.
    ///
    /// Fast-forward disturbance-horizon query; see
    /// [`crate::interference::BgScript::next_disturbance_at`].
    pub fn next_disturbance_at(&self, after: Time) -> Option<Time> {
        self.actions.iter().map(|(t, _)| *t).find(|&t| t > after)
    }

    /// `true` if the script contains at least one kill action (such runs
    /// need checkpointing to be recoverable).
    pub fn has_kills(&self) -> bool {
        self.actions
            .iter()
            .any(|(_, a)| matches!(a, FailureAction::KillCore { .. } | FailureAction::KillNode { .. }))
    }

    /// Largest core index referenced, for config validation. Node actions
    /// count as their node's last core under `cores_per_node`.
    pub fn max_core(&self, cores_per_node: usize) -> Option<usize> {
        self.actions
            .iter()
            .map(|(_, a)| match a {
                FailureAction::KillCore { core } | FailureAction::RestoreCore { core } => *core,
                FailureAction::KillNode { node } | FailureAction::RestoreNode { node } => {
                    (node + 1) * cores_per_node - 1
                }
            })
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_scripts_are_single_actions() {
        let s = FailureScript::kill_core(2, Time::from_us(500));
        assert_eq!(s.actions, vec![(Time::from_us(500), FailureAction::KillCore { core: 2 })]);
        assert!(s.has_kills());
        assert!(!FailureScript::none().has_kills());
    }

    #[test]
    fn outage_orders_kill_before_restore() {
        let s = FailureScript::core_outage(1, Time::from_us(10), Time::from_us(90));
        assert!(matches!(s.actions[0].1, FailureAction::KillCore { core: 1 }));
        assert!(matches!(s.actions[1].1, FailureAction::RestoreCore { core: 1 }));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn degenerate_outage_rejected() {
        FailureScript::core_outage(0, Time::from_us(5), Time::from_us(5));
    }

    #[test]
    fn merge_sorts_by_time() {
        let a = FailureScript::kill_core(0, Time::from_us(300));
        let b = FailureScript::kill_node(1, Time::from_us(100));
        let m = a.merge(b);
        let times: Vec<u64> = m.actions.iter().map(|(t, _)| t.as_us()).collect();
        assert_eq!(times, vec![100, 300]);
    }

    #[test]
    fn next_disturbance_is_strictly_after() {
        let s = FailureScript::core_outage(1, Time::from_us(50), Time::from_us(90));
        assert_eq!(s.next_disturbance_at(Time::ZERO), Some(Time::from_us(50)));
        assert_eq!(s.next_disturbance_at(Time::from_us(50)), Some(Time::from_us(90)));
        assert_eq!(s.next_disturbance_at(Time::from_us(90)), None);
        assert_eq!(FailureScript::none().next_disturbance_at(Time::ZERO), None);
    }

    #[test]
    fn max_core_expands_node_actions() {
        let s = FailureScript::kill_core(5, Time::ZERO)
            .merge(FailureScript::kill_node(2, Time::from_us(1)));
        // Node 2 with 4 cores per node spans cores 8..12.
        assert_eq!(s.max_core(4), Some(11));
        assert_eq!(FailureScript::none().max_core(4), None);
        // Restore actions also count for validation.
        let r = FailureScript::core_outage(9, Time::ZERO, Time::from_us(1));
        assert_eq!(r.max_core(4), Some(9));
    }
}
