//! `/proc/stat` emulation.
//!
//! The paper extracts per-core idle time from `/proc/stat` to compute the
//! background load `O_p = T_lb − Σ t_i − t_idle` (Eq. 2). This module
//! provides the same interface shape: cumulative per-core jiffy counters
//! that a consumer samples twice and differences. A text renderer produces
//! the familiar `cpuN user nice system idle ...` lines for debugging.

use crate::cluster::Cluster;
use crate::core_sched::CoreStat;
use crate::time::Dur;
use serde::{Deserialize, Serialize};

/// A point-in-time snapshot of every core's cumulative counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcStat {
    /// Cumulative counters per core, in microseconds.
    pub cores: Vec<CoreStat>,
}

impl ProcStat {
    /// Snapshot the cluster's counters (valid up to its last advance).
    pub fn snapshot(cluster: &Cluster) -> Self {
        ProcStat { cores: cluster.stats() }
    }

    /// Idle time of `core` accumulated between `earlier` and `self`.
    ///
    /// This is exactly the `t_idle` term of the paper's Eq. 2, measured the
    /// way the paper measures it: by differencing two `/proc/stat` reads.
    pub fn idle_since(&self, earlier: &ProcStat, core: usize) -> Dur {
        Dur::from_us(self.cores[core].idle_us.saturating_sub(earlier.cores[core].idle_us))
    }

    /// Busy (non-idle) time of `core` between the snapshots.
    pub fn busy_since(&self, earlier: &ProcStat, core: usize) -> Dur {
        Dur::from_us(self.cores[core].busy_us().saturating_sub(earlier.cores[core].busy_us()))
    }

    /// Background time of `core` between the snapshots. The real `/proc/stat`
    /// cannot attribute this (which is why the paper must infer `O_p`); it is
    /// exposed here as simulator ground truth for validating Eq. 2.
    pub fn ground_truth_bg_since(&self, earlier: &ProcStat, core: usize) -> Dur {
        Dur::from_us(self.cores[core].bg_us.saturating_sub(earlier.cores[core].bg_us))
    }

    /// Per-core counter deltas accumulated between `earlier` and `self`,
    /// componentwise. This is the bulk form the fast-forward engine stores
    /// in a window template: the counters a steady-state window adds are
    /// translation-invariant, so the same deltas can be credited to a later
    /// window via [`crate::cluster::Cluster::bulk_advance`].
    pub fn delta_since(&self, earlier: &ProcStat) -> Vec<CoreStat> {
        assert_eq!(self.cores.len(), earlier.cores.len(), "snapshot shape changed");
        self.cores
            .iter()
            .zip(&earlier.cores)
            .map(|(now, then)| CoreStat {
                fg_us: now.fg_us.saturating_sub(then.fg_us),
                bg_us: now.bg_us.saturating_sub(then.bg_us),
                idle_us: now.idle_us.saturating_sub(then.idle_us),
            })
            .collect()
    }

    /// Observe these counters through a telemetry-corruption channel (see
    /// [`crate::telemetry`]): returns what a runtime on a noisy cloud node
    /// would read instead of the ground truth, plus the (possibly skewed)
    /// clock reading paired with it.
    pub fn observe_through(
        &self,
        channel: &mut crate::telemetry::TelemetryChannel,
        now: crate::time::Time,
    ) -> (ProcStat, crate::time::Time) {
        channel.observe(self, now)
    }

    /// Render in `/proc/stat` text format (jiffies at 100 Hz, like Linux).
    pub fn render(&self) -> String {
        const US_PER_JIFFY: u64 = 10_000;
        let mut out = String::new();
        let (mut tu, mut ti) = (0u64, 0u64);
        for c in &self.cores {
            tu += (c.fg_us + c.bg_us) / US_PER_JIFFY;
            ti += c.idle_us / US_PER_JIFFY;
        }
        out.push_str(&format!("cpu  {tu} 0 0 {ti} 0 0 0 0 0 0\n"));
        for (i, c) in self.cores.iter().enumerate() {
            let user = (c.fg_us + c.bg_us) / US_PER_JIFFY;
            let idle = c.idle_us / US_PER_JIFFY;
            out.push_str(&format!("cpu{i} {user} 0 0 {idle} 0 0 0 0 0 0\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::core_sched::FgLabel;
    use crate::time::Time;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig { nodes: 1, cores_per_node: 2, trace: false })
    }

    #[test]
    fn idle_differencing_matches_eq2_inputs() {
        let mut cl = cluster();
        let before = ProcStat::snapshot(&cl);
        cl.add_bg(0, 0, None, 1.0);
        cl.start_fg(0, FgLabel { chare: 0 }, Dur::from_ms(5), 1.0);
        cl.advance_to(Time::from_us(20_000));
        let after = ProcStat::snapshot(&cl);
        // Core 0 was never idle: fg for 10 ms wall, then bg monopolizes.
        assert_eq!(after.idle_since(&before, 0), Dur::ZERO);
        assert_eq!(after.busy_since(&before, 0), Dur::from_ms(20));
        assert_eq!(after.ground_truth_bg_since(&before, 0), Dur::from_ms(15));
        // Core 1 was entirely idle.
        assert_eq!(after.idle_since(&before, 1), Dur::from_ms(20));
    }

    #[test]
    fn delta_since_differences_every_counter() {
        let mut cl = cluster();
        cl.add_bg(0, 0, None, 1.0);
        cl.start_fg(0, FgLabel { chare: 0 }, Dur::from_ms(5), 1.0);
        cl.advance_to(Time::from_us(4_000));
        let earlier = ProcStat::snapshot(&cl);
        cl.advance_to(Time::from_us(20_000));
        let later = ProcStat::snapshot(&cl);
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.len(), 2);
        for (i, d) in delta.iter().enumerate() {
            assert_eq!(d.fg_us, later.cores[i].fg_us - earlier.cores[i].fg_us);
            assert_eq!(d.bg_us, later.cores[i].bg_us - earlier.cores[i].bg_us);
            assert_eq!(d.idle_us, later.cores[i].idle_us - earlier.cores[i].idle_us);
        }
        assert_eq!(delta[1].idle_us, 16_000, "idle core accumulates pure idle");
    }

    #[test]
    fn render_looks_like_proc_stat() {
        let mut cl = cluster();
        cl.advance_to(Time::from_us(1_000_000));
        let text = ProcStat::snapshot(&cl).render();
        assert!(text.starts_with("cpu  "));
        assert!(text.contains("cpu0 0 0 0 100"));
        assert!(text.contains("cpu1 0 0 0 100"));
    }

    #[test]
    fn saturating_difference_on_reordered_snapshots() {
        let mut cl = cluster();
        cl.advance_to(Time::from_us(1_000));
        let later = ProcStat::snapshot(&cl);
        let earlier = ProcStat { cores: vec![CoreStat { idle_us: 9_999, ..Default::default() }; 2] };
        assert_eq!(later.idle_since(&earlier, 0), Dur::ZERO);
    }
}
