//! Network fault injection: what a multi-tenant cloud NIC does to messages.
//!
//! [`crate::network::NetworkModel`] is a lossless delay function — the
//! dedicated-cluster idealization. Real virtualized networks lose packets,
//! duplicate them, deliver them out of order, jitter their latency,
//! collapse in bandwidth when a noisy neighbour saturates the host NIC,
//! and suffer transient partitions when an overlay or top-of-rack switch
//! reconverges. This module models all of those as a deterministic, seeded
//! channel layered *over* the clean model, the same way
//! [`crate::telemetry::TelemetryChannel`] corrupts `/proc/stat` reads
//! without touching ground truth: the clean path stays byte-identical, and
//! the same run replays with and without a hostile network.
//!
//! Two delivery APIs reflect the two traffics the runtime pushes through
//! the NIC:
//!
//! * [`FaultyNetwork::deliver`] — the *reliable* path ghost messages use.
//!   It models a transport that retransmits on loss with capped exponential
//!   backoff and (because blocked iterations would deadlock the DES) fast
//!   forwards a send blocked by a partition to the partition's heal time.
//!   The caller always gets a final arrival instant, plus optionally the
//!   arrival of a duplicate copy the receiver must suppress.
//! * [`FaultyNetwork::try_send`] — the *unreliable* datagram path the
//!   migration protocol ([`cloudlb-runtime`]'s `netproto`) builds its own
//!   retry/ACK/deadline machinery on. A copy sent into a partition or lost
//!   on the wire is simply [`SendOutcome::Lost`]; deadlines keep burning,
//!   which is exactly how a migration comes to be aborted.
//!
//! Faults only apply to cross-node traffic: intra-node delivery bypasses
//! the virtualized NIC (shared memory), mirroring `NetworkModel::delay`.

use crate::network::NetworkModel;
use crate::rng::{stream_seed, SimRng, StreamLayer};
use crate::time::{Dur, Time};
use serde::{Deserialize, Serialize};

/// Which links a scheduled partition severs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionScope {
    /// The whole rack: every cross-node link is down (top-of-rack switch
    /// or overlay reconvergence).
    Rack,
    /// Only the link between two specific nodes is down.
    NodePair {
        /// First node of the severed pair.
        a: usize,
        /// Second node of the severed pair.
        b: usize,
    },
}

/// A transient partition window, expressed as fractions of the run's
/// interference-free time estimate (the same convention `FailSpec` uses
/// for failure instants, so `--fail` and partition schedules line up).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Which links go down.
    pub scope: PartitionScope,
    /// Window start as a fraction of the run estimate, in `[0, 1]`.
    pub from_frac: f64,
    /// Window end as a fraction of the run estimate, in `(from_frac, 1]`.
    pub to_frac: f64,
}

/// Declarative description of network misbehaviour. All knobs default to
/// zero/off (the transparent channel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct NetFaultSpec {
    /// Per-copy loss probability on cross-node links.
    #[serde(default)]
    pub loss: f64,
    /// Probability a delivered copy is duplicated (the receiver must
    /// suppress the extra copy idempotently).
    #[serde(default)]
    pub dup: f64,
    /// Probability a copy is delivered out of order — it arrives an extra
    /// 1–4 base latencies late, behind traffic sent after it.
    #[serde(default)]
    pub reorder: f64,
    /// Latency jitter amplitude: each copy's delay is scaled by
    /// `1 + U(0, jitter)`.
    #[serde(default)]
    pub jitter: f64,
    /// Probability a copy hits a bandwidth collapse (noisy neighbour on
    /// the host NIC): effective bandwidth drops by [`Self::slowdown`].
    #[serde(default)]
    pub collapse: f64,
    /// Bandwidth divisor during a collapse episode (≥ 1); `None` means
    /// the default 4×. (See [`Self::slowdown_factor`].)
    #[serde(default)]
    pub slowdown: Option<f64>,
    /// Scheduled transient partitions.
    #[serde(default)]
    pub partitions: Vec<PartitionWindow>,
}

impl NetFaultSpec {
    /// The transparent channel (no faults).
    pub fn none() -> Self {
        NetFaultSpec::default()
    }

    /// The default chaos script used by the robustness experiments and the
    /// CI `chaos-net` sweep: ≈1 % loss, occasional duplicates and
    /// reordering, sizable jitter, rare 4× bandwidth collapses, and one
    /// transient full-rack partition near the middle of the run.
    pub fn flaky_cloud() -> Self {
        NetFaultSpec {
            loss: 0.01,
            dup: 0.005,
            reorder: 0.05,
            jitter: 0.25,
            collapse: 0.02,
            slowdown: None,
            partitions: vec![PartitionWindow {
                scope: PartitionScope::Rack,
                from_frac: 0.45,
                to_frac: 0.50,
            }],
        }
    }

    /// Effective bandwidth divisor during collapse episodes.
    pub fn slowdown_factor(&self) -> f64 {
        self.slowdown.unwrap_or(4.0)
    }

    /// `true` when any fault is configured.
    pub fn is_active(&self) -> bool {
        self.loss > 0.0
            || self.dup > 0.0
            || self.reorder > 0.0
            || self.jitter > 0.0
            || self.collapse > 0.0
            || !self.partitions.is_empty()
    }

    /// Parse the CLI syntax: either a preset name (`flaky_cloud`, `none`)
    /// or a comma list of `key:value` pairs with keys `loss`, `dup`,
    /// `reorder`, `jitter`, `collapse`, `slowdown`, plus partition windows
    /// `rack:FROM~TO` (full-rack) and `part:A-B@FROM~TO` (node pair),
    /// where `FROM`/`TO` are fractions of the run estimate. Example:
    /// `loss:0.02,jitter:0.3,rack:0.4~0.45`.
    pub fn parse(s: &str) -> Result<NetFaultSpec, String> {
        match s {
            "flaky_cloud" => return Ok(Self::flaky_cloud()),
            "none" | "" => return Ok(Self::none()),
            _ => {}
        }
        let mut spec = NetFaultSpec::none();
        for part in s.split(',') {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("bad net-fault spec {part:?}: missing ':'"))?;
            let frac = |what: &str, hi: f64| -> Result<f64, String> {
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("bad net-fault spec {part:?}: value {value:?}"))?;
                if !(0.0..=hi).contains(&v) {
                    return Err(format!(
                        "bad net-fault spec {part:?}: {what} must be in [0, {hi}]"
                    ));
                }
                Ok(v)
            };
            match key {
                // Probabilities cap at 0.9 so the reliable path always
                // terminates: a link that never delivers is a partition,
                // and partitions have explicit heal times.
                "loss" => spec.loss = frac("loss", 0.9)?,
                "dup" => spec.dup = frac("dup", 0.9)?,
                "reorder" => spec.reorder = frac("reorder", 0.9)?,
                "jitter" => spec.jitter = frac("jitter", 1.0)?,
                "collapse" => spec.collapse = frac("collapse", 0.9)?,
                "slowdown" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("bad net-fault spec {part:?}: value {value:?}"))?;
                    if !(1.0..=1000.0).contains(&v) {
                        return Err(format!(
                            "bad net-fault spec {part:?}: slowdown must be in [1, 1000]"
                        ));
                    }
                    spec.slowdown = Some(v);
                }
                "rack" => {
                    let (f, t) = parse_window(part, value)?;
                    spec.partitions.push(PartitionWindow {
                        scope: PartitionScope::Rack,
                        from_frac: f,
                        to_frac: t,
                    });
                }
                "part" => {
                    let (pair, window) = value.split_once('@').ok_or_else(|| {
                        format!("bad net-fault spec {part:?}: expected part:A-B@FROM~TO")
                    })?;
                    let (a, b) = pair.split_once('-').ok_or_else(|| {
                        format!("bad net-fault spec {part:?}: expected node pair A-B")
                    })?;
                    let a: usize = a
                        .parse()
                        .map_err(|_| format!("bad net-fault spec {part:?}: node {a:?}"))?;
                    let b: usize = b
                        .parse()
                        .map_err(|_| format!("bad net-fault spec {part:?}: node {b:?}"))?;
                    let (f, t) = parse_window(part, window)?;
                    spec.partitions.push(PartitionWindow {
                        scope: PartitionScope::NodePair { a, b },
                        from_frac: f,
                        to_frac: t,
                    });
                }
                other => {
                    return Err(format!("bad net-fault spec {part:?}: unknown key {other:?}"))
                }
            }
        }
        Ok(spec)
    }

    /// Check the spec against a cluster of `nodes` nodes. Scenario files
    /// bypass [`Self::parse`], so the executor re-validates before a run.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        for p in [self.loss, self.dup, self.reorder, self.collapse] {
            if !(0.0..=0.9).contains(&p) {
                return Err(format!("fault probability {p} out of [0, 0.9]"));
            }
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(format!("jitter {} out of [0, 1]", self.jitter));
        }
        if let Some(v) = self.slowdown {
            if !(1.0..=1000.0).contains(&v) {
                return Err(format!("slowdown {v} out of [1, 1000]"));
            }
        }
        for w in &self.partitions {
            if !(0.0..=1.0).contains(&w.from_frac) || !(0.0..=1.0).contains(&w.to_frac) {
                return Err(format!(
                    "partition window {}~{} out of [0, 1]",
                    w.from_frac, w.to_frac
                ));
            }
            if w.to_frac <= w.from_frac {
                return Err(format!("empty partition window {}~{}", w.from_frac, w.to_frac));
            }
            if let PartitionScope::NodePair { a, b } = w.scope {
                if a == b {
                    return Err(format!("partition pair {a}-{b} is a self-loop"));
                }
                if a >= nodes || b >= nodes {
                    return Err(format!(
                        "partition pair {a}-{b} out of range for {nodes} node(s)"
                    ));
                }
            }
        }
        Ok(())
    }
}

fn parse_window(part: &str, value: &str) -> Result<(f64, f64), String> {
    let (f, t) = value
        .split_once('~')
        .ok_or_else(|| format!("bad net-fault spec {part:?}: expected FROM~TO window"))?;
    let parse = |s: &str| -> Result<f64, String> {
        let v: f64 =
            s.parse().map_err(|_| format!("bad net-fault spec {part:?}: fraction {s:?}"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("bad net-fault spec {part:?}: fraction {s} out of [0, 1]"));
        }
        Ok(v)
    };
    let (f, t) = (parse(f)?, parse(t)?);
    if t <= f {
        return Err(format!("bad net-fault spec {part:?}: empty window {f}~{t}"));
    }
    Ok((f, t))
}

/// Counters the channel accumulates over a run; surfaced in `RunResult`
/// the way `WindowQuality` reports telemetry damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Message copies lost on the wire (or sent into a partition).
    #[serde(default)]
    pub lost_copies: u64,
    /// Retransmissions the reliable ghost-message transport performed.
    #[serde(default)]
    pub retransmits: u64,
    /// Duplicate copies generated by the channel (or by migration
    /// retransmission races) and suppressed by the receiver.
    #[serde(default)]
    pub duplicates_dropped: u64,
    /// Migration data/ACK retry rounds the reliable protocol ran.
    #[serde(default)]
    pub migration_retries: u64,
    /// Migrations aborted after exhausting their attempt/deadline budget.
    #[serde(default)]
    pub migration_aborts: u64,
    /// Total scheduled partition time (µs, summed over windows).
    #[serde(default)]
    pub partition_us: u64,
}

/// Final arrival of a reliably-delivered message, plus the arrival instant
/// of a duplicate copy (if the channel generated one) the receiver must
/// drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the (single logical) message lands.
    pub arrival: Time,
    /// When a duplicate copy lands, if one was generated.
    pub dup: Option<Time>,
}

/// Outcome of one unreliable datagram send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The copy was lost (wire loss or partition); nothing arrives.
    Lost,
    /// The copy landed.
    Delivered {
        /// Arrival instant at the destination.
        arrival: Time,
    },
}

/// Retransmission attempts after which the reliable path force-delivers.
/// With loss capped at 0.9 the odds of reaching this are ≈ 0.9^64 ≈ 1e-3 %;
/// the cap only guarantees termination.
const MAX_SEND_ATTEMPTS: u32 = 64;

/// The stateful fault channel: a [`NetworkModel`] wrapped in seeded
/// misbehaviour. Fully deterministic from `(spec, model, seed, horizon)`.
#[derive(Debug, Clone)]
pub struct FaultyNetwork {
    spec: NetFaultSpec,
    model: NetworkModel,
    rng: SimRng,
    /// Partition windows resolved to absolute instants.
    windows: Vec<(PartitionScope, Time, Time)>,
    /// Base retransmission timeout (small control messages).
    rto0: Dur,
    /// Backoff cap.
    rto_max: Dur,
    /// Damage counters, updated by every send.
    pub stats: NetStats,
}

impl FaultyNetwork {
    /// Open a channel. `horizon` is the run's interference-free time
    /// estimate; partition windows are fractions of it.
    pub fn new(spec: NetFaultSpec, model: NetworkModel, seed: u64, horizon: Dur) -> Self {
        let h = horizon.as_secs_f64();
        let windows: Vec<(PartitionScope, Time, Time)> = spec
            .partitions
            .iter()
            .map(|w| {
                (
                    w.scope,
                    Time::ZERO + Dur::from_secs_f64(h * w.from_frac),
                    Time::ZERO + Dur::from_secs_f64(h * w.to_frac),
                )
            })
            .collect();
        let partition_us = windows.iter().map(|&(_, f, t)| t.since(f).as_us()).sum();
        let lat_us =
            (model.inter_node_latency_us as f64 * model.virtualization_penalty).round() as u64;
        let rto0 = Dur::from_us((4 * lat_us).max(200));
        let rto_max = Dur::from_us(rto0.as_us().saturating_mul(128));
        FaultyNetwork {
            spec,
            model,
            rng: SimRng::new(stream_seed(seed, StreamLayer::NetFault)),
            windows,
            rto0,
            rto_max,
            stats: NetStats { partition_us, ..NetStats::default() },
        }
    }

    /// The underlying clean delay model.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Base retransmission timeout for small control messages.
    pub fn rto0(&self) -> Dur {
        self.rto0
    }

    /// Initial retransmission timeout for a `bytes`-sized transfer: one
    /// data trip plus an ACK trip plus slack (the sender's RTT estimate).
    pub fn rto_for(&self, bytes: usize) -> Dur {
        self.model.delay(bytes, false) + self.model.delay(64, false) + self.rto0
    }

    /// One exponential-backoff step, capped.
    pub fn next_rto(&self, rto: Dur) -> Dur {
        (rto * 2.0).min(self.rto_max)
    }

    /// If the `from`↔`to` link is cut at `at`, the heal time of the
    /// latest window covering that instant.
    pub fn cut_until(&self, from_node: usize, to_node: usize, at: Time) -> Option<Time> {
        if from_node == to_node {
            return None;
        }
        self.windows
            .iter()
            .filter(|&&(scope, f, t)| {
                (f..t).contains(&at)
                    && match scope {
                        PartitionScope::Rack => true,
                        PartitionScope::NodePair { a, b } => {
                            (from_node, to_node) == (a, b) || (from_node, to_node) == (b, a)
                        }
                    }
            })
            .map(|&(_, _, t)| t)
            .max()
    }

    /// Fast-forward disturbance-horizon query: the earliest instant at or
    /// after `after` when this channel can treat two identical sends
    /// differently from the clean wire model.
    ///
    /// * Any stochastic knob (loss, dup, reorder, jitter, collapse) makes
    ///   every cross-node send draw from the channel RNG, so the channel is
    ///   disturbed *continuously*: returns `Some(after)`.
    /// * While `after` sits inside a partition window, sends are being
    ///   rerouted to absolute heal instants: also `Some(after)`.
    /// * Otherwise the next scheduled partition start strictly after
    ///   `after`, or `None` if the channel behaves cleanly forever — only
    ///   then may a steady-state window overlapping `(after, horizon]` be
    ///   macro-stepped.
    pub fn next_disturbance_at(&self, after: Time) -> Option<Time> {
        let s = &self.spec;
        if s.loss > 0.0 || s.dup > 0.0 || s.reorder > 0.0 || s.jitter > 0.0 || s.collapse > 0.0 {
            return Some(after);
        }
        if self.windows.iter().any(|&(_, f, t)| (f..t).contains(&after)) {
            return Some(after);
        }
        self.windows.iter().map(|&(_, f, _)| f).filter(|&f| f > after).min()
    }

    /// Reliable delivery (the ghost-message path): the transport
    /// retransmits on loss with capped exponential backoff and rides out
    /// partitions by resending at the heal instant, so the caller always
    /// gets a final arrival. Counts every lost copy and retransmission.
    pub fn deliver(
        &mut self,
        at: Time,
        bytes: usize,
        same_node: bool,
        from_node: usize,
        to_node: usize,
    ) -> Delivery {
        if same_node {
            // Shared-memory path: bypasses the virtualized NIC entirely.
            return Delivery { arrival: at + self.model.delay(bytes, true), dup: None };
        }
        let mut send = at;
        let mut rto = self.rto0;
        for _ in 0..MAX_SEND_ATTEMPTS {
            if let Some(heal) = self.cut_until(from_node, to_node, send) {
                // Copies sent into the partition vanish; the transport
                // keeps retrying and first succeeds once the link heals.
                self.stats.lost_copies += 1;
                self.stats.retransmits += 1;
                send = heal;
                continue;
            }
            if self.spec.loss > 0.0 && self.rng.f64() < self.spec.loss {
                self.stats.lost_copies += 1;
                self.stats.retransmits += 1;
                send += rto;
                rto = self.next_rto(rto);
                continue;
            }
            break;
        }
        let arrival = send + self.copy_delay(bytes);
        let dup = if self.spec.dup > 0.0 && self.rng.f64() < self.spec.dup {
            self.stats.duplicates_dropped += 1;
            Some(arrival + self.copy_delay(bytes))
        } else {
            None
        };
        Delivery { arrival, dup }
    }

    /// Unreliable cross-node datagram send (the migration-protocol path):
    /// a copy sent into a partition or lost on the wire is simply gone —
    /// the caller's own retry/deadline machinery decides what happens next.
    pub fn try_send(
        &mut self,
        at: Time,
        bytes: usize,
        from_node: usize,
        to_node: usize,
    ) -> SendOutcome {
        if self.cut_until(from_node, to_node, at).is_some() {
            self.stats.lost_copies += 1;
            return SendOutcome::Lost;
        }
        if self.spec.loss > 0.0 && self.rng.f64() < self.spec.loss {
            self.stats.lost_copies += 1;
            return SendOutcome::Lost;
        }
        let arrival = at + self.copy_delay(bytes);
        if self.spec.dup > 0.0 && self.rng.f64() < self.spec.dup {
            // The duplicate copy carries the same sequence number; the
            // receiver suppresses it, so only the counter moves.
            self.stats.duplicates_dropped += 1;
        }
        SendOutcome::Delivered { arrival }
    }

    /// Delay of one cross-node copy: the clean wire model degraded by
    /// bandwidth collapse, jitter, and reordering.
    fn copy_delay(&mut self, bytes: usize) -> Dur {
        let mut bw = self.model.bandwidth_bytes_per_us;
        if self.spec.collapse > 0.0 && self.rng.f64() < self.spec.collapse {
            bw /= self.spec.slowdown_factor();
        }
        let wire = self.model.inter_node_latency_us as f64 + bytes as f64 / bw;
        let mut us = wire * self.model.virtualization_penalty;
        if self.spec.jitter > 0.0 {
            us *= 1.0 + self.rng.f64() * self.spec.jitter;
        }
        if self.spec.reorder > 0.0 && self.rng.f64() < self.spec.reorder {
            let base = self.model.inter_node_latency_us as f64 * self.model.virtualization_penalty;
            us += base * self.rng.range_f64(1.0, 4.0);
        }
        Dur::from_us(us.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> Dur {
        Dur::from_secs_f64(1.0)
    }

    fn channel(spec: NetFaultSpec, seed: u64) -> FaultyNetwork {
        FaultyNetwork::new(spec, NetworkModel::default(), seed, horizon())
    }

    #[test]
    fn clean_channel_matches_the_wire_model() {
        let net = NetworkModel::default();
        let mut ch = channel(NetFaultSpec::none(), 1);
        let d = ch.deliver(Time::ZERO, 4_096, false, 0, 1);
        assert_eq!(d.arrival, Time::ZERO + net.delay(4_096, false));
        assert_eq!(d.dup, None);
        let s = ch.try_send(Time::ZERO, 4_096, 0, 1);
        assert_eq!(s, SendOutcome::Delivered { arrival: Time::ZERO + net.delay(4_096, false) });
        assert_eq!(ch.stats, NetStats::default());
    }

    #[test]
    fn same_node_bypasses_the_faults() {
        let net = NetworkModel::default();
        let mut ch = channel(NetFaultSpec { loss: 0.9, ..NetFaultSpec::flaky_cloud() }, 5);
        for k in 0..50 {
            let d = ch.deliver(Time::from_us(k), 1_000, true, 0, 0);
            assert_eq!(d.arrival, Time::from_us(k) + net.delay(1_000, true));
            assert_eq!(d.dup, None);
        }
        assert_eq!(ch.stats.lost_copies, 0);
        assert_eq!(ch.stats.duplicates_dropped, 0);
    }

    #[test]
    fn channel_is_deterministic() {
        let run = || {
            let mut ch = channel(NetFaultSpec::flaky_cloud(), 42);
            let mut out = Vec::new();
            for k in 0..200u64 {
                out.push(ch.deliver(Time::from_us(k * 1_000), 2_048, false, 0, 1));
                out.push(match ch.try_send(Time::from_us(k * 1_000 + 500), 512, 1, 0) {
                    SendOutcome::Lost => Delivery { arrival: Time::MAX, dup: None },
                    SendOutcome::Delivered { arrival } => Delivery { arrival, dup: None },
                });
            }
            (out, ch.stats)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn loss_forces_retransmissions_but_delivery_is_guaranteed() {
        let spec = NetFaultSpec { loss: 0.5, ..NetFaultSpec::none() };
        let mut ch = channel(spec, 7);
        let base = NetworkModel::default().delay(1_000, false);
        let mut delayed = false;
        for k in 0..100u64 {
            let at = Time::from_us(k * 10_000);
            let d = ch.deliver(at, 1_000, false, 0, 1);
            assert!(d.arrival >= at + base, "arrived before the wire allows");
            if d.arrival > at + base {
                delayed = true;
            }
        }
        assert!(ch.stats.retransmits > 0, "50% loss must retransmit");
        assert!(delayed, "retransmitted copies must arrive late");
    }

    #[test]
    fn partition_blocks_try_send_and_delays_deliver() {
        let spec = NetFaultSpec {
            partitions: vec![PartitionWindow {
                scope: PartitionScope::Rack,
                from_frac: 0.4,
                to_frac: 0.6,
            }],
            ..NetFaultSpec::none()
        };
        let mut ch = channel(spec, 3);
        let inside = Time::from_us(500_000);
        let heal = Time::from_us(600_000);
        assert_eq!(ch.try_send(inside, 100, 0, 1), SendOutcome::Lost);
        let d = ch.deliver(inside, 100, false, 0, 1);
        assert!(d.arrival >= heal, "reliable path must ride out the partition: {:?}", d.arrival);
        // Outside the window the link behaves.
        assert!(matches!(
            ch.try_send(Time::from_us(700_000), 100, 0, 1),
            SendOutcome::Delivered { .. }
        ));
        assert_eq!(ch.stats.partition_us, 200_000);
    }

    #[test]
    fn node_pair_partition_only_cuts_that_pair() {
        let spec = NetFaultSpec {
            partitions: vec![PartitionWindow {
                scope: PartitionScope::NodePair { a: 0, b: 1 },
                from_frac: 0.0,
                to_frac: 1.0,
            }],
            ..NetFaultSpec::none()
        };
        let mut ch = channel(spec, 3);
        let t = Time::from_us(100);
        assert_eq!(ch.try_send(t, 10, 0, 1), SendOutcome::Lost);
        assert_eq!(ch.try_send(t, 10, 1, 0), SendOutcome::Lost, "cuts are symmetric");
        assert!(matches!(ch.try_send(t, 10, 0, 2), SendOutcome::Delivered { .. }));
    }

    #[test]
    fn duplicates_are_generated_and_counted() {
        let spec = NetFaultSpec { dup: 0.9, ..NetFaultSpec::none() };
        let mut ch = channel(spec, 11);
        let mut dups = 0;
        for k in 0..50u64 {
            let d = ch.deliver(Time::from_us(k * 1_000), 256, false, 0, 1);
            if let Some(extra) = d.dup {
                assert!(extra > d.arrival, "the duplicate trails the original");
                dups += 1;
            }
        }
        assert!(dups > 0);
        assert_eq!(ch.stats.duplicates_dropped, dups);
    }

    #[test]
    fn collapse_and_jitter_only_stretch_delays() {
        let spec = NetFaultSpec { collapse: 0.5, jitter: 0.5, ..NetFaultSpec::none() };
        let mut ch = channel(spec, 13);
        let base = NetworkModel::default().delay(1 << 20, false);
        let mut stretched = false;
        for k in 0..20u64 {
            let at = Time::from_us(k * 100_000);
            let d = ch.deliver(at, 1 << 20, false, 0, 1);
            assert!(d.arrival >= at + base);
            if d.arrival.since(at) > base + Dur::from_us(base.as_us() / 4) {
                stretched = true;
            }
        }
        assert!(stretched, "collapse/jitter should visibly stretch some copies");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let ch = channel(NetFaultSpec::none(), 1);
        let mut rto = ch.rto0();
        for _ in 0..20 {
            let next = ch.next_rto(rto);
            assert!(next >= rto);
            rto = next;
        }
        assert_eq!(rto, ch.next_rto(rto), "backoff must cap");
        assert!(ch.rto_for(1 << 20) > ch.rto0(), "bulk transfers get a larger RTO");
    }

    #[test]
    fn next_disturbance_reflects_knobs_and_partitions() {
        // Stochastic knobs disturb continuously.
        let ch = channel(NetFaultSpec { jitter: 0.1, ..NetFaultSpec::none() }, 1);
        let t = Time::from_us(123);
        assert_eq!(ch.next_disturbance_at(t), Some(t));
        // Partition-only spec: clean until the window opens, disturbed
        // inside it, clean forever after it heals.
        let spec = NetFaultSpec {
            partitions: vec![PartitionWindow {
                scope: PartitionScope::Rack,
                from_frac: 0.4,
                to_frac: 0.6,
            }],
            ..NetFaultSpec::none()
        };
        let ch = channel(spec, 1); // horizon 1 s → window [0.4 s, 0.6 s)
        assert_eq!(ch.next_disturbance_at(Time::ZERO), Some(Time::from_us(400_000)));
        let inside = Time::from_us(500_000);
        assert_eq!(ch.next_disturbance_at(inside), Some(inside));
        assert_eq!(ch.next_disturbance_at(Time::from_us(600_000)), None);
        // The fully clean channel never disturbs.
        let ch = channel(NetFaultSpec::none(), 1);
        assert_eq!(ch.next_disturbance_at(Time::ZERO), None);
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(NetFaultSpec::parse("flaky_cloud").unwrap(), NetFaultSpec::flaky_cloud());
        assert_eq!(NetFaultSpec::parse("none").unwrap(), NetFaultSpec::none());
        let s = NetFaultSpec::parse("loss:0.02,jitter:0.3,slowdown:8,rack:0.4~0.45").unwrap();
        assert_eq!(s.loss, 0.02);
        assert_eq!(s.jitter, 0.3);
        assert_eq!(s.slowdown, Some(8.0));
        assert_eq!(
            s.partitions,
            vec![PartitionWindow { scope: PartitionScope::Rack, from_frac: 0.4, to_frac: 0.45 }]
        );
        let s = NetFaultSpec::parse("part:0-1@0.1~0.2").unwrap();
        assert_eq!(
            s.partitions,
            vec![PartitionWindow {
                scope: PartitionScope::NodePair { a: 0, b: 1 },
                from_frac: 0.1,
                to_frac: 0.2,
            }]
        );
        assert!(s.is_active());
        assert!(!NetFaultSpec::none().is_active());
        assert!(NetFaultSpec::parse("bogus:1").is_err());
        assert!(NetFaultSpec::parse("loss").is_err());
        assert!(NetFaultSpec::parse("loss:0.95").is_err(), "loss capped at 0.9");
        assert!(NetFaultSpec::parse("rack:0.5~0.4").is_err(), "empty window");
        assert!(NetFaultSpec::parse("part:1-1@0.1~0.2").unwrap().validate(4).is_err());
        assert!(NetFaultSpec::parse("part:0-9@0.1~0.2").unwrap().validate(4).is_err());
        assert!(NetFaultSpec::parse("part:0-1@0.1~0.2").unwrap().validate(4).is_ok());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = NetFaultSpec::flaky_cloud();
        let json = serde_json::to_string(&s).unwrap();
        let back: NetFaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // Missing fields fall back to defaults (old scenario files).
        let sparse: NetFaultSpec = serde_json::from_str(r#"{"loss":0.1}"#).unwrap();
        assert_eq!(sparse.loss, 0.1);
        assert_eq!(sparse.slowdown_factor(), 4.0);
        assert!(sparse.partitions.is_empty());
    }
}
