//! Power and energy model.
//!
//! The paper's testbed reports per-node power each second; base power is
//! 40 W per node and the peak under a fully compute-bound load is 170 W
//! (§V-B). Dynamic power is dominated by how much computation the cores do,
//! so the standard linear model applies:
//!
//! ```text
//! P_node(t) = base + (max − base) · u_node(t)
//! ```
//!
//! where `u_node` is the mean busy fraction of the node's cores (background
//! work burns power too). Because the simulator's `/proc/stat` counters are
//! exact, integrating this model over a run needs no sampling: energy is
//! `base · T · nodes + (max − base) / cores_per_node · Σ_c busy_c`.

use crate::cluster::Cluster;
use crate::core_sched::CoreStat;
use crate::time::{Dur, Time};
use serde::{Deserialize, Serialize};

/// Linear utilization→power model for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power drawn by an idle node (W). Paper: 40 W.
    pub base_w: f64,
    /// Power drawn by a fully busy node (W). Paper: 170 W.
    pub max_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel { base_w: 40.0, max_w: 170.0 }
    }
}

/// Energy/power accounting for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total energy over the measured window, all nodes (J).
    pub energy_j: f64,
    /// Mean power per node over the window (W) — what Fig. 4 plots.
    pub avg_power_per_node_w: f64,
    /// Window length (s).
    pub duration_s: f64,
    /// Number of nodes metered.
    pub nodes: usize,
}

impl PowerModel {
    /// Instantaneous node power at busy fraction `u ∈ [0, 1]`.
    pub fn node_power_w(&self, u: f64) -> f64 {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u} out of range");
        self.base_w + (self.max_w - self.base_w) * u.clamp(0.0, 1.0)
    }

    /// Integrate energy for a run that lasted until `end`, given final core
    /// counters and the node topology. Counter totals must cover `[0, end]`.
    pub fn energy(
        &self,
        stats: &[CoreStat],
        cores_per_node: usize,
        end: Time,
    ) -> EnergyReport {
        assert!(cores_per_node > 0);
        assert_eq!(stats.len() % cores_per_node, 0, "ragged node layout");
        let nodes = stats.len() / cores_per_node;
        let t = end.as_secs_f64();
        let busy_core_seconds: f64 =
            stats.iter().map(|s| Dur::from_us(s.busy_us()).as_secs_f64()).sum();
        let energy_j = self.base_w * t * nodes as f64
            + (self.max_w - self.base_w) * busy_core_seconds / cores_per_node as f64;
        EnergyReport {
            energy_j,
            avg_power_per_node_w: if t > 0.0 { energy_j / t / nodes as f64 } else { 0.0 },
            duration_s: t,
            nodes,
        }
    }

    /// Convenience: meter a cluster that has been advanced to `end`.
    pub fn meter(&self, cluster: &Cluster, end: Time) -> EnergyReport {
        self.energy(&cluster.stats(), cluster.config().cores_per_node, end)
    }

    /// Energy (J) consumed over one window of length `window`, given the
    /// per-core counter *deltas* accumulated across it. Because the model
    /// is linear in busy time, whole-run energy is the exact sum of its
    /// windows' energies — which is what lets the fast-forward engine
    /// advance the accumulators in bulk without changing the final
    /// [`EnergyReport`].
    pub fn window_energy_j(
        &self,
        deltas: &[CoreStat],
        cores_per_node: usize,
        window: Dur,
    ) -> f64 {
        assert!(cores_per_node > 0);
        assert_eq!(deltas.len() % cores_per_node, 0, "ragged node layout");
        let nodes = deltas.len() / cores_per_node;
        let busy_core_seconds: f64 =
            deltas.iter().map(|s| Dur::from_us(s.busy_us()).as_secs_f64()).sum();
        self.base_w * window.as_secs_f64() * nodes as f64
            + (self.max_w - self.base_w) * busy_core_seconds / cores_per_node as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(fg: u64, bg: u64, idle: u64) -> CoreStat {
        CoreStat { fg_us: fg, bg_us: bg, idle_us: idle }
    }

    #[test]
    fn idle_node_draws_base_power() {
        let m = PowerModel::default();
        let stats = vec![stat(0, 0, 1_000_000); 4];
        let r = m.energy(&stats, 4, Time::from_us(1_000_000));
        assert!((r.energy_j - 40.0).abs() < 1e-9);
        assert!((r.avg_power_per_node_w - 40.0).abs() < 1e-9);
    }

    #[test]
    fn saturated_node_draws_max_power() {
        let m = PowerModel::default();
        let stats = vec![stat(1_000_000, 0, 0); 4];
        let r = m.energy(&stats, 4, Time::from_us(1_000_000));
        assert!((r.avg_power_per_node_w - 170.0).abs() < 1e-9);
    }

    #[test]
    fn background_work_burns_power_too() {
        let m = PowerModel::default();
        let app_only = vec![stat(1_000_000, 0, 0), stat(0, 0, 1_000_000)];
        let with_bg = vec![stat(1_000_000, 0, 0), stat(0, 1_000_000, 0)];
        let e1 = m.energy(&app_only, 2, Time::from_us(1_000_000)).energy_j;
        let e2 = m.energy(&with_bg, 2, Time::from_us(1_000_000)).energy_j;
        assert!(e2 > e1);
    }

    #[test]
    fn multi_node_scales_base_power() {
        let m = PowerModel::default();
        let stats = vec![stat(0, 0, 1_000_000); 8]; // two idle 4-core nodes
        let r = m.energy(&stats, 4, Time::from_us(1_000_000));
        assert_eq!(r.nodes, 2);
        assert!((r.energy_j - 80.0).abs() < 1e-9);
        assert!((r.avg_power_per_node_w - 40.0).abs() < 1e-9);
    }

    #[test]
    fn instantaneous_power_is_linear_and_clamped() {
        let m = PowerModel::default();
        assert!((m.node_power_w(0.5) - 105.0).abs() < 1e-9);
        assert_eq!(m.node_power_w(0.0), 40.0);
        assert_eq!(m.node_power_w(1.0), 170.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_layout_rejected() {
        PowerModel::default().energy(&[stat(0, 0, 0); 5], 4, Time::ZERO);
    }

    #[test]
    fn window_energies_sum_to_whole_run_energy() {
        let m = PowerModel::default();
        // A 3 s run on one 2-core node, split into three uneven windows.
        let w1 = vec![stat(800_000, 0, 200_000), stat(0, 0, 1_000_000)];
        let w2 = vec![stat(400_000, 100_000, 0), stat(500_000, 0, 0)];
        let w3 = vec![stat(0, 0, 1_500_000), stat(1_200_000, 300_000, 0)];
        let total: Vec<CoreStat> = (0..2)
            .map(|i| {
                stat(
                    w1[i].fg_us + w2[i].fg_us + w3[i].fg_us,
                    w1[i].bg_us + w2[i].bg_us + w3[i].bg_us,
                    w1[i].idle_us + w2[i].idle_us + w3[i].idle_us,
                )
            })
            .collect();
        let whole = m.energy(&total, 2, Time::from_us(3_000_000)).energy_j;
        let sum = m.window_energy_j(&w1, 2, Dur::from_us(1_000_000))
            + m.window_energy_j(&w2, 2, Dur::from_us(500_000))
            + m.window_energy_j(&w3, 2, Dur::from_us(1_500_000));
        assert!((whole - sum).abs() < 1e-9, "windows {sum} vs whole {whole}");
    }

    #[test]
    fn lb_tradeoff_shape_higher_power_lower_energy() {
        // The Fig. 4 story in miniature: a balanced run is shorter but
        // busier; it draws more power yet less energy.
        let m = PowerModel::default();
        // noLB: 2 s run, half the cores idle-waiting.
        let nolb = vec![stat(2_000_000, 0, 0), stat(500_000, 0, 1_500_000)];
        let r_nolb = m.energy(&nolb, 2, Time::from_us(2_000_000));
        // LB: same total work (2.5 core-seconds) in 1.25 s, fully busy.
        let lb = vec![stat(1_250_000, 0, 0), stat(1_250_000, 0, 0)];
        let r_lb = m.energy(&lb, 2, Time::from_us(1_250_000));
        assert!(r_lb.avg_power_per_node_w > r_nolb.avg_power_per_node_w);
        assert!(r_lb.energy_j < r_nolb.energy_j);
    }
}
