//! Elastic cluster membership: preemption notices, revocations, acquisitions.
//!
//! Cloud HPC does not run on a fixed machine. Spot instances get *preempted*
//! — but with a notice (AWS: 2 minutes, GCE: 30 seconds) that a well-built
//! runtime can spend evacuating work instead of losing it — and autoscalers
//! *acquire* brand-new nodes mid-run. This module scripts both as a chaos
//! layer over the DES, mirroring [`crate::failure::FailureScript`]: a
//! deterministic timed list of membership actions plus a serde-able spec
//! ([`MembershipSpec`]) with fractional times, presets and a CLI `parse`.
//!
//! The policy reaction — proactive evacuation of doomed nodes over the
//! reliable migration protocol, warm-up handshakes for joining nodes —
//! lives in the runtime crate; this module only says *what changes when*.
//!
//! Scripted times are deterministic; the layer's only randomness (warm-up
//! jitter on acquired nodes) draws from its own stream seed
//! ([`StreamLayer::Membership`]) so composing it never shifts another
//! layer's dice.

use crate::rng::{stream_rng, StreamLayer};
use crate::time::{Dur, Time};
use serde::{Deserialize, Serialize};

/// A timed membership action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipAction {
    /// Spot preemption notice: `node` will be hard-revoked at `revoke_at`.
    /// The runtime should evacuate the node's work before that deadline.
    Notice {
        /// Node index receiving the notice.
        node: usize,
        /// Instant the revocation will fire (the notice deadline).
        revoke_at: Time,
    },
    /// Hard revocation: every core on `node` fails at once, permanently.
    Revoke {
        /// Node index being revoked.
        node: usize,
    },
    /// A brand-new node joins the job (all of its cores, empty). The node
    /// index refers to latent capacity appended after the initial cluster.
    Acquire {
        /// Node index joining.
        node: usize,
    },
    /// An acquired node finished its warm-up handshake and may now receive
    /// migrations.
    WarmupDone {
        /// Node index that warmed up.
        node: usize,
    },
}

/// A deterministic schedule of membership changes, sorted by time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipScript {
    /// `(when, what)` pairs in nondecreasing time order.
    pub actions: Vec<(Time, MembershipAction)>,
}

impl MembershipScript {
    /// Empty script (static-membership runs).
    pub fn none() -> Self {
        MembershipScript::default()
    }

    /// `true` if the script schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Combine two scripts, keeping time order (stable for equal times).
    pub fn merge(mut self, other: MembershipScript) -> Self {
        self.actions.extend(other.actions);
        self.actions.sort_by_key(|(t, _)| *t);
        self
    }

    /// First scripted action strictly after `after`, if any (fast-forward
    /// disturbance-horizon query).
    pub fn next_disturbance_at(&self, after: Time) -> Option<Time> {
        self.actions.iter().map(|(t, _)| *t).find(|&t| t > after)
    }

    /// Largest node index referenced, for config validation.
    pub fn max_node(&self) -> Option<usize> {
        self.actions
            .iter()
            .map(|(_, a)| match a {
                MembershipAction::Notice { node, .. }
                | MembershipAction::Revoke { node }
                | MembershipAction::Acquire { node }
                | MembershipAction::WarmupDone { node } => *node,
            })
            .max()
    }

    /// Number of distinct nodes acquired by this script.
    pub fn num_acquired_nodes(&self) -> usize {
        let mut nodes: Vec<usize> = self
            .actions
            .iter()
            .filter_map(|(_, a)| match a {
                MembershipAction::Acquire { node } => Some(*node),
                _ => None,
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// `true` if the script revokes at least one node.
    pub fn has_revocations(&self) -> bool {
        self.actions.iter().any(|(_, a)| matches!(a, MembershipAction::Revoke { .. }))
    }
}

/// One spot preemption notice, in fractions of the scenario's estimated
/// run time: the notice arrives at `at_frac` and the node is hard-revoked
/// `lead_frac` later.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoticeSpec {
    /// Initial-cluster node index the notice targets.
    pub node: usize,
    /// When the notice arrives (fraction of the base time estimate).
    pub at_frac: f64,
    /// Lead time between notice and revocation (fraction of the estimate).
    pub lead_frac: f64,
}

/// One node acquisition, in fractions of the scenario's estimated run time.
/// Acquired nodes are numbered after the initial cluster in `at_frac` order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcquireSpec {
    /// When the node attaches (fraction of the base time estimate).
    pub at_frac: f64,
}

fn default_warmup_frac() -> f64 {
    0.02
}

/// Serde-able membership timeline: spot notices and autoscale acquisitions
/// with fractional times, resolved against a scenario's base time estimate
/// by [`MembershipSpec::to_script`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MembershipSpec {
    /// Preemption notices against initial-cluster nodes.
    #[serde(default)]
    pub notices: Vec<NoticeSpec>,
    /// Node acquisitions (brand-new latent nodes attaching mid-run).
    #[serde(default)]
    pub acquisitions: Vec<AcquireSpec>,
    /// Warm-up handshake length for acquired nodes (fraction of the base
    /// time estimate); the node only becomes a migration target once done.
    #[serde(default = "default_warmup_frac")]
    pub warmup_frac: f64,
    /// Extra per-acquisition warm-up jitter bound (fraction of the base
    /// time estimate), drawn from [`StreamLayer::Membership`]'s stream.
    #[serde(default)]
    pub warmup_jitter_frac: f64,
}

impl Default for MembershipSpec {
    fn default() -> Self {
        MembershipSpec {
            notices: Vec::new(),
            acquisitions: Vec::new(),
            warmup_frac: default_warmup_frac(),
            warmup_jitter_frac: 0.0,
        }
    }
}

impl MembershipSpec {
    /// No membership churn.
    pub fn none() -> Self {
        MembershipSpec::default()
    }

    /// Spot preemption storm with a replacement node: capacity attaches at
    /// 30 %, node 1 is noticed at 40 % with a generous 25 % lead (long
    /// enough to drain every chare proactively), and node 0 gets a late
    /// notice that usually falls past the end of the run. Needs ≥ 2 nodes.
    pub fn spot_storm() -> Self {
        MembershipSpec {
            notices: vec![
                NoticeSpec { node: 1, at_frac: 0.40, lead_frac: 0.25 },
                NoticeSpec { node: 0, at_frac: 0.80, lead_frac: 0.30 },
            ],
            acquisitions: vec![AcquireSpec { at_frac: 0.30 }],
            ..MembershipSpec::default()
        }
    }

    /// Autoscale timeline: two expansions, then a noticed scale-down of
    /// node 1. Needs ≥ 2 nodes.
    pub fn autoscale() -> Self {
        MembershipSpec {
            notices: vec![NoticeSpec { node: 1, at_frac: 0.60, lead_frac: 0.25 }],
            acquisitions: vec![AcquireSpec { at_frac: 0.25 }, AcquireSpec { at_frac: 0.50 }],
            ..MembershipSpec::default()
        }
    }

    /// `true` if the spec schedules any membership change.
    pub fn is_active(&self) -> bool {
        !self.notices.is_empty() || !self.acquisitions.is_empty()
    }

    /// Parse a CLI spec: a preset name (`spot_storm`, `autoscale`) or a
    /// comma-separated list of entries:
    ///
    /// * `notice:NODE@AT+LEAD` — notice for node `NODE` at fraction `AT`,
    ///   revocation `LEAD` later (e.g. `notice:1@0.4+0.25`);
    /// * `acquire:AT` — a new node attaches at fraction `AT`;
    /// * `warmup:FRAC` — warm-up handshake length;
    /// * `warmup_jitter:FRAC` — per-acquisition warm-up jitter bound.
    pub fn parse(s: &str) -> Result<MembershipSpec, String> {
        match s {
            "spot_storm" => return Ok(MembershipSpec::spot_storm()),
            "autoscale" => return Ok(MembershipSpec::autoscale()),
            _ => {}
        }
        let mut spec = MembershipSpec::none();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("bad membership spec {part:?}: expected key:value"))?;
            let frac = |what: &str, v: &str| -> Result<f64, String> {
                let x: f64 = v
                    .parse()
                    .map_err(|_| format!("bad membership spec {part:?}: {what} not a number"))?;
                if !(0.0..=2.0).contains(&x) {
                    return Err(format!("bad membership spec {part:?}: {what} outside 0..=2"));
                }
                Ok(x)
            };
            match key {
                "notice" => {
                    let (node_s, rest) = value.split_once('@').ok_or_else(|| {
                        format!("bad membership spec {part:?}: expected notice:NODE@AT+LEAD")
                    })?;
                    let (at_s, lead_s) = rest.split_once('+').ok_or_else(|| {
                        format!("bad membership spec {part:?}: expected notice:NODE@AT+LEAD")
                    })?;
                    let node: usize = node_s
                        .parse()
                        .map_err(|_| format!("bad membership spec {part:?}: node not a number"))?;
                    spec.notices.push(NoticeSpec {
                        node,
                        at_frac: frac("AT", at_s)?,
                        lead_frac: frac("LEAD", lead_s)?,
                    });
                }
                "acquire" => {
                    spec.acquisitions.push(AcquireSpec { at_frac: frac("AT", value)? });
                }
                "warmup" => spec.warmup_frac = frac("FRAC", value)?,
                "warmup_jitter" => spec.warmup_jitter_frac = frac("FRAC", value)?,
                _ => return Err(format!("bad membership spec {part:?}: unknown key {key:?}")),
            }
        }
        Ok(spec)
    }

    /// Validate against an initial cluster of `nodes` nodes. Notices must
    /// target in-range initial nodes (at most once each), fractions must be
    /// sane, and leads must be positive — a notice with zero lead is just
    /// an unannounced kill, which belongs in the failure script.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        let mut noticed = std::collections::HashSet::new();
        for n in &self.notices {
            if n.node >= nodes {
                return Err(format!(
                    "membership notice targets node {} but the cluster has {nodes} nodes",
                    n.node
                ));
            }
            if !noticed.insert(n.node) {
                return Err(format!("membership notices target node {} twice", n.node));
            }
            if !(0.0..=2.0).contains(&n.at_frac) {
                return Err(format!("membership notice at_frac {} outside 0..=2", n.at_frac));
            }
            if n.lead_frac <= 0.0 || n.lead_frac > 2.0 {
                return Err(format!(
                    "membership notice lead_frac {} must be in (0, 2]",
                    n.lead_frac
                ));
            }
        }
        for a in &self.acquisitions {
            if !(0.0..=2.0).contains(&a.at_frac) {
                return Err(format!("membership acquire at_frac {} outside 0..=2", a.at_frac));
            }
        }
        if !(0.0..=0.5).contains(&self.warmup_frac) {
            return Err(format!("membership warmup_frac {} outside 0..=0.5", self.warmup_frac));
        }
        if !(0.0..=0.5).contains(&self.warmup_jitter_frac) {
            return Err(format!(
                "membership warmup_jitter_frac {} outside 0..=0.5",
                self.warmup_jitter_frac
            ));
        }
        Ok(())
    }

    /// Resolve fractional times against `base_s` (the scenario's estimated
    /// clean run time, seconds) into a concrete [`MembershipScript`].
    ///
    /// Acquired nodes are numbered `initial_nodes, initial_nodes + 1, …` in
    /// `at_frac` order; each gets an `Acquire` and a `WarmupDone` action,
    /// the latter jittered from the layer's own stream seed.
    pub fn to_script(&self, base_s: f64, initial_nodes: usize, seed: u64) -> MembershipScript {
        let at = |frac: f64| Time::ZERO + Dur::from_secs_f64(base_s * frac.max(0.0));
        let mut rng = stream_rng(seed, StreamLayer::Membership);
        let mut actions = Vec::new();
        for n in &self.notices {
            let revoke_at = at(n.at_frac + n.lead_frac);
            actions.push((at(n.at_frac), MembershipAction::Notice { node: n.node, revoke_at }));
            actions.push((revoke_at, MembershipAction::Revoke { node: n.node }));
        }
        let mut acquisitions = self.acquisitions.clone();
        acquisitions.sort_by(|a, b| a.at_frac.total_cmp(&b.at_frac));
        for (k, a) in acquisitions.iter().enumerate() {
            let node = initial_nodes + k;
            let jitter =
                if self.warmup_jitter_frac > 0.0 { rng.f64() * self.warmup_jitter_frac } else { 0.0 };
            actions.push((at(a.at_frac), MembershipAction::Acquire { node }));
            actions.push((
                at(a.at_frac + self.warmup_frac + jitter),
                MembershipAction::WarmupDone { node },
            ));
        }
        actions.sort_by_key(|(t, _)| *t);
        MembershipScript { actions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_script_is_inert() {
        let s = MembershipScript::none();
        assert!(s.is_empty());
        assert_eq!(s.next_disturbance_at(Time::ZERO), None);
        assert_eq!(s.max_node(), None);
        assert_eq!(s.num_acquired_nodes(), 0);
        assert!(!s.has_revocations());
        assert!(!MembershipSpec::none().is_active());
    }

    #[test]
    fn presets_are_active_and_validate_on_two_nodes() {
        for spec in [MembershipSpec::spot_storm(), MembershipSpec::autoscale()] {
            assert!(spec.is_active());
            assert!(spec.validate(2).is_ok());
            assert!(spec.validate(1).is_err(), "presets need two nodes");
        }
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(MembershipSpec::parse("spot_storm").unwrap(), MembershipSpec::spot_storm());
        assert_eq!(MembershipSpec::parse("autoscale").unwrap(), MembershipSpec::autoscale());
        let spec =
            MembershipSpec::parse("notice:1@0.4+0.25,acquire:0.3,warmup:0.05,warmup_jitter:0.01")
                .unwrap();
        assert_eq!(
            spec.notices,
            vec![NoticeSpec { node: 1, at_frac: 0.4, lead_frac: 0.25 }]
        );
        assert_eq!(spec.acquisitions, vec![AcquireSpec { at_frac: 0.3 }]);
        assert_eq!(spec.warmup_frac, 0.05);
        assert_eq!(spec.warmup_jitter_frac, 0.01);
        assert!(MembershipSpec::parse("notice:1@0.4").is_err());
        assert!(MembershipSpec::parse("bogus:1").is_err());
        assert!(MembershipSpec::parse("acquire:nope").is_err());
        assert!(MembershipSpec::parse("acquire:9.0").is_err());
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let out_of_range = MembershipSpec {
            notices: vec![NoticeSpec { node: 5, at_frac: 0.2, lead_frac: 0.1 }],
            ..MembershipSpec::default()
        };
        assert!(out_of_range.validate(2).is_err());
        assert!(out_of_range.validate(6).is_ok());
        let zero_lead = MembershipSpec {
            notices: vec![NoticeSpec { node: 0, at_frac: 0.2, lead_frac: 0.0 }],
            ..MembershipSpec::default()
        };
        assert!(zero_lead.validate(2).is_err());
        let twice = MembershipSpec {
            notices: vec![
                NoticeSpec { node: 0, at_frac: 0.2, lead_frac: 0.1 },
                NoticeSpec { node: 0, at_frac: 0.5, lead_frac: 0.1 },
            ],
            ..MembershipSpec::default()
        };
        assert!(twice.validate(2).is_err());
    }

    #[test]
    fn to_script_resolves_fractions_and_orders_actions() {
        let spec = MembershipSpec {
            notices: vec![NoticeSpec { node: 1, at_frac: 0.4, lead_frac: 0.2 }],
            acquisitions: vec![AcquireSpec { at_frac: 0.5 }, AcquireSpec { at_frac: 0.1 }],
            warmup_frac: 0.05,
            warmup_jitter_frac: 0.0,
        };
        let s = spec.to_script(10.0, 2, 7);
        // Acquisitions numbered in time order after the initial cluster.
        assert_eq!(
            s.actions[0],
            (Time::ZERO + Dur::from_secs_f64(1.0), MembershipAction::Acquire { node: 2 })
        );
        assert_eq!(
            s.actions[1],
            (Time::ZERO + Dur::from_secs_f64(1.5), MembershipAction::WarmupDone { node: 2 })
        );
        let revoke_at = Time::ZERO + Dur::from_secs_f64(6.0);
        assert!(s
            .actions
            .contains(&(Time::ZERO + Dur::from_secs_f64(4.0), MembershipAction::Notice { node: 1, revoke_at })));
        assert!(s.actions.contains(&(revoke_at, MembershipAction::Revoke { node: 1 })));
        assert_eq!(s.num_acquired_nodes(), 2);
        assert_eq!(s.max_node(), Some(3));
        assert!(s.has_revocations());
        // Times nondecreasing.
        for w in s.actions.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn warmup_jitter_is_seeded_and_deterministic() {
        let spec = MembershipSpec {
            acquisitions: vec![AcquireSpec { at_frac: 0.2 }],
            warmup_jitter_frac: 0.1,
            ..MembershipSpec::default()
        };
        let a = spec.to_script(10.0, 2, 42);
        let b = spec.to_script(10.0, 2, 42);
        assert_eq!(a, b, "bit-identical per seed");
        let c = spec.to_script(10.0, 2, 43);
        assert_ne!(a, c, "jitter draws from the membership stream");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = MembershipSpec::spot_storm();
        let json = serde_json::to_string(&spec).unwrap();
        let back: MembershipSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Missing fields fall back to defaults.
        let min: MembershipSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(min, MembershipSpec::none());
    }

    #[test]
    fn next_disturbance_is_strictly_after() {
        let s = MembershipSpec::spot_storm().to_script(10.0, 2, 1);
        let first = s.actions[0].0;
        assert_eq!(s.next_disturbance_at(Time::ZERO), Some(first));
        assert!(s.next_disturbance_at(first).unwrap() > first);
    }
}
