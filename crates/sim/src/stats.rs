//! Small statistics helpers used by the experiment harness (means over
//! seeds, imbalance summaries, penalty series).

use serde::{Deserialize, Serialize};

/// Streaming accumulator for min/max/mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Accumulator { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Accumulator::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Max/mean load imbalance ratio: 1.0 is perfectly balanced.
/// Returns 1.0 when the mean is zero (no load anywhere).
pub fn imbalance(loads: &[f64]) -> f64 {
    let m = mean(loads);
    if m <= 0.0 {
        return 1.0;
    }
    loads.iter().copied().fold(f64::NEG_INFINITY, f64::max) / m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_moments() {
        let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), Some(2.0));
        assert_eq!(acc.max(), Some(9.0));
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.std_dev(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }

    #[test]
    fn imbalance_ratios() {
        assert!((imbalance(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[2.0, 1.0, 0.0]) - 2.0).abs() < 1e-12);
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn mean_of_slice() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
