#![warn(missing_docs)]
//! Discrete-event cluster simulator for `cloudlb`.
//!
//! This crate substitutes for the paper's physical testbed (8 nodes × 4-core
//! Intel Xeon X3430, Linux CFS scheduling, per-node power meters). It
//! provides:
//!
//! * a virtual clock and deterministic event queue ([`time`], [`event`]);
//! * a per-core **proportional-share scheduler** ([`core_sched`]) that
//!   time-shares each core between the application's processing element and
//!   co-located background (interfering) jobs — the mechanism by which a
//!   cloud VM suffers from its neighbours;
//! * `/proc/stat`-style per-core counters ([`procstat`]) from which the
//!   runtime derives the paper's background load `O_p` (Eq. 2);
//! * background-interference scripts ([`interference`]) covering the paper's
//!   steady 2-core job (Fig. 2/4), the single-core arrival (Fig. 1) and the
//!   phased arrive/depart pattern (Fig. 3);
//! * PE/node failure scripts ([`failure`]) — timed kill/restore actions for
//!   the fault-tolerance experiments (recovery itself lives in the runtime);
//! * elastic membership scripts ([`membership`]) — spot preemption notices
//!   with lead times, hard revocations and mid-run node acquisitions
//!   (the proactive-evacuation policy lives in the runtime);
//! * a network delay model ([`network`]) with a virtualization penalty, and
//!   a seeded network fault channel ([`netfault`]) layering loss,
//!   duplication, reordering, jitter, bandwidth collapse and transient
//!   partitions over it;
//! * the paper's power model ([`power`]): 40 W base / 170 W peak per node,
//!   dynamic power linear in utilization, exact event-driven energy
//!   integration;
//! * small deterministic RNG and statistics helpers ([`rng`], [`stats`]).

pub mod cluster;
pub mod core_sched;
pub mod event;
pub mod failure;
pub mod interference;
pub mod membership;
pub mod netfault;
pub mod network;
pub mod power;
pub mod procstat;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use cluster::{Cluster, ClusterConfig};
pub use core_sched::{BgJobId, CoreEvent, FgLabel};
pub use event::{EventHandle, EventQueue};
pub use failure::{FailureAction, FailureScript};
pub use interference::{BgAction, BgScript};
pub use membership::{
    AcquireSpec, MembershipAction, MembershipScript, MembershipSpec, NoticeSpec,
};
pub use netfault::{
    Delivery, FaultyNetwork, NetFaultSpec, NetStats, PartitionScope, PartitionWindow, SendOutcome,
};
pub use network::NetworkModel;
pub use power::PowerModel;
pub use procstat::ProcStat;
pub use rng::{stream_rng, stream_seed, SimRng, StreamLayer};
pub use telemetry::{TelemetryChannel, TelemetrySpec};
pub use time::{Dur, Time};
