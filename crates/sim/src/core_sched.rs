//! Proportional-share core model.
//!
//! Each simulated core time-shares its cycles between at most one
//! *foreground* computation (the application PE executing a task) and any
//! number of *background* tasks (co-located interfering jobs), exactly like
//! a Linux CFS run-queue shared between a VM's vCPU and its noisy
//! neighbours. Every runnable entity receives CPU at a rate proportional to
//! its weight — a generalized-processor-sharing (GPS) fluid model, advanced
//! piecewise between composition changes so sharing is exact.
//!
//! Faithfulness notes (paper §IV):
//! * The Projections tool "includes the time spent executing the 1-core run
//!   in the time spent executing tasks of the 4-core run because it cannot
//!   identify when the operating system switches context". We reproduce
//!   that: the trace records the whole wall-clock extent of a task as task
//!   time even when background work was interleaved, so timeline figures
//!   show the same inflated bars as the paper's Figure 1(b).
//! * The `/proc/stat`-style counters ([`CoreStat`]) keep the truth: CPU
//!   cycles actually delivered to the application, to background jobs, and
//!   genuinely idle time. The runtime derives the paper's `O_p` (Eq. 2)
//!   from these.

use crate::time::{Dur, Time};
use cloudlb_trace::{Activity, TraceLog};
use serde::{Deserialize, Serialize};

/// Identifier of a background (interfering) job.
pub type BgJobId = u32;

/// What the foreground is running, for trace attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FgLabel {
    /// Chare whose entry method is executing (trace color/glyph key).
    pub chare: u64,
}

/// Completion notifications produced while advancing a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreEvent {
    /// The foreground task finished consuming its CPU demand.
    FgDone {
        /// Core on which it ran.
        core: usize,
    },
    /// A finite background task finished its CPU demand.
    BgDone {
        /// Core on which it ran.
        core: usize,
        /// The job it belonged to.
        job: BgJobId,
    },
}

/// Cumulative per-core CPU accounting in microseconds (the simulator's
/// `/proc/stat`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStat {
    /// Cycles delivered to the application (foreground).
    pub fg_us: u64,
    /// Cycles consumed by background jobs.
    pub bg_us: u64,
    /// Cycles where the core had nothing runnable.
    pub idle_us: u64,
}

impl CoreStat {
    /// Total wall time accounted.
    pub fn total_us(&self) -> u64 {
        self.fg_us + self.bg_us + self.idle_us
    }

    /// Busy (non-idle) microseconds.
    pub fn busy_us(&self) -> u64 {
        self.fg_us + self.bg_us
    }
}

#[derive(Debug, Clone)]
struct FgRun {
    label: FgLabel,
    weight: f64,
    remaining_us: f64,
}

#[derive(Debug, Clone)]
struct BgTask {
    job: BgJobId,
    weight: f64,
    /// `f64::INFINITY` models an open-ended interfering job.
    remaining_us: f64,
    consumed_us: f64,
}

/// One simulated core.
#[derive(Debug, Clone)]
pub struct Core {
    index: usize,
    fg: Option<FgRun>,
    bg: Vec<BgTask>,
    last: Time,
    stat: CoreStat,
    /// Sub-microsecond accounting residue folded into idle.
    dust_us: f64,
}

/// Completions shorter than this are treated as immediate (guards against
/// rounding loops at µs resolution).
const EPS_US: f64 = 1e-6;

impl Core {
    /// Fresh idle core.
    pub fn new(index: usize) -> Self {
        Core { index, fg: None, bg: Vec::new(), last: Time::ZERO, stat: CoreStat::default(), dust_us: 0.0 }
    }

    /// Core index within the cluster.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Cumulative `/proc/stat` counters (valid as of the last `advance`).
    pub fn stat(&self) -> CoreStat {
        self.stat
    }

    /// The instant up to which this core's accounting is complete.
    pub fn accounted_until(&self) -> Time {
        self.last
    }

    /// `true` while a foreground task is executing.
    pub fn fg_busy(&self) -> bool {
        self.fg.is_some()
    }

    /// Background tasks currently hosted (job ids).
    pub fn bg_jobs(&self) -> Vec<BgJobId> {
        self.bg.iter().map(|b| b.job).collect()
    }

    /// `true` while at least one background task is hosted here.
    pub fn has_bg(&self) -> bool {
        !self.bg.is_empty()
    }

    /// Begin executing a foreground task with the given pure-CPU `demand`.
    ///
    /// Panics if a foreground task is already running — the PE is a serial
    /// scheduler, it executes one entry method at a time.
    pub fn start_fg(&mut self, label: FgLabel, demand: Dur, weight: f64) {
        assert!(self.fg.is_none(), "core {} fg already busy", self.index);
        assert!(weight > 0.0, "non-positive fg weight");
        self.fg = Some(FgRun { label, weight, remaining_us: demand.as_us() as f64 });
    }

    /// Add a background task. `demand = None` runs until removed.
    pub fn add_bg(&mut self, job: BgJobId, demand: Option<Dur>, weight: f64) {
        assert!(weight > 0.0, "non-positive bg weight");
        self.bg.push(BgTask {
            job,
            weight,
            remaining_us: demand.map_or(f64::INFINITY, |d| d.as_us() as f64),
            consumed_us: 0.0,
        });
    }

    /// Abort the running foreground task (PE failure): the partially
    /// executed work is lost. Returns its label if one was running.
    pub fn abort_fg(&mut self) -> Option<FgLabel> {
        self.fg.take().map(|f| f.label)
    }

    /// Drop every background task (the core died under them). Returns each
    /// evicted job with whether its demand was finite (finite tasks were
    /// still owed a completion event).
    pub fn clear_bg(&mut self) -> Vec<(BgJobId, bool)> {
        self.bg.drain(..).map(|b| (b.job, b.remaining_us.is_finite())).collect()
    }

    /// Remove every background task of `job`; returns CPU it consumed here.
    pub fn remove_bg(&mut self, job: BgJobId) -> Dur {
        let mut consumed = 0.0;
        self.bg.retain(|b| {
            if b.job == job {
                consumed += b.consumed_us;
                false
            } else {
                true
            }
        });
        Dur::from_us(consumed.round() as u64)
    }

    fn total_weight(&self) -> f64 {
        let fg_w = self.fg.as_ref().map_or(0.0, |f| f.weight);
        fg_w + self.bg.iter().map(|b| b.weight).sum::<f64>()
    }

    /// Earliest future instant at which a runnable entity completes its
    /// demand, given the *current* composition. `None` if nothing finite is
    /// runnable.
    pub fn next_completion(&self) -> Option<Time> {
        let total_w = self.total_weight();
        if total_w <= 0.0 {
            return None;
        }
        let mut best: Option<f64> = None;
        if let Some(fg) = &self.fg {
            let dt = fg.remaining_us * total_w / fg.weight;
            best = Some(best.map_or(dt, |b: f64| b.min(dt)));
        }
        for b in &self.bg {
            if b.remaining_us.is_finite() {
                let dt = b.remaining_us * total_w / b.weight;
                best = Some(best.map_or(dt, |x: f64| x.min(dt)));
            }
        }
        best.map(|dt| self.last + Dur::from_us(dt.ceil().max(0.0) as u64))
    }

    /// Emit completions for entities that are already done at the current
    /// instant (zero-demand tasks, or demand exhausted exactly at `last`).
    fn reap_completed(&mut self, events: &mut Vec<(Time, CoreEvent)>) {
        if let Some(fg) = &self.fg {
            if fg.remaining_us <= EPS_US {
                events.push((self.last, CoreEvent::FgDone { core: self.index }));
                self.fg = None;
            }
        }
        let (idx, last) = (self.index, self.last);
        self.bg.retain(|b| {
            if b.remaining_us <= EPS_US {
                events.push((last, CoreEvent::BgDone { core: idx, job: b.job }));
                false
            } else {
                true
            }
        });
    }

    /// Fast-forward support: jump accounting to `to` in one step, crediting
    /// the precomputed counter `delta` wholesale. Only legal while the core
    /// is *quiescent* (no foreground task, no background tasks) — exactly
    /// the state a parked PE is in at an LB release. A quiescent window has
    /// no GPS segmentation effects, so a previously measured window's
    /// deltas are translation-invariant and replaying them here yields the
    /// same `/proc/stat` counters the event loop would have produced.
    ///
    /// Records nothing into a trace; callers wanting honest timelines mark
    /// the coalesced window themselves.
    pub fn bulk_advance(&mut self, to: Time, delta: CoreStat) {
        assert!(self.fg.is_none(), "core {}: bulk_advance with fg busy", self.index);
        assert!(self.bg.is_empty(), "core {}: bulk_advance with bg tasks", self.index);
        assert!(to >= self.last, "core {}: bulk_advance into the past", self.index);
        debug_assert_eq!(
            delta.total_us(),
            (to - self.last).as_us(),
            "core {}: window delta does not cover the jump",
            self.index
        );
        self.stat.fg_us += delta.fg_us;
        self.stat.bg_us += delta.bg_us;
        self.stat.idle_us += delta.idle_us;
        self.last = to;
    }

    /// Advance accounting to `to`, distributing CPU by weight and emitting
    /// completion events (timestamped) into `events`. Optionally records
    /// Projections-style intervals into `trace`.
    pub fn advance(
        &mut self,
        to: Time,
        events: &mut Vec<(Time, CoreEvent)>,
        mut trace: Option<&mut TraceLog>,
    ) {
        // Entities that are complete at entry (e.g. zero-demand tasks
        // started since the last advance) must be reaped even when
        // `to == last` and the loop below does not run.
        self.reap_completed(events);
        while self.last < to {
            let total_w = self.total_weight();
            if total_w <= 0.0 {
                // Nothing runnable: idle to `to`.
                let wall = (to - self.last).as_us();
                self.stat.idle_us += wall;
                if let Some(t) = trace.as_deref_mut() {
                    t.record(self.index, self.last.as_us(), to.as_us(), Activity::Idle);
                }
                self.last = to;
                break;
            }

            // Find the earliest internal completion.
            let seg_end = match self.next_completion() {
                Some(c) if c < to => c,
                _ => to,
            };
            let wall_us = (seg_end - self.last).as_us() as f64;

            // Distribute the segment.
            let mut delivered = 0.0;
            if let Some(fg) = &mut self.fg {
                let share = wall_us * fg.weight / total_w;
                let used = share.min(fg.remaining_us);
                fg.remaining_us -= used;
                delivered += used;
                self.stat.fg_us += used.round() as u64;
            }
            for b in &mut self.bg {
                let share = wall_us * b.weight / total_w;
                let used = share.min(b.remaining_us);
                b.remaining_us -= used;
                b.consumed_us += used;
                delivered += used;
                self.stat.bg_us += used.round() as u64;
            }
            // Rounding dust: fold into idle once it exceeds a microsecond.
            self.dust_us += wall_us - delivered;
            if self.dust_us >= 1.0 {
                let whole = self.dust_us.floor();
                self.stat.idle_us += whole as u64;
                self.dust_us -= whole;
            }

            // Trace: the wall extent belongs to the foreground task if one
            // ran (Projections semantics); otherwise to background.
            if let Some(t) = trace.as_deref_mut() {
                if let Some(fg) = &self.fg {
                    t.record(
                        self.index,
                        self.last.as_us(),
                        seg_end.as_us(),
                        Activity::Task { chare: fg.label.chare },
                    );
                } else if let Some(b) = self.bg.first() {
                    t.record(
                        self.index,
                        self.last.as_us(),
                        seg_end.as_us(),
                        Activity::Background { job: b.job },
                    );
                }
            }

            self.last = seg_end;

            // Emit completions.
            if let Some(fg) = &self.fg {
                if fg.remaining_us <= EPS_US {
                    events.push((seg_end, CoreEvent::FgDone { core: self.index }));
                    self.fg = None;
                }
            }
            let idx = self.index;
            self.bg.retain(|b| {
                if b.remaining_us <= EPS_US {
                    events.push((seg_end, CoreEvent::BgDone { core: idx, job: b.job }));
                    false
                } else {
                    true
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advance_collect(core: &mut Core, to: Time) -> Vec<(Time, CoreEvent)> {
        let mut ev = Vec::new();
        core.advance(to, &mut ev, None);
        ev
    }

    #[test]
    fn fg_alone_runs_at_full_speed() {
        let mut c = Core::new(0);
        c.start_fg(FgLabel { chare: 1 }, Dur::from_ms(10), 1.0);
        let ev = advance_collect(&mut c, Time::from_us(20_000));
        assert_eq!(ev, vec![(Time::from_us(10_000), CoreEvent::FgDone { core: 0 })]);
        assert_eq!(c.stat().fg_us, 10_000);
        assert_eq!(c.stat().idle_us, 10_000);
        assert!(!c.fg_busy());
    }

    #[test]
    fn equal_weight_sharing_halves_speed() {
        // Paper §V: "CPU was almost equally shared for most cases" — a task
        // needing 10 ms of CPU takes 20 ms of wall time next to a BG job.
        let mut c = Core::new(0);
        c.add_bg(7, None, 1.0);
        c.start_fg(FgLabel { chare: 0 }, Dur::from_ms(10), 1.0);
        let ev = advance_collect(&mut c, Time::from_us(30_000));
        assert_eq!(ev, vec![(Time::from_us(20_000), CoreEvent::FgDone { core: 0 })]);
        // After fg completes, bg gets the whole core.
        assert_eq!(c.stat().fg_us, 10_000);
        assert_eq!(c.stat().bg_us, 10_000 + 10_000);
        assert_eq!(c.stat().idle_us, 0);
    }

    #[test]
    fn weighted_sharing_models_os_preference() {
        // Mol3D case: OS prefers the background job 4:1 — fg gets 20 %.
        let mut c = Core::new(0);
        c.add_bg(1, None, 4.0);
        c.start_fg(FgLabel { chare: 0 }, Dur::from_ms(2), 1.0);
        let ev = advance_collect(&mut c, Time::from_us(100_000));
        assert_eq!(ev[0].0, Time::from_us(10_000)); // 2 ms / 0.2 share
    }

    #[test]
    fn finite_bg_completes_and_frees_core() {
        let mut c = Core::new(3);
        c.add_bg(9, Some(Dur::from_ms(5)), 1.0);
        c.start_fg(FgLabel { chare: 2 }, Dur::from_ms(5), 1.0);
        let ev = advance_collect(&mut c, Time::from_us(10_000));
        // Both complete at 10 ms (each got 50 % of 10 ms of wall).
        assert_eq!(ev.len(), 2);
        assert!(ev.iter().all(|(t, _)| *t == Time::from_us(10_000)));
        assert!(ev.iter().any(|(_, e)| matches!(e, CoreEvent::BgDone { job: 9, core: 3 })));
    }

    #[test]
    fn composition_change_rescales_remaining_work() {
        let mut c = Core::new(0);
        c.start_fg(FgLabel { chare: 0 }, Dur::from_ms(10), 1.0);
        // Run alone for 4 ms, then a bg task arrives.
        advance_collect(&mut c, Time::from_us(4_000));
        c.add_bg(5, None, 1.0);
        let ev = advance_collect(&mut c, Time::from_us(30_000));
        // 6 ms of demand remain; at 50 % speed that is 12 ms more wall.
        assert_eq!(ev, vec![(Time::from_us(16_000), CoreEvent::FgDone { core: 0 })]);
    }

    #[test]
    fn remove_bg_reports_consumption() {
        let mut c = Core::new(0);
        c.add_bg(2, None, 1.0);
        advance_collect(&mut c, Time::from_us(7_000));
        let consumed = c.remove_bg(2);
        assert_eq!(consumed, Dur::from_ms(7));
        assert!(c.bg_jobs().is_empty());
        // Core is now idle.
        advance_collect(&mut c, Time::from_us(9_000));
        assert_eq!(c.stat().idle_us, 2_000);
    }

    #[test]
    fn accounting_is_conserved() {
        let mut c = Core::new(0);
        c.add_bg(1, Some(Dur::from_ms(3)), 2.0);
        c.start_fg(FgLabel { chare: 0 }, Dur::from_ms(4), 1.0);
        advance_collect(&mut c, Time::from_us(50_000));
        let s = c.stat();
        let total = s.total_us() as i64;
        assert!((total - 50_000).abs() <= 2, "accounted {total} of 50000");
    }

    #[test]
    fn trace_shows_inflated_task_bars() {
        // The Figure 1 artifact: with interference the task's wall extent in
        // the trace is twice its CPU demand.
        let mut c = Core::new(0);
        let mut log = TraceLog::new(1);
        let mut ev = Vec::new();
        c.add_bg(0, None, 1.0);
        c.start_fg(FgLabel { chare: 4 }, Dur::from_ms(1), 1.0);
        c.advance(Time::from_us(2_000), &mut ev, Some(&mut log));
        let task_us = log.time_where(0, 0, 10_000, |a| matches!(a, Activity::Task { .. }));
        assert_eq!(task_us, 2_000);
    }

    #[test]
    fn abort_and_clear_drop_entities_without_events() {
        let mut c = Core::new(0);
        c.start_fg(FgLabel { chare: 3 }, Dur::from_ms(10), 1.0);
        c.add_bg(1, Some(Dur::from_ms(5)), 1.0);
        c.add_bg(2, None, 1.0);
        advance_collect(&mut c, Time::from_us(1_000));
        assert_eq!(c.abort_fg(), Some(FgLabel { chare: 3 }));
        assert!(!c.fg_busy());
        let mut evicted = c.clear_bg();
        evicted.sort_unstable();
        assert_eq!(evicted, vec![(1, true), (2, false)]);
        // Nothing left: the core idles and emits no completions.
        let ev = advance_collect(&mut c, Time::from_us(2_000));
        assert!(ev.is_empty());
        assert_eq!(c.abort_fg(), None);
    }

    #[test]
    #[should_panic(expected = "fg already busy")]
    fn double_start_fg_panics() {
        let mut c = Core::new(0);
        c.start_fg(FgLabel { chare: 0 }, Dur::from_ms(1), 1.0);
        c.start_fg(FgLabel { chare: 1 }, Dur::from_ms(1), 1.0);
    }

    #[test]
    fn zero_demand_task_completes_immediately() {
        let mut c = Core::new(0);
        c.start_fg(FgLabel { chare: 0 }, Dur::ZERO, 1.0);
        assert_eq!(c.next_completion(), Some(Time::ZERO));
        let ev = advance_collect(&mut c, Time::from_us(1));
        assert_eq!(ev[0].1, CoreEvent::FgDone { core: 0 });
    }

    #[test]
    fn bulk_advance_matches_segmented_advance() {
        // Two identical quiescent-window workloads: one advanced by the
        // event loop (idle segments), one jumped with the measured delta.
        let mut slow = Core::new(0);
        advance_collect(&mut slow, Time::from_us(12_345));
        let before = slow.stat();
        advance_collect(&mut slow, Time::from_us(40_000));
        let delta = CoreStat {
            fg_us: slow.stat().fg_us - before.fg_us,
            bg_us: slow.stat().bg_us - before.bg_us,
            idle_us: slow.stat().idle_us - before.idle_us,
        };

        let mut fast = Core::new(0);
        advance_collect(&mut fast, Time::from_us(12_345));
        fast.bulk_advance(Time::from_us(40_000), delta);
        assert_eq!(fast.stat(), slow.stat());
        assert_eq!(fast.accounted_until(), slow.accounted_until());
    }

    #[test]
    #[should_panic(expected = "bulk_advance with fg busy")]
    fn bulk_advance_rejects_busy_core() {
        let mut c = Core::new(0);
        c.start_fg(FgLabel { chare: 0 }, Dur::from_ms(1), 1.0);
        c.bulk_advance(Time::from_us(10), CoreStat { fg_us: 0, bg_us: 0, idle_us: 10 });
    }

    #[test]
    #[should_panic(expected = "bulk_advance with bg tasks")]
    fn bulk_advance_rejects_bg_host() {
        let mut c = Core::new(0);
        c.add_bg(1, None, 1.0);
        c.bulk_advance(Time::from_us(10), CoreStat { fg_us: 0, bg_us: 0, idle_us: 10 });
    }

    #[test]
    fn next_completion_none_when_only_infinite_bg() {
        let mut c = Core::new(0);
        c.add_bg(0, None, 1.0);
        assert_eq!(c.next_completion(), None);
    }
}
