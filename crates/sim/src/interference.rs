//! Background (interfering) job scripts and bookkeeping.
//!
//! The paper's experiments inject interference in three patterns, all
//! expressible as a [`BgScript`] — a timed list of start/stop actions:
//!
//! * **Fig. 1**: a 1-core job arrives on core 4 after a few iterations;
//! * **Fig. 2 / Fig. 4**: a 2-core Wave2D job runs alongside the parallel
//!   application for the whole experiment, with a fixed amount of work so
//!   its own *timing penalty* can be measured;
//! * **Fig. 3**: a job on core 1, which later finishes, followed by a new
//!   job on core 3 ("interfering tasks ... might come and go randomly").
//!
//! [`BgLedger`] tracks each job's start, per-core completions and computes
//! the paper's background timing-penalty metric.

use crate::core_sched::BgJobId;
use crate::rng::SimRng;
use crate::time::{Dur, Time};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A timed interference action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BgAction {
    /// Attach one task of `job` to `core`.
    Start {
        /// Job identifier (shared by all of the job's per-core tasks).
        job: BgJobId,
        /// Target core.
        core: usize,
        /// CPU demand of this task; `None` runs until an explicit `Stop`.
        demand: Option<Dur>,
        /// Scheduler weight relative to the application's weight of 1.0.
        weight: f64,
    },
    /// Remove `job`'s task(s) from `core` (for open-ended jobs).
    Stop {
        /// Job identifier.
        job: BgJobId,
        /// Core to clear.
        core: usize,
    },
}

/// A deterministic schedule of interference actions, sorted by time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BgScript {
    /// `(when, what)` pairs in nondecreasing time order.
    pub actions: Vec<(Time, BgAction)>,
}

impl BgScript {
    /// Empty script (the interference-free base runs).
    pub fn none() -> Self {
        BgScript::default()
    }

    /// One job spanning `cores`, each task with the same demand and weight,
    /// all starting at `start`. This is the paper's steady 2-core job when
    /// `cores.len() == 2`.
    pub fn steady(
        job: BgJobId,
        cores: &[usize],
        start: Time,
        demand_per_core: Option<Dur>,
        weight: f64,
    ) -> Self {
        BgScript {
            actions: cores
                .iter()
                .map(|&core| (start, BgAction::Start { job, core, demand: demand_per_core, weight }))
                .collect(),
        }
    }

    /// A job on `core` alive during `[start, stop)` (open-ended demand with
    /// an explicit stop) — the Fig. 1 / Fig. 3 building block.
    pub fn pulse(job: BgJobId, core: usize, start: Time, stop: Time, weight: f64) -> Self {
        assert!(stop > start, "pulse must have positive length");
        BgScript {
            actions: vec![
                (start, BgAction::Start { job, core, demand: None, weight }),
                (stop, BgAction::Stop { job, core }),
            ],
        }
    }

    /// Random interference: Poisson-ish arrivals of single-core pulses over
    /// `[0, horizon)`, each on a random core with an exponential duration.
    /// Used by robustness tests; fully determined by the RNG seed.
    pub fn random(
        rng: &mut SimRng,
        num_cores: usize,
        horizon: Time,
        mean_gap: Dur,
        mean_len: Dur,
        weight: f64,
        first_job: BgJobId,
    ) -> Self {
        assert!(num_cores > 0);
        let mut script = BgScript::none();
        let mut t = Time::ZERO + Dur::from_secs_f64(rng.exp(mean_gap.as_secs_f64()));
        let mut job = first_job;
        while t < horizon {
            let core = rng.below(num_cores as u64) as usize;
            let len = Dur::from_secs_f64(rng.exp(mean_len.as_secs_f64())).max(Dur::from_ms(1));
            script = script.merge(BgScript::pulse(job, core, t, t + len, weight));
            job += 1;
            t += Dur::from_secs_f64(rng.exp(mean_gap.as_secs_f64()));
        }
        script
    }

    /// Combine two scripts, keeping time order (stable for equal times).
    pub fn merge(mut self, other: BgScript) -> Self {
        self.actions.extend(other.actions);
        self.actions.sort_by_key(|(t, _)| *t);
        self
    }

    /// First scripted action strictly after `after`, if any.
    ///
    /// This is the fast-forward engine's disturbance-horizon query: a
    /// steady-state window starting at `after` can only be macro-stepped
    /// when no interference action is still pending (an action at exactly
    /// `after` has already been applied — scripted events are scheduled
    /// ahead of everything else at the same instant).
    pub fn next_disturbance_at(&self, after: Time) -> Option<Time> {
        self.actions.iter().map(|(t, _)| *t).find(|&t| t > after)
    }

    /// Largest core index referenced, if any (for config validation).
    pub fn max_core(&self) -> Option<usize> {
        self.actions
            .iter()
            .map(|(_, a)| match a {
                BgAction::Start { core, .. } | BgAction::Stop { core, .. } => *core,
            })
            .max()
    }
}

#[derive(Debug, Clone, Default)]
struct JobRecord {
    start: Option<Time>,
    tasks_started: usize,
    tasks_finished: usize,
    /// Per-task CPU demand; the job alone would finish in `max` of these.
    max_task_demand: Dur,
    finish: Option<Time>,
}

/// Tracks background-job lifecycles and computes the paper's BG timing
/// penalty: extra wall time relative to running alone, as a fraction.
#[derive(Debug, Clone, Default)]
pub struct BgLedger {
    jobs: HashMap<BgJobId, JobRecord>,
}

impl BgLedger {
    /// Fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that one of `job`'s tasks started at `t` with `demand`.
    pub fn on_start(&mut self, job: BgJobId, t: Time, demand: Option<Dur>) {
        let rec = self.jobs.entry(job).or_default();
        rec.start = Some(rec.start.map_or(t, |s| s.min(t)));
        rec.tasks_started += 1;
        if let Some(d) = demand {
            rec.max_task_demand = rec.max_task_demand.max(d);
        }
    }

    /// Record that one of `job`'s tasks completed its demand at `t`.
    pub fn on_task_done(&mut self, job: BgJobId, t: Time) {
        let rec = self.jobs.entry(job).or_default();
        rec.tasks_finished += 1;
        if rec.tasks_finished >= rec.tasks_started {
            rec.finish = Some(rec.finish.map_or(t, |f| f.max(t)));
        }
    }

    /// Completion instant of `job` (all tasks done), if it finished.
    pub fn finish_time(&self, job: BgJobId) -> Option<Time> {
        self.jobs.get(&job).and_then(|r| r.finish)
    }

    /// The paper's BG timing penalty for `job`:
    /// `(wall_time − standalone_time) / standalone_time`, where
    /// standalone time is the largest per-task demand (tasks run in
    /// parallel on distinct cores when alone). `None` until the job
    /// finishes or if it had no finite demand.
    pub fn timing_penalty(&self, job: BgJobId) -> Option<f64> {
        let rec = self.jobs.get(&job)?;
        let finish = rec.finish?;
        let start = rec.start?;
        let standalone = rec.max_task_demand;
        if standalone.is_zero() {
            return None;
        }
        let wall = (finish - start).as_secs_f64();
        Some(wall / standalone.as_secs_f64() - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_script_targets_all_cores() {
        let s = BgScript::steady(0, &[2, 5], Time::from_us(100), Some(Dur::from_ms(1)), 1.0);
        assert_eq!(s.actions.len(), 2);
        assert_eq!(s.max_core(), Some(5));
        assert!(s.actions.iter().all(|(t, _)| *t == Time::from_us(100)));
    }

    #[test]
    fn pulse_orders_start_before_stop() {
        let s = BgScript::pulse(1, 3, Time::from_us(10), Time::from_us(50), 1.0);
        assert!(matches!(s.actions[0].1, BgAction::Start { .. }));
        assert!(matches!(s.actions[1].1, BgAction::Stop { .. }));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn degenerate_pulse_rejected() {
        BgScript::pulse(1, 0, Time::from_us(5), Time::from_us(5), 1.0);
    }

    #[test]
    fn merge_sorts_by_time() {
        let a = BgScript::pulse(0, 0, Time::from_us(100), Time::from_us(200), 1.0);
        let b = BgScript::pulse(1, 1, Time::from_us(50), Time::from_us(150), 1.0);
        let m = a.merge(b);
        let times: Vec<u64> = m.actions.iter().map(|(t, _)| t.as_us()).collect();
        assert_eq!(times, vec![50, 100, 150, 200]);
    }

    #[test]
    fn random_script_is_deterministic_and_in_horizon() {
        let mut r1 = SimRng::new(99);
        let mut r2 = SimRng::new(99);
        let h = Time::from_us(1_000_000);
        let s1 = BgScript::random(&mut r1, 4, h, Dur::from_ms(50), Dur::from_ms(30), 1.0, 10);
        let s2 = BgScript::random(&mut r2, 4, h, Dur::from_ms(50), Dur::from_ms(30), 1.0, 10);
        assert_eq!(s1, s2);
        assert!(!s1.actions.is_empty());
        for (t, a) in &s1.actions {
            if matches!(a, BgAction::Start { .. }) {
                assert!(*t < h);
            }
        }
        assert!(s1.max_core().unwrap() < 4);
    }

    #[test]
    fn next_disturbance_is_strictly_after() {
        let s = BgScript::pulse(1, 0, Time::from_us(100), Time::from_us(300), 1.0);
        assert_eq!(s.next_disturbance_at(Time::ZERO), Some(Time::from_us(100)));
        // An action at exactly `after` has already fired.
        assert_eq!(s.next_disturbance_at(Time::from_us(100)), Some(Time::from_us(300)));
        assert_eq!(s.next_disturbance_at(Time::from_us(300)), None);
        assert_eq!(BgScript::none().next_disturbance_at(Time::ZERO), None);
    }

    #[test]
    fn ledger_penalty_for_parallel_tasks() {
        let mut l = BgLedger::new();
        // 2-core job, each task needs 10 s; alone it finishes in 10 s.
        l.on_start(7, Time::from_us(0), Some(Dur::from_secs_f64(10.0)));
        l.on_start(7, Time::from_us(0), Some(Dur::from_secs_f64(10.0)));
        assert_eq!(l.timing_penalty(7), None); // not done yet
        l.on_task_done(7, Time::from_us(15_000_000));
        assert_eq!(l.timing_penalty(7), None); // one task still running
        l.on_task_done(7, Time::from_us(20_000_000));
        let p = l.timing_penalty(7).unwrap();
        assert!((p - 1.0).abs() < 1e-9, "penalty {p}"); // 20 s vs 10 s alone
    }

    #[test]
    fn ledger_open_ended_job_has_no_penalty() {
        let mut l = BgLedger::new();
        l.on_start(1, Time::ZERO, None);
        l.on_task_done(1, Time::from_us(100));
        assert_eq!(l.timing_penalty(1), None);
    }
}
