//! Message delay model.
//!
//! Clouds degrade HPC network performance both in latency and bandwidth
//! (the paper's §I cites virtualization's network overhead as a main
//! obstacle, and its future work wants migration gated on network cost).
//! The model here is the standard postal/LogP-style `latency + size/bw`
//! with a multiplicative *virtualization penalty* applied to cross-node
//! messages, since intra-node delivery bypasses the virtualized NIC.

use crate::time::Dur;
use serde::{Deserialize, Serialize};

/// Latency/bandwidth network model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way latency between cores of the same node (µs).
    pub intra_node_latency_us: u64,
    /// One-way latency between nodes, before the virtualization penalty (µs).
    pub inter_node_latency_us: u64,
    /// Cross-node bandwidth in bytes per microsecond (= MB/s).
    pub bandwidth_bytes_per_us: f64,
    /// Multiplier ≥ 1 on cross-node delay modelling the virtualized NIC.
    pub virtualization_penalty: f64,
}

impl Default for NetworkModel {
    /// Gigabit-Ethernet-era cluster (the paper's testbed vintage): ~50 µs
    /// node-to-node latency, ~110 MB/s, and a 2× virtualization penalty in
    /// line with the EC2 measurements the paper cites.
    fn default() -> Self {
        NetworkModel {
            intra_node_latency_us: 1,
            inter_node_latency_us: 50,
            bandwidth_bytes_per_us: 110.0,
            virtualization_penalty: 2.0,
        }
    }
}

impl NetworkModel {
    /// An idealized dedicated-cluster network (no virtualization penalty).
    pub fn dedicated() -> Self {
        NetworkModel { virtualization_penalty: 1.0, ..Default::default() }
    }

    /// Delay for a `bytes`-sized message; `same_node` selects the path.
    pub fn delay(&self, bytes: usize, same_node: bool) -> Dur {
        if same_node {
            Dur::from_us(self.intra_node_latency_us)
        } else {
            let wire = self.inter_node_latency_us as f64 + bytes as f64 / self.bandwidth_bytes_per_us;
            Dur::from_us((wire * self.virtualization_penalty).round() as u64)
        }
    }

    /// Delay for migrating an object of `bytes` across nodes (bulk path —
    /// latency plus serialized transfer, virtualization penalty included).
    pub fn migration_delay(&self, bytes: usize, same_node: bool) -> Dur {
        if same_node {
            // In-process handoff: negligible but nonzero bookkeeping.
            Dur::from_us(self.intra_node_latency_us + bytes as u64 / 4096)
        } else {
            self.delay(bytes, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_node_is_cheap_and_flat() {
        let n = NetworkModel::default();
        assert_eq!(n.delay(10, true), n.delay(1_000_000, true));
        assert!(n.delay(0, true) < n.delay(0, false));
    }

    #[test]
    fn inter_node_scales_with_size() {
        let n = NetworkModel::default();
        let small = n.delay(1_000, false);
        let big = n.delay(1_000_000, false);
        assert!(big > small);
        // 1 MB at 110 B/µs with 2× penalty ≈ 18.3 ms.
        assert!((big.as_secs_f64() - 0.01827).abs() < 0.001, "{big}");
    }

    #[test]
    fn virtualization_penalty_multiplies() {
        let dedicated = NetworkModel::dedicated();
        let cloud = NetworkModel::default();
        let d = dedicated.delay(100_000, false).as_secs_f64();
        let c = cloud.delay(100_000, false).as_secs_f64();
        assert!((c / d - 2.0).abs() < 0.01);
    }

    #[test]
    fn migration_delay_accounts_for_bytes_even_intra_node() {
        let n = NetworkModel::default();
        assert!(n.migration_delay(1 << 20, true) > n.migration_delay(0, true));
        assert!(n.migration_delay(1 << 20, false) > n.migration_delay(1 << 20, true));
    }
}
