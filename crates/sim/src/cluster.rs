//! Cluster topology: nodes × cores, shared trace, global advancement.
//!
//! Mirrors the paper's testbed shape (8 single-socket nodes with a quad-core
//! Xeon each; experiments use 4–32 cores). Core indices are global; core
//! `i` lives on node `i / cores_per_node`.

use crate::core_sched::{BgJobId, Core, CoreEvent, CoreStat, FgLabel};
use crate::time::{Dur, Time};
use cloudlb_trace::TraceLog;
use serde::{Deserialize, Serialize};

/// Shape and instrumentation options for a simulated cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes (machines). The paper's testbed has 8.
    pub nodes: usize,
    /// Cores per node. The paper's Xeon X3430 has 4.
    pub cores_per_node: usize,
    /// Record a Projections-style trace (adds memory proportional to events).
    pub trace: bool,
}

impl ClusterConfig {
    /// Paper-testbed shape for a run on `cores` cores (4 cores per node).
    pub fn paper_testbed(cores: usize) -> Self {
        assert!(cores > 0 && cores.is_multiple_of(4), "paper runs use multiples of 4 cores");
        ClusterConfig { nodes: cores / 4, cores_per_node: 4, trace: false }
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

/// What a core kill evicted (see [`Cluster::kill_core`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KilledCore {
    /// Label of the foreground task aborted mid-execution, if any.
    pub aborted_fg: Option<FgLabel>,
    /// Background jobs evicted, with whether their demand was finite
    /// (finite tasks were still owed a completion event).
    pub evicted_bg: Vec<(BgJobId, bool)>,
}

/// A simulated cluster of proportional-share cores.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    cores: Vec<Core>,
    /// `false` while a core is failed. Dead cores keep accounting (as
    /// idle) but must not be scheduled on; the executor enforces that.
    alive: Vec<bool>,
    trace: Option<TraceLog>,
}

impl Cluster {
    /// Build the cluster described by `cfg`.
    pub fn new(cfg: ClusterConfig) -> Self {
        let n = cfg.total_cores();
        assert!(n > 0, "cluster must have at least one core");
        Cluster {
            cores: (0..n).map(Core::new).collect(),
            alive: vec![true; n],
            trace: if cfg.trace { Some(TraceLog::new(n)) } else { None },
            cfg,
        }
    }

    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Total number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Node hosting global core `core`.
    pub fn node_of(&self, core: usize) -> usize {
        core / self.cfg.cores_per_node
    }

    /// `true` when both cores share a node (affects message latency).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Advance *all* cores to `to`, collecting completion events
    /// (timestamped, sorted by time then core).
    pub fn advance_to(&mut self, to: Time) -> Vec<(Time, CoreEvent)> {
        let mut events = Vec::new();
        self.advance_into(to, &mut events);
        events
    }

    /// [`Cluster::advance_to`] into a caller-owned buffer, so the
    /// per-event executor loop reuses one allocation instead of growing a
    /// fresh `Vec` per pop. `events` is cleared first. The sort must stay
    /// stable: a core can emit `FgDone` and `BgDone` at the same instant,
    /// and their relative order is part of the deterministic schedule.
    pub fn advance_into(&mut self, to: Time, events: &mut Vec<(Time, CoreEvent)>) {
        events.clear();
        for core in &mut self.cores {
            core.advance(to, events, self.trace.as_mut());
        }
        events.sort_by_key(|(t, e)| {
            (*t, match e {
                CoreEvent::FgDone { core } => *core,
                CoreEvent::BgDone { core, .. } => *core,
            })
        });
    }

    /// Begin a foreground task on `core` (see [`Core::start_fg`]).
    pub fn start_fg(&mut self, core: usize, label: FgLabel, demand: Dur, weight: f64) {
        self.cores[core].start_fg(label, demand, weight);
    }

    /// `true` while `core` executes a foreground task.
    pub fn fg_busy(&self, core: usize) -> bool {
        self.cores[core].fg_busy()
    }

    /// Attach a background task of `job` to `core`.
    pub fn add_bg(&mut self, core: usize, job: BgJobId, demand: Option<Dur>, weight: f64) {
        self.cores[core].add_bg(job, demand, weight);
    }

    /// Detach all of `job`'s background tasks from `core`; returns CPU consumed.
    pub fn remove_bg(&mut self, core: usize, job: BgJobId) -> Dur {
        self.cores[core].remove_bg(job)
    }

    /// Background jobs currently on `core`.
    pub fn bg_jobs_on(&self, core: usize) -> Vec<BgJobId> {
        self.cores[core].bg_jobs()
    }

    /// `true` if any core currently hosts a background task. A cluster
    /// with resident interference shares cores through the GPS model, whose
    /// per-segment rounding is segmentation-dependent — so the fast-forward
    /// engine only macro-steps while this is `false`.
    pub fn any_bg(&self) -> bool {
        self.cores.iter().any(|c| c.has_bg())
    }

    /// Fast-forward support: jump *every* core's accounting to `to` in one
    /// step, crediting per-core counter `deltas` (one entry per core, as
    /// measured over an equivalent window by [`Cluster::stats`]
    /// differencing). Panics unless every core is quiescent; see
    /// [`Core::bulk_advance`]. Emits no completion events and records no
    /// trace intervals.
    pub fn bulk_advance(&mut self, to: Time, deltas: &[CoreStat]) {
        assert_eq!(deltas.len(), self.cores.len(), "one delta per core");
        for (core, delta) in self.cores.iter_mut().zip(deltas) {
            core.bulk_advance(to, *delta);
        }
    }

    /// Earliest completion on `core` under the current composition.
    pub fn next_completion(&self, core: usize) -> Option<Time> {
        self.cores[core].next_completion()
    }

    /// `/proc/stat` snapshot for one core.
    pub fn core_stat(&self, core: usize) -> CoreStat {
        self.cores[core].stat()
    }

    /// `/proc/stat` snapshot for every core.
    pub fn stats(&self) -> Vec<CoreStat> {
        self.cores.iter().map(|c| c.stat()).collect()
    }

    /// `true` while `core` has not failed (or has been restored).
    pub fn is_alive(&self, core: usize) -> bool {
        self.alive[core]
    }

    /// Liveness of every core, indexed globally.
    pub fn alive_mask(&self) -> Vec<bool> {
        self.alive.clone()
    }

    /// Number of cores currently alive.
    pub fn num_alive(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Fail `core`: abort its foreground task, evict its background jobs,
    /// and mark it dead. The core object stays (accumulating idle time so
    /// accounting and power stay conserved), but nothing may be scheduled
    /// on it until [`Cluster::restore_core`]. Idempotent on a dead core.
    pub fn kill_core(&mut self, core: usize) -> KilledCore {
        if !self.alive[core] {
            return KilledCore::default();
        }
        self.alive[core] = false;
        KilledCore {
            aborted_fg: self.cores[core].abort_fg(),
            evicted_bg: self.cores[core].clear_bg(),
        }
    }

    /// Bring a failed core back (a replacement VM). It re-joins empty; the
    /// executor migrates work back at the next LB boundary.
    pub fn restore_core(&mut self, core: usize) {
        self.alive[core] = true;
    }

    /// Abort the foreground task on a *live* core mid-execution (global
    /// rollback: surviving cores abandon in-flight work before replay).
    /// Liveness and background jobs are untouched.
    pub fn abort_fg(&mut self, core: usize) -> Option<FgLabel> {
        self.cores[core].abort_fg()
    }

    /// Global core indices belonging to `node`.
    pub fn cores_of_node(&self, node: usize) -> std::ops::Range<usize> {
        let k = self.cfg.cores_per_node;
        node * k..(node + 1) * k
    }

    /// Buddy core holding the checkpoint replica of `core`'s chares: the
    /// same slot on the *next node*, so a whole-node failure never takes
    /// both copies (except in single-node clusters, where the buddy is the
    /// next core).
    pub fn buddy_of(&self, core: usize) -> usize {
        let n = self.cores.len();
        if self.cfg.nodes > 1 {
            (core + self.cfg.cores_per_node) % n
        } else {
            (core + 1) % n
        }
    }

    /// Borrow the trace log (if tracing is enabled).
    pub fn trace(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    /// Borrow the trace log mutably (for markers).
    pub fn trace_mut(&mut self) -> Option<&mut TraceLog> {
        self.trace.as_mut()
    }

    /// Take ownership of the trace log, leaving tracing disabled.
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shapes() {
        let c = ClusterConfig::paper_testbed(32);
        assert_eq!(c.nodes, 8);
        assert_eq!(c.cores_per_node, 4);
        assert_eq!(c.total_cores(), 32);
    }

    #[test]
    #[should_panic(expected = "multiples of 4")]
    fn paper_testbed_rejects_odd_core_counts() {
        ClusterConfig::paper_testbed(6);
    }

    #[test]
    fn node_mapping() {
        let cl = Cluster::new(ClusterConfig { nodes: 2, cores_per_node: 4, trace: false });
        assert_eq!(cl.node_of(0), 0);
        assert_eq!(cl.node_of(3), 0);
        assert_eq!(cl.node_of(4), 1);
        assert!(cl.same_node(1, 2));
        assert!(!cl.same_node(3, 4));
    }

    #[test]
    fn advance_collects_sorted_events() {
        let mut cl = Cluster::new(ClusterConfig { nodes: 1, cores_per_node: 2, trace: false });
        cl.start_fg(1, FgLabel { chare: 1 }, Dur::from_ms(2), 1.0);
        cl.start_fg(0, FgLabel { chare: 0 }, Dur::from_ms(1), 1.0);
        let ev = cl.advance_to(Time::from_us(10_000));
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0], (Time::from_us(1_000), CoreEvent::FgDone { core: 0 }));
        assert_eq!(ev[1], (Time::from_us(2_000), CoreEvent::FgDone { core: 1 }));
    }

    #[test]
    fn trace_enabled_records() {
        let mut cl = Cluster::new(ClusterConfig { nodes: 1, cores_per_node: 1, trace: true });
        cl.start_fg(0, FgLabel { chare: 0 }, Dur::from_ms(1), 1.0);
        cl.advance_to(Time::from_us(1_000));
        let log = cl.take_trace().unwrap();
        assert_eq!(log.intervals(0).len(), 1);
        assert!(cl.trace().is_none());
    }

    #[test]
    fn kill_and_restore_core_lifecycle() {
        let mut cl = Cluster::new(ClusterConfig { nodes: 2, cores_per_node: 2, trace: false });
        cl.start_fg(1, FgLabel { chare: 7 }, Dur::from_ms(5), 1.0);
        cl.add_bg(1, 9, Some(Dur::from_ms(50)), 1.0);
        assert!(cl.is_alive(1));
        let killed = cl.kill_core(1);
        assert_eq!(killed.aborted_fg, Some(FgLabel { chare: 7 }));
        assert_eq!(killed.evicted_bg, vec![(9, true)]);
        assert!(!cl.is_alive(1));
        assert_eq!(cl.num_alive(), 3);
        assert_eq!(cl.alive_mask(), vec![true, false, true, true]);
        // Second kill is a no-op.
        assert_eq!(cl.kill_core(1), KilledCore::default());
        // Dead core just idles.
        assert!(cl.advance_to(Time::from_us(10_000)).is_empty());
        assert_eq!(cl.core_stat(1).idle_us, 10_000);
        cl.restore_core(1);
        assert!(cl.is_alive(1));
        assert_eq!(cl.num_alive(), 4);
    }

    #[test]
    fn buddy_lands_on_next_node() {
        let cl = Cluster::new(ClusterConfig { nodes: 2, cores_per_node: 4, trace: false });
        assert_eq!(cl.buddy_of(0), 4);
        assert_eq!(cl.buddy_of(5), 1);
        assert!(!cl.same_node(0, cl.buddy_of(0)));
        assert_eq!(cl.cores_of_node(1), 4..8);
        // Single-node cluster: buddy is the neighbouring core.
        let one = Cluster::new(ClusterConfig { nodes: 1, cores_per_node: 4, trace: false });
        assert_eq!(one.buddy_of(3), 0);
    }

    #[test]
    fn bulk_advance_replays_a_measured_window() {
        // Measure a quiescent window on one cluster, replay it on a twin.
        let mk = || {
            let mut cl = Cluster::new(ClusterConfig { nodes: 1, cores_per_node: 2, trace: false });
            cl.start_fg(0, FgLabel { chare: 0 }, Dur::from_ms(1), 1.0);
            cl.advance_to(Time::from_us(1_000));
            cl
        };
        let mut slow = mk();
        let before = slow.stats();
        slow.advance_to(Time::from_us(9_000));
        let deltas: Vec<CoreStat> = slow
            .stats()
            .iter()
            .zip(&before)
            .map(|(now, b)| CoreStat {
                fg_us: now.fg_us - b.fg_us,
                bg_us: now.bg_us - b.bg_us,
                idle_us: now.idle_us - b.idle_us,
            })
            .collect();
        let mut fast = mk();
        fast.bulk_advance(Time::from_us(9_000), &deltas);
        assert_eq!(fast.stats(), slow.stats());
    }

    #[test]
    fn any_bg_tracks_residency() {
        let mut cl = Cluster::new(ClusterConfig { nodes: 1, cores_per_node: 2, trace: false });
        assert!(!cl.any_bg());
        cl.add_bg(1, 3, None, 1.0);
        assert!(cl.any_bg());
        cl.remove_bg(1, 3);
        assert!(!cl.any_bg());
    }

    #[test]
    fn stats_snapshot_all_cores() {
        let mut cl = Cluster::new(ClusterConfig { nodes: 1, cores_per_node: 3, trace: false });
        cl.add_bg(2, 0, None, 1.0);
        cl.advance_to(Time::from_us(5_000));
        let st = cl.stats();
        assert_eq!(st.len(), 3);
        assert_eq!(st[0].idle_us, 5_000);
        assert_eq!(st[2].bg_us, 5_000);
    }
}
