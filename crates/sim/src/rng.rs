//! Deterministic pseudo-random numbers.
//!
//! The simulator must be exactly reproducible from a seed (the experiment
//! harness averages three seeded runs, mirroring the paper's three repeated
//! measurements), so we carry our own tiny generator instead of depending on
//! OS entropy. The core is SplitMix64 (Steele et al., *Fast splittable
//! pseudorandom number generators*, OOPSLA 2014) feeding a xoshiro256++
//! state — both standard, well-tested constructions.

/// A named random stream derived from one scenario seed.
///
/// Every chaos layer (and every generator sub-stream in `cloudlb-vopr`)
/// draws its randomness from its *own* stream so that composed scenarios
/// never share RNG state: enabling the telemetry channel must not shift
/// the network channel's dice, and vice versa. The derivation is one
/// documented scheme — `stream_seed(root, layer) = root ^ layer.tag()` —
/// instead of per-layer hard-coded constants scattered across modules.
///
/// Tags are fixed 64-bit constants with high pairwise Hamming distance;
/// the two oldest (telemetry, network) keep the exact constants their
/// modules used before the scheme was unified, so every previously
/// published seeded run replays bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamLayer {
    /// `/proc/stat` corruption ([`crate::telemetry::TelemetryChannel`]).
    Telemetry,
    /// Message loss/duplication/reordering/partitions
    /// ([`crate::netfault::FaultyNetwork`]).
    NetFault,
    /// Scenario-generator sub-stream: cluster shape and heterogeneity.
    Topology,
    /// Scenario-generator sub-stream: application choice and run length.
    App,
    /// Scenario-generator sub-stream: LB arm selection.
    Arm,
    /// Scenario-generator sub-stream: interference (background jobs).
    Interference,
    /// Scenario-generator sub-stream: PE/node failure schedule.
    Failures,
    /// Scenario-generator sub-stream: network chaos knobs.
    NetScript,
    /// Scenario-generator sub-stream: telemetry corruption knobs.
    TelemetryScript,
    /// Elastic-membership chaos layer: preemption notices, revocations
    /// and node acquisitions ([`crate::membership::MembershipScript`]).
    Membership,
    /// Scenario-generator sub-stream: membership timeline knobs.
    MembershipScript,
}

impl StreamLayer {
    /// The layer's fixed xor tag. Tags must stay distinct forever — a
    /// collision would silently merge two layers' streams.
    pub const fn tag(self) -> u64 {
        match self {
            // Pre-unification constants, kept verbatim for replayability.
            StreamLayer::Telemetry => 0x7E1E_3E72_ACC0_0117,
            StreamLayer::NetFault => 0xF1AC_4E55_C0DE_2B1D,
            // New layers: arbitrary high-entropy constants.
            StreamLayer::Topology => 0x70B0_1061_5EED_0001,
            StreamLayer::App => 0xA4B1_1CA7_5EED_0002,
            StreamLayer::Arm => 0xBA1A_4CE2_5EED_0003,
            StreamLayer::Interference => 0x1A7E_2FE2_5EED_0004,
            StreamLayer::Failures => 0xFA11_0E5C_5EED_0005,
            StreamLayer::NetScript => 0x4E75_C217_5EED_0006,
            StreamLayer::TelemetryScript => 0x7E1E_5C17_5EED_0007,
            StreamLayer::Membership => 0x5107_4E07_5EED_0008,
            StreamLayer::MembershipScript => 0xE1A5_71C5_5EED_0009,
        }
    }

    /// Every layer, for exhaustiveness tests.
    pub const ALL: [StreamLayer; 11] = [
        StreamLayer::Telemetry,
        StreamLayer::NetFault,
        StreamLayer::Topology,
        StreamLayer::App,
        StreamLayer::Arm,
        StreamLayer::Interference,
        StreamLayer::Failures,
        StreamLayer::NetScript,
        StreamLayer::TelemetryScript,
        StreamLayer::Membership,
        StreamLayer::MembershipScript,
    ];
}

/// Derive a layer's stream seed from the scenario's root seed.
///
/// The scheme is a plain xor with a per-layer tag: cheap, invertible (so
/// no two roots collide within a layer), and stable across releases. The
/// seed then passes through [`SimRng::new`]'s SplitMix64 expansion, which
/// decorrelates the streams of different layers for the same root.
pub const fn stream_seed(root: u64, layer: StreamLayer) -> u64 {
    root ^ layer.tag()
}

/// [`SimRng`] for a layer's stream: `SimRng::new(stream_seed(root, layer))`.
pub fn stream_rng(root: u64, layer: StreamLayer) -> SimRng {
    SimRng::new(stream_seed(root, layer))
}

/// Deterministic RNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed the generator. Any value, including 0, yields a good stream.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SimRng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. `lo` must not exceed `hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift reduction.
    /// `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; guard the log argument away from zero.
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Split off an independent generator (for per-component streams).
    pub fn split(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_covers_range_uniformly() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn exp_mean_close() {
        let mut r = SimRng::new(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::new(9);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn stream_layer_tags_are_pairwise_distinct() {
        for (i, a) in StreamLayer::ALL.iter().enumerate() {
            for b in &StreamLayer::ALL[i + 1..] {
                assert_ne!(a.tag(), b.tag(), "{a:?} and {b:?} share a stream tag");
            }
        }
    }

    #[test]
    fn stream_seed_keeps_layers_apart_and_roots_apart() {
        // Same root, different layers → different streams.
        let mut seeds = std::collections::HashSet::new();
        for layer in StreamLayer::ALL {
            assert!(seeds.insert(stream_seed(42, layer)));
        }
        // Same layer, different roots → different streams (xor is invertible).
        assert_ne!(
            stream_seed(1, StreamLayer::Failures),
            stream_seed(2, StreamLayer::Failures)
        );
        // Deterministic.
        assert_eq!(
            stream_rng(7, StreamLayer::Arm).next_u64(),
            stream_rng(7, StreamLayer::Arm).next_u64()
        );
    }

    #[test]
    fn stream_seed_matches_pre_unification_constants() {
        // Replays of published seeded runs must not change: the telemetry
        // and network layers keep the xor constants their modules
        // hard-coded before the scheme existed.
        assert_eq!(stream_seed(5, StreamLayer::Telemetry), 5 ^ 0x7E1E_3E72_ACC0_0117);
        assert_eq!(stream_seed(5, StreamLayer::NetFault), 5 ^ 0xF1AC_4E55_C0DE_2B1D);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut a = SimRng::new(21);
        let mut s1 = a.split();
        let mut a2 = SimRng::new(21);
        let mut s2 = a2.split();
        assert_eq!(s1.next_u64(), s2.next_u64());
    }
}
