//! Randomized tests of the simulator substrate, driven by the simulator's
//! own deterministic `SimRng` from fixed seeds (reproducible corpus, no
//! external property-test crate).

use cloudlb_sim::core_sched::{Core, FgLabel};
use cloudlb_sim::{Dur, EventQueue, PowerModel, SimRng, Time};

const CASES: usize = 256;

/// The event queue is a stable priority queue: pops are sorted by
/// time, and equal times preserve insertion order.
#[test]
fn event_queue_pops_sorted_and_stable() {
    let mut rng = SimRng::new(0x00E0_E001);
    for _ in 0..CASES {
        let len = rng.range_u64(1, 200) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.below(1_000)).collect();
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(Time::from_us(t), seq);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                assert!(t > lt || (t == lt && seq > lseq), "order violated");
            }
            last = Some((t, seq));
        }
    }
}

/// Cancelled events never pop; everything else does, exactly once.
#[test]
fn event_queue_cancellation() {
    let mut rng = SimRng::new(0x00E0_E002);
    for _ in 0..CASES {
        let len = rng.range_u64(1, 100) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.below(1_000)).collect();
        let cancel_mask: Vec<bool> = (0..len).map(|_| rng.below(2) == 0).collect();
        let mut q = EventQueue::new();
        let handles: Vec<cloudlb_sim::EventHandle> =
            times.iter().enumerate().map(|(i, &t)| q.schedule(Time::from_us(t), i)).collect();
        let mut cancelled = std::collections::HashSet::new();
        for (h, &c) in handles.iter().zip(&cancel_mask) {
            if c && q.cancel(*h).is_some() {
                cancelled.insert(*h);
            }
        }
        let mut popped = 0usize;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, times.len() - cancelled.len());
    }
}

/// CPU accounting is conserved on a shared core: fg + bg + idle equals
/// wall time (within per-segment rounding).
#[test]
fn core_accounting_conserved() {
    let mut rng = SimRng::new(0x00E0_E003);
    for _ in 0..CASES {
        let ndemands = rng.range_u64(1, 30) as usize;
        let fg_demands: Vec<u64> = (0..ndemands).map(|_| rng.range_u64(1, 5_000)).collect();
        let bg_weight = rng.range_f64(0.25, 4.0);
        let bg_demand =
            (rng.below(2) == 0).then(|| rng.range_u64(10_000, 200_000));
        let horizon = rng.range_u64(200_000, 400_000);

        let mut core = Core::new(0);
        core.add_bg(0, bg_demand.map(Dur::from_us), bg_weight);
        let mut events = Vec::new();
        let mut segments = 0u64;
        // Run fg tasks back-to-back until the horizon.
        let mut demands = fg_demands.iter().cycle();
        while core.accounted_until() < Time::from_us(horizon) {
            if !core.fg_busy() {
                let d = *demands.next().expect("cycle");
                core.start_fg(FgLabel { chare: 0 }, Dur::from_us(d), 1.0);
            }
            let next = core
                .next_completion()
                .unwrap_or(Time::from_us(horizon))
                .min(Time::from_us(horizon));
            core.advance(next, &mut events, None);
            segments += 1;
            assert!(segments < 100_000, "runaway loop");
        }
        let s = core.stat();
        let total = s.fg_us + s.bg_us + s.idle_us;
        let drift = (total as i64 - horizon as i64).abs();
        assert!(drift <= segments as i64 + 2, "accounted {total} vs {horizon}");
    }
}

/// A foreground task's wall time on a shared core matches the share
/// math: wall = cpu × (w_fg + w_bg) / w_fg while the bg is present.
#[test]
fn core_sharing_matches_analytics() {
    let mut rng = SimRng::new(0x00E0_E004);
    for _ in 0..CASES {
        let cpu_us = rng.range_u64(100, 100_000);
        let w_bg = rng.range_f64(0.5, 4.0);
        let mut core = Core::new(0);
        core.add_bg(0, None, w_bg);
        core.start_fg(FgLabel { chare: 0 }, Dur::from_us(cpu_us), 1.0);
        let done = core.next_completion().expect("finite fg");
        let expected = cpu_us as f64 * (1.0 + w_bg);
        let got = done.as_us() as f64;
        assert!((got - expected).abs() <= expected * 1e-6 + 2.0, "{got} vs {expected}");
    }
}

/// Node power always sits inside the [base, max] envelope and energy
/// equals avg_power × time × nodes.
#[test]
fn power_envelope() {
    let mut rng = SimRng::new(0x00E0_E005);
    for _ in 0..CASES {
        let horizon = rng.range_u64(1_000_000, 2_000_000);
        let busy: Vec<(u64, u64)> =
            (0..4).map(|_| (rng.below(1_000_000), rng.below(1_000_000))).collect();
        let model = PowerModel::default();
        let stats: Vec<_> = busy
            .iter()
            .map(|&(fg, bg)| {
                let fg = fg.min(horizon);
                let bg = bg.min(horizon - fg);
                cloudlb_sim::core_sched::CoreStat {
                    fg_us: fg,
                    bg_us: bg,
                    idle_us: horizon - fg - bg,
                }
            })
            .collect();
        let r = model.energy(&stats, 4, Time::from_us(horizon));
        assert!(r.avg_power_per_node_w >= model.base_w - 1e-9);
        assert!(r.avg_power_per_node_w <= model.max_w + 1e-9);
        let recomputed = r.avg_power_per_node_w * r.duration_s * r.nodes as f64;
        assert!((recomputed - r.energy_j).abs() < 1e-6 * r.energy_j.max(1.0));
    }
}

/// Random interference scripts are well-formed and deterministic.
#[test]
fn random_scripts_are_sane() {
    use cloudlb_sim::interference::{BgAction, BgScript};
    let mut rng = SimRng::new(0x00E0_E006);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let cores = rng.range_u64(1, 32) as usize;
        let horizon = Time::from_us(500_000);
        let s1 = BgScript::random(
            &mut SimRng::new(seed),
            cores,
            horizon,
            Dur::from_ms(50),
            Dur::from_ms(40),
            1.0,
            0,
        );
        let s2 = BgScript::random(
            &mut SimRng::new(seed),
            cores,
            horizon,
            Dur::from_ms(50),
            Dur::from_ms(40),
            1.0,
            0,
        );
        assert_eq!(&s1, &s2);
        // Sorted, starts within horizon, every start eventually stopped.
        let mut open = std::collections::HashSet::new();
        let mut last = Time::ZERO;
        for (t, a) in &s1.actions {
            assert!(*t >= last);
            last = *t;
            match a {
                BgAction::Start { job, core, .. } => {
                    assert!(*t < horizon);
                    assert!(*core < cores);
                    open.insert(*job);
                }
                BgAction::Stop { job, .. } => {
                    assert!(open.remove(job), "stop without start");
                }
            }
        }
        assert!(open.is_empty(), "unterminated pulses: {open:?}");
    }
}
