//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` crate's [`Value`] data model as JSON text.
//!
//! The API mirrors the subset of stock serde_json this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`from_slice`],
//! [`Value`] with `v["key"]` indexing, and a Display-able [`Error`].

pub use serde::Value;

/// JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Serialize any value into the [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Keep a fractional marker so floats stay floats on re-read
                // when the value happens to be integral.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&format!("{n}"));
                }
            } else {
                // Stock serde_json refuses non-finite floats; emitting null
                // keeps diagnostics flowing instead of failing the dump.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) =>
            write_seq(out, items.iter(), items.len(), indent, depth, '[', ']', |out, item, ind, d| {
                write_value(out, item, ind, d)
            }),
        Value::Object(fields) =>
            write_seq(out, fields.iter(), fields.len(), indent, depth, '{', '}', |out, (k, fv), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, fv, ind, d);
            }),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I, F>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: Iterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::new(format!("unexpected `{}` at byte {}", c as char, self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, c as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.peek()?;
            let key = self.string()?;
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for this stub;
                            // BMP scalars cover everything the repo emits.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u scalar"))?,
                            );
                        }
                        c => {
                            return Err(Error::new(format!("bad escape `\\{}`", c as char)));
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let src = r#"{"a": [1, -2, 3.5, true, null, "x\ny"], "b": {"c": []}}"#;
        let v: Value = from_str(src).expect("parses");
        assert_eq!(v["a"][0], 1u64.into_value());
        let text = to_string_pretty(&v).expect("prints");
        let back: Value = from_str(&text).expect("re-parses");
        assert_eq!(v, back);
    }

    trait IntoValue {
        fn into_value(self) -> Value;
    }
    impl IntoValue for u64 {
        fn into_value(self) -> Value {
            Value::U64(self)
        }
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&2.0f64).expect("prints");
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).expect("parses");
        assert_eq!(back, 2.0);
    }

    #[test]
    fn errors_carry_positions() {
        let err = from_str::<Value>("{\"a\": }").expect_err("must fail");
        assert!(err.to_string().contains("byte"), "{err}");
    }
}
