//! `cloudlb-bench` — refresh the machine-readable perf baselines.
//!
//! ```text
//! cargo run -p cloudlb-bench --release            # full matrix
//! CLOUDLB_FAST=1 cargo run -p cloudlb-bench --release   # smoke matrix
//! cargo run -p cloudlb-bench --release -- scale   # BENCH_scale.json only
//! ```
//!
//! Runs the paper-sweep throughput baseline (fast-forward off) and the
//! fast-forward differential/throughput sweep, then writes each
//! `BENCH_<name>.json` record to **both** `crates/bench/baselines/` (the
//! checked-in copies CI gates against) and the repository root (the
//! at-a-glance copies next to EXPERIMENTS.md). Exits non-zero if the
//! fast-forward differential check finds any divergence.
//!
//! The `scale` subcommand refreshes only the 32k-core / 1M-chare scale
//! baseline (`BENCH_scale.json`), with the same dual-destination write
//! and the same hard gates as the `scale` bench target. The `pipeline`
//! subcommand does the same for the streaming sweep-engine baseline
//! (`BENCH_pipeline.json`), including the bit-identity, skew-ratio and
//! live-results-bound gates of the `pipeline` bench target.
//!
//! The usual knobs apply: `CLOUDLB_FAST`, `CLOUDLB_SEEDS`,
//! `CLOUDLB_JOBS`, `CLOUDLB_SCALE_BUDGET_S` (see the crate docs).

use cloudlb_bench::baseline::write_json_at;
use cloudlb_bench::{header, sweeps, Settings};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// `crates/bench/baselines/` and the repository root, both resolved from
/// this crate's manifest so the bin works from any working directory.
fn target_dirs() -> Vec<PathBuf> {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let baselines = manifest.join("baselines");
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf();
    vec![baselines, root]
}

fn write_everywhere<T: Serialize>(name: &str, record: &T) {
    for dir in target_dirs() {
        let path = write_json_at(&dir, name, record);
        println!("wrote {}", path.display());
    }
}

fn main() {
    let s = Settings::from_env();

    if std::env::args().nth(1).as_deref() == Some("pipeline") {
        header("Pipeline — streaming sweep engine");
        match sweeps::pipeline_sweep(&s) {
            Ok(record) => write_everywhere(&record.name, &record),
            Err(e) => {
                eprintln!("PIPELINE GATE FAILED: {e}");
                std::process::exit(1);
            }
        }
        println!("\npipeline baseline refreshed");
        return;
    }

    if std::env::args().nth(1).as_deref() == Some("scale") {
        header("Scale — 32k cores / 1M chares");
        match sweeps::scale_sweep(&s) {
            Ok(record) => write_everywhere(&record.name, &record),
            Err(e) => {
                eprintln!("SCALE GATE FAILED: {e}");
                std::process::exit(1);
            }
        }
        println!("\nscale baseline refreshed");
        return;
    }

    header("Perf baseline — paper sweep throughput");
    let perf = sweeps::perf_sweep(&s);
    write_everywhere(&perf.name, &perf);

    header("Fast-forward — differential check + throughput");
    match sweeps::fastforward_sweep(&s) {
        Ok(record) => write_everywhere(&record.name, &record),
        Err(e) => {
            eprintln!("DIVERGENCE: {e}");
            std::process::exit(1);
        }
    }

    println!("\nbaselines refreshed");
}
