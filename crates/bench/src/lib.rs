#![warn(missing_docs)]
//! Shared plumbing for the figure-regeneration benches.
//!
//! Every bench target is a `harness = false` binary that runs the
//! relevant experiment and prints the same rows/series the paper reports
//! (EXPERIMENTS.md archives one run of each). Environment knobs:
//!
//! * `CLOUDLB_FAST=1` — shrink the matrix (fewer seeds/iterations) for
//!   smoke runs;
//! * `CLOUDLB_SEEDS=a,b,c` — override the seed list;
//! * `CLOUDLB_JOBS=n` — worker count for the parallel sweep engine
//!   (default: all available cores);
//! * `CLOUDLB_BENCH_DIR=dir` — where perf benches write their
//!   `BENCH_<name>.json` baselines (default: current directory);
//! * `CLOUDLB_CHECK=path` — compare the fresh run against a checked-in
//!   baseline and exit non-zero on a > 25 % events/sec regression.

pub mod baseline;
pub mod sweeps;

/// Benchmark-wide settings resolved from the environment.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Core counts for the Fig. 2 / Fig. 4 sweeps.
    pub cores: Vec<usize>,
    /// Iterations per run.
    pub iterations: usize,
    /// Seeds to average (the paper averages three runs).
    pub seeds: Vec<u64>,
    /// Worker count for the parallel sweep engine.
    pub jobs: usize,
    /// Whether `CLOUDLB_FAST` shrank the matrix.
    pub fast: bool,
}

impl Settings {
    /// Resolve settings from the environment.
    pub fn from_env() -> Self {
        let fast = std::env::var("CLOUDLB_FAST").is_ok_and(|v| v != "0");
        let seeds = std::env::var("CLOUDLB_SEEDS")
            .ok()
            .map(|s| {
                s.split(',')
                    .map(|x| x.trim().parse().expect("CLOUDLB_SEEDS: bad integer"))
                    .collect::<Vec<u64>>()
            })
            .unwrap_or_else(|| if fast { vec![1] } else { vec![1, 2, 3] });
        assert!(!seeds.is_empty(), "CLOUDLB_SEEDS must not be empty");
        Settings {
            cores: if fast { vec![4, 8] } else { vec![4, 8, 16, 32] },
            iterations: if fast { 60 } else { 100 },
            seeds,
            jobs: cloudlb_core::default_jobs(),
            fast,
        }
    }
}

/// Print a bench section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settings_match_paper_matrix() {
        // (Runs without the env vars set in CI.)
        if std::env::var("CLOUDLB_FAST").is_err() && std::env::var("CLOUDLB_SEEDS").is_err() {
            let s = Settings::from_env();
            assert_eq!(s.cores, vec![4, 8, 16, 32]);
            assert_eq!(s.seeds.len(), 3);
            assert_eq!(s.iterations, 100);
            assert!(!s.fast);
            assert!(s.jobs >= 1);
        }
    }
}
