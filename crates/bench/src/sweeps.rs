//! The perf sweeps behind `BENCH_*.json`, shared by the `harness = false`
//! bench targets and the `cloudlb-bench` baseline-refresh binary.

use crate::baseline::{ScaleRecord, SweepRecord};
use crate::Settings;
use cloudlb_apps::grids::{near_square_factors, Block2D};
use cloudlb_apps::Jacobi2D;
use cloudlb_core::{evaluate_cells, par_map, run_scenario, CellSpec, Scenario};
use cloudlb_runtime::{FastForward, RunResult, SimExecutor};
use std::time::Instant;

/// The paper-sweep throughput baseline (`BENCH_fast.json` /
/// `BENCH_sweep.json`): the full Fig. 2 / Fig. 4 matrix through the
/// parallel sweep engine, fast-forward pinned OFF so the record measures
/// the raw event-by-event engine, plus the informational flaky-network
/// probe. Prints progress; returns the record to serialize.
pub fn perf_sweep(s: &Settings) -> SweepRecord {
    let name = if s.fast { "fast" } else { "sweep" };
    println!(
        "(cores {:?}, {} iterations, seeds {:?}, jobs {})",
        s.cores, s.iterations, s.seeds, s.jobs
    );

    // Fast-forward is pinned OFF: this baseline measures the raw
    // event-by-event engine, and the macro-stepper has its own dedicated
    // baseline (`BENCH_fastforward.json`, see [`fastforward_sweep`]).
    let cells: Vec<CellSpec> = ["jacobi2d", "wave2d", "mol3d"]
        .iter()
        .flat_map(|app| {
            s.cores.iter().map(move |&c| {
                let mut cell = CellSpec::paper(app, c, s.iterations, "cloudrefine");
                cell.fast_forward = FastForward::Off;
                cell
            })
        })
        .collect();
    let runs = cells.len() * s.seeds.len() * 3;

    let t0 = Instant::now();
    let points = evaluate_cells(&cells, &s.seeds, s.jobs);
    let wall_s = t0.elapsed().as_secs_f64();

    let sim_events: u64 = points.iter().map(|p| p.sim_events).sum();
    let peak_queue_depth = points.iter().map(|p| p.peak_queue_depth).max().unwrap_or(0);
    let events_per_sec = sim_events as f64 / wall_s;
    println!(
        "{} runs in {:.2}s — {:.0} events/s ({} events, peak queue depth {})",
        runs, wall_s, events_per_sec, sim_events, peak_queue_depth
    );

    // Informational flaky-network probe: the same apps under the
    // `flaky_cloud` degradation model, at the largest core count. Chaos
    // runs are legitimately slower (retries, partitions), so this arm is
    // recorded but never gated — the regression gate stays on the clean
    // sweep, proving the chaos layer is free when disabled.
    let probe_cores = s.cores.iter().copied().max().unwrap_or(8);
    let probe: Vec<Scenario> = ["jacobi2d", "wave2d", "mol3d"]
        .iter()
        .flat_map(|app| {
            s.seeds.iter().map(move |&seed| {
                let mut scn = Scenario::flaky_cloud(app, probe_cores, "cloudrefine");
                scn.iterations = s.iterations;
                scn.seed = seed;
                scn
            })
        })
        .collect();
    let probe_runs = probe.len();
    let t1 = Instant::now();
    let results = par_map(s.jobs, probe, |scn| run_scenario(&scn));
    let flaky_wall_s = t1.elapsed().as_secs_f64();
    let flaky_events: u64 = results.iter().map(|r| r.sim_events).sum();
    let flaky_events_per_sec = flaky_events as f64 / flaky_wall_s;
    let retries: u64 = results.iter().map(|r| r.net.migration_retries).sum();
    let aborts: u64 = results.iter().map(|r| r.net.migration_aborts).sum();
    println!(
        "flaky probe: {} runs in {:.2}s — {:.0} events/s \
         ({} migration retries, {} aborts; informational, not gated)",
        probe_runs, flaky_wall_s, flaky_events_per_sec, retries, aborts
    );

    // Informational spot-storm probe: the same apps under the elastic
    // `spot_storm` preset (acquire, then revoke both original nodes with
    // lead time). Evacuation churn is legitimately slower, so like the
    // flaky arm this is recorded but never gated — the regression gate
    // stays on the clean sweep, proving the membership layer is free when
    // disabled.
    let storm: Vec<Scenario> = ["jacobi2d", "wave2d", "mol3d"]
        .iter()
        .flat_map(|app| {
            s.seeds.iter().map(move |&seed| {
                let mut scn = Scenario::spot_storm(app, probe_cores, "cloudrefine");
                scn.iterations = s.iterations;
                scn.seed = seed;
                scn
            })
        })
        .collect();
    let storm_runs = storm.len();
    let t2 = Instant::now();
    let results = par_map(s.jobs, storm, |scn| run_scenario(&scn));
    let storm_wall_s = t2.elapsed().as_secs_f64();
    let storm_events: u64 = results.iter().map(|r| r.sim_events).sum();
    let storm_events_per_sec = storm_events as f64 / storm_wall_s;
    let drained: usize = results.iter().map(|r| r.elastic.chares_drained).sum();
    let rolled_back: usize = results.iter().map(|r| r.elastic.chares_rolled_back).sum();
    println!(
        "spot-storm probe: {} runs in {:.2}s — {:.0} events/s \
         ({} chares drained, {} rolled back; informational, not gated)",
        storm_runs, storm_wall_s, storm_events_per_sec, drained, rolled_back
    );

    SweepRecord {
        name: name.to_string(),
        fast: s.fast,
        jobs: s.jobs,
        cores: s.cores.clone(),
        seeds: s.seeds.clone(),
        iterations: s.iterations,
        runs,
        wall_s,
        sim_events,
        events_per_sec,
        peak_queue_depth,
        flaky_wall_s,
        flaky_events_per_sec,
        storm_wall_s,
        storm_events_per_sec,
        ff_windows: points.iter().map(|p| p.ff_windows).sum(),
        events_skipped: points.iter().map(|p| p.events_skipped).sum(),
        // No fast-forward comparison arm in this sweep (it pins the
        // engine off): the off-arm fields are genuinely absent, not 0.
        off_wall_s: None,
        off_events_per_sec: None,
        speedup: None,
    }
}

/// The clean long-run sweep behind `BENCH_fastforward.json`: every app on
/// every core count, both a settled `nolb` arm and a `cloudrefine` arm,
/// no interference.
fn ff_scenarios(s: &Settings, iterations: usize, ff: FastForward) -> Vec<Scenario> {
    let mut out = Vec::new();
    for app in ["jacobi2d", "wave2d", "mol3d", "stencil3d"] {
        for &cores in &s.cores {
            for strategy in ["nolb", "cloudrefine"] {
                for &seed in &s.seeds {
                    let mut scn = Scenario::paper(app, cores, strategy).base_of();
                    scn.strategy = strategy.to_string();
                    scn.iterations = iterations;
                    scn.seed = seed;
                    scn.fast_forward = ff;
                    out.push(scn);
                }
            }
        }
    }
    out
}

fn ff_run(s: &Settings, iterations: usize, ff: FastForward) -> (Vec<RunResult>, f64) {
    let t0 = Instant::now();
    let results = par_map(s.jobs, ff_scenarios(s, iterations, ff), |scn| run_scenario(&scn));
    (results, t0.elapsed().as_secs_f64())
}

/// Differential check + throughput for the fast-forward engine: run the
/// clean long sweep with the macro-stepper OFF and ON, compare every
/// `RunResult` bit for bit (after scrubbing the two observability
/// counters), and return the record for `BENCH_fastforward.json`.
/// `Err` lists the diverging runs — callers exit non-zero on it.
pub fn fastforward_sweep(s: &Settings) -> Result<SweepRecord, String> {
    // Long horizons amortize the one live capture window per template.
    let iterations = if s.fast { 300 } else { 1000 };
    println!(
        "(cores {:?}, {} iterations, seeds {:?}, jobs {}, clean network)",
        s.cores, iterations, s.seeds, s.jobs
    );

    let (off, off_wall_s) = ff_run(s, iterations, FastForward::Off);
    let (on, wall_s) = ff_run(s, iterations, FastForward::On);
    let runs = on.len();

    // Aggregate the ON arm before the differential check consumes it.
    let sim_events: u64 = on.iter().map(|r| r.sim_events).sum();
    let ff_windows: usize = on.iter().map(|r| r.ff_windows).sum();
    let events_skipped: u64 = on.iter().map(|r| r.events_skipped).sum();
    let peak_queue_depth = on.iter().map(|r| r.peak_queue_depth).max().unwrap_or(0);

    // Hard gate: bit-identical physics, run by run.
    let mut divergent = Vec::new();
    for (i, (scn, (a, b))) in ff_scenarios(s, iterations, FastForward::On)
        .iter()
        .zip(on.into_iter().zip(off))
        .enumerate()
    {
        assert!(a.ff_windows > 0, "run {i} ({}/{}) never fast-forwarded", scn.app, scn.cores);
        if a.scrub_ff() != b {
            divergent.push(format!(
                "run {i}: {} on {} cores, strategy {}, seed {}",
                scn.app, scn.cores, scn.strategy, scn.seed
            ));
        }
    }
    if !divergent.is_empty() {
        return Err(format!(
            "{}/{runs} runs diverged between fast-forward on and off:\n{}",
            divergent.len(),
            divergent.join("\n")
        ));
    }
    println!("differential check: {runs}/{runs} runs bit-identical across modes");

    // Throughput. `sim_events` counts skipped pops too, so the two modes
    // share a numerator and the wall-clock ratio is the whole story.
    let events_per_sec = sim_events as f64 / wall_s;
    let off_events_per_sec = sim_events as f64 / off_wall_s;
    let speedup = events_per_sec / off_events_per_sec;
    println!(
        "on:  {runs} runs in {wall_s:.2}s — {events_per_sec:.0} events/s \
         ({ff_windows} windows replayed, {events_skipped} of {sim_events} pops skipped)"
    );
    println!("off: {runs} runs in {off_wall_s:.2}s — {off_events_per_sec:.0} events/s");
    println!("speedup: {speedup:.2}x");

    Ok(SweepRecord {
        name: "fastforward".to_string(),
        fast: s.fast,
        jobs: s.jobs,
        cores: s.cores.clone(),
        seeds: s.seeds.clone(),
        iterations,
        runs,
        wall_s,
        sim_events,
        events_per_sec,
        peak_queue_depth,
        flaky_wall_s: 0.0,
        flaky_events_per_sec: 0.0,
        storm_wall_s: 0.0,
        storm_events_per_sec: 0.0,
        ff_windows,
        events_skipped,
        off_wall_s: Some(off_wall_s),
        off_events_per_sec: Some(off_events_per_sec),
        speedup: Some(speedup),
    })
}

/// Over-decomposition factor of the scale run: 32 chares per core, twice
/// the paper default, so refinement still has fine granules at 32k cores.
const SCALE_ODF: usize = 32;

/// Points per block edge in the scale grid. Small blocks keep per-task
/// compute tiny; the event count — what the simulator actually pays for —
/// is set by the chare count, not the block size.
const SCALE_BLOCK: usize = 32;

/// The paper's setup blown up to cloud-datacenter size, behind
/// `BENCH_scale.json`: a clean Jacobi2D run over 32,768 cores and
/// 1,048,576 chares (`CLOUDLB_FAST`: 2,048 cores / 65,536 chares) with
/// fast-forward pinned ON, under [`Scenario::scale`].
///
/// Four hard gates, any of which fails the bench:
/// 1. chare conservation — every chare mapped, every home a valid core;
/// 2. bit-identical rerun of the gated flat-CloudRefine arm;
/// 3. `CLOUDLB_SCALE_BUDGET_S` wall-clock budget on that arm (unset = no
///    budget);
/// 4. paper-scale quality parity — `hiercloudrefine` makespan within 5 %
///    of flat CloudRefine on the paper's 8 × 4-core cluster across three
///    seeds.
///
/// The hierarchical arm also runs at full scale (informational wall/
/// events, plus its makespan ratio against the flat arm — at scale the
/// clean run gives refinement little to do, so the ratio should sit at
/// 1.0 within noise).
pub fn scale_sweep(s: &Settings) -> Result<ScaleRecord, String> {
    let cores = if s.fast { 2_048 } else { 32_768 };
    let (cx, cy) = near_square_factors(SCALE_ODF * cores);
    let app = Jacobi2D::new(Block2D::new(cx * SCALE_BLOCK, cy * SCALE_BLOCK, cx, cy));
    let chares = app.grid.num_chares();
    let budget_s: Option<f64> = std::env::var("CLOUDLB_SCALE_BUDGET_S")
        .ok()
        .map(|v| v.parse().expect("CLOUDLB_SCALE_BUDGET_S: bad number"));
    let budget_str =
        budget_s.map_or_else(|| "none".to_string(), |b| format!("{b:.0}s"));
    println!(
        "({cores} cores, {chares} chares ({SCALE_ODF}/core), 30 iterations, \
         LB every 3, fast-forward ON, budget {budget_str})"
    );

    // Gated arm: flat CloudRefine.
    let scn = Scenario::scale("jacobi2d", cores, "cloudrefine");
    let t0 = Instant::now();
    let flat = SimExecutor::new(&app, scn.run_config(), scn.bg_script(&app)).run();
    let wall_s = t0.elapsed().as_secs_f64();
    let events_per_sec = flat.sim_events as f64 / wall_s;
    println!(
        "flat:  {wall_s:.2}s — {events_per_sec:.0} events/s ({} events, \
         {} windows replayed, {} pops skipped, peak queue {})",
        flat.sim_events, flat.ff_windows, flat.events_skipped, flat.peak_queue_depth
    );

    // Gate 1: chare conservation — the placement covers every chare and
    // never points outside the cluster.
    if flat.final_mapping.len() != chares {
        return Err(format!(
            "conservation: final mapping covers {} of {chares} chares",
            flat.final_mapping.len()
        ));
    }
    if let Some(&bad) = flat.final_mapping.iter().find(|&&pe| pe >= cores) {
        return Err(format!("conservation: a chare landed on core {bad} of {cores}"));
    }
    if flat.iter_times.len() != scn.iterations {
        return Err(format!(
            "run completed {} of {} iterations",
            flat.iter_times.len(),
            scn.iterations
        ));
    }

    // Gate 2: determinism — the same scenario rerun must be bit-identical.
    let rerun = SimExecutor::new(&app, scn.run_config(), scn.bg_script(&app)).run();
    if rerun != flat {
        return Err("rerun of the scale scenario diverged from the first run".to_string());
    }
    println!("rerun: bit-identical");

    // Gate 3: wall-clock budget on the gated arm.
    if let Some(budget) = budget_s {
        if wall_s > budget {
            return Err(format!(
                "budget: flat arm took {wall_s:.2}s, over the {budget:.0}s budget"
            ));
        }
    }

    // Informational at scale: the hierarchical arm.
    let hscn = Scenario::scale("jacobi2d", cores, "hiercloudrefine");
    let t1 = Instant::now();
    let hier = SimExecutor::new(&app, hscn.run_config(), hscn.bg_script(&app)).run();
    let hier_wall_s = t1.elapsed().as_secs_f64();
    let hier_events_per_sec = hier.sim_events as f64 / hier_wall_s;
    let hier_makespan_ratio = hier.app_time.as_secs_f64() / flat.app_time.as_secs_f64();
    println!(
        "hier:  {hier_wall_s:.2}s — {hier_events_per_sec:.0} events/s \
         (makespan ratio vs flat {hier_makespan_ratio:.4})"
    );

    // Gate 4: quality parity at the paper's own scale (8 nodes × 4
    // cores, interference on), where refinement genuinely works.
    let parity_cores = 32;
    let parity_seeds: Vec<u64> = vec![1, 2, 3];
    let mut parity_worst_ratio = 0.0f64;
    for &seed in &parity_seeds {
        let run_arm = |strategy: &str| {
            let mut scn = Scenario::paper("jacobi2d", parity_cores, strategy);
            scn.seed = seed;
            run_scenario(&scn)
        };
        let f = run_arm("cloudrefine");
        let h = run_arm("hiercloudrefine");
        let ratio = h.app_time.as_secs_f64() / f.app_time.as_secs_f64();
        println!("parity seed {seed}: hier/flat makespan {ratio:.4}");
        parity_worst_ratio = parity_worst_ratio.max(ratio);
        if ratio > 1.05 {
            return Err(format!(
                "parity: hiercloudrefine makespan is {:.1}% of flat CloudRefine \
                 at {parity_cores} cores, seed {seed} (allowed 105%)",
                ratio * 100.0
            ));
        }
    }

    Ok(ScaleRecord {
        name: "scale".to_string(),
        fast: s.fast,
        cores,
        chares,
        chares_per_core: SCALE_ODF,
        iterations: scn.iterations,
        lb_period: scn.lb_period,
        wall_s,
        sim_events: flat.sim_events,
        events_per_sec,
        peak_queue_depth: flat.peak_queue_depth,
        ff_windows: flat.ff_windows,
        events_skipped: flat.events_skipped,
        rerun_identical: true,
        hier_wall_s,
        hier_events_per_sec,
        hier_makespan_ratio,
        parity_cores,
        parity_seeds,
        parity_worst_ratio,
        budget_s,
    })
}
