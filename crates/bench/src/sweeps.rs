//! The perf sweeps behind `BENCH_*.json`, shared by the `harness = false`
//! bench targets and the `cloudlb-bench` baseline-refresh binary.

use crate::baseline::{PipelineRecord, ScaleRecord, SweepRecord};
use crate::Settings;
use cloudlb_apps::grids::{near_square_factors, Block2D};
use cloudlb_apps::Jacobi2D;
use cloudlb_core::{
    evaluate_cells, evaluate_cells_stream, par_map, pipeline_map, pipeline_stream,
    run_scenario, CellSpec, PipelineConfig, Scenario,
};
use cloudlb_runtime::{FastForward, RunResult, SimExecutor};
use std::time::{Duration, Instant};

/// The paper-sweep throughput baseline (`BENCH_fast.json` /
/// `BENCH_sweep.json`): the full Fig. 2 / Fig. 4 matrix through the
/// parallel sweep engine, fast-forward pinned OFF so the record measures
/// the raw event-by-event engine, plus the informational flaky-network
/// probe. Prints progress; returns the record to serialize.
pub fn perf_sweep(s: &Settings) -> SweepRecord {
    let name = if s.fast { "fast" } else { "sweep" };
    println!(
        "(cores {:?}, {} iterations, seeds {:?}, jobs {})",
        s.cores, s.iterations, s.seeds, s.jobs
    );

    // Fast-forward is pinned OFF: this baseline measures the raw
    // event-by-event engine, and the macro-stepper has its own dedicated
    // baseline (`BENCH_fastforward.json`, see [`fastforward_sweep`]).
    let cells: Vec<CellSpec> = ["jacobi2d", "wave2d", "mol3d"]
        .iter()
        .flat_map(|app| {
            s.cores.iter().map(move |&c| {
                let mut cell = CellSpec::paper(app, c, s.iterations, "cloudrefine");
                cell.fast_forward = FastForward::Off;
                cell
            })
        })
        .collect();
    let runs = cells.len() * s.seeds.len() * 3;

    let t0 = Instant::now();
    let points = evaluate_cells(&cells, &s.seeds, s.jobs);
    let wall_s = t0.elapsed().as_secs_f64();

    let sim_events: u64 = points.iter().map(|p| p.sim_events).sum();
    let peak_queue_depth = points.iter().map(|p| p.peak_queue_depth).max().unwrap_or(0);
    let events_per_sec = sim_events as f64 / wall_s;
    println!(
        "{} runs in {:.2}s — {:.0} events/s ({} events, peak queue depth {})",
        runs, wall_s, events_per_sec, sim_events, peak_queue_depth
    );

    // Informational flaky-network probe: the same apps under the
    // `flaky_cloud` degradation model, at the largest core count. Chaos
    // runs are legitimately slower (retries, partitions), so this arm is
    // recorded but never gated — the regression gate stays on the clean
    // sweep, proving the chaos layer is free when disabled.
    let probe_cores = s.cores.iter().copied().max().unwrap_or(8);
    let probe: Vec<Scenario> = ["jacobi2d", "wave2d", "mol3d"]
        .iter()
        .flat_map(|app| {
            s.seeds.iter().map(move |&seed| {
                let mut scn = Scenario::flaky_cloud(app, probe_cores, "cloudrefine");
                scn.iterations = s.iterations;
                scn.seed = seed;
                scn
            })
        })
        .collect();
    let probe_runs = probe.len();
    let t1 = Instant::now();
    let results = par_map(s.jobs, probe, |scn| run_scenario(&scn));
    let flaky_wall_s = t1.elapsed().as_secs_f64();
    let flaky_events: u64 = results.iter().map(|r| r.sim_events).sum();
    let flaky_events_per_sec = flaky_events as f64 / flaky_wall_s;
    let retries: u64 = results.iter().map(|r| r.net.migration_retries).sum();
    let aborts: u64 = results.iter().map(|r| r.net.migration_aborts).sum();
    println!(
        "flaky probe: {} runs in {:.2}s — {:.0} events/s \
         ({} migration retries, {} aborts; informational, not gated)",
        probe_runs, flaky_wall_s, flaky_events_per_sec, retries, aborts
    );

    // Informational spot-storm probe: the same apps under the elastic
    // `spot_storm` preset (acquire, then revoke both original nodes with
    // lead time). Evacuation churn is legitimately slower, so like the
    // flaky arm this is recorded but never gated — the regression gate
    // stays on the clean sweep, proving the membership layer is free when
    // disabled.
    let storm: Vec<Scenario> = ["jacobi2d", "wave2d", "mol3d"]
        .iter()
        .flat_map(|app| {
            s.seeds.iter().map(move |&seed| {
                let mut scn = Scenario::spot_storm(app, probe_cores, "cloudrefine");
                scn.iterations = s.iterations;
                scn.seed = seed;
                scn
            })
        })
        .collect();
    let storm_runs = storm.len();
    let t2 = Instant::now();
    let results = par_map(s.jobs, storm, |scn| run_scenario(&scn));
    let storm_wall_s = t2.elapsed().as_secs_f64();
    let storm_events: u64 = results.iter().map(|r| r.sim_events).sum();
    let storm_events_per_sec = storm_events as f64 / storm_wall_s;
    let drained: usize = results.iter().map(|r| r.elastic.chares_drained).sum();
    let rolled_back: usize = results.iter().map(|r| r.elastic.chares_rolled_back).sum();
    println!(
        "spot-storm probe: {} runs in {:.2}s — {:.0} events/s \
         ({} chares drained, {} rolled back; informational, not gated)",
        storm_runs, storm_wall_s, storm_events_per_sec, drained, rolled_back
    );

    SweepRecord {
        name: name.to_string(),
        fast: s.fast,
        jobs: s.jobs,
        cores: s.cores.clone(),
        seeds: s.seeds.clone(),
        iterations: s.iterations,
        runs,
        wall_s,
        sim_events,
        events_per_sec,
        peak_queue_depth,
        flaky_wall_s,
        flaky_events_per_sec,
        storm_wall_s,
        storm_events_per_sec,
        ff_windows: points.iter().map(|p| p.ff_windows).sum(),
        events_skipped: points.iter().map(|p| p.events_skipped).sum(),
        // No fast-forward comparison arm in this sweep (it pins the
        // engine off): the off-arm fields are genuinely absent, not 0.
        off_wall_s: None,
        off_events_per_sec: None,
        speedup: None,
    }
}

/// The clean long-run sweep behind `BENCH_fastforward.json`: every app on
/// every core count, both a settled `nolb` arm and a `cloudrefine` arm,
/// no interference.
fn ff_scenarios(s: &Settings, iterations: usize, ff: FastForward) -> Vec<Scenario> {
    let mut out = Vec::new();
    for app in ["jacobi2d", "wave2d", "mol3d", "stencil3d"] {
        for &cores in &s.cores {
            for strategy in ["nolb", "cloudrefine"] {
                for &seed in &s.seeds {
                    let mut scn = Scenario::paper(app, cores, strategy).base_of();
                    scn.strategy = strategy.to_string();
                    scn.iterations = iterations;
                    scn.seed = seed;
                    scn.fast_forward = ff;
                    out.push(scn);
                }
            }
        }
    }
    out
}

fn ff_run(s: &Settings, iterations: usize, ff: FastForward) -> (Vec<RunResult>, f64) {
    let t0 = Instant::now();
    let results = par_map(s.jobs, ff_scenarios(s, iterations, ff), |scn| run_scenario(&scn));
    (results, t0.elapsed().as_secs_f64())
}

/// Differential check + throughput for the fast-forward engine: run the
/// clean long sweep with the macro-stepper OFF and ON, compare every
/// `RunResult` bit for bit (after scrubbing the two observability
/// counters), and return the record for `BENCH_fastforward.json`.
/// `Err` lists the diverging runs — callers exit non-zero on it.
pub fn fastforward_sweep(s: &Settings) -> Result<SweepRecord, String> {
    // Long horizons amortize the one live capture window per template.
    let iterations = if s.fast { 300 } else { 1000 };
    println!(
        "(cores {:?}, {} iterations, seeds {:?}, jobs {}, clean network)",
        s.cores, iterations, s.seeds, s.jobs
    );

    let (off, off_wall_s) = ff_run(s, iterations, FastForward::Off);
    let (on, wall_s) = ff_run(s, iterations, FastForward::On);
    let runs = on.len();

    // Aggregate the ON arm before the differential check consumes it.
    let sim_events: u64 = on.iter().map(|r| r.sim_events).sum();
    let ff_windows: usize = on.iter().map(|r| r.ff_windows).sum();
    let events_skipped: u64 = on.iter().map(|r| r.events_skipped).sum();
    let peak_queue_depth = on.iter().map(|r| r.peak_queue_depth).max().unwrap_or(0);

    // Hard gate: bit-identical physics, run by run.
    let mut divergent = Vec::new();
    for (i, (scn, (a, b))) in ff_scenarios(s, iterations, FastForward::On)
        .iter()
        .zip(on.into_iter().zip(off))
        .enumerate()
    {
        assert!(a.ff_windows > 0, "run {i} ({}/{}) never fast-forwarded", scn.app, scn.cores);
        if a.scrub_ff() != b {
            divergent.push(format!(
                "run {i}: {} on {} cores, strategy {}, seed {}",
                scn.app, scn.cores, scn.strategy, scn.seed
            ));
        }
    }
    if !divergent.is_empty() {
        return Err(format!(
            "{}/{runs} runs diverged between fast-forward on and off:\n{}",
            divergent.len(),
            divergent.join("\n")
        ));
    }
    println!("differential check: {runs}/{runs} runs bit-identical across modes");

    // Throughput. `sim_events` counts skipped pops too, so the two modes
    // share a numerator and the wall-clock ratio is the whole story.
    let events_per_sec = sim_events as f64 / wall_s;
    let off_events_per_sec = sim_events as f64 / off_wall_s;
    let speedup = events_per_sec / off_events_per_sec;
    println!(
        "on:  {runs} runs in {wall_s:.2}s — {events_per_sec:.0} events/s \
         ({ff_windows} windows replayed, {events_skipped} of {sim_events} pops skipped)"
    );
    println!("off: {runs} runs in {off_wall_s:.2}s — {off_events_per_sec:.0} events/s");
    println!("speedup: {speedup:.2}x");

    Ok(SweepRecord {
        name: "fastforward".to_string(),
        fast: s.fast,
        jobs: s.jobs,
        cores: s.cores.clone(),
        seeds: s.seeds.clone(),
        iterations,
        runs,
        wall_s,
        sim_events,
        events_per_sec,
        peak_queue_depth,
        flaky_wall_s: 0.0,
        flaky_events_per_sec: 0.0,
        storm_wall_s: 0.0,
        storm_events_per_sec: 0.0,
        ff_windows,
        events_skipped,
        off_wall_s: Some(off_wall_s),
        off_events_per_sec: Some(off_events_per_sec),
        speedup: Some(speedup),
    })
}

/// Packets per straggler group in the skew arms: 16 uniform cells plus
/// one Mol3D-heavy straggler, matching the pipeline bench's contract.
const SKEW_GROUP: usize = 17;

/// Time a closure, returning its result and wall-clock seconds.
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Best wall-clock of `n` runs (later runs see warm caches; taking the
/// min of both sides of an A/B damps scheduler noise symmetrically).
fn best_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..n).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// Median wall-clock of three timings of `f` — the calibration runs are
/// single-digit milliseconds, where one preemption can double a sample.
fn median_of_3(mut f: impl FnMut() -> f64) -> f64 {
    let mut w = [f(), f(), f()];
    w.sort_by(f64::total_cmp);
    w[1]
}

/// The chunked-barrier schedule the pipeline replaced: process packets
/// `SKEW_GROUP` at a time through `par_map`, joining the pool between
/// chunks. Memory-bounded like the pipeline (≤ one chunk of results
/// resident), but every straggler parks the whole pool at its barrier.
fn chunked_par_map<T: Send + Clone, R: Send>(
    jobs: usize,
    items: &[T],
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    let mut out = Vec::with_capacity(items.len());
    for chunk in items.chunks(SKEW_GROUP) {
        out.extend(par_map(jobs, chunk.to_vec(), &f));
    }
    out
}

/// One uniform (Jacobi2D) run of the skew profile.
fn skew_uniform_scenario(s: &Settings, seed: u64) -> Scenario {
    let mut scn = Scenario::paper("jacobi2d", 4, "cloudrefine");
    scn.iterations = s.iterations;
    scn.seed = seed;
    scn
}

/// The Mol3D-heavy straggler of the skew profile.
fn skew_straggler_scenario(iterations: usize, seed: u64) -> Scenario {
    let mut scn = Scenario::paper("mol3d", 4, "cloudrefine");
    scn.iterations = iterations;
    scn.seed = seed;
    scn
}

/// The streaming-pipeline bench behind `BENCH_pipeline.json`: throughput,
/// utilization and memory-bound telemetry for the packet-based sweep
/// engine, gated against the chunked `par_map` schedule it replaced.
/// `Err` carries the first failed gate — callers exit non-zero on it.
///
/// The skew gate (≥ 1.3× over the chunked barrier on a one-straggler-in-
/// seventeen profile) is measured on a *replay* arm: per-packet costs are
/// calibrated on real Jacobi2D/Mol3D runs, then re-executed as timed
/// waits. Timed waits overlap on any host, so the arm measures the two
/// schedules rather than the machine's core count; the same profile over
/// real runs is recorded alongside (`skew_real_*`, informational — a
/// single-core host serializes both schedules to total work and its real
/// ratio sits at 1.0 by conservation of compute).
pub fn pipeline_sweep(s: &Settings) -> Result<PipelineRecord, String> {
    // Below 4 workers the scheduling comparison is vacuous (and at 1 the
    // pipeline legitimately short-circuits to a serial loop), so the
    // bench floors the pool size. Timed-wait packets keep the replay arm
    // meaningful even when the host has fewer cores than workers.
    let jobs = s.jobs.max(4);
    let cfg = PipelineConfig { jobs, reorder_window: 16 };
    let live_bound = cfg.window();
    println!(
        "(jobs {jobs}, reorder window {}, live bound {live_bound}, \
         {} iterations, seeds {:?})",
        cfg.reorder_window, s.iterations, s.seeds
    );

    // --- Uniform arm: the real cell matrix through the streaming engine.
    let cells: Vec<CellSpec> = ["jacobi2d", "wave2d", "mol3d"]
        .iter()
        .flat_map(|app| {
            s.cores.iter().map(move |&c| {
                let mut cell = CellSpec::paper(app, c, s.iterations, "cloudrefine");
                cell.fast_forward = FastForward::Off;
                cell
            })
        })
        .collect();
    let mut sim_events: u64 = 0;
    let mut points = 0usize;
    let stats = evaluate_cells_stream(&cells, &s.seeds, jobs, |_, p| {
        sim_events += p.sim_events;
        points += 1;
    });
    let events_per_sec = sim_events as f64 / stats.wall_s;
    let cells_per_sec = points as f64 / stats.wall_s;
    println!(
        "uniform: {} cells ({} runs) in {:.2}s — {:.0} events/s, {:.1} cells/s, \
         utilization {:.2}, reorder peak {}, live peak {} (bound {}), \
         {} injector claims, {} steals",
        points, stats.packets, stats.wall_s, events_per_sec, cells_per_sec,
        stats.utilization, stats.reorder_peak, stats.live_peak, live_bound,
        stats.injector_claims, stats.steals
    );
    if stats.live_peak > live_bound {
        return Err(format!(
            "memory bound: uniform arm held {} live results, over the bound {}",
            stats.live_peak, live_bound
        ));
    }

    // --- Uniform A/B: identical real packets through both substrates.
    let uniform_runs = if s.fast { 32 } else { 64 };
    let ab: Vec<Scenario> =
        (0..uniform_runs).map(|i| skew_uniform_scenario(s, 1 + i as u64)).collect();
    // Reps alternate par_map / pipeline so drifting background load hits
    // both sides of the A/B symmetrically; each side keeps its best rep.
    // 5 reps: the gated ratio sits near 1.0 by design, so a single noisy
    // rep on one side must not be able to drag the min under the gate.
    let mut par_results = Vec::new();
    let mut pipe_results = Vec::new();
    let mut uniform_par_map_wall_s = f64::INFINITY;
    let mut uniform_pipeline_wall_s = f64::INFINITY;
    for _ in 0..5 {
        let (r, w) = timed(|| par_map(jobs, ab.clone(), |scn| run_scenario(&scn)));
        par_results = r;
        uniform_par_map_wall_s = uniform_par_map_wall_s.min(w);
        let ((r, _), w) = timed(|| pipeline_map(&cfg, ab.clone(), |scn| run_scenario(&scn)));
        pipe_results = r;
        uniform_pipeline_wall_s = uniform_pipeline_wall_s.min(w);
    }
    if par_results != pipe_results {
        return Err(
            "uniform A/B: pipeline_map results diverged from par_map on \
             identical packets"
                .to_string(),
        );
    }
    let uniform_ratio = uniform_par_map_wall_s / uniform_pipeline_wall_s;
    println!(
        "uniform A/B: {uniform_runs} runs — par_map {uniform_par_map_wall_s:.3}s, \
         pipeline {uniform_pipeline_wall_s:.3}s, ratio {uniform_ratio:.2}x \
         (bit-identical results)"
    );
    if uniform_ratio < 0.9 {
        return Err(format!(
            "uniform A/B: pipeline is {uniform_ratio:.2}x of par_map on uniform \
             packets (allowed ≥ 0.9x)"
        ));
    }

    // --- Calibration: measure the skew profile's per-packet costs. The
    // straggler runs Mol3D for 20× the uniform iteration count — a fixed,
    // deterministic profile whose measured cost ratio (recorded below)
    // lands around 20× on this workload. Inferring an iteration count
    // from a short probe instead is unstable: Mol3D's setup cost
    // dominates short runs and skews any per-iteration estimate.
    run_scenario(&skew_uniform_scenario(s, 1)); // warm-up
    let u_s = median_of_3(|| timed(|| run_scenario(&skew_uniform_scenario(s, 1))).1);
    let straggler_iterations = 20 * s.iterations;
    let straggler_s = median_of_3(|| {
        timed(|| run_scenario(&skew_straggler_scenario(straggler_iterations, 1))).1
    });
    let uniform_run_ms = u_s * 1e3;
    let straggler_run_ms = straggler_s * 1e3;
    let straggler_cost_ratio = straggler_s / u_s;
    println!(
        "calibration: uniform run {uniform_run_ms:.1}ms, straggler \
         ({straggler_iterations} Mol3D iters) {straggler_run_ms:.1}ms — \
         {straggler_cost_ratio:.1}x"
    );

    // --- Skew replay arm (gated): measured costs as timed waits.
    // Replay durations are the measured ones, floored so OS sleep
    // granularity stays small relative to the packet and capped so the
    // arm stays a smoke-sized bench.
    let skew_replay_ms = uniform_run_ms.clamp(5.0, 25.0);
    let straggler_replay_ms = skew_replay_ms * straggler_cost_ratio;
    let skew_groups = if s.fast { 4 } else { 6 };
    let mut replay_packets: Vec<f64> = Vec::new();
    for _ in 0..skew_groups {
        replay_packets.extend(vec![skew_replay_ms; SKEW_GROUP - 1]);
        replay_packets.push(straggler_replay_ms);
    }
    let replay = |ms: f64| std::thread::sleep(Duration::from_secs_f64(ms / 1e3));
    // Interleave the three schedules rep by rep (min of 3 each) so a
    // transient host stall lands on all of them symmetrically instead of
    // flaking the gated ratio.
    let (mut skew_chunked_wall_s, mut skew_pipeline_wall_s, mut skew_unchunked_wall_s) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        skew_chunked_wall_s = skew_chunked_wall_s
            .min(timed(|| chunked_par_map(jobs, &replay_packets, replay)).1);
        skew_pipeline_wall_s = skew_pipeline_wall_s
            .min(timed(|| pipeline_map(&cfg, replay_packets.clone(), replay)).1);
        skew_unchunked_wall_s =
            skew_unchunked_wall_s.min(timed(|| par_map(jobs, replay_packets.clone(), replay)).1);
    }
    let skew_ratio = skew_chunked_wall_s / skew_pipeline_wall_s;
    let skew_unchunked_ratio = skew_unchunked_wall_s / skew_pipeline_wall_s;
    println!(
        "skew replay: {} packets ({} groups of {SKEW_GROUP}) — chunked \
         {skew_chunked_wall_s:.2}s, pipeline {skew_pipeline_wall_s:.2}s \
         ({skew_ratio:.2}x), unchunked par_map {skew_unchunked_wall_s:.2}s \
         ({skew_unchunked_ratio:.2}x, informational)",
        replay_packets.len(),
        skew_groups
    );
    if skew_ratio < 1.3 {
        return Err(format!(
            "skew gate: pipeline is only {skew_ratio:.2}x over the chunked \
             schedule on the straggler replay (needs ≥ 1.3x)"
        ));
    }

    // --- Skew real arm (informational): the same profile, real runs.
    let real_groups = 2usize;
    let real_packets: Vec<Scenario> = (0..real_groups)
        .flat_map(|g| {
            (0..SKEW_GROUP - 1)
                .map(move |i| skew_uniform_scenario(s, 1 + (g * SKEW_GROUP + i) as u64))
                .chain(std::iter::once(skew_straggler_scenario(
                    straggler_iterations,
                    1 + g as u64,
                )))
        })
        .collect();
    let skew_real_chunked_wall_s = best_of(3, || {
        timed(|| chunked_par_map(jobs, &real_packets, |scn| run_scenario(&scn))).1
    });
    let skew_real_pipeline_wall_s = best_of(3, || {
        timed(|| pipeline_map(&cfg, real_packets.clone(), |scn| run_scenario(&scn))).1
    });
    let skew_real_ratio = skew_real_chunked_wall_s / skew_real_pipeline_wall_s;
    println!(
        "skew real: {} runs — chunked {skew_real_chunked_wall_s:.2}s, pipeline \
         {skew_real_pipeline_wall_s:.2}s ({skew_real_ratio:.2}x; informational, \
         capacity-bound on hosts with fewer cores than workers)",
        real_packets.len()
    );

    // --- Flood arm: the memory bound under tens of thousands of packets.
    let flood_packets = 20_000usize;
    let mut checksum = 0u64;
    let flood_stats = pipeline_stream(
        &cfg,
        0..flood_packets as u64,
        |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13),
        |_, r| checksum = checksum.wrapping_add(r),
    );
    println!(
        "flood: {} packets in {:.2}s — {:.0} packets/s, live peak {} (bound {}), \
         reorder peak {} (checksum {checksum:#x})",
        flood_packets, flood_stats.wall_s, flood_stats.packets_per_sec,
        flood_stats.live_peak, live_bound, flood_stats.reorder_peak
    );
    if flood_stats.live_peak > live_bound {
        return Err(format!(
            "memory bound: flood arm held {} live results, over the bound {} \
             ({} packets)",
            flood_stats.live_peak, live_bound, flood_packets
        ));
    }

    Ok(PipelineRecord {
        name: "pipeline".to_string(),
        fast: s.fast,
        jobs,
        seeds: s.seeds.clone(),
        iterations: s.iterations,
        cells: points,
        wall_s: stats.wall_s,
        sim_events,
        events_per_sec,
        cells_per_sec,
        utilization: stats.utilization,
        reorder_peak: stats.reorder_peak,
        live_peak: stats.live_peak,
        live_bound,
        injector_claims: stats.injector_claims,
        steals: stats.steals,
        uniform_runs,
        uniform_par_map_wall_s,
        uniform_pipeline_wall_s,
        uniform_ratio,
        uniform_identical: true,
        uniform_run_ms,
        straggler_iterations,
        straggler_run_ms,
        straggler_cost_ratio,
        skew_groups,
        skew_replay_ms,
        skew_chunked_wall_s,
        skew_pipeline_wall_s,
        skew_ratio,
        skew_unchunked_wall_s,
        skew_unchunked_ratio,
        skew_real_chunked_wall_s,
        skew_real_pipeline_wall_s,
        skew_real_ratio,
        flood_packets,
        flood_live_peak: flood_stats.live_peak,
        flood_reorder_peak: flood_stats.reorder_peak,
        flood_packets_per_sec: flood_stats.packets_per_sec,
    })
}

/// Over-decomposition factor of the scale run: 32 chares per core, twice
/// the paper default, so refinement still has fine granules at 32k cores.
const SCALE_ODF: usize = 32;

/// Points per block edge in the scale grid. Small blocks keep per-task
/// compute tiny; the event count — what the simulator actually pays for —
/// is set by the chare count, not the block size.
const SCALE_BLOCK: usize = 32;

/// The paper's setup blown up to cloud-datacenter size, behind
/// `BENCH_scale.json`: a clean Jacobi2D run over 32,768 cores and
/// 1,048,576 chares (`CLOUDLB_FAST`: 2,048 cores / 65,536 chares) with
/// fast-forward pinned ON, under [`Scenario::scale`].
///
/// Four hard gates, any of which fails the bench:
/// 1. chare conservation — every chare mapped, every home a valid core;
/// 2. bit-identical rerun of the gated flat-CloudRefine arm;
/// 3. `CLOUDLB_SCALE_BUDGET_S` wall-clock budget on that arm (unset = no
///    budget);
/// 4. paper-scale quality parity — `hiercloudrefine` makespan within 5 %
///    of flat CloudRefine on the paper's 8 × 4-core cluster across three
///    seeds.
///
/// The hierarchical arm also runs at full scale (informational wall/
/// events, plus its makespan ratio against the flat arm — at scale the
/// clean run gives refinement little to do, so the ratio should sit at
/// 1.0 within noise).
pub fn scale_sweep(s: &Settings) -> Result<ScaleRecord, String> {
    let cores = if s.fast { 2_048 } else { 32_768 };
    let (cx, cy) = near_square_factors(SCALE_ODF * cores);
    let app = Jacobi2D::new(Block2D::new(cx * SCALE_BLOCK, cy * SCALE_BLOCK, cx, cy));
    let chares = app.grid.num_chares();
    let budget_s: Option<f64> = std::env::var("CLOUDLB_SCALE_BUDGET_S")
        .ok()
        .map(|v| v.parse().expect("CLOUDLB_SCALE_BUDGET_S: bad number"));
    let budget_str =
        budget_s.map_or_else(|| "none".to_string(), |b| format!("{b:.0}s"));
    println!(
        "({cores} cores, {chares} chares ({SCALE_ODF}/core), 30 iterations, \
         LB every 3, fast-forward ON, budget {budget_str})"
    );

    // Gated arm: flat CloudRefine.
    let scn = Scenario::scale("jacobi2d", cores, "cloudrefine");
    let t0 = Instant::now();
    let flat = SimExecutor::new(&app, scn.run_config(), scn.bg_script(&app)).run();
    let wall_s = t0.elapsed().as_secs_f64();
    let events_per_sec = flat.sim_events as f64 / wall_s;
    println!(
        "flat:  {wall_s:.2}s — {events_per_sec:.0} events/s ({} events, \
         {} windows replayed, {} pops skipped, peak queue {})",
        flat.sim_events, flat.ff_windows, flat.events_skipped, flat.peak_queue_depth
    );

    // Gate 1: chare conservation — the placement covers every chare and
    // never points outside the cluster.
    if flat.final_mapping.len() != chares {
        return Err(format!(
            "conservation: final mapping covers {} of {chares} chares",
            flat.final_mapping.len()
        ));
    }
    if let Some(&bad) = flat.final_mapping.iter().find(|&&pe| pe >= cores) {
        return Err(format!("conservation: a chare landed on core {bad} of {cores}"));
    }
    if flat.iter_times.len() != scn.iterations {
        return Err(format!(
            "run completed {} of {} iterations",
            flat.iter_times.len(),
            scn.iterations
        ));
    }

    // Gate 2: determinism — the same scenario rerun must be bit-identical.
    let rerun = SimExecutor::new(&app, scn.run_config(), scn.bg_script(&app)).run();
    if rerun != flat {
        return Err("rerun of the scale scenario diverged from the first run".to_string());
    }
    println!("rerun: bit-identical");

    // Gate 3: wall-clock budget on the gated arm.
    if let Some(budget) = budget_s {
        if wall_s > budget {
            return Err(format!(
                "budget: flat arm took {wall_s:.2}s, over the {budget:.0}s budget"
            ));
        }
    }

    // Informational at scale: the hierarchical arm.
    let hscn = Scenario::scale("jacobi2d", cores, "hiercloudrefine");
    let t1 = Instant::now();
    let hier = SimExecutor::new(&app, hscn.run_config(), hscn.bg_script(&app)).run();
    let hier_wall_s = t1.elapsed().as_secs_f64();
    let hier_events_per_sec = hier.sim_events as f64 / hier_wall_s;
    let hier_makespan_ratio = hier.app_time.as_secs_f64() / flat.app_time.as_secs_f64();
    println!(
        "hier:  {hier_wall_s:.2}s — {hier_events_per_sec:.0} events/s \
         (makespan ratio vs flat {hier_makespan_ratio:.4})"
    );

    // Gate 4: quality parity at the paper's own scale (8 nodes × 4
    // cores, interference on), where refinement genuinely works.
    let parity_cores = 32;
    let parity_seeds: Vec<u64> = vec![1, 2, 3];
    let mut parity_worst_ratio = 0.0f64;
    for &seed in &parity_seeds {
        let run_arm = |strategy: &str| {
            let mut scn = Scenario::paper("jacobi2d", parity_cores, strategy);
            scn.seed = seed;
            run_scenario(&scn)
        };
        let f = run_arm("cloudrefine");
        let h = run_arm("hiercloudrefine");
        let ratio = h.app_time.as_secs_f64() / f.app_time.as_secs_f64();
        println!("parity seed {seed}: hier/flat makespan {ratio:.4}");
        parity_worst_ratio = parity_worst_ratio.max(ratio);
        if ratio > 1.05 {
            return Err(format!(
                "parity: hiercloudrefine makespan is {:.1}% of flat CloudRefine \
                 at {parity_cores} cores, seed {seed} (allowed 105%)",
                ratio * 100.0
            ));
        }
    }

    Ok(ScaleRecord {
        name: "scale".to_string(),
        fast: s.fast,
        cores,
        chares,
        chares_per_core: SCALE_ODF,
        iterations: scn.iterations,
        lb_period: scn.lb_period,
        wall_s,
        sim_events: flat.sim_events,
        events_per_sec,
        peak_queue_depth: flat.peak_queue_depth,
        ff_windows: flat.ff_windows,
        events_skipped: flat.events_skipped,
        rerun_identical: true,
        hier_wall_s,
        hier_events_per_sec,
        hier_makespan_ratio,
        parity_cores,
        parity_seeds,
        parity_worst_ratio,
        budget_s,
    })
}
