//! Machine-readable perf baselines (`BENCH_<name>.json`).
//!
//! The perf benches serialize one [`SweepRecord`] per run so CI (and
//! humans diffing two branches) can compare throughput without scraping
//! stdout. Records land in `CLOUDLB_BENCH_DIR` (default: the current
//! directory) as `BENCH_<name>.json`, and [`check_events_per_sec`]
//! implements the regression gate used by the CI `bench-fast` job.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One sweep's worth of perf telemetry, serialized to `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Record name; the file is `BENCH_<name>.json`.
    pub name: String,
    /// Whether `CLOUDLB_FAST` shrank the matrix.
    pub fast: bool,
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// Core counts in the matrix.
    pub cores: Vec<usize>,
    /// Seeds averaged per cell.
    pub seeds: Vec<u64>,
    /// Iterations per run.
    pub iterations: usize,
    /// Total simulator runs executed (cells × seeds × 3 arms).
    pub runs: usize,
    /// Wall-clock for the whole sweep (seconds).
    pub wall_s: f64,
    /// Total simulator events popped across every run.
    pub sim_events: u64,
    /// `sim_events / wall_s` — the throughput the regression gate tracks.
    /// Always measured on the *clean-network* sweep, so the gate proves
    /// the chaos layer costs nothing when disabled.
    pub events_per_sec: f64,
    /// Largest live-event count any run's queue reached.
    pub peak_queue_depth: usize,
    /// Wall-clock of the informational flaky-network probe, seconds
    /// (0 when the probe did not run). Never gated — chaos runs are
    /// legitimately slower.
    #[serde(default)]
    pub flaky_wall_s: f64,
    /// Events/sec of the flaky-network probe (0 when it did not run).
    #[serde(default)]
    pub flaky_events_per_sec: f64,
    /// Wall-clock of the informational spot-storm elastic-membership
    /// probe, seconds (0 when the probe did not run). Never gated —
    /// evacuation churn is legitimately slower.
    #[serde(default)]
    pub storm_wall_s: f64,
    /// Events/sec of the spot-storm probe (0 when it did not run).
    #[serde(default)]
    pub storm_events_per_sec: f64,
    /// Steady-state LB windows the fast-forward engine macro-stepped
    /// across the sweep (0 when the engine was off).
    #[serde(default)]
    pub ff_windows: usize,
    /// Event pops those windows skipped (already folded into
    /// `sim_events`, so events/sec is comparable across modes).
    #[serde(default)]
    pub events_skipped: u64,
    /// Wall-clock of the same sweep with fast-forward disabled, seconds.
    /// Only the fastforward bench runs a comparison arm: its gate is on
    /// the *fast* arm, and the off arm documents the speedup on the same
    /// machine. `None` (serialized as `null`) when no comparison ran —
    /// older baselines wrote a misleading `0.0` instead.
    #[serde(default)]
    pub off_wall_s: Option<f64>,
    /// Events/sec of the fast-forward-off comparison arm (`None` = none
    /// ran).
    #[serde(default)]
    pub off_events_per_sec: Option<f64>,
    /// `events_per_sec / off_events_per_sec` (`None` when no comparison
    /// ran).
    #[serde(default)]
    pub speedup: Option<f64>,
}

/// One scale run's worth of telemetry (`BENCH_scale.json`): the paper's
/// setup blown up to cloud-datacenter size — 32k cores, 1M chares — run
/// clean with fast-forward pinned ON, plus a hierarchical-arm comparison
/// and a paper-scale quality-parity check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleRecord {
    /// Record name; the file is `BENCH_scale.json`.
    pub name: String,
    /// Whether `CLOUDLB_FAST` shrank the cluster.
    pub fast: bool,
    /// Core count of the scale run.
    pub cores: usize,
    /// Total chares (32 per core; 1,048,576 at 32,768 cores).
    pub chares: usize,
    /// Over-decomposition factor (chares per core).
    pub chares_per_core: usize,
    /// Iterations per run.
    pub iterations: usize,
    /// LB period in iterations.
    pub lb_period: usize,
    /// Wall-clock of the gated flat-CloudRefine arm, seconds.
    pub wall_s: f64,
    /// Simulator events (pops + analytically skipped pops) of that arm.
    pub sim_events: u64,
    /// `sim_events / wall_s` — what the regression gate tracks.
    pub events_per_sec: f64,
    /// Largest live-event count the run's queue reached.
    pub peak_queue_depth: usize,
    /// Steady-state LB windows macro-stepped instead of simulated.
    pub ff_windows: usize,
    /// Event pops those windows skipped (folded into `sim_events`).
    pub events_skipped: u64,
    /// The flat arm was rerun and compared bit for bit (always true in a
    /// record that exists — a mismatch fails the bench instead).
    pub rerun_identical: bool,
    /// Wall-clock of the hierarchical arm at the same scale, seconds.
    pub hier_wall_s: f64,
    /// Events/sec of the hierarchical arm.
    pub hier_events_per_sec: f64,
    /// Hierarchical / flat makespan at scale (quality, not speed).
    pub hier_makespan_ratio: f64,
    /// Cluster size of the paper-scale quality-parity check (8 × 4).
    pub parity_cores: usize,
    /// Seeds the parity check averaged over.
    pub parity_seeds: Vec<u64>,
    /// Worst hier/flat makespan ratio across the parity seeds; the bench
    /// fails above 1.05.
    pub parity_worst_ratio: f64,
    /// Wall-clock budget (`CLOUDLB_SCALE_BUDGET_S`) the gated arm was
    /// held to (`None` = no budget set).
    #[serde(default)]
    pub budget_s: Option<f64>,
}

/// One streaming-pipeline bench run (`BENCH_pipeline.json`): the
/// packet-based sweep engine measured against the chunked `par_map`
/// substrate it replaced, plus the memory-bound evidence the engine
/// exists to provide.
///
/// Four arms:
/// 1. **uniform** — the real Jacobi2D cell matrix through
///    [`cloudlb_core::evaluate_cells_stream`] (throughput, utilization,
///    reorder/live high-water marks) plus a packet-identical
///    `par_map`-vs-`pipeline_map` A/B over real runs, gated on
///    bit-identical results and on the pipeline staying within noise of
///    `par_map`;
/// 2. **skew replay** — one Mol3D-heavy straggler per 16 uniform cells;
///    per-packet costs are *measured* on real runs, then replayed as
///    timed waits so the arm benchmarks the scheduler (chunked barrier
///    vs streaming work-stealing) rather than the host's core count.
///    Gated at ≥ 1.3× over the chunked schedule;
/// 3. **skew real** — the same skewed profile over real simulator runs,
///    informational: on a single-core host both schedules serialize to
///    total work and the ratio sits at 1.0 (capacity-bound), while
///    multi-core hosts reproduce the replay arm's gap;
/// 4. **flood** — tens of thousands of trivial packets, gated on the
///    peak live-results count never exceeding `jobs + reorder window`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineRecord {
    /// Record name; the file is `BENCH_pipeline.json`.
    pub name: String,
    /// Whether `CLOUDLB_FAST` shrank the matrix.
    pub fast: bool,
    /// Worker count the pipeline ran with (clamped to ≥ 4: below that
    /// the scheduling comparison is vacuous).
    pub jobs: usize,
    /// Seeds in the uniform cell matrix.
    pub seeds: Vec<u64>,
    /// Iterations per uniform run.
    pub iterations: usize,
    /// Cells in the uniform matrix.
    pub cells: usize,
    /// Wall-clock of the uniform `evaluate_cells_stream` arm, seconds.
    pub wall_s: f64,
    /// Simulator events across the uniform arm.
    pub sim_events: u64,
    /// `sim_events / wall_s` — the field the `CLOUDLB_CHECK` gate reads.
    pub events_per_sec: f64,
    /// Finished cells per second through the streaming reducer.
    pub cells_per_sec: f64,
    /// Worker busy-time / (jobs × wall) for the uniform arm.
    pub utilization: f64,
    /// Reorder-buffer high-water mark of the uniform arm.
    pub reorder_peak: usize,
    /// Peak simultaneously-live results of the uniform arm.
    pub live_peak: usize,
    /// The memory bound: `jobs + reorder window`. Every arm's
    /// `live_peak` is gated ≤ this.
    pub live_bound: usize,
    /// Packets claimed straight from the injector (uniform arm).
    pub injector_claims: u64,
    /// Packets stolen from sibling workers (uniform arm).
    pub steals: u64,
    /// Real runs in the `par_map`-vs-`pipeline_map` A/B.
    pub uniform_runs: usize,
    /// Best-of-2 wall-clock of `par_map` over those runs, seconds.
    pub uniform_par_map_wall_s: f64,
    /// Best-of-2 wall-clock of `pipeline_map` over the same runs.
    pub uniform_pipeline_wall_s: f64,
    /// `par_map / pipeline` wall ratio (≥ 1 = pipeline at least
    /// matches). Gated ≥ 0.9 (within noise); typically ≥ 1.0.
    pub uniform_ratio: f64,
    /// The two A/B arms produced bit-identical `RunResult`s (a record
    /// that exists always says true — a mismatch fails the bench).
    pub uniform_identical: bool,
    /// Measured wall of one uniform Jacobi2D run, milliseconds.
    pub uniform_run_ms: f64,
    /// Iterations of the Mol3D straggler (20× the uniform count).
    pub straggler_iterations: usize,
    /// Measured wall of one straggler Mol3D run, milliseconds.
    pub straggler_run_ms: f64,
    /// `straggler_run_ms / uniform_run_ms` (measured; ≈ 20 on this
    /// profile).
    pub straggler_cost_ratio: f64,
    /// Straggler groups (16 uniform + 1 straggler each) in the skew arms.
    pub skew_groups: usize,
    /// Per-packet uniform replay duration, milliseconds.
    pub skew_replay_ms: f64,
    /// Replay wall under the chunked barrier schedule, seconds.
    pub skew_chunked_wall_s: f64,
    /// Replay wall through the streaming pipeline, seconds.
    pub skew_pipeline_wall_s: f64,
    /// `chunked / pipeline` replay ratio — gated ≥ 1.3.
    pub skew_ratio: f64,
    /// Replay wall under unchunked `par_map` (informational: dynamic
    /// claiming already dodges the straggler, at O(n) memory).
    pub skew_unchunked_wall_s: f64,
    /// `unchunked / pipeline` replay ratio (informational).
    pub skew_unchunked_ratio: f64,
    /// Real-run skew wall under the chunked schedule, seconds.
    pub skew_real_chunked_wall_s: f64,
    /// Real-run skew wall through the pipeline, seconds.
    pub skew_real_pipeline_wall_s: f64,
    /// `chunked / pipeline` over real runs — informational
    /// (capacity-bound at 1.0 on single-core hosts).
    pub skew_real_ratio: f64,
    /// Trivial packets pushed through the flood arm.
    pub flood_packets: usize,
    /// Peak live results during the flood — gated ≤ `live_bound`.
    pub flood_live_peak: usize,
    /// Reorder high-water mark during the flood.
    pub flood_reorder_peak: usize,
    /// Flood packets per second (pure engine overhead).
    pub flood_packets_per_sec: f64,
}

/// Path for `BENCH_<name>.json`, honouring `CLOUDLB_BENCH_DIR`.
pub fn bench_path(name: &str) -> PathBuf {
    let dir = std::env::var("CLOUDLB_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    PathBuf::from(dir).join(format!("BENCH_{name}.json"))
}

/// Serialize `value` to `BENCH_<name>.json` and return the path written.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = bench_path(name);
    write_to(&path, value);
    path
}

/// Serialize `value` to `<dir>/BENCH_<name>.json` (ignoring
/// `CLOUDLB_BENCH_DIR`) and return the path written. The baseline-refresh
/// binary uses this to land each record in both the checked-in baselines
/// directory and the repository root.
pub fn write_json_at<T: Serialize>(dir: &std::path::Path, name: &str, value: &T) -> PathBuf {
    let path = dir.join(format!("BENCH_{name}.json"));
    write_to(&path, value);
    path
}

fn write_to<T: Serialize>(path: &std::path::Path, value: &T) {
    let json = serde_json::to_string_pretty(value).expect("serialize bench record");
    std::fs::write(path, json + "\n").unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

/// Read a [`SweepRecord`] back from a baseline file.
pub fn read_sweep(path: &str) -> Result<SweepRecord, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// The one field the regression gate needs. Parsing this view instead of
/// the full record lets [`check_events_per_sec`] gate against any
/// baseline shape — `BENCH_fast.json` ([`SweepRecord`]) and
/// `BENCH_scale.json` ([`ScaleRecord`]) alike.
#[derive(Deserialize)]
struct GateView {
    events_per_sec: f64,
}

fn read_gate(path: &str) -> Result<GateView, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// Regression gate: fail if `current` events/sec fell more than
/// `max_regression` (a fraction, e.g. `0.25`) below the baseline at
/// `path`. Returns a human-readable verdict either way.
pub fn check_events_per_sec(
    current: f64,
    path: &str,
    max_regression: f64,
) -> Result<String, String> {
    let base = read_gate(path)?;
    let floor = base.events_per_sec * (1.0 - max_regression);
    let ratio = current / base.events_per_sec;
    if current < floor {
        Err(format!(
            "REGRESSION: {current:.0} events/s is {:.1}% of baseline {:.0} events/s \
             (floor {:.0}, allowed regression {:.0}%) from {path}",
            ratio * 100.0,
            base.events_per_sec,
            floor,
            max_regression * 100.0,
        ))
    } else {
        Ok(format!(
            "ok: {current:.0} events/s vs baseline {:.0} events/s ({:.1}%) from {path}",
            base.events_per_sec,
            ratio * 100.0,
        ))
    }
}

/// If `CLOUDLB_CHECK` names a baseline file, gate on it; exits the
/// process with status 1 on regression. No-op when the variable is unset.
pub fn maybe_check(current_events_per_sec: f64) {
    if let Ok(path) = std::env::var("CLOUDLB_CHECK") {
        match check_events_per_sec(current_events_per_sec, &path, 0.25) {
            Ok(msg) => println!("baseline check {msg}"),
            Err(msg) => {
                eprintln!("baseline check {msg}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> SweepRecord {
        SweepRecord {
            name: "test".into(),
            fast: true,
            jobs: 2,
            cores: vec![4, 8],
            seeds: vec![1],
            iterations: 60,
            runs: 12,
            wall_s: 1.5,
            sim_events: 3_000_000,
            events_per_sec: 2_000_000.0,
            peak_queue_depth: 37,
            flaky_wall_s: 0.4,
            flaky_events_per_sec: 1_500_000.0,
            storm_wall_s: 0.3,
            storm_events_per_sec: 1_400_000.0,
            ff_windows: 12,
            events_skipped: 240_000,
            off_wall_s: Some(4.5),
            off_events_per_sec: Some(600_000.0),
            speedup: Some(3.3),
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = record();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: SweepRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // Sweeps without a fast-forward comparison arm write null, not a
        // misleading 0.0 — and null reads back as None.
        let mut no_off = record();
        no_off.off_wall_s = None;
        no_off.off_events_per_sec = None;
        no_off.speedup = None;
        let json = serde_json::to_string_pretty(&no_off).unwrap();
        assert!(json.contains("\"speedup\": null"), "{json}");
        let back: SweepRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, no_off);
    }

    #[test]
    fn scale_record_round_trips_and_gates() {
        let r = ScaleRecord {
            name: "scale".into(),
            fast: false,
            cores: 32768,
            chares: 1_048_576,
            chares_per_core: 32,
            iterations: 30,
            lb_period: 3,
            wall_s: 60.0,
            sim_events: 180_000_000,
            events_per_sec: 3_000_000.0,
            peak_queue_depth: 4_000_000,
            ff_windows: 8,
            events_skipped: 120_000_000,
            rerun_identical: true,
            hier_wall_s: 62.0,
            hier_events_per_sec: 2_900_000.0,
            hier_makespan_ratio: 1.0,
            parity_cores: 32,
            parity_seeds: vec![1, 2, 3],
            parity_worst_ratio: 1.01,
            budget_s: Some(600.0),
        };
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ScaleRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // The gate reads a ScaleRecord baseline just like a SweepRecord.
        let dir = std::env::temp_dir().join("cloudlb_scale_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_json_at(&dir, "scale_test", &r);
        let path = path.to_str().unwrap();
        assert!(check_events_per_sec(2_500_000.0, path, 0.25).is_ok());
        assert!(check_events_per_sec(2_000_000.0, path, 0.25).is_err());
    }

    #[test]
    fn pipeline_record_round_trips_and_gates() {
        let r = PipelineRecord {
            name: "pipeline".into(),
            fast: true,
            jobs: 4,
            seeds: vec![1],
            iterations: 60,
            cells: 6,
            wall_s: 0.2,
            sim_events: 500_000,
            events_per_sec: 2_500_000.0,
            cells_per_sec: 30.0,
            utilization: 0.9,
            reorder_peak: 5,
            live_peak: 9,
            live_bound: 20,
            injector_claims: 12,
            steals: 3,
            uniform_runs: 32,
            uniform_par_map_wall_s: 0.21,
            uniform_pipeline_wall_s: 0.20,
            uniform_ratio: 1.05,
            uniform_identical: true,
            uniform_run_ms: 6.0,
            straggler_iterations: 180,
            straggler_run_ms: 60.0,
            straggler_cost_ratio: 10.0,
            skew_groups: 4,
            skew_replay_ms: 6.0,
            skew_chunked_wall_s: 0.34,
            skew_pipeline_wall_s: 0.16,
            skew_ratio: 2.1,
            skew_unchunked_wall_s: 0.17,
            skew_unchunked_ratio: 1.06,
            skew_real_chunked_wall_s: 0.3,
            skew_real_pipeline_wall_s: 0.3,
            skew_real_ratio: 1.0,
            flood_packets: 20_000,
            flood_live_peak: 20,
            flood_reorder_peak: 16,
            flood_packets_per_sec: 400_000.0,
        };
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: PipelineRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // The CLOUDLB_CHECK gate reads a PipelineRecord baseline through
        // the same events_per_sec view as every other record shape.
        let dir = std::env::temp_dir().join("cloudlb_pipeline_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_json_at(&dir, "pipeline_test", &r);
        let path = path.to_str().unwrap();
        assert!(check_events_per_sec(2_400_000.0, path, 0.25).is_ok());
        assert!(check_events_per_sec(1_000_000.0, path, 0.25).is_err());
    }

    #[test]
    fn write_and_check_against_baseline() {
        let dir = std::env::temp_dir().join("cloudlb_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("CLOUDLB_BENCH_DIR", &dir);
        let path = write_json("test", &record());
        std::env::remove_var("CLOUDLB_BENCH_DIR");
        let path = path.to_str().unwrap();

        // Within tolerance (25 % slower is the boundary; 20 % passes).
        assert!(check_events_per_sec(1_600_000.0, path, 0.25).is_ok());
        // Faster always passes.
        assert!(check_events_per_sec(9_000_000.0, path, 0.25).is_ok());
        // 40 % slower fails.
        let err = check_events_per_sec(1_200_000.0, path, 0.25).unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");
    }

    #[test]
    fn missing_baseline_is_an_error() {
        assert!(check_events_per_sec(1.0, "/nonexistent/BENCH_x.json", 0.25).is_err());
    }
}
