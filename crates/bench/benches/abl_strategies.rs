//! ABL-STRAT — strategy comparison: the paper's CloudRefineLB against
//! classic RefineLB (interference-blind), GreedyLB (from scratch), an
//! interference-aware greedy, and noLB.
//!
//! Two claims from the paper are checked:
//! * §II vs Brunner et al.: the refinement approach "achieves load
//!   balance while minimizing task migrations" — CloudRefine must migrate
//!   far less than the greedy rebalancer at comparable penalty;
//! * §IV: strategies that only see application-internal load cannot react
//!   to interference — classic RefineLB must land near noLB.

use cloudlb_core::report::{pct, Table};
use cloudlb_core::scenario::Scenario;
use cloudlb_runtime::SimExecutor;
use std::collections::HashMap;

fn main() {
    cloudlb_bench::header("ABL-STRAT — strategies (Jacobi2D, 8 cores, 100 iterations)");
    let scn = Scenario::paper("jacobi2d", 8, "cloudrefine");
    let base = {
        let b = scn.base_of();
        let app = b.build_app();
        let bg = b.bg_script(app.as_ref());
        SimExecutor::new(app.as_ref(), b.run_config(), bg).run()
    };

    let mut table = Table::new(&["strategy", "penalty %", "migrations", "bytes moved"]);
    let mut by_name: HashMap<&str, (f64, usize)> = HashMap::new();
    for strategy in ["nolb", "refine", "greedy", "greedybg", "cloudrefine"] {
        let mut s = scn.clone();
        s.strategy = strategy.to_string();
        let app = s.build_app();
        let bg = s.bg_script(app.as_ref());
        let run = SimExecutor::new(app.as_ref(), s.run_config(), bg).run();
        let p = run.timing_penalty_vs(&base);
        table.row(vec![
            strategy.to_string(),
            pct(p),
            run.migrations.to_string(),
            run.migration_bytes.to_string(),
        ]);
        by_name.insert(strategy, (p, run.migrations));
    }
    print!("{}", table.markdown());

    let nolb = by_name["nolb"];
    let refine = by_name["refine"];
    let greedybg = by_name["greedybg"];
    let cloud = by_name["cloudrefine"];

    assert!(
        (refine.0 - nolb.0).abs() < 0.15,
        "interference-blind RefineLB should land near noLB ({:.2} vs {:.2})",
        refine.0,
        nolb.0
    );
    assert!(cloud.0 < 0.6 * nolb.0, "CloudRefine must at least nearly halve the penalty");
    assert!(
        cloud.1 < greedybg.1,
        "CloudRefine ({}) must migrate less than interference-aware greedy ({})",
        cloud.1,
        greedybg.1
    );
    assert!(
        cloud.0 <= greedybg.0 + 0.1,
        "CloudRefine penalty {:.2} should be competitive with greedy {:.2}",
        cloud.0,
        greedybg.0
    );
    println!("\nABL-STRAT OK: interference-awareness is necessary; refinement minimizes churn.");
}
