//! PERF — machine-readable performance baseline of the paper sweep.
//!
//! Runs the full Fig. 2 / Fig. 4 matrix (Jacobi2D, Wave2D, Mol3D ×
//! core counts × seeds × three arms) through the parallel sweep engine
//! and serializes wall-clock, total simulator events, events/sec, and
//! peak event-queue depth to `BENCH_fast.json` (under `CLOUDLB_FAST=1`)
//! or `BENCH_sweep.json`. Fast-forward is pinned OFF so the record keeps
//! measuring the raw event-by-event engine (the macro-stepper has its own
//! baseline, `BENCH_fastforward.json`).
//!
//! With `CLOUDLB_CHECK=<path to baseline json>` the run becomes a
//! regression gate: it exits non-zero if events/sec fell more than 25 %
//! below the checked-in baseline. CI's `bench-fast` job uses this
//! against `crates/bench/baselines/BENCH_fast.json`.

use cloudlb_bench::{baseline, sweeps, Settings};

fn main() {
    let s = Settings::from_env();
    cloudlb_bench::header("Perf baseline — paper sweep throughput");
    let record = sweeps::perf_sweep(&s);
    let name = record.name.clone();
    let path = baseline::write_json(&name, &record);
    println!("wrote {}", path.display());
    baseline::maybe_check(record.events_per_sec);
    println!("PERF OK");
}
