//! PERF — machine-readable performance baseline of the paper sweep.
//!
//! Runs the full Fig. 2 / Fig. 4 matrix (Jacobi2D, Wave2D, Mol3D ×
//! core counts × seeds × three arms) through the parallel sweep engine
//! and serializes wall-clock, total simulator events, events/sec, and
//! peak event-queue depth to `BENCH_fast.json` (under `CLOUDLB_FAST=1`)
//! or `BENCH_sweep.json`.
//!
//! With `CLOUDLB_CHECK=<path to baseline json>` the run becomes a
//! regression gate: it exits non-zero if events/sec fell more than 25 %
//! below the checked-in baseline. CI's `bench-fast` job uses this
//! against `crates/bench/baselines/BENCH_fast.json`.

use cloudlb_bench::baseline::{self, SweepRecord};
use cloudlb_bench::Settings;
use cloudlb_core::{evaluate_cells, par_map, run_scenario, CellSpec, Scenario};
use std::time::Instant;

fn main() {
    let s = Settings::from_env();
    let name = if s.fast { "fast" } else { "sweep" };
    cloudlb_bench::header("Perf baseline — paper sweep throughput");
    println!(
        "(cores {:?}, {} iterations, seeds {:?}, jobs {})",
        s.cores, s.iterations, s.seeds, s.jobs
    );

    let cells: Vec<CellSpec> = ["jacobi2d", "wave2d", "mol3d"]
        .iter()
        .flat_map(|app| {
            s.cores
                .iter()
                .map(move |&c| CellSpec::paper(app, c, s.iterations, "cloudrefine"))
        })
        .collect();
    let runs = cells.len() * s.seeds.len() * 3;

    let t0 = Instant::now();
    let points = evaluate_cells(&cells, &s.seeds, s.jobs);
    let wall_s = t0.elapsed().as_secs_f64();

    let sim_events: u64 = points.iter().map(|p| p.sim_events).sum();
    let peak_queue_depth = points.iter().map(|p| p.peak_queue_depth).max().unwrap_or(0);
    let events_per_sec = sim_events as f64 / wall_s;
    println!(
        "{} runs in {:.2}s — {:.0} events/s ({} events, peak queue depth {})",
        runs, wall_s, events_per_sec, sim_events, peak_queue_depth
    );

    // Informational flaky-network probe: the same apps under the
    // `flaky_cloud` degradation model, at the largest core count. Chaos
    // runs are legitimately slower (retries, partitions), so this arm is
    // recorded but never gated — the regression gate below stays on the
    // clean sweep, proving the chaos layer is free when disabled.
    let probe_cores = s.cores.iter().copied().max().unwrap_or(8);
    let probe: Vec<Scenario> = ["jacobi2d", "wave2d", "mol3d"]
        .iter()
        .flat_map(|app| {
            s.seeds.iter().map(move |&seed| {
                let mut scn = Scenario::flaky_cloud(app, probe_cores, "cloudrefine");
                scn.iterations = s.iterations;
                scn.seed = seed;
                scn
            })
        })
        .collect();
    let probe_runs = probe.len();
    let t1 = Instant::now();
    let results = par_map(s.jobs, probe, |scn| run_scenario(&scn));
    let flaky_wall_s = t1.elapsed().as_secs_f64();
    let flaky_events: u64 = results.iter().map(|r| r.sim_events).sum();
    let flaky_events_per_sec = flaky_events as f64 / flaky_wall_s;
    let retries: u64 = results.iter().map(|r| r.net.migration_retries).sum();
    let aborts: u64 = results.iter().map(|r| r.net.migration_aborts).sum();
    println!(
        "flaky probe: {} runs in {:.2}s — {:.0} events/s \
         ({} migration retries, {} aborts; informational, not gated)",
        probe_runs, flaky_wall_s, flaky_events_per_sec, retries, aborts
    );

    let record = SweepRecord {
        name: name.to_string(),
        fast: s.fast,
        jobs: s.jobs,
        cores: s.cores.clone(),
        seeds: s.seeds.clone(),
        iterations: s.iterations,
        runs,
        wall_s,
        sim_events,
        events_per_sec,
        peak_queue_depth,
        flaky_wall_s,
        flaky_events_per_sec,
    };
    let path = baseline::write_json(name, &record);
    println!("wrote {}", path.display());
    baseline::maybe_check(events_per_sec);
    println!("PERF OK");
}
