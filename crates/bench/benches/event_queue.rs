//! MICRO — `EventQueue` slab vs the old HashMap-slot implementation.
//!
//! The simulator's event queue used to park payloads in a
//! `HashMap<u64, Entry>` keyed by sequence number, paying a hash +
//! probe on every schedule, pop, and cancel. The slab rework replaces
//! that with `Vec`-indexed slots and a free-list. This bench vendors a
//! faithful copy of the old queue (below) and measures both on the same
//! deterministic workloads:
//!
//! * `schedule_pop` — interleaved schedule/pop churn at a steady queue
//!   depth, the simulator's hot pattern;
//! * `cancel_churn` — schedule + cancel + reschedule rounds, the wake
//!   token pattern from `sim_exec`.
//!
//! Results (ops/sec per workload plus the slab/HashMap speedup) are
//! serialized to `BENCH_event_queue.json`.

use cloudlb_sim::{EventQueue, Time};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Faithful copy of the pre-slab queue: payloads in a `HashMap` keyed by
/// sequence number, heap of `(time, seq)` pairs.
mod hashmap_queue {
    use cloudlb_sim::Time;
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};

    pub struct HashQueue<E> {
        heap: BinaryHeap<Reverse<(Time, u64)>>,
        slots: HashMap<u64, (Time, E)>,
        next_seq: u64,
        now: Time,
    }

    impl<E> HashQueue<E> {
        pub fn new() -> Self {
            HashQueue {
                heap: BinaryHeap::new(),
                slots: HashMap::new(),
                next_seq: 0,
                now: Time::ZERO,
            }
        }

        pub fn schedule(&mut self, at: Time, payload: E) -> u64 {
            let at = at.max(self.now);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Reverse((at, seq)));
            self.slots.insert(seq, (at, payload));
            seq
        }

        pub fn cancel(&mut self, handle: u64) -> Option<E> {
            self.slots.remove(&handle).map(|(_, p)| p)
        }

        pub fn pop(&mut self) -> Option<(Time, E)> {
            while let Some(Reverse((at, seq))) = self.heap.pop() {
                if let Some((_, payload)) = self.slots.remove(&seq) {
                    self.now = at;
                    return Some((at, payload));
                }
            }
            None
        }
    }
}

/// Throughput record serialized to `BENCH_event_queue.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MicroRecord {
    name: String,
    rounds: usize,
    slab_schedule_pop_ops_per_sec: f64,
    hashmap_schedule_pop_ops_per_sec: f64,
    schedule_pop_speedup: f64,
    slab_cancel_churn_ops_per_sec: f64,
    hashmap_cancel_churn_ops_per_sec: f64,
    cancel_churn_speedup: f64,
}

/// Deterministic pseudo-random delay stream (xorshift) — identical for
/// both queues.
fn delays(n: usize) -> Vec<u64> {
    let mut x = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            1 + x % 1000
        })
        .collect()
}

const DEPTH: usize = 64;

/// Interleaved schedule/pop at a steady depth; returns (ops, checksum).
fn slab_schedule_pop(rounds: usize, ds: &[u64]) -> (usize, u64) {
    let mut q: EventQueue<u64> = EventQueue::new();
    for (i, d) in ds.iter().enumerate().take(DEPTH) {
        q.schedule(Time::from_us(*d), i as u64);
    }
    let mut sum = 0u64;
    for d in &ds[DEPTH..DEPTH + rounds] {
        let (t, v) = q.pop().expect("live event");
        sum = sum.wrapping_add(v);
        q.schedule(t + cloudlb_sim::Dur::from_us(*d), v);
    }
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    (2 * rounds + 2 * DEPTH, sum)
}

fn hashmap_schedule_pop(rounds: usize, ds: &[u64]) -> (usize, u64) {
    let mut q: hashmap_queue::HashQueue<u64> = hashmap_queue::HashQueue::new();
    for (i, d) in ds.iter().enumerate().take(DEPTH) {
        q.schedule(Time::from_us(*d), i as u64);
    }
    let mut sum = 0u64;
    for d in &ds[DEPTH..DEPTH + rounds] {
        let (t, v) = q.pop().expect("live event");
        sum = sum.wrapping_add(v);
        q.schedule(t + cloudlb_sim::Dur::from_us(*d), v);
    }
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    (2 * rounds + 2 * DEPTH, sum)
}

/// Schedule + cancel + reschedule churn (the wake-token pattern). Times
/// advance by 1 ms per round so every schedule lands in the future.
fn slab_cancel_churn(rounds: usize, ds: &[u64]) -> (usize, u64) {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut live = 0usize;
    let mut sum = 0u64;
    for (i, d) in ds[..rounds].iter().enumerate() {
        let base = i as u64 * 1000;
        let h = q.schedule(Time::from_us(base + 2_000_000), i as u64);
        sum = sum.wrapping_add(q.cancel(h).expect("live"));
        q.schedule(Time::from_us(base + d), i as u64);
        live += 1;
        if live > DEPTH {
            let (_, v) = q.pop().expect("live event");
            sum = sum.wrapping_add(v);
            live -= 1;
        }
    }
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    (3 * rounds, sum)
}

fn hashmap_cancel_churn(rounds: usize, ds: &[u64]) -> (usize, u64) {
    let mut q: hashmap_queue::HashQueue<u64> = hashmap_queue::HashQueue::new();
    let mut live = 0usize;
    let mut sum = 0u64;
    for (i, d) in ds[..rounds].iter().enumerate() {
        let base = i as u64 * 1000;
        let h = q.schedule(Time::from_us(base + 2_000_000), i as u64);
        sum = sum.wrapping_add(q.cancel(h).expect("live"));
        q.schedule(Time::from_us(base + d), i as u64);
        live += 1;
        if live > DEPTH {
            let (_, v) = q.pop().expect("live event");
            sum = sum.wrapping_add(v);
            live -= 1;
        }
    }
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    (3 * rounds, sum)
}

/// Time `f`, returning (ops/sec, checksum). Runs once warm-up, then the
/// measured pass.
fn measure(f: impl Fn() -> (usize, u64)) -> (f64, u64) {
    let _ = f(); // warm-up
    let t0 = Instant::now();
    let (ops, sum) = f();
    (ops as f64 / t0.elapsed().as_secs_f64(), sum)
}

fn main() {
    let fast = std::env::var("CLOUDLB_FAST").is_ok_and(|v| v != "0");
    let rounds = if fast { 200_000 } else { 1_000_000 };
    let ds = delays(rounds + DEPTH);
    cloudlb_bench::header("EventQueue microbench — slab vs HashMap slots");

    let (slab_sp, c1) = measure(|| slab_schedule_pop(rounds, &ds));
    let (hash_sp, c2) = measure(|| hashmap_schedule_pop(rounds, &ds));
    assert_eq!(c1, c2, "schedule/pop workloads must visit identical events");

    let (slab_cc, c3) = measure(|| slab_cancel_churn(rounds, &ds));
    let (hash_cc, c4) = measure(|| hashmap_cancel_churn(rounds, &ds));
    assert_eq!(c3, c4, "cancel-churn workloads must visit identical events");

    let record = MicroRecord {
        name: "event_queue".into(),
        rounds,
        slab_schedule_pop_ops_per_sec: slab_sp,
        hashmap_schedule_pop_ops_per_sec: hash_sp,
        schedule_pop_speedup: slab_sp / hash_sp,
        slab_cancel_churn_ops_per_sec: slab_cc,
        hashmap_cancel_churn_ops_per_sec: hash_cc,
        cancel_churn_speedup: slab_cc / hash_cc,
    };
    println!(
        "schedule/pop: slab {:.2} Mops/s vs hashmap {:.2} Mops/s ({:.2}x)",
        slab_sp / 1e6,
        hash_sp / 1e6,
        record.schedule_pop_speedup
    );
    println!(
        "cancel churn: slab {:.2} Mops/s vs hashmap {:.2} Mops/s ({:.2}x)",
        slab_cc / 1e6,
        hash_cc / 1e6,
        record.cancel_churn_speedup
    );
    let path = cloudlb_bench::baseline::write_json("event_queue", &record);
    println!("wrote {}", path.display());
    if record.schedule_pop_speedup < 1.2 {
        eprintln!(
            "WARNING: slab schedule/pop speedup {:.2}x is below the 1.2x target",
            record.schedule_pop_speedup
        );
    }
    println!("MICRO OK");
}
