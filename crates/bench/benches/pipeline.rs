//! PERF — the streaming sweep pipeline vs the chunked schedule.
//!
//! Measures the packet-based generator→simulate→reduce engine
//! (`cloudlb_core::pipeline_stream`) on four arms and writes
//! `BENCH_pipeline.json`:
//!
//! 1. the real Jacobi2D/Wave2D/Mol3D cell matrix through
//!    `evaluate_cells_stream` (events/s, cells/s, pool utilization,
//!    reorder and live-results high-water marks);
//! 2. a packet-identical `par_map`-vs-`pipeline_map` A/B over real runs,
//!    **failing (exit 1)** if the results are not bit-identical or the
//!    pipeline falls below 0.9× `par_map` on uniform work;
//! 3. a skewed profile — one Mol3D-heavy straggler per 16 uniform cells —
//!    with measured per-packet costs replayed as timed waits, **failing**
//!    if the pipeline does not beat the chunked barrier schedule by
//!    ≥ 1.3× (the same profile over real runs is recorded alongside,
//!    informational);
//! 4. a 20k-packet flood, **failing** if the peak live-results count ever
//!    exceeds `jobs + reorder window`.
//!
//! With `CLOUDLB_CHECK=<path to baseline json>` the uniform-arm events/s
//! is additionally gated against a checked-in baseline (exit non-zero on
//! a > 25 % regression). CI's `bench-pipeline` job uses this against
//! `crates/bench/baselines/BENCH_pipeline.json`. `CLOUDLB_FAST=1`
//! shrinks the matrix for smoke runs.

use cloudlb_bench::{baseline, sweeps, Settings};

fn main() {
    let s = Settings::from_env();
    cloudlb_bench::header("Pipeline — streaming sweep engine");
    let record = match sweeps::pipeline_sweep(&s) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("PIPELINE GATE FAILED: {e}");
            std::process::exit(1);
        }
    };
    let path = baseline::write_json("pipeline", &record);
    println!("wrote {}", path.display());
    baseline::maybe_check(record.events_per_sec);
    println!("PERF OK");
}
