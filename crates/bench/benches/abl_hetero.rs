//! ABL-HETERO — static heterogeneity from VM placement (extension).
//!
//! Paper §IV: "the execution environment varies from run to run based on
//! extraneous factors such as VM to physical machine mapping and
//! interference by co-located VMs". Fig. 2/4 cover the interference
//! factor; this ablation covers the *placement* factor: one of the two
//! nodes delivers only 60 % of nominal speed (older hardware /
//! oversubscription). The balancer needs no new mechanism — slow cores
//! simply measure higher occupancy — and recovers most of the loss.

use cloudlb_core::report::{pct, Table};
use cloudlb_core::scenario::Scenario;
use cloudlb_runtime::SimExecutor;
use cloudlb_sim::interference::BgScript;

fn main() {
    cloudlb_bench::header("ABL-HETERO — slow node (Jacobi2D, 8 cores, node 1 at 60% speed)");
    let scn = Scenario::paper("jacobi2d", 8, "cloudrefine");
    let slow: Vec<f64> = vec![1.0, 1.0, 1.0, 1.0, 0.6, 0.6, 0.6, 0.6];

    // Normalization base: uniform cluster, no interference, no LB.
    let base = {
        let b = scn.base_of();
        let app = b.build_app();
        SimExecutor::new(app.as_ref(), b.run_config(), BgScript::none()).run()
    };

    let arm = |strategy: &str, speeds: &[f64], with_bg: bool| {
        let mut s = scn.clone();
        s.strategy = strategy.to_string();
        let app = s.build_app();
        let bg = if with_bg { s.bg_script(app.as_ref()) } else { BgScript::none() };
        let mut cfg = s.run_config();
        cfg.pe_speeds = speeds.to_vec();
        SimExecutor::new(app.as_ref(), cfg, bg).run()
    };

    let mut table = Table::new(&["configuration", "penalty %", "migrations"]);
    let rows = [
        ("slow node, noLB", arm("nolb", &slow, false)),
        ("slow node, CloudRefineLB", arm("cloudrefine", &slow, false)),
        ("slow node + 2-core bg, noLB", arm("nolb", &slow, true)),
        ("slow node + 2-core bg, CloudRefineLB", arm("cloudrefine", &slow, true)),
    ];
    let mut penalties = Vec::new();
    for (label, run) in &rows {
        let p = run.timing_penalty_vs(&base);
        table.row(vec![label.to_string(), pct(p), run.migrations.to_string()]);
        penalties.push(p);
    }
    print!("{}", table.markdown());

    // The slow node gates noLB at ~1/0.6 − 1 = 67 %; LB's bound is
    // 8/(4 + 4·0.6) − 1 = 25 %.
    assert!(penalties[0] > 0.5, "slow node must gate noLB: {:.2}", penalties[0]);
    assert!(
        penalties[1] < 0.6 * penalties[0],
        "LB must recover most of the placement loss: {:.2} vs {:.2}",
        penalties[1],
        penalties[0]
    );
    // Combined placement + interference: the capacity bound tightens to
    // 8/(2·0.5 + 2 + 4·0.6) − 1 ≈ 48 %, so expect a smaller relative win.
    assert!(
        penalties[3] < 0.8 * penalties[2],
        "combined case: {:.2} vs {:.2}",
        penalties[3],
        penalties[2]
    );
    println!(
        "\nABL-HETERO OK: placement penalty {:.0} % → {:.0} % under LB; with interference {:.0} % → {:.0} %.",
        penalties[0] * 100.0,
        penalties[1] * 100.0,
        penalties[2] * 100.0,
        penalties[3] * 100.0
    );
}
