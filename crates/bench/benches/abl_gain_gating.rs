//! ABL-GATED — the paper's future-work variant (§VI): "data migration is
//! performed only if we expect gains that can offset the cost of
//! migration."
//!
//! Sweeps the modelled migration cost. With cheap migration the gate is
//! transparent; as migration gets expensive (slow virtualized network,
//! heavy objects) the gate starts vetoing plans, trading penalty for
//! moved bytes.

use cloudlb_balance::{CloudRefineLb, GainGatedLb, GateConfig};
use cloudlb_core::report::{pct, Table};
use cloudlb_core::scenario::Scenario;
use cloudlb_runtime::SimExecutor;

fn main() {
    cloudlb_bench::header("ABL-GATED — migration-gain gating (Mol3D, 8 cores)");
    let scn = Scenario::paper("mol3d", 8, "cloudrefine");
    let base = {
        let b = scn.base_of();
        let app = b.build_app();
        let bg = b.bg_script(app.as_ref());
        SimExecutor::new(app.as_ref(), b.run_config(), bg).run()
    };

    let mut table =
        Table::new(&["per-object cost", "bandwidth B/s", "penalty %", "migrations"]);
    let mut rows = Vec::new();
    for (cost_s, bw) in [(0.0005, 100e6), (0.01, 10e6), (0.1, 1e6), (2.0, 1e5)] {
        let app = scn.build_app();
        let bg = scn.bg_script(app.as_ref());
        let gate = GateConfig {
            bytes_per_sec: bw,
            per_object_cost_s: cost_s,
            horizon_windows: 3.0,
        };
        let gated = GainGatedLb::new(CloudRefineLb::default(), gate);
        let run = SimExecutor::new(app.as_ref(), scn.run_config(), bg)
            .run_with_strategy(Box::new(gated));
        let p = run.timing_penalty_vs(&base);
        table.row(vec![
            format!("{cost_s:.4} s"),
            format!("{bw:.0}"),
            pct(p),
            run.migrations.to_string(),
        ]);
        rows.push((cost_s, p, run.migrations));
    }
    print!("{}", table.markdown());

    let cheap = rows.first().expect("nonempty");
    let dear = rows.last().expect("nonempty");
    assert!(cheap.2 > 0, "cheap migration must pass the gate");
    assert_eq!(dear.2, 0, "prohibitive migration cost must veto everything");
    assert!(
        dear.1 > cheap.1,
        "with everything vetoed the penalty reverts toward noLB"
    );
    println!("\nABL-GATED OK: the gate interpolates between CloudRefine and noLB.");
}
