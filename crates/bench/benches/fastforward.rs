//! PERF — steady-state fast-forward: differential check + throughput.
//!
//! Runs a long clean (interference-free) sweep twice — once with the
//! fast-forward macro-stepper forced ON and once forced OFF — and
//!
//! 1. **fails (exit 1) on any divergence**: after scrubbing the two
//!    observability counters, every `RunResult` must be bit-identical
//!    between the modes;
//! 2. records the ON throughput (plus the OFF arm and the speedup) to
//!    `BENCH_fastforward.json`.
//!
//! Clean long runs are the engine's best case: after the first window is
//! captured, every later LB window replays analytically, so events/sec
//! should be several times the event-by-event path. With
//! `CLOUDLB_CHECK=<path>` the ON throughput is gated against a checked-in
//! baseline like the other perf benches.
//!
//! Chaos/failure workloads are deliberately absent here — the engine
//! declines disturbed windows, so those runs measure the ordinary path
//! (covered by `perf_baseline.rs`). Bit-identity under disturbance is
//! asserted by `tests/fast_forward.rs`.

use cloudlb_bench::{baseline, sweeps, Settings};

fn main() {
    let s = Settings::from_env();
    cloudlb_bench::header("Fast-forward — differential check + throughput");
    let record = match sweeps::fastforward_sweep(&s) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("DIVERGENCE: {e}");
            std::process::exit(1);
        }
    };
    let path = baseline::write_json("fastforward", &record);
    println!("wrote {}", path.display());
    baseline::maybe_check(record.events_per_sec);
    println!("PERF OK");
}
