//! ABL-NOISE — stressing the principle of persistence.
//!
//! Paper §III: the LB framework predicts that "future loads will be
//! almost the same as measured loads (principle of persistence)". This
//! ablation injects multiplicative per-execution cost noise
//! (`±f` uniform) and measures how the balancer degrades: at moderate
//! noise the refinement loop self-corrects every window; only when task
//! costs become mostly noise does the benefit erode toward noLB.

use cloudlb_core::report::{pct, Table};
use cloudlb_core::scenario::Scenario;
use cloudlb_runtime::SimExecutor;

fn main() {
    cloudlb_bench::header("ABL-NOISE — task-cost noise sweep (Jacobi2D, 8 cores, 100 iterations)");
    let scn = Scenario::paper("jacobi2d", 8, "cloudrefine");

    let mut table = Table::new(&["noise ±%", "noLB %", "LB %", "reduction %", "migrations"]);
    let mut reductions = Vec::new();
    for noise in [0.0, 0.1, 0.3, 0.6, 1.0] {
        let run_arm = |strategy: &str| {
            let mut s = scn.clone();
            s.strategy = strategy.to_string();
            let app = s.build_app();
            let bg = s.bg_script(app.as_ref());
            let mut cfg = s.run_config();
            cfg.cost_noise_frac = noise;
            SimExecutor::new(app.as_ref(), cfg, bg).run()
        };
        let base = {
            let b = scn.base_of();
            let app = b.build_app();
            let mut cfg = b.run_config();
            cfg.cost_noise_frac = noise;
            SimExecutor::new(app.as_ref(), cfg, Default::default()).run()
        };
        let nolb = run_arm("nolb");
        let lb = run_arm("cloudrefine");
        let p_nolb = nolb.timing_penalty_vs(&base);
        let p_lb = lb.timing_penalty_vs(&base);
        let reduction = 1.0 - p_lb / p_nolb;
        table.row(vec![
            format!("{:.0}", noise * 100.0),
            pct(p_nolb),
            pct(p_lb),
            pct(reduction),
            lb.migrations.to_string(),
        ]);
        reductions.push((noise, reduction));
    }
    print!("{}", table.markdown());

    let clean = reductions[0].1;
    let moderate = reductions[2].1; // ±30 %
    assert!(
        moderate > 0.5 * clean,
        "±30% noise should retain most of the benefit: {moderate:.2} vs clean {clean:.2}"
    );
    println!(
        "\nABL-NOISE OK: penalty reduction {:.0} % clean → {:.0} % at ±30 % noise → {:.0} % at ±100 %.",
        clean * 100.0,
        moderate * 100.0,
        reductions.last().expect("nonempty").1 * 100.0
    );
}
