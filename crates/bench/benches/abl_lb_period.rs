//! ABL-PERIOD — how often to balance (paper §III: "periodically remaps
//! objects to processors as the application execution progresses").
//!
//! Short periods react fast but pay the LB barrier + migration cost more
//! often; long periods leave imbalance standing. The sweep exposes the
//! U-shaped trade-off.

use cloudlb_core::report::{pct, Table};
use cloudlb_core::scenario::Scenario;
use cloudlb_runtime::SimExecutor;

fn main() {
    cloudlb_bench::header("ABL-PERIOD — LB period sweep (Wave2D, 8 cores, 100 iterations)");
    let mut scn = Scenario::paper("wave2d", 8, "cloudrefine");
    let base = {
        let b = scn.base_of();
        let app = b.build_app();
        let bg = b.bg_script(app.as_ref());
        SimExecutor::new(app.as_ref(), b.run_config(), bg).run()
    };

    let mut table = Table::new(&["period", "penalty %", "LB steps", "migrations"]);
    let mut penalties = Vec::new();
    for period in [2usize, 5, 10, 20, 50] {
        scn.lb_period = period;
        let app = scn.build_app();
        let bg = scn.bg_script(app.as_ref());
        let run = SimExecutor::new(app.as_ref(), scn.run_config(), bg).run();
        let p = run.timing_penalty_vs(&base);
        table.row(vec![
            period.to_string(),
            pct(p),
            run.lb_steps.to_string(),
            run.migrations.to_string(),
        ]);
        penalties.push((period, p));
    }
    print!("{}", table.markdown());

    // The longest period must be clearly worse than the best choice (it
    // leaves the first half of the run unbalanced).
    let best = penalties.iter().map(|(_, p)| *p).fold(f64::INFINITY, f64::min);
    let longest = penalties.last().expect("nonempty").1;
    assert!(
        longest > best + 0.05,
        "period 50 ({longest:.3}) should trail the best ({best:.3})"
    );
    println!("\nABL-PERIOD OK: best penalty {:.1} %, period-50 penalty {:.1} %.", best * 100.0, longest * 100.0);
}
