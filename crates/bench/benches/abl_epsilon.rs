//! ABL-EPS — sensitivity to the tolerance `ε` of Eq. 3 ("the deviation
//! from the average load that the cloud operator is willing to allow").
//!
//! Small ε chases balance aggressively (more migrations); large ε
//! tolerates imbalance (fewer migrations, higher penalty). The paper
//! leaves ε to the operator; this ablation maps the trade-off.

use cloudlb_balance::CloudRefineLb;
use cloudlb_core::report::{pct, Table};
use cloudlb_core::scenario::Scenario;
use cloudlb_runtime::SimExecutor;

fn main() {
    cloudlb_bench::header("ABL-EPS — ε sweep (Jacobi2D, 8 cores, 100 iterations)");
    let scn = Scenario::paper("jacobi2d", 8, "cloudrefine");
    let base = {
        let b = scn.base_of();
        let app = b.build_app();
        let bg = b.bg_script(app.as_ref());
        SimExecutor::new(app.as_ref(), b.run_config(), bg).run()
    };

    let mut table = Table::new(&["epsilon", "penalty %", "migrations", "LB steps"]);
    let mut results = Vec::new();
    for eps in [0.0, 0.02, 0.05, 0.10, 0.25, 0.50] {
        let app = scn.build_app();
        let bg = scn.bg_script(app.as_ref());
        let run = SimExecutor::new(app.as_ref(), scn.run_config(), bg)
            .run_with_strategy(Box::new(CloudRefineLb::with_epsilon(eps)));
        let penalty = run.timing_penalty_vs(&base);
        table.row(vec![
            format!("{eps:.2}"),
            pct(penalty),
            run.migrations.to_string(),
            run.lb_steps.to_string(),
        ]);
        results.push((eps, penalty, run.migrations));
    }
    print!("{}", table.markdown());

    let tightest = results.first().expect("nonempty");
    let loosest = results.last().expect("nonempty");
    assert!(
        tightest.2 >= loosest.2,
        "tight ε must migrate at least as much as loose ε"
    );
    assert!(
        loosest.1 >= tightest.1 - 0.02,
        "loose ε should not beat tight ε on penalty"
    );
    println!("\nABL-EPS OK: migrations fall and penalty rises as ε loosens.");
}
