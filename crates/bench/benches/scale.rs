//! PERF — cloud-datacenter scale: 32k cores / 1M chares.
//!
//! Runs the paper's clean Jacobi2D setup blown up ×1000 — 32,768 cores,
//! 1,048,576 chares (32 per core) — with the fast-forward macro-stepper
//! pinned ON, and
//!
//! 1. **fails (exit 1)** on any broken invariant: chare conservation
//!    over the final placement, a non-bit-identical rerun, a blown
//!    `CLOUDLB_SCALE_BUDGET_S` wall-clock budget, or `hiercloudrefine`
//!    losing more than 5 % makespan to flat CloudRefine at the paper's
//!    own 8 × 4-core scale;
//! 2. records the gated flat-arm throughput (plus the hierarchical arm)
//!    to `BENCH_scale.json`.
//!
//! With `CLOUDLB_CHECK=<path>` the flat-arm throughput is gated against
//! a checked-in baseline like the other perf benches. `CLOUDLB_FAST=1`
//! shrinks the cluster to 2,048 cores / 65,536 chares for smoke runs.

use cloudlb_bench::{baseline, sweeps, Settings};

fn main() {
    let s = Settings::from_env();
    cloudlb_bench::header("Scale — 32k cores / 1M chares");
    let record = match sweeps::scale_sweep(&s) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("SCALE GATE FAILED: {e}");
            std::process::exit(1);
        }
    };
    let path = baseline::write_json("scale", &record);
    println!("wrote {}", path.display());
    baseline::maybe_check(record.events_per_sec);
    println!("PERF OK");
}
