//! ABL-COMM — communication-aware receiver selection (extension).
//!
//! The paper's future work worries about the cloud's "inferior performance
//! of network". `CommRefineLB` balances exactly like the paper's
//! Algorithm 1 but, among equally acceptable receivers, prefers the core
//! hosting the migrating chare's ghost-exchange partners. On a multi-node
//! cluster with a virtualized network this converts remote messages into
//! local ones at zero balance cost.

use cloudlb_core::report::{pct, Table};
use cloudlb_core::scenario::Scenario;
use cloudlb_runtime::SimExecutor;

fn main() {
    cloudlb_bench::header("ABL-COMM — comm-aware refinement (Jacobi2D, 16 cores = 4 nodes)");
    let scn = Scenario::paper("jacobi2d", 16, "cloudrefine");
    let base = {
        let b = scn.base_of();
        let app = b.build_app();
        let bg = b.bg_script(app.as_ref());
        SimExecutor::new(app.as_ref(), b.run_config(), bg).run()
    };

    let mut table = Table::new(&["strategy", "penalty %", "remote msg %", "migrations"]);
    let mut remote = Vec::new();
    for strategy in ["cloudrefine", "commrefine"] {
        let mut s = scn.clone();
        s.strategy = strategy.to_string();
        let app = s.build_app();
        let bg = s.bg_script(app.as_ref());
        let run = SimExecutor::new(app.as_ref(), s.run_config(), bg).run();
        table.row(vec![
            strategy.to_string(),
            pct(run.timing_penalty_vs(&base)),
            pct(run.remote_msg_fraction()),
            run.migrations.to_string(),
        ]);
        remote.push((run.remote_msg_fraction(), run.timing_penalty_vs(&base)));
    }
    print!("{}", table.markdown());

    let (cloud_remote, cloud_pen) = remote[0];
    let (comm_remote, comm_pen) = remote[1];
    assert!(
        comm_remote <= cloud_remote + 1e-9,
        "comm-aware must not increase remote traffic ({comm_remote:.3} vs {cloud_remote:.3})"
    );
    assert!(
        comm_pen <= cloud_pen + 0.06,
        "comm-aware must stay load-competitive ({comm_pen:.3} vs {cloud_pen:.3})"
    );
    println!(
        "\nABL-COMM OK: remote traffic {:.1} % → {:.1} % at comparable penalty.",
        cloud_remote * 100.0,
        comm_remote * 100.0
    );
}
