//! MICRO — criterion microbenchmarks of the performance-critical pieces:
//! strategy planning, event-queue throughput, the proportional-share core
//! advance, and the real Jacobi kernel.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cloudlb_apps::grids::Block2D;
use cloudlb_apps::Jacobi2D;
use cloudlb_balance::{CloudRefineLb, GreedyLb, LbStats, LbStrategy, TaskId, TaskInfo};
use cloudlb_runtime::program::IterativeApp;
use cloudlb_sim::core_sched::{Core, FgLabel};
use cloudlb_sim::{Dur, EventQueue, Time};

/// An interfered 32-core database with 16 tasks per core.
fn big_db() -> LbStats {
    let mut db = LbStats::new(32);
    for i in 0..(32 * 16) as u64 {
        db.tasks.push(TaskInfo {
            id: TaskId(i),
            pe: (i % 32) as usize,
            load: 0.01 + (i % 7) as f64 * 0.001,
            bytes: 200 * 1024,
        });
    }
    db.bg_load[0] = 0.2;
    db.bg_load[1] = 0.2;
    db
}

fn bench_strategies(c: &mut Criterion) {
    let db = big_db();
    c.bench_function("cloud_refine_plan_512_tasks_32_pes", |b| {
        b.iter(|| CloudRefineLb::default().plan(black_box(&db)))
    });
    c.bench_function("greedy_plan_512_tasks_32_pes", |b| {
        b.iter(|| GreedyLb::interference_aware().plan(black_box(&db)))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..10_000u32 {
                    q.schedule(Time::from_us((i as u64 * 7919) % 100_000), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_core_advance(c: &mut Criterion) {
    c.bench_function("core_advance_1k_tasks_with_bg", |b| {
        b.iter(|| {
            let mut core = Core::new(0);
            core.add_bg(0, None, 1.0);
            let mut events = Vec::new();
            for i in 0..1_000u64 {
                core.start_fg(FgLabel { chare: i }, Dur::from_us(100), 1.0);
                let now = core.next_completion().expect("finite fg");
                core.advance(now, &mut events, None);
                events.clear();
            }
            black_box(core.stat())
        })
    });
}

fn bench_jacobi_kernel(c: &mut Criterion) {
    let app = Jacobi2D::new(Block2D::new(320, 320, 2, 2)); // 160×160 blocks
    c.bench_function("jacobi_kernel_160x160_step", |b| {
        b.iter_batched(
            || app.make_kernel(0),
            |mut k| {
                let boot = k.compute(0, &[]);
                black_box(k.compute(1, &boot));
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_strategies, bench_event_queue, bench_core_advance, bench_jacobi_kernel
}
criterion_main!(benches);
