//! MICRO — microbenchmarks of the performance-critical pieces: strategy
//! planning, event-queue throughput, the proportional-share core advance,
//! and the real Jacobi kernel.
//!
//! Uses a small self-contained timing loop (median of repeated batches)
//! like every other `harness = false` bench in this crate.

use std::hint::black_box;
use std::time::Instant;

use cloudlb_apps::grids::Block2D;
use cloudlb_apps::Jacobi2D;
use cloudlb_balance::{CloudRefineLb, GreedyLb, LbStats, LbStrategy, TaskId, TaskInfo};
use cloudlb_runtime::program::IterativeApp;
use cloudlb_sim::core_sched::{Core, FgLabel};
use cloudlb_sim::{Dur, EventQueue, Time};

/// Run `f` in `samples` batches of `iters` calls; print the per-call
/// median batch time in microseconds.
fn bench(name: &str, samples: usize, iters: usize, mut f: impl FnMut()) {
    // Warm-up batch.
    for _ in 0..iters {
        f();
    }
    let mut per_call_us: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e6 / iters as f64
        })
        .collect();
    per_call_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = per_call_us[per_call_us.len() / 2];
    let best = per_call_us[0];
    println!("{name:<40} {median:>12.2} µs/call   (best {best:.2})");
}

/// An interfered 32-core database with 16 tasks per core.
fn big_db() -> LbStats {
    let mut db = LbStats::new(32);
    for i in 0..(32 * 16) as u64 {
        db.tasks.push(TaskInfo {
            id: TaskId(i),
            pe: (i % 32) as usize,
            load: 0.01 + (i % 7) as f64 * 0.001,
            bytes: 200 * 1024,
        });
    }
    db.bg_load[0] = 0.2;
    db.bg_load[1] = 0.2;
    db
}

fn main() {
    let fast = std::env::var("CLOUDLB_FAST").is_ok_and(|v| v != "0");
    let samples = if fast { 5 } else { 20 };
    println!("MICRO — medians over {samples} batches\n");

    let db = big_db();
    bench("cloud_refine_plan_512_tasks_32_pes", samples, 20, || {
        black_box(CloudRefineLb::default().plan(black_box(&db)));
    });
    bench("greedy_plan_512_tasks_32_pes", samples, 20, || {
        black_box(GreedyLb::interference_aware().plan(black_box(&db)));
    });

    bench("event_queue_push_pop_10k", samples, 5, || {
        let mut q = EventQueue::<u32>::new();
        for i in 0..10_000u32 {
            q.schedule(Time::from_us((i as u64 * 7919) % 100_000), i);
        }
        while let Some(ev) = q.pop() {
            black_box(ev);
        }
    });

    bench("core_advance_1k_tasks_with_bg", samples, 10, || {
        let mut core = Core::new(0);
        core.add_bg(0, None, 1.0);
        let mut events = Vec::new();
        for i in 0..1_000u64 {
            core.start_fg(FgLabel { chare: i }, Dur::from_us(100), 1.0);
            let now = core.next_completion().expect("finite fg");
            core.advance(now, &mut events, None);
            events.clear();
        }
        black_box(core.stat());
    });

    let app = Jacobi2D::new(Block2D::new(320, 320, 2, 2)); // 160×160 blocks
    bench("jacobi_kernel_160x160_step", samples, 10, || {
        let mut k = app.make_kernel(0);
        let boot = k.compute(0, &[]);
        black_box(k.compute(1, &boot));
    });
}
