//! FIG4 — "Effect of load balancing in energy and power consumption"
//! (paper Fig. 4 a–c).
//!
//! Same run matrix as Fig. 2; prints average power per node (W) and the
//! energy overhead normalized to the interference-free base run, for the
//! noLB and LB arms.
//!
//! Expected shape: LB draws *more* power (idle gaps disappear) yet has
//! *less* energy overhead (the 40 W base power stops burning through the
//! stretched noLB run) — the paper's central energy argument.

use cloudlb_bench::Settings;
use cloudlb_core::figures::{eval_matrix, fig4_table};

fn main() {
    let s = Settings::from_env();
    cloudlb_bench::header("Fig. 4 — power and normalized energy overhead vs cores");
    println!(
        "(power model: 40 W base / 170 W max per 4-core node, as measured on the paper's testbed)"
    );

    for app in ["jacobi2d", "wave2d", "mol3d"] {
        let points = eval_matrix(app, &s.cores, s.iterations, &s.seeds);
        println!("\nFig. 4 ({app})");
        print!("{}", fig4_table(&points).markdown());

        for p in &points {
            assert!(
                p.power_lb_w > p.power_nolb_w,
                "{app}@{}: LB must draw more power ({:.1} vs {:.1} W)",
                p.cores,
                p.power_lb_w,
                p.power_nolb_w
            );
            assert!(
                p.energy_overhead_lb < p.energy_overhead_nolb,
                "{app}@{}: LB must cut the energy overhead",
                p.cores
            );
            assert!((40.0..=170.0).contains(&p.power_lb_w));
            assert!((40.0..=170.0).contains(&p.power_nolb_w));
        }
    }
    println!("\nFIG4 OK: higher power, lower energy under load balancing.");
}
