//! FIG3 — "Cores timeline showing effect of load balancing for a 4 core
//! run with background load on Core1 and then Core3" (paper Fig. 3 a–e).
//!
//! Wave2D, 4 cores, CloudRefineLB. Interference lands on core 1, the
//! balancer sheds that core; the job leaves and the balancer migrates
//! work back; a new job lands on core 3 and the balancer reacts again.

use cloudlb_core::figures::fig3;

fn main() {
    cloudlb_bench::header("Fig. 3 — balancer tracks interference core 1 → core 3");
    let out = fig3(60, 6);

    println!("{:<26} iteration time", "phase");
    for (label, secs) in &out.phases {
        println!("{label:<26} {:8.2} ms", secs * 1e3);
    }
    println!("\nmigrations committed: {}", out.migrations);
    println!("\n{}", out.timeline);

    let path = std::env::temp_dir().join("cloudlb_fig3.svg");
    if std::fs::write(&path, &out.svg).is_ok() {
        println!("SVG timeline: {}", path.display());
    }

    let v: Vec<f64> = out.phases.iter().map(|(_, x)| *x).collect();
    assert!(out.migrations > 0, "FIG3 requires migrations");
    assert!(v[0] > 1.2 * v[1], "phase (a) must be slower than (b)");
    assert!(v[3] > 1.2 * v[4], "phase (d) must be slower than (e)");
    println!(
        "\nFIG3 OK: rebalancing recovered {:.0}% after core 1 and {:.0}% after core 3.",
        (1.0 - v[1] / v[0]) * 100.0,
        (1.0 - v[4] / v[3]) * 100.0
    );
}
