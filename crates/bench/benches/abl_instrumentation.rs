//! ABL-INSTR — CPU-time vs wall-time task measurement.
//!
//! The paper's Eq. 2 assumes the LB database holds per-task *CPU* time,
//! but it also observes (§IV) that Projections "includes the time spent
//! executing the 1-core run in the time spent for executing tasks" — i.e.
//! wall-time measurement inflates interfered tasks. This ablation runs
//! the balancer under both instrumentation modes. Wall-time mode folds
//! interference into task loads (over-predicting their post-migration
//! cost) yet still converges, because the refinement loop re-measures
//! every window.

use cloudlb_core::report::{pct, Table};
use cloudlb_core::scenario::Scenario;
use cloudlb_runtime::{InstrumentMode, SimExecutor};

fn main() {
    cloudlb_bench::header("ABL-INSTR — instrumentation mode (8 cores, 100 iterations)");
    let mut table = Table::new(&["app", "mode", "penalty %", "migrations"]);
    for app_name in ["jacobi2d", "wave2d", "mol3d"] {
        let scn = Scenario::paper(app_name, 8, "cloudrefine");
        let base = {
            let b = scn.base_of();
            let app = b.build_app();
            let bg = b.bg_script(app.as_ref());
            SimExecutor::new(app.as_ref(), b.run_config(), bg).run()
        };
        let mut penalties = Vec::new();
        for (label, mode) in [("cpu", InstrumentMode::CpuTime), ("wall", InstrumentMode::WallTime)]
        {
            let app = scn.build_app();
            let bg = scn.bg_script(app.as_ref());
            let mut cfg = scn.run_config();
            cfg.lb.instrument = mode;
            let run = SimExecutor::new(app.as_ref(), cfg, bg).run();
            let p = run.timing_penalty_vs(&base);
            table.row(vec![
                app_name.to_string(),
                label.to_string(),
                pct(p),
                run.migrations.to_string(),
            ]);
            penalties.push(p);
        }
        // Both modes must stay far below the ~90 % (or ~320 % for Mol3D)
        // noLB penalty; they may differ from each other.
        let cap = if app_name == "mol3d" { 1.6 } else { 0.6 };
        assert!(
            penalties.iter().all(|p| *p < cap),
            "{app_name}: a mode failed to converge: {penalties:?}"
        );
    }
    print!("{}", table.markdown());
    println!("\nABL-INSTR OK: both measurement modes tame the interference.");
}
