//! MICRO — the ghost-send hot loop: trait adjacency walk vs CSR.
//!
//! Every task completion walks the finishing chare's neighbor list to send
//! ghosts. The trait path ([`IterativeApp::neighbors`]) allocates a fresh
//! `Vec` and re-derives `message_bytes` per edge, per iteration; the
//! executor now pre-flattens the (static) graph into a [`CommCsr`] once
//! and walks an indexed row slice. This bench measures both on the
//! Mol3D communication graph (the densest of the apps) and records the
//! per-sweep times to `BENCH_comm_csr.json`.

use cloudlb_apps::Mol3D;
use cloudlb_bench::baseline;
use cloudlb_runtime::program::IterativeApp;
use cloudlb_runtime::CommCsr;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

/// Per-variant timing for one full walk over every edge of the graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CsrRecord {
    /// Chare count of the measured graph.
    chares: usize,
    /// Directed edge count of the measured graph.
    edges: usize,
    /// Median µs for one full-graph walk via the trait (`neighbors()` +
    /// `message_bytes()` per edge, allocating).
    trait_walk_us: f64,
    /// Median µs for one full-graph walk via the CSR rows.
    csr_walk_us: f64,
    /// `trait_walk_us / csr_walk_us`.
    speedup: f64,
}

/// Median per-call time in µs over `samples` batches of `iters` calls.
fn median_us(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters {
        f(); // warm-up
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e6 / iters as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    per_call[per_call.len() / 2]
}

fn main() {
    let fast = std::env::var("CLOUDLB_FAST").is_ok_and(|v| v != "0");
    let samples = if fast { 5 } else { 20 };
    let app = Mol3D::for_pes(32);
    let csr = CommCsr::build(&app);
    let n = csr.num_chares();
    cloudlb_bench::header("comm graph walk — trait adjacency vs CSR");
    println!("(Mol3D for 32 PEs: {n} chares, {} directed edges, {samples} batches)", csr.num_edges());

    let trait_walk_us = median_us(samples, 10, || {
        let mut acc = 0usize;
        for chare in 0..n {
            for nb in app.neighbors(chare) {
                acc += app.message_bytes(chare, nb);
            }
        }
        black_box(acc);
    });
    let csr_walk_us = median_us(samples, 10, || {
        let mut acc = 0usize;
        for chare in 0..n {
            for e in csr.row(chare) {
                black_box(csr.neighbor(e));
                acc += csr.edge_bytes(e);
            }
        }
        black_box(acc);
    });

    // Sanity: both walks cover the same edges and bytes.
    let trait_bytes: usize =
        (0..n).flat_map(|c| app.neighbors(c).into_iter().map(move |nb| (c, nb)))
            .map(|(c, nb)| app.message_bytes(c, nb))
            .sum();
    let csr_bytes: usize = (0..n).flat_map(|c| csr.row(c)).map(|e| csr.edge_bytes(e)).sum();
    assert_eq!(trait_bytes, csr_bytes, "CSR must mirror the trait graph");

    let speedup = trait_walk_us / csr_walk_us;
    println!("trait walk {trait_walk_us:>10.2} µs/graph");
    println!("csr walk   {csr_walk_us:>10.2} µs/graph");
    println!("speedup    {speedup:>10.2}x");

    let record = CsrRecord {
        chares: n,
        edges: csr.num_edges(),
        trait_walk_us,
        csr_walk_us,
        speedup,
    };
    let path = baseline::write_json("comm_csr", &record);
    println!("wrote {}", path.display());
    println!("MICRO OK");
}
