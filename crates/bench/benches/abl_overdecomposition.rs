//! ABL-ODF — over-decomposition factor (chares per core).
//!
//! Paper §III: "Typically the number of objects needs to be more than the
//! number of available processors for efficient execution." Refinement
//! can only move whole chares, so with 1–2 chares per core there is no
//! transferable granule small enough to fit a receiver's headroom and the
//! balancer cannot improve anything; with ≥ 4 chares per core it can.
//!
//! Because each decomposition changes the app itself (block sizes, message
//! latencies), the meaningful metric is each decomposition's *own*
//! noLB→LB penalty reduction, not penalties across decompositions.

use cloudlb_apps::grids::{near_square_factors, Block2D};
use cloudlb_apps::Jacobi2D;
use cloudlb_core::report::{pct, Table};
use cloudlb_core::scenario::Scenario;
use cloudlb_runtime::SimExecutor;

fn main() {
    cloudlb_bench::header("ABL-ODF — chares per core (Jacobi2D, 8 cores, 100 iterations)");
    let pes = 8usize;
    let mut table =
        Table::new(&["chares/core", "chares", "noLB %", "LB %", "reduction %", "migrations"]);
    let mut reductions = Vec::new();
    for odf in [1usize, 2, 4, 8, 16, 32] {
        let (cx, cy) = near_square_factors(odf * pes);
        // Keep total work roughly constant: total points ≈ 1280×640.
        let (bx, by) = (1280 / cx, 640 / cy);
        let app = Jacobi2D::new(Block2D::new(cx * bx, cy * by, cx, cy));

        let scn = Scenario::paper("jacobi2d", pes, "cloudrefine");
        let base = SimExecutor::new(&app, scn.base_of().run_config(), Default::default()).run();
        let mut nolb_cfg = scn.run_config();
        nolb_cfg.lb.strategy = "nolb".into();
        let nolb = SimExecutor::new(&app, nolb_cfg, scn.bg_script(&app)).run();
        let lb = SimExecutor::new(&app, scn.run_config(), scn.bg_script(&app)).run();

        let p_nolb = nolb.timing_penalty_vs(&base);
        let p_lb = lb.timing_penalty_vs(&base);
        let reduction = 1.0 - p_lb / p_nolb;
        table.row(vec![
            odf.to_string(),
            app.grid.num_chares().to_string(),
            pct(p_nolb),
            pct(p_lb),
            pct(reduction),
            lb.migrations.to_string(),
        ]);
        reductions.push((odf, reduction, lb.migrations));
    }
    print!("{}", table.markdown());

    let coarse = reductions[0]; // 1 chare per core: nothing can move
    let fine = reductions[3]; // 8 chares per core
    assert_eq!(coarse.2, 0, "odf=1 has no transferable granule");
    assert!(coarse.1 < 0.10, "odf=1 cannot improve: reduction {:.2}", coarse.1);
    assert!(fine.2 > 0, "odf=8 must migrate");
    assert!(
        fine.1 > coarse.1 + 0.3,
        "over-decomposition must pay off: odf=8 reduction {:.2} vs odf=1 {:.2}",
        fine.1,
        coarse.1
    );
    println!(
        "\nABL-ODF OK: penalty reduction grows from {:.0} % (1 chare/core) to {:.0} % (8 chares/core).",
        coarse.1 * 100.0,
        fine.1 * 100.0
    );
}
