//! FIG1 — "BG task on Core#4 disturbing load balance" (paper Fig. 1).
//!
//! Wave2D on 4 cores, no load balancing; a 1-core background job arrives
//! on the last core after a few iterations. Reproduces the paper's two
//! observations: the interfered iteration's timeline is visibly longer,
//! and the interfered core's task bars inflate (Projections cannot
//! separate the context-switched background time).

use cloudlb_core::figures::fig1;

fn main() {
    cloudlb_bench::header("Fig. 1 — background task on core 3 disturbs load balance");
    let out = fig1(20);

    println!("mean iteration time, no interference : {:8.2} ms", out.quiet_iter_s * 1e3);
    println!("mean iteration time, with interference: {:8.2} ms", out.interfered_iter_s * 1e3);
    println!(
        "stretch factor: {:.2}x (paper: roughly 2x under fair CPU sharing)",
        out.interfered_iter_s / out.quiet_iter_s
    );
    println!("\nTimeline (one quiet iteration, then one interfered iteration):\n");
    println!("{}", out.timeline);

    let path = std::env::temp_dir().join("cloudlb_fig1.svg");
    if std::fs::write(&path, &out.svg).is_ok() {
        println!("SVG timeline: {}", path.display());
    }

    assert!(
        out.interfered_iter_s > 1.5 * out.quiet_iter_s,
        "FIG1 shape violated: interference must visibly stretch iterations"
    );
    println!("\nFIG1 OK: interfered iterations are {:.2}x longer", out.interfered_iter_s / out.quiet_iter_s);
}
