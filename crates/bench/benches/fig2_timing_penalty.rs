//! FIG2 — "Effect of load balancing in execution time" (paper Fig. 2 a–c).
//!
//! For each application (Jacobi2D, Wave2D, Mol3D) and each core count
//! (4–32), prints the four series of the paper's bar groups: app timing
//! penalty without/with LB and background-job timing penalty without/with
//! LB, averaged over seeds.
//!
//! Expected shape (not absolute numbers): noLB penalties stay high and
//! roughly flat (≈90 % fair-share, up to ≈400 % for Mol3D's preferred
//! background job); LB penalties are at least halved and fall as cores
//! grow; the background job also speeds up under LB for the fair-shared
//! apps.

use cloudlb_bench::Settings;
use cloudlb_core::figures::{eval_matrix, fig2_table};

fn main() {
    let s = Settings::from_env();
    cloudlb_bench::header("Fig. 2 — timing penalty vs cores");
    println!(
        "(cores {:?}, {} iterations, seeds {:?})",
        s.cores, s.iterations, s.seeds
    );

    for app in ["jacobi2d", "wave2d", "mol3d"] {
        let points = eval_matrix(app, &s.cores, s.iterations, &s.seeds);
        println!("\nFig. 2 ({app})");
        print!("{}", fig2_table(&points).markdown());

        // Shape checks — who wins, and how the trend goes.
        for p in &points {
            assert!(
                p.penalty_lb < p.penalty_nolb,
                "{app}@{}: LB must beat noLB",
                p.cores
            );
        }
        let first = points.first().expect("nonempty");
        let last = points.last().expect("nonempty");
        assert!(
            last.penalty_lb <= first.penalty_lb + 0.02,
            "{app}: LB penalty should not grow with cores ({:.3} -> {:.3})",
            first.penalty_lb,
            last.penalty_lb
        );
        if app == "mol3d" {
            assert!(
                first.penalty_nolb > 2.5,
                "mol3d noLB penalty should reach the paper's ~400% magnitude"
            );
        }
    }
    println!("\nFIG2 OK: LB wins everywhere, penalties shrink with cores.");
}
