//! Packet-based streaming sweep pipeline: generator → simulate → reduce.
//!
//! [`par_map`](crate::parallel::par_map) fans a *materialized* `Vec` of
//! jobs over worker threads and hands back a *materialized* `Vec` of
//! results — fine for a figure matrix, hopeless for a million-cell
//! parameter study where the Vec-of-everything is the memory bound. This
//! module reworks the sweep substrate as a three-stage pipeline of
//! sequence-numbered **packets**:
//!
//! ```text
//!  generator ──bounded injector──▶ simulate workers ──mpsc──▶ reducer
//!  (lazy iterator,                 (work-stealing deque       (reorder buffer,
//!   credit-throttled)              per worker, steal-half)     submission order)
//! ```
//!
//! * The **generator** drains a lazy iterator on its own thread and
//!   pushes `(seq, item)` packets into a shared injector queue. It is
//!   throttled by a credit counter: at most `window = jobs +
//!   reorder_window` packets may be in flight (issued but not yet
//!   consumed in submission order), which is what bounds every queue,
//!   the reorder buffer, and the number of live results — O(workers +
//!   reorder window) regardless of sweep size.
//! * Each **simulate worker** owns a deque. It pops local work first,
//!   claims half the injector when empty, and steals half a sibling's
//!   deque when the injector is dry — so one slow Mol3D cell keeps
//!   exactly one worker busy while its siblings drain the rest of the
//!   sweep.
//! * The **reducer** runs on the calling thread. Results arrive over an
//!   mpsc channel in completion order and are reassembled into strict
//!   submission order through a small reorder buffer, so the consumer
//!   callback observes exactly the serial fold — bit-identical results
//!   for any worker count, the same guarantee `par_map` gives (see
//!   `tests/parallel_sweep.rs` and `tests/pipeline_stream.rs`).
//!
//! `jobs <= 1` short-circuits to a plain serial loop on the calling
//! thread: generator, map and consumer run inline, byte-for-byte the
//! serial path.
//!
//! There are no external dependencies — everything is `std` scoped
//! threads, mutexes and channels, like the rest of the workspace.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Instant;

/// Shape of the pipeline: worker count plus the reorder slack that lets
/// the pool run ahead of a slow packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Simulate-stage worker threads.
    pub jobs: usize,
    /// Extra in-flight packets beyond `jobs`. The reducer's reorder
    /// buffer never holds more than `jobs + reorder_window` results, and
    /// a straggler packet stalls the pool only once the pool has run
    /// this far ahead of it.
    pub reorder_window: usize,
}

impl PipelineConfig {
    /// A pipeline with `jobs` workers and the default reorder slack
    /// (`2 * jobs`, floor 8) — enough to ride over an occasional slow
    /// cell without materially raising the memory bound.
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        PipelineConfig { jobs, reorder_window: (2 * jobs).max(8) }
    }

    /// Total in-flight packet budget: `jobs + reorder_window`. This is
    /// the hard bound on live (produced but not yet consumed) results.
    pub fn window(&self) -> usize {
        self.jobs + self.reorder_window
    }
}

/// Counters the pipeline reports after a run. Everything here is
/// observability — none of it feeds back into results, which stay
/// bit-identical to the serial path by construction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelineStats {
    /// Packets that flowed through the pipeline.
    pub packets: usize,
    /// Wall-clock of the whole run, seconds.
    pub wall_s: f64,
    /// `packets / wall_s`.
    pub packets_per_sec: f64,
    /// Total time workers spent inside the map function, seconds.
    pub busy_s: f64,
    /// `busy_s / (jobs * wall_s)` — fraction of the pool that was doing
    /// real work (1.0 = no worker ever idled).
    pub utilization: f64,
    /// Largest number of results the reorder buffer held at once.
    pub reorder_peak: usize,
    /// Largest number of live results (computed but not yet consumed in
    /// submission order) at any instant. Bounded by
    /// [`PipelineConfig::window`] by construction.
    pub live_peak: usize,
    /// Batches a worker claimed from the shared injector.
    pub injector_claims: u64,
    /// Steal-half operations against a sibling worker's deque.
    pub steals: u64,
    /// Worker count the run used.
    pub jobs: usize,
    /// In-flight budget the run was configured with.
    pub window: usize,
}

impl PipelineStats {
    fn finish(mut self, wall_s: f64) -> Self {
        self.wall_s = wall_s;
        self.packets_per_sec = if wall_s > 0.0 { self.packets as f64 / wall_s } else { 0.0 };
        self.utilization = if wall_s > 0.0 && self.jobs > 0 {
            self.busy_s / (self.jobs as f64 * wall_s)
        } else {
            0.0
        };
        self
    }
}

/// Worker→reducer message: a finished packet, or notice that a worker is
/// unwinding (so the reducer can release everyone instead of waiting for
/// a result that will never come).
enum Msg<R> {
    Done(usize, R),
    Panicked,
}

/// Sends [`Msg::Panicked`] if the owning worker unwinds mid-packet.
struct PanicNotice<R> {
    tx: mpsc::Sender<Msg<R>>,
}

impl<R> Drop for PanicNotice<R> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.tx.send(Msg::Panicked);
        }
    }
}

/// Generator⇄reducer credit state: how many packets are in flight, and
/// whether the run is being torn down early.
struct Credits {
    in_flight: usize,
    aborted: bool,
}

/// Injector queue plus the generator-completion flag, under one lock so
/// parked workers cannot miss a wakeup.
struct Injector<T> {
    q: VecDeque<(usize, T)>,
    gen_done: bool,
}

struct Shared<T, R> {
    injector: Mutex<Injector<T>>,
    work_cv: Condvar,
    locals: Vec<Mutex<VecDeque<(usize, T)>>>,
    credits: Mutex<Credits>,
    credit_cv: Condvar,
    /// Packets sitting in *some* queue (injector or a local deque),
    /// i.e. visible to an idle worker scanning for work.
    queued: AtomicUsize,
    /// Results computed but not yet consumed in submission order.
    live: AtomicUsize,
    live_peak: AtomicUsize,
    injector_claims: AtomicU64,
    steals: AtomicU64,
    busy_ns: AtomicU64,
    /// Total packets the generator issued; valid once `gen_complete`.
    total: AtomicUsize,
    gen_complete: AtomicBool,
    aborted: AtomicBool,
    _marker: std::marker::PhantomData<fn() -> R>,
}

/// Stream `items` through the pipeline: apply `f` on up to `cfg.jobs`
/// workers and hand every result to `consume` in **submission order**
/// (`consume(0, r0)`, `consume(1, r1)`, …, with no gaps). At most
/// [`PipelineConfig::window`] packets are in flight at any instant, so
/// peak live results is O(jobs + reorder window) no matter how long the
/// iterator runs.
///
/// A panic inside `f` tears the pipeline down and propagates to the
/// caller; a panic inside `consume` likewise (in-flight packets are
/// abandoned, never silently dropped into the consumer).
pub fn pipeline_stream<T, R, I, F, C>(
    cfg: &PipelineConfig,
    items: I,
    f: F,
    mut consume: C,
) -> PipelineStats
where
    T: Send,
    R: Send,
    I: IntoIterator<Item = T>,
    I::IntoIter: Send,
    F: Fn(T) -> R + Sync,
    C: FnMut(usize, R),
{
    let jobs = cfg.jobs.max(1);
    let window = cfg.window().max(1);
    let t0 = Instant::now();

    if jobs <= 1 {
        // Serial short-circuit: generator, simulate and reduce all run
        // inline on the calling thread.
        let mut packets = 0usize;
        let mut busy_ns = 0u128;
        for (seq, item) in items.into_iter().enumerate() {
            let t = Instant::now();
            let r = f(item);
            busy_ns += t.elapsed().as_nanos();
            consume(seq, r);
            packets += 1;
        }
        let stats = PipelineStats {
            packets,
            wall_s: 0.0,
            packets_per_sec: 0.0,
            busy_s: busy_ns as f64 / 1e9,
            utilization: 0.0,
            reorder_peak: 0,
            live_peak: packets.min(1),
            injector_claims: 0,
            steals: 0,
            jobs: 1,
            window,
        };
        return stats.finish(t0.elapsed().as_secs_f64());
    }

    let shared: Shared<T, R> = Shared {
        injector: Mutex::new(Injector { q: VecDeque::new(), gen_done: false }),
        work_cv: Condvar::new(),
        locals: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
        credits: Mutex::new(Credits { in_flight: 0, aborted: false }),
        credit_cv: Condvar::new(),
        queued: AtomicUsize::new(0),
        live: AtomicUsize::new(0),
        live_peak: AtomicUsize::new(0),
        injector_claims: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        busy_ns: AtomicU64::new(0),
        total: AtomicUsize::new(0),
        gen_complete: AtomicBool::new(false),
        aborted: AtomicBool::new(false),
        _marker: std::marker::PhantomData,
    };
    let shared = &shared;
    let f = &f;
    let (tx, rx) = mpsc::channel::<Msg<R>>();

    let mut reorder_peak = 0usize;

    std::thread::scope(|scope| {
        // --- Generator stage -------------------------------------------
        let gen_tx = tx.clone();
        let iter = items.into_iter();
        scope.spawn(move || {
            let _notice = PanicNotice { tx: gen_tx };
            let mut seq = 0usize;
            // Credits are acquired in batches (everything available under
            // the window) so a release burst from the reducer translates
            // into one generator wakeup and a run of back-to-back pushes,
            // not one wake/sleep cycle per packet.
            let mut budget = 0usize;
            let mut died = false;
            for item in iter {
                if budget == 0 {
                    let mut c = shared.credits.lock().expect("credits poisoned");
                    while c.in_flight >= window && !c.aborted {
                        c = shared.credit_cv.wait(c).expect("credits poisoned");
                    }
                    if c.aborted {
                        died = true;
                        break;
                    }
                    budget = window - c.in_flight;
                    c.in_flight += budget;
                }
                budget -= 1;
                let mut inj = shared.injector.lock().expect("injector poisoned");
                inj.q.push_back((seq, item));
                shared.queued.fetch_add(1, Ordering::SeqCst);
                // One packet needs at most one worker; notify_all here
                // would stampede every parked worker per push.
                shared.work_cv.notify_one();
                drop(inj);
                seq += 1;
            }
            if budget > 0 && !died {
                // Hand back credits acquired for items the iterator never
                // produced, so `in_flight` keeps meaning live packets.
                let mut c = shared.credits.lock().expect("credits poisoned");
                c.in_flight -= budget;
            }
            shared.total.store(seq, Ordering::SeqCst);
            shared.gen_complete.store(true, Ordering::SeqCst);
            let mut inj = shared.injector.lock().expect("injector poisoned");
            inj.gen_done = true;
            shared.work_cv.notify_all();
        });

        // --- Simulate stage: work-stealing workers ----------------------
        for wid in 0..jobs {
            let tx = tx.clone();
            scope.spawn(move || {
                let notice = PanicNotice { tx };
                'work: loop {
                    if shared.aborted.load(Ordering::SeqCst) {
                        break;
                    }
                    // 1. Own deque first (front pop keeps rough
                    //    submission order, which keeps the reorder
                    //    buffer shallow).
                    let mine =
                        shared.locals[wid].lock().expect("deque poisoned").pop_front();
                    if let Some((seq, item)) = mine {
                        run_packet(shared, &notice.tx, f, seq, item);
                        continue;
                    }
                    // 2. Claim from the shared injector: run the head
                    //    packet directly (no local-deque round trip) and
                    //    reserve half the remainder for this worker.
                    let claimed = {
                        let mut inj = shared.injector.lock().expect("injector poisoned");
                        match inj.q.pop_front() {
                            Some(head) => {
                                let take = inj.q.len().div_ceil(2);
                                if take > 0 {
                                    let mut local =
                                        shared.locals[wid].lock().expect("deque poisoned");
                                    for _ in 0..take {
                                        local.push_back(
                                            inj.q.pop_front().expect("len checked"),
                                        );
                                    }
                                }
                                shared.injector_claims.fetch_add(1, Ordering::Relaxed);
                                Some(head)
                            }
                            None => None,
                        }
                    };
                    if let Some((seq, item)) = claimed {
                        run_packet(shared, &notice.tx, f, seq, item);
                        continue;
                    }
                    // 3. Steal half a sibling's deque (from the back:
                    //    the victim keeps the packets it will reach
                    //    soonest).
                    for k in 1..jobs {
                        let victim = (wid + k) % jobs;
                        let mut v = shared.locals[victim].lock().expect("deque poisoned");
                        let len = v.len();
                        if len > 0 {
                            let tail = v.split_off(len - len.div_ceil(2));
                            drop(v);
                            let mut local =
                                shared.locals[wid].lock().expect("deque poisoned");
                            local.extend(tail);
                            drop(local);
                            shared.steals.fetch_add(1, Ordering::Relaxed);
                            continue 'work;
                        }
                    }
                    // 4. Nothing visible: park until the generator
                    //    pushes, or exit once it is done and every
                    //    queue is drained. `queued` only rises under
                    //    the injector lock, so this cannot miss work.
                    let mut inj = shared.injector.lock().expect("injector poisoned");
                    loop {
                        if shared.aborted.load(Ordering::SeqCst) {
                            break 'work;
                        }
                        if !inj.q.is_empty() || shared.queued.load(Ordering::SeqCst) > 0 {
                            break;
                        }
                        if inj.gen_done {
                            break 'work;
                        }
                        inj = shared.work_cv.wait(inj).expect("injector poisoned");
                    }
                }
            });
        }
        drop(tx);

        // --- Reduce stage (this thread): reorder to submission order ----
        let mut buf: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        loop {
            if shared.gen_complete.load(Ordering::SeqCst)
                && next == shared.total.load(Ordering::SeqCst)
            {
                break;
            }
            match rx.recv() {
                Ok(Msg::Done(seq, r)) => {
                    buf.insert(seq, r);
                    reorder_peak = reorder_peak.max(buf.len());
                    let mut burst = 0usize;
                    while let Some(r) = buf.remove(&next) {
                        // Consume under an abort guard: a panicking
                        // consumer must still release the generator and
                        // the parked workers.
                        let guard = AbortOnUnwind { shared };
                        consume(next, r);
                        std::mem::forget(guard);
                        next += 1;
                        shared.live.fetch_sub(1, Ordering::SeqCst);
                        burst += 1;
                    }
                    if burst > 0 {
                        // Release the whole burst's credits with one lock
                        // and one wakeup (only the generator waits here).
                        let mut c = shared.credits.lock().expect("credits poisoned");
                        c.in_flight -= burst;
                        shared.credit_cv.notify_one();
                    }
                }
                Ok(Msg::Panicked) | Err(mpsc::RecvError) => {
                    // A stage died (or every sender vanished early):
                    // release everyone and let scope exit propagate the
                    // panic.
                    abort(shared);
                    break;
                }
            }
        }
    });

    let stats = PipelineStats {
        packets: shared.total.load(Ordering::SeqCst),
        wall_s: 0.0,
        packets_per_sec: 0.0,
        busy_s: shared.busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
        utilization: 0.0,
        reorder_peak,
        live_peak: shared.live_peak.load(Ordering::SeqCst),
        injector_claims: shared.injector_claims.load(Ordering::Relaxed),
        steals: shared.steals.load(Ordering::Relaxed),
        jobs,
        window,
    };
    stats.finish(t0.elapsed().as_secs_f64())
}

/// Execute one packet on a worker and ship the result to the reducer.
fn run_packet<T, R, F>(
    shared: &Shared<T, R>,
    tx: &mpsc::Sender<Msg<R>>,
    f: &F,
    seq: usize,
    item: T,
) where
    F: Fn(T) -> R,
{
    shared.queued.fetch_sub(1, Ordering::SeqCst);
    let t = Instant::now();
    let r = f(item);
    shared.busy_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    let live = shared.live.fetch_add(1, Ordering::SeqCst) + 1;
    shared.live_peak.fetch_max(live, Ordering::SeqCst);
    // The reducer may already be gone on an aborted run.
    let _ = tx.send(Msg::Done(seq, r));
}

/// Wake every blocked stage so the scope can unwind.
fn abort<T, R>(shared: &Shared<T, R>) {
    shared.aborted.store(true, Ordering::SeqCst);
    {
        let mut c = shared.credits.lock().expect("credits poisoned");
        c.aborted = true;
        shared.credit_cv.notify_all();
    }
    let _inj = shared.injector.lock().expect("injector poisoned");
    shared.work_cv.notify_all();
}

/// Calls [`abort`] if dropped during an unwind (armed around the
/// consumer callback; defused with `mem::forget` on the happy path).
struct AbortOnUnwind<'a, T, R> {
    shared: &'a Shared<T, R>,
}

impl<T, R> Drop for AbortOnUnwind<'_, T, R> {
    fn drop(&mut self) {
        abort(self.shared);
    }
}

/// The collect-all compatibility path: stream `items` through the
/// pipeline but materialize every result, in submission order — the
/// exact `Vec` [`par_map`](crate::parallel::par_map) would return, plus
/// the pipeline's stats. Exact-result tests and small sweeps use this;
/// large sweeps should prefer [`pipeline_stream`] with an online
/// consumer so peak memory stays O(window).
pub fn pipeline_map<T, R, F>(
    cfg: &PipelineConfig,
    items: Vec<T>,
    f: F,
) -> (Vec<R>, PipelineStats)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    let stats = pipeline_stream(cfg, items, f, |seq, r| {
        debug_assert_eq!(seq, out.len(), "consumer must see submission order");
        out.push(r);
    });
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn cfg(jobs: usize) -> PipelineConfig {
        PipelineConfig::new(jobs)
    }

    #[test]
    fn results_arrive_in_submission_order_for_any_worker_count() {
        for jobs in [1, 2, 4, 8] {
            let mut seen = Vec::new();
            let stats = pipeline_stream(&cfg(jobs), 0..200usize, |i| i * 3, |seq, r| {
                assert_eq!(r, seq * 3);
                seen.push(r);
            });
            assert_eq!(seen, (0..200).map(|i| i * 3).collect::<Vec<_>>(), "jobs={jobs}");
            assert_eq!(stats.packets, 200);
        }
    }

    #[test]
    fn pipeline_map_matches_serial_map() {
        let items: Vec<u64> = (0..123).collect();
        let (out, stats) = pipeline_map(&cfg(4), items.clone(), |i| i * i);
        assert_eq!(out, items.iter().map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(stats.packets, 123);
    }

    #[test]
    fn straggler_does_not_idle_the_pool_and_live_stays_bounded() {
        // One slow packet per 16 fast ones; the live-results bound must
        // hold even while the pool runs ahead of the straggler.
        let c = PipelineConfig { jobs: 4, reorder_window: 16 };
        let stats = pipeline_stream(
            &c,
            0..170usize,
            |i| {
                if i % 17 == 16 {
                    std::thread::sleep(std::time::Duration::from_millis(3));
                }
                i
            },
            |seq, r| assert_eq!(seq, r),
        );
        assert_eq!(stats.packets, 170);
        assert!(
            stats.live_peak <= c.window(),
            "live peak {} exceeded window {}",
            stats.live_peak,
            c.window()
        );
        assert!(stats.reorder_peak <= c.window());
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let mut n = 0;
        pipeline_stream(
            &cfg(3),
            0..57usize,
            |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                i
            },
            |_, _| n += 1,
        );
        assert_eq!(calls.load(Ordering::Relaxed), 57);
        assert_eq!(n, 57);
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, stats) = pipeline_map(&cfg(4), Vec::<u8>::new(), |i| i);
        assert!(out.is_empty());
        assert_eq!(stats.packets, 0);
        assert_eq!(stats.live_peak, 0);
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            pipeline_map(&cfg(2), (0..8usize).collect(), |i| {
                if i == 5 {
                    panic!("cell exploded");
                }
                i
            })
        });
        assert!(caught.is_err(), "panic in a worker must reach the caller");
    }

    #[test]
    fn consumer_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            pipeline_stream(&cfg(2), 0..64usize, |i| i, |seq, _| {
                if seq == 10 {
                    panic!("reducer exploded");
                }
            })
        });
        assert!(caught.is_err(), "panic in the consumer must reach the caller");
    }

    #[test]
    fn lazy_generator_is_driven_incrementally() {
        // The generator must never materialize the whole input: with a
        // window of jobs + reorder, the iterator cursor can be at most
        // window + (packets already consumed) at any instant.
        let c = PipelineConfig { jobs: 2, reorder_window: 4 };
        let issued = AtomicUsize::new(0);
        let consumed = AtomicUsize::new(0);
        let items = (0..500usize).inspect(|_| {
            let ahead = issued.fetch_add(1, Ordering::SeqCst) + 1;
            let done = consumed.load(Ordering::SeqCst);
            assert!(
                ahead <= done + c.window() + 1,
                "generator ran {ahead} ahead of {done} consumed (window {})",
                c.window()
            );
        });
        pipeline_stream(&c, items, |i| i, |_, _| {
            consumed.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(issued.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn utilization_and_throughput_are_populated() {
        let stats = pipeline_stream(
            &cfg(2),
            0..64usize,
            |i| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                i
            },
            |_, _| {},
        );
        assert!(stats.wall_s > 0.0);
        assert!(stats.packets_per_sec > 0.0);
        assert!(stats.busy_s > 0.0);
        assert!(stats.utilization > 0.0 && stats.utilization <= 1.0 + 1e-9);
    }
}
