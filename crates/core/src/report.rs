//! Table rendering (markdown and CSV) shared by the benchmark harness.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "ragged row");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a GitHub-style markdown table.
    pub fn markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line.push('\n');
            line
        };
        let mut out = fmt_row(&self.headers);
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Render as CSV (no quoting; cells must not contain commas).
    pub fn csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            debug_assert!(row.iter().all(|c| !c.contains(',')), "cell with comma");
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal, e.g. `0.416` →
/// `"41.6"`.
pub fn pct(frac: f64) -> String {
    format!("{:.1}", frac * 100.0)
}

/// Format watts with one decimal.
pub fn watts(w: f64) -> String {
    format!("{w:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_aligns() {
        let mut t = Table::new(&["cores", "penalty"]);
        t.row(vec!["4".into(), "98.2".into()]);
        t.row(vec!["32".into(), "6.1".into()]);
        let md = t.markdown();
        assert!(md.starts_with("| cores | penalty |"));
        assert!(md.contains("|-------|---------|"));
        assert_eq!(md.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "ragged row")]
    fn ragged_rows_rejected() {
        Table::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.4163), "41.6");
        assert_eq!(pct(4.0), "400.0");
        assert_eq!(watts(105.25), "105.2");
    }
}
