//! Online (streaming) summary statistics for memory-bounded sweeps.
//!
//! A million-cell sweep cannot afford a `Vec<f64>` per metric just to
//! compute a mean and a few quantiles at the end. [`StreamSummary`]
//! consumes one value at a time — O(1) state per observation, O(active
//! buckets) total — and reports:
//!
//! * **count / mean / min / max** — *exact*. The mean is kept as a
//!   running sum in arrival order, so `sum / count` is bit-identical to
//!   the batch `cloudlb_sim::stats::mean` (`xs.iter().sum::<f64>() /
//!   len`), which folds left-to-right with the same `+`.
//! * **quantiles** — approximate, from a fixed-resolution logarithmic
//!   histogram: 64 sub-buckets per power of two (the bucket key is the
//!   float's exponent plus its top 6 mantissa bits), kept sparse in a
//!   `BTreeMap`. Each bucket spans a relative width of 1/64 of its
//!   octave, and the reported value is the bucket midpoint, so the
//!   relative error of any quantile estimate is at most **1/128 ≈
//!   0.79 %** of the true value (documented bound: ≤ 1 %). Negative
//!   values get mirrored buckets; zeros get their own bucket; non-finite
//!   values are counted but excluded from the histogram.
//!
//! This is the fixed-resolution-histogram alternative to P² from the
//! issue: unlike P² it is insensitive to arrival order (any permutation
//! of the input yields the same histogram, hence the same quantile
//! answer), which keeps swarm/CI output reproducible across worker
//! counts.

use std::collections::BTreeMap;

/// Mantissa bits folded into the bucket key: 2^6 = 64 sub-buckets per
/// octave → ≤ 1/128 relative quantile error.
const SUB_BITS: u32 = 6;

/// Online count/mean/min/max plus log-histogram quantiles. See the
/// module docs for exactness guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Sparse histogram: signed bucket key → observation count. Keys
    /// order the same way the values do (negative mirror below zero).
    buckets: BTreeMap<i64, u64>,
    /// Observations excluded from the histogram (NaN / ±inf).
    non_finite: u64,
}

/// Map a finite value to its signed, order-preserving bucket key.
fn bucket_key(x: f64) -> i64 {
    if x == 0.0 {
        return 0;
    }
    let raw = (x.abs().to_bits() >> (52 - SUB_BITS)) as i64;
    if x > 0.0 {
        raw + 1
    } else {
        -(raw + 1)
    }
}

/// The midpoint of a bucket's value range (inverse of [`bucket_key`]).
fn bucket_mid(key: i64) -> f64 {
    if key == 0 {
        return 0.0;
    }
    let raw = (key.unsigned_abs() - 1) << (52 - SUB_BITS);
    let lo = f64::from_bits(raw);
    let hi = f64::from_bits(raw + (1u64 << (52 - SUB_BITS)));
    let mid = if hi.is_finite() { (lo + hi) / 2.0 } else { lo };
    if key > 0 {
        mid
    } else {
        -mid
    }
}

impl Default for StreamSummary {
    fn default() -> Self {
        StreamSummary::new()
    }
}

impl StreamSummary {
    /// An empty summary.
    pub fn new() -> Self {
        StreamSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
            non_finite: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
        if x.is_finite() {
            *self.buckets.entry(bucket_key(x)).or_insert(0) += 1;
        } else {
            self.non_finite += 1;
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running sum in arrival order.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// `sum / count` — bit-identical to the batch
    /// `cloudlb_sim::stats::mean` over the same values in the same
    /// order. Returns 0.0 when empty (matching `mean(&[])`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank quantile estimate from the log histogram, with
    /// relative error ≤ 1/128 of the true value. `q <= 0` returns the
    /// exact min, `q >= 1` the exact max; the estimate is always
    /// clamped into `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min();
        }
        let in_hist: u64 = self.count - self.non_finite;
        if q >= 1.0 || in_hist == 0 {
            return self.max();
        }
        let rank = ((q * in_hist as f64).ceil() as u64).clamp(1, in_hist);
        let mut seen = 0u64;
        for (&key, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_mid(key).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Fold another summary into this one. Count/min/max/histogram
    /// merge exactly; the sum (hence mean) is order-sensitive at the
    /// last bit, so merged means are *approximately* (not bitwise)
    /// equal to the single-stream mean — use one summary per stream
    /// when bit-exactness matters.
    pub fn merge(&mut self, other: &StreamSummary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        for (&k, &n) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += n;
        }
        self.non_finite += other.non_finite;
    }

    /// One-line rendering: `n=.. mean=.. min=.. p50=.. p90=.. p99=.. max=..`.
    pub fn render(&self) -> String {
        format!(
            "n={} mean={:.6} min={:.6} p50={:.6} p90={:.6} p99={:.6} max={:.6}",
            self.count,
            self.mean(),
            self.min(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summarize(xs: &[f64]) -> StreamSummary {
        let mut s = StreamSummary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    #[test]
    fn default_behaves_like_new() {
        // A derived Default once initialized min/max to 0.0, poisoning
        // every later extreme; Default must route through new().
        let mut s = StreamSummary::default();
        s.push(5.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn empty_summary_matches_empty_batch() {
        let s = StreamSummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn mean_is_bit_identical_to_batch_mean() {
        // Values chosen to exercise rounding: the running sum must fold
        // in the same order as iter().sum().
        let xs: Vec<f64> =
            (0..1000).map(|i| (i as f64 * 0.37).sin() * 1e3 + 0.1).collect();
        let s = summarize(&xs);
        let batch = xs.iter().sum::<f64>() / xs.len() as f64;
        assert_eq!(s.mean().to_bits(), batch.to_bits());
        assert_eq!(s.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        assert_eq!(s.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn bucket_keys_preserve_order() {
        let vals =
            [-1e9, -3.5, -1.0, -1e-12, 0.0, 1e-12, 0.5, 1.0, 1.5, 2.0, 1e9];
        for w in vals.windows(2) {
            assert!(
                bucket_key(w[0]) <= bucket_key(w[1]),
                "keys must be monotone: {} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn bucket_mid_lands_inside_its_bucket() {
        for &x in &[1e-300, 0.001, 0.5, 1.0, 3.7, 1e6, 1e300, -2.5, -1e-9] {
            let mid = bucket_mid(bucket_key(x));
            let rel = ((mid - x) / x).abs();
            assert!(rel <= 1.0 / 128.0 + 1e-12, "x={x} mid={mid} rel={rel}");
        }
    }

    #[test]
    fn quantiles_within_documented_relative_error() {
        // Several deterministic distributions (uniform, exponential-ish,
        // bimodal) across several "seeds"; every quantile estimate must
        // sit within 1/128 relative error of the exact nearest-rank
        // answer.
        for seed in 1u64..=5 {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let xs: Vec<f64> = (0..4000)
                .map(|i| {
                    let u = next();
                    match i % 3 {
                        0 => u * 100.0,
                        1 => (-(1.0 - u).ln()) * 10.0,
                        _ => 1000.0 + u,
                    }
                })
                .collect();
            let s = summarize(&xs);
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
                let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
                let exact = sorted[rank - 1];
                let est = s.quantile(q);
                let rel = ((est - exact) / exact).abs();
                assert!(
                    rel <= 1.0 / 128.0 + 1e-12,
                    "seed {seed} q={q}: exact {exact} est {est} rel {rel}"
                );
            }
            assert_eq!(s.quantile(0.0), s.min());
            assert_eq!(s.quantile(1.0), s.max());
        }
    }

    #[test]
    fn quantile_is_order_insensitive() {
        let mut fwd: Vec<f64> = (1..=500).map(|i| i as f64 * 0.25).collect();
        let s1 = summarize(&fwd);
        fwd.reverse();
        let s2 = summarize(&fwd);
        for &q in &[0.1, 0.5, 0.9, 0.99] {
            assert_eq!(s1.quantile(q).to_bits(), s2.quantile(q).to_bits());
        }
    }

    #[test]
    fn negative_and_zero_values_are_handled() {
        let s = summarize(&[-10.0, -1.0, 0.0, 1.0, 10.0]);
        assert_eq!(s.min(), -10.0);
        assert_eq!(s.max(), 10.0);
        let med = s.quantile(0.5);
        assert!(med.abs() <= 1e-12, "median of symmetric set should be ~0, got {med}");
    }

    #[test]
    fn non_finite_values_counted_but_not_bucketed() {
        let mut s = StreamSummary::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(2.0);
        assert_eq!(s.count(), 3);
        let q = s.quantile(0.5);
        assert!(q.is_finite());
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let a = summarize(&[1.0, 2.0, 3.0]);
        let mut b = summarize(&[10.0, 20.0]);
        b.merge(&a);
        assert_eq!(b.count(), 5);
        assert_eq!(b.min(), 1.0);
        assert_eq!(b.max(), 20.0);
        let whole = summarize(&[10.0, 20.0, 1.0, 2.0, 3.0]);
        for &q in &[0.2, 0.5, 0.8] {
            assert_eq!(b.quantile(q).to_bits(), whole.quantile(q).to_bits());
        }
    }
}
