//! Figure drivers: one function per paper artifact.
//!
//! * [`fig1`] — timelines of a 4-core Wave2D run disturbed by a 1-core
//!   background task (paper Fig. 1);
//! * [`eval_matrix`] + [`fig2_table`] — timing-penalty-vs-cores series for
//!   an application (paper Fig. 2 a–c);
//! * [`fig3`] — dynamic interference: a job on core 1 departs, another
//!   lands on core 3, and the balancer restores balance each time (paper
//!   Fig. 3 a–e);
//! * [`fig4_table`] — power and normalized energy overhead from the same
//!   run matrix (paper Fig. 4 a–c).

use crate::experiment::{run_scenario, CellSpec, EvalPoint};
use crate::pipeline::PipelineStats;
use crate::report::{pct, watts, Table};
use crate::scenario::{BgPattern, Scenario};
use crate::stream_agg::StreamSummary;
use cloudlb_sim::stats::mean;
use cloudlb_trace::timeline::{render_ascii, TimelineOptions};
use cloudlb_trace::svg::{render_svg, SvgOptions};

/// Output of the Fig. 1 reproduction.
#[derive(Debug)]
pub struct Fig1Output {
    /// Mean iteration time before the background task arrives (s).
    pub quiet_iter_s: f64,
    /// Mean iteration time while the background task runs (s).
    pub interfered_iter_s: f64,
    /// ASCII timeline (two-iteration window around the arrival).
    pub timeline: String,
    /// SVG timeline of the full run.
    pub svg: String,
}

/// Reproduce Fig. 1: Wave2D on 4 cores, no LB, a 1-core job arriving on
/// core 3 partway through. The interfered iterations stretch because the
/// whole tightly coupled application waits for the shared core.
pub fn fig1(iterations: usize) -> Fig1Output {
    let scenario = Scenario {
        bg: BgPattern::SingleCore { core: 3, start_frac: 0.4 },
        iterations,
        trace: true,
        ..Scenario::paper("wave2d", 4, "nolb")
    };
    let result = run_scenario(&scenario);
    let trace = result.trace.as_ref().expect("tracing enabled");

    // Locate the arrival from the trace marker.
    let arrival = trace
        .markers()
        .iter()
        .find(|(_, l)| l.contains("starts"))
        .map(|(t, _)| *t)
        .expect("bg start marker");

    // Completion instants from the per-iteration durations.
    let mut t = 0u64;
    let mut quiet = Vec::new();
    let mut interfered = Vec::new();
    for d in &result.iter_times {
        let end = t + d.as_us();
        if t >= arrival {
            interfered.push(d.as_secs_f64());
        } else if end <= arrival {
            quiet.push(d.as_secs_f64());
        } // iterations straddling the arrival count for neither
        t = end;
    }

    // Two-iteration window: one quiet, one interfered.
    let win_lo = arrival.saturating_sub((mean(&quiet) * 1e6) as u64);
    let win_hi = arrival + (mean(&interfered).max(mean(&quiet)) * 1e6) as u64;
    let timeline = render_ascii(
        trace,
        &TimelineOptions { width: 100, start: Some(win_lo), end: Some(win_hi), show_markers: true },
    );
    let svg = render_svg(
        trace,
        &SvgOptions { title: "Fig 1: background task on core 3 disturbs load balance".into(), ..Default::default() },
    );
    Fig1Output {
        quiet_iter_s: mean(&quiet),
        interfered_iter_s: mean(&interfered),
        timeline,
        svg,
    }
}

/// Run the Fig. 2 / Fig. 4 matrix for one application over the given core
/// counts. All `(cores, arm, seed)` runs of the matrix are flattened into
/// one fan-out over [`crate::parallel::default_jobs`] workers, so a wide
/// matrix saturates the pool rather than parallelizing cell by cell.
pub fn eval_matrix(
    app: &str,
    cores: &[usize],
    iterations: usize,
    seeds: &[u64],
) -> Vec<EvalPoint> {
    eval_matrix_jobs(app, cores, iterations, seeds, crate::parallel::default_jobs())
}

/// [`eval_matrix`] with an explicit worker count.
pub fn eval_matrix_jobs(
    app: &str,
    cores: &[usize],
    iterations: usize,
    seeds: &[u64],
    jobs: usize,
) -> Vec<EvalPoint> {
    let cells: Vec<CellSpec> = cores
        .iter()
        .map(|&c| CellSpec::paper(app, c, iterations, "cloudrefine"))
        .collect();
    crate::experiment::evaluate_cells(&cells, seeds, jobs)
}

/// Online aggregate over a matrix's [`EvalPoint`]s: one
/// [`StreamSummary`] per headline metric, fed per cell as the pipeline
/// emits points, so a million-cell study summarizes at flat memory.
#[derive(Debug, Clone, Default)]
pub struct MatrixSummary {
    /// App timing penalty without LB (fraction).
    pub penalty_nolb: StreamSummary,
    /// App timing penalty with LB (fraction).
    pub penalty_lb: StreamSummary,
    /// Energy overhead without LB (fraction).
    pub energy_overhead_nolb: StreamSummary,
    /// Energy overhead with LB (fraction).
    pub energy_overhead_lb: StreamSummary,
    /// Mean migrations per LB run.
    pub migrations: StreamSummary,
    /// Simulator events across every run of every cell.
    pub sim_events: u64,
    /// Cells folded in.
    pub cells: u64,
}

impl MatrixSummary {
    /// Fold one cell's point into the summary.
    pub fn push(&mut self, p: &EvalPoint) {
        self.penalty_nolb.push(p.penalty_nolb);
        self.penalty_lb.push(p.penalty_lb);
        self.energy_overhead_nolb.push(p.energy_overhead_nolb);
        self.energy_overhead_lb.push(p.energy_overhead_lb);
        self.migrations.push(p.migrations);
        self.sim_events += p.sim_events;
        self.cells += 1;
    }

    /// Multi-line rendering, one metric per line.
    pub fn render(&self) -> String {
        format!(
            "cells={} sim_events={}\n\
             penalty_nolb       {}\n\
             penalty_lb         {}\n\
             energy_oh_nolb     {}\n\
             energy_oh_lb       {}\n\
             migrations         {}\n",
            self.cells,
            self.sim_events,
            self.penalty_nolb.render(),
            self.penalty_lb.render(),
            self.energy_overhead_nolb.render(),
            self.energy_overhead_lb.render(),
            self.migrations.render(),
        )
    }
}

/// Memory-bounded variant of [`eval_matrix_jobs`]: stream the matrix
/// through the pipeline, fold every emitted [`EvalPoint`] into a
/// [`MatrixSummary`], and pass each point to `consume` (e.g. to print a
/// table row incrementally) instead of materializing the matrix. Points
/// arrive in core-count order and are bit-identical to
/// [`eval_matrix_jobs`]'s for any worker count.
pub fn eval_matrix_stream<C>(
    app: &str,
    cores: &[usize],
    iterations: usize,
    seeds: &[u64],
    jobs: usize,
    mut consume: C,
) -> (MatrixSummary, PipelineStats)
where
    C: FnMut(&EvalPoint),
{
    let cells: Vec<CellSpec> = cores
        .iter()
        .map(|&c| CellSpec::paper(app, c, iterations, "cloudrefine"))
        .collect();
    let mut summary = MatrixSummary::default();
    let stats =
        crate::experiment::evaluate_cells_stream(&cells, seeds, jobs, |_ci, point| {
            summary.push(&point);
            consume(&point);
        });
    (summary, stats)
}

/// Fig. 2 table: timing penalties (%) for the app and the background job.
pub fn fig2_table(points: &[EvalPoint]) -> Table {
    let mut t = Table::new(&["cores", "noLB %", "LB %", "BG noLB %", "BG LB %"]);
    for p in points {
        fig2_row(&mut t, p);
    }
    t
}

/// Append one cell's Fig. 2 row — lets a streaming consumer build the
/// table incrementally (start from `fig2_table(&[])`).
pub fn fig2_row(t: &mut Table, p: &EvalPoint) {
    t.row(vec![
        p.cores.to_string(),
        pct(p.penalty_nolb),
        pct(p.penalty_lb),
        pct(p.bg_penalty_nolb),
        pct(p.bg_penalty_lb),
    ]);
}

/// Fig. 4 table: average power per node (W) and energy overheads (%).
pub fn fig4_table(points: &[EvalPoint]) -> Table {
    let mut t = Table::new(&[
        "cores",
        "noLB power W",
        "LB power W",
        "noLB energy OH %",
        "LB energy OH %",
    ]);
    for p in points {
        fig4_row(&mut t, p);
    }
    t
}

/// Append one cell's Fig. 4 row — streaming twin of [`fig2_row`].
pub fn fig4_row(t: &mut Table, p: &EvalPoint) {
    t.row(vec![
        p.cores.to_string(),
        watts(p.power_nolb_w),
        watts(p.power_lb_w),
        pct(p.energy_overhead_nolb),
        pct(p.energy_overhead_lb),
    ]);
}

/// Output of the Fig. 3 reproduction.
#[derive(Debug)]
pub struct Fig3Output {
    /// `(phase label, mean iteration seconds)` for the five phases of the
    /// paper's Fig. 3 (a)–(e).
    pub phases: Vec<(String, f64)>,
    /// ASCII timeline of the whole run.
    pub timeline: String,
    /// SVG timeline of the whole run.
    pub svg: String,
    /// Total migrations (should be > 0 twice over: shed and re-spread).
    pub migrations: usize,
}

/// Reproduce Fig. 3: Wave2D, 4 cores, CloudRefineLB, interference that
/// moves from core 1 to core 3. Phases:
/// (a) core 1 overloaded, (b) rebalanced, (c) interference gone,
/// (d) core 3 overloaded, (e) rebalanced again.
pub fn fig3(iterations: usize, lb_period: usize) -> Fig3Output {
    let scenario = Scenario {
        bg: BgPattern::Phased,
        iterations,
        lb_period,
        trace: true,
        ..Scenario::paper("wave2d", 4, "cloudrefine")
    };
    let result = run_scenario(&scenario);
    let trace = result.trace.as_ref().expect("tracing enabled");

    let marker_time = |pred: &dyn Fn(&str) -> bool, after: u64| {
        trace
            .markers()
            .iter()
            .filter(|(t, l)| *t >= after && pred(l))
            .map(|(t, _)| *t)
            .min()
    };
    let bg1_on = marker_time(&|l| l.contains("job 0 starts"), 0).expect("bg1 start");
    let bg1_off = marker_time(&|l| l.contains("job 0 leaves"), 0).expect("bg1 stop");
    let bg2_on = marker_time(&|l| l.contains("job 1 starts"), 0).expect("bg2 start");

    // Per-iteration durations of the iterations overlapping a window.
    let window_iters = |lo: u64, hi: u64| {
        let mut t = 0u64;
        let mut xs = Vec::new();
        for d in &result.iter_times {
            let end = t + d.as_us();
            if end > lo && t < hi {
                xs.push(d.as_secs_f64());
            }
            t = end;
        }
        xs
    };
    let peak = |lo: u64, hi: u64| window_iters(lo, hi).into_iter().fold(0.0f64, f64::max);
    let floor = |lo: u64, hi: u64| {
        window_iters(lo, hi).into_iter().fold(f64::INFINITY, f64::min).min(f64::MAX)
    };

    // The balancer fires at the first AtSync boundary inside each
    // disturbance, so the *peak* iteration in a window shows the
    // overloaded timeline (Fig. 3 a/d) and the *floor* shows the
    // rebalanced one (Fig. 3 b/e).
    let end = result.end_time.as_us();
    let phases = vec![
        ("(a) core 1 overloaded".to_string(), peak(bg1_on, bg1_off)),
        ("(b) load balanced".to_string(), floor(bg1_on, bg1_off)),
        ("(c) no bg task".to_string(), mean(&window_iters(bg1_off, bg2_on))),
        ("(d) core 3 overloaded".to_string(), peak(bg2_on, end)),
        ("(e) load balanced".to_string(), floor(bg2_on, end)),
    ];

    Fig3Output {
        phases,
        timeline: render_ascii(trace, &TimelineOptions { width: 110, ..Default::default() }),
        svg: render_svg(
            trace,
            &SvgOptions {
                title: "Fig 3: load balancer tracks interference from core 1 to core 3".into(),
                ..Default::default()
            },
        ),
        migrations: result.migrations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_interfered_iterations_are_longer() {
        let out = fig1(20);
        assert!(out.quiet_iter_s > 0.0);
        assert!(
            out.interfered_iter_s > 1.5 * out.quiet_iter_s,
            "quiet {:.4}s vs interfered {:.4}s",
            out.quiet_iter_s,
            out.interfered_iter_s
        );
        assert!(out.timeline.contains("pe   3"));
        assert!(out.svg.starts_with("<svg"));
    }

    #[test]
    fn fig3_balancer_restores_balance_twice() {
        let out = fig3(60, 6);
        let p: Vec<f64> = out.phases.iter().map(|(_, v)| *v).collect();
        assert!(out.migrations > 0, "no migrations happened");
        // Overloaded phases are slower than their rebalanced successors.
        assert!(p[0] > 1.1 * p[1], "(a) {:.4} should exceed (b) {:.4}", p[0], p[1]);
        assert!(p[3] > 1.1 * p[4], "(d) {:.4} should exceed (e) {:.4}", p[3], p[4]);
        // The quiet middle phase is at least as fast as the balanced ones.
        assert!(p[2] <= p[0], "(c) {:.4} vs (a) {:.4}", p[2], p[0]);
    }

    #[test]
    fn fig2_and_fig4_tables_render() {
        let points = eval_matrix("jacobi2d", &[4], 30, &[1]);
        let t2 = fig2_table(&points);
        let t4 = fig4_table(&points);
        assert_eq!(t2.len(), 1);
        assert!(t2.markdown().contains("noLB %"));
        assert!(t4.markdown().contains("LB power W"));
    }
}
