#![warn(missing_docs)]
//! High-level experiment API for the `cloudlb` reproduction.
//!
//! This crate turns the runtime + simulator + strategies into the paper's
//! experiments:
//!
//! * [`scenario`] — declarative descriptions of the paper's runs (which
//!   app, how many cores, which interference pattern, which balancer);
//! * [`experiment`] — executes scenario triples (base / noLB / LB),
//!   averages seeds, and computes the paper's metrics: timing penalty,
//!   background-job penalty, average node power, normalized energy
//!   overhead;
//! * [`parallel`] — the deterministic work pool that fans independent
//!   `(app, cores, arm, seed)` runs across `CLOUDLB_JOBS`/`--jobs`
//!   workers with bit-identical results;
//! * [`figures`] — one driver per paper artifact (Figures 1–4) returning
//!   structured series plus rendered tables/timelines;
//! * [`report`] — markdown/CSV table formatting shared by the harness.

pub mod experiment;
pub mod figures;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub mod scenario;
pub mod stream_agg;

pub use experiment::{
    elasticity_impact, evaluate, evaluate_cells, evaluate_cells_stream, evaluate_jobs,
    failure_impact, network_impact, run_scenario, try_run_scenario, CellSpec,
    ElasticityImpact, EvalPoint, FailureImpact, NetworkImpact,
};
pub use parallel::{default_jobs, par_map};
pub use pipeline::{pipeline_map, pipeline_stream, PipelineConfig, PipelineStats};
pub use scenario::{BgPattern, FailSpec, Scenario};
pub use stream_agg::StreamSummary;
