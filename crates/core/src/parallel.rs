//! Deterministic fan-out of independent jobs over a from-scratch
//! `std::thread` work pool.
//!
//! The paper's figures come from a matrix of `(app, cores, arm, seed)`
//! cells, every one an independent deterministic simulation. [`par_map`]
//! spreads such cells across worker threads and returns the results **in
//! submission order**, so any reduction over them (seed averaging, table
//! rows) is bit-identical to the serial path no matter how the OS
//! schedules the workers. There are no external dependencies — workers are
//! scoped threads pulling indices off one atomic counter.
//!
//! The worker count comes from, in order of precedence:
//!
//! 1. an explicit `jobs` argument (the CLI's `--jobs`);
//! 2. the `CLOUDLB_JOBS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! `jobs = 1` (or a single-item input) short-circuits to a plain serial
//! map on the calling thread — zero threading overhead, byte-for-byte the
//! old code path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Resolve the worker count: `CLOUDLB_JOBS` if set (must be a positive
/// integer), otherwise the machine's available parallelism.
///
/// The environment is read **once** and cached for the life of the
/// process — CLIs that honour a `--jobs` flag set `CLOUDLB_JOBS` before
/// the first call (see `src/main.rs`), and every later call sees the
/// same answer. A value of `0` or garbage is rejected with a warning on
/// stderr and falls back to the machine's parallelism instead of
/// silently clamping (or panicking) deep inside a sweep.
pub fn default_jobs() -> usize {
    static JOBS: OnceLock<usize> = OnceLock::new();
    *JOBS.get_or_init(|| {
        let fallback = || std::thread::available_parallelism().map_or(1, |n| n.get());
        match std::env::var("CLOUDLB_JOBS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(jobs) if jobs >= 1 => jobs,
                Ok(_) => {
                    eprintln!(
                        "warning: CLOUDLB_JOBS=0 is not a valid worker count; \
                         using available parallelism instead"
                    );
                    fallback()
                }
                Err(_) => {
                    eprintln!(
                        "warning: CLOUDLB_JOBS={v:?} is not a positive integer; \
                         using available parallelism instead"
                    );
                    fallback()
                }
            },
            Err(_) => fallback(),
        }
    })
}

/// Apply `f` to every item on up to `jobs` worker threads, returning the
/// results in the order the items were submitted.
///
/// Work is claimed dynamically (one shared atomic cursor), so long cells
/// and short cells mix freely without a static partition going idle; each
/// result lands in its submission slot, which is what makes the output
/// deterministic. A panic inside `f` propagates to the caller once all
/// workers have drained (the panic payload of the first panicking worker
/// is re-raised by [`std::thread::scope`]).
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Items move to workers through per-slot cells; results come back the
    // same way. The mutexes are uncontended (each slot is touched by
    // exactly one worker) — they exist to make the slots `Sync`.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work slot claimed twice");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| panic!("worker never produced result {i}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_submission_order() {
        for jobs in [1, 2, 4, 8] {
            let items: Vec<usize> = (0..100).collect();
            let out = par_map(jobs, items, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Early items take much longer than late ones; dynamic claiming
        // means late items finish first, but slots keep the order.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(4, items, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map(3, (0..57).collect::<Vec<_>>(), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 57);
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(par_map(64, vec![1, 2], |i| i * 10), vec![10, 20]);
        assert_eq!(par_map(64, Vec::<u8>::new(), |i| i), Vec::<u8>::new());
    }

    #[test]
    fn zero_jobs_clamps_to_serial() {
        assert_eq!(par_map(0, vec![5, 6], |i| i + 1), vec![6, 7]);
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            par_map(2, vec![0, 1, 2, 3], |i| {
                if i == 2 {
                    panic!("cell exploded");
                }
                i
            })
        });
        assert!(caught.is_err(), "panic in a worker must reach the caller");
    }
}
