//! Declarative run scenarios mirroring the paper's experimental setup.
//!
//! §V: "we use 8 nodes (32 cores) of a testbed … In order to create
//! interference with our parallel runs we run a 2-core job of Wave2D as
//! the background load on two of the cores allocated to the application
//! under test." The background job's CPU demand is sized from the
//! application's own cost model so that the jobs genuinely coexist (the
//! paper runs both to completion and reports both penalties).
//!
//! The Mol3D runs add the paper's observed OS preference: "we saw a
//! significant preference to the background load in the case of Mol3D" —
//! modelled as a larger scheduler weight for the interfering tasks.

use cloudlb_apps::{Jacobi2D, Mol3D, Stencil3D, Wave2D};
use cloudlb_runtime::{FastForward, IterativeApp, LbConfig, RunConfig};
use cloudlb_sim::interference::BgScript;
use cloudlb_sim::{
    Dur, FailureScript, MembershipScript, MembershipSpec, NetFaultSpec, TelemetrySpec, Time,
};
use serde::{Deserialize, Serialize};

/// Interference pattern for a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BgPattern {
    /// No interference (the normalization base runs).
    None,
    /// The paper's steady 2-core background job on cores 0 and 1, starting
    /// at t = 0, with per-core demand `demand_frac × (expected base app
    /// time)`.
    TwoCore {
        /// Background CPU demand relative to the base app duration.
        demand_frac: f64,
    },
    /// Figure 1: a 1-core job arriving on the given core partway through.
    SingleCore {
        /// Interfered core.
        core: usize,
        /// Arrival as a fraction of the expected base app time.
        start_frac: f64,
    },
    /// Figure 3: a job on core 1 that departs, then a job on core 3.
    Phased,
}

/// One scheduled PE/node failure, with instants expressed as fractions of
/// the expected interference-free app duration — so the same spec ports
/// across applications and core counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailSpec {
    /// Kill a whole node instead of a single core.
    #[serde(default)]
    pub node: bool,
    /// Core index (or node index when `node` is set).
    pub index: usize,
    /// Kill instant as a fraction of the expected base app time.
    pub at_frac: f64,
    /// Optional restore instant (same scale); `None` = permanent loss.
    #[serde(default)]
    pub restore_frac: Option<f64>,
}

impl FailSpec {
    /// Parse the CLI syntax: `core:2@0.5` kills core 2 at 50 % of the
    /// expected run; `node:1@0.3~0.8` takes node 1 down between 30 % and
    /// 80 %.
    pub fn parse(s: &str) -> Result<FailSpec, String> {
        let (kind, rest) =
            s.split_once(':').ok_or_else(|| format!("bad failure spec {s:?}: missing ':'"))?;
        let node = match kind {
            "core" => false,
            "node" => true,
            other => return Err(format!("bad failure spec {s:?}: unknown target {other:?}")),
        };
        let (idx, when) =
            rest.split_once('@').ok_or_else(|| format!("bad failure spec {s:?}: missing '@'"))?;
        let index: usize =
            idx.parse().map_err(|_| format!("bad failure spec {s:?}: index {idx:?}"))?;
        let (at, restore) = match when.split_once('~') {
            Some((a, r)) => (a, Some(r)),
            None => (when, None),
        };
        let at_frac: f64 =
            at.parse().map_err(|_| format!("bad failure spec {s:?}: time {at:?}"))?;
        let restore_frac = match restore {
            Some(r) => Some(
                r.parse::<f64>().map_err(|_| format!("bad failure spec {s:?}: time {r:?}"))?,
            ),
            None => None,
        };
        if !(at_frac >= 0.0 && at_frac.is_finite()) {
            return Err(format!("bad failure spec {s:?}: kill time must be >= 0"));
        }
        if let Some(r) = restore_frac {
            if !(r > at_frac && r.is_finite()) {
                return Err(format!("bad failure spec {s:?}: restore must come after the kill"));
            }
        }
        Ok(FailSpec { node, index, at_frac, restore_frac })
    }
}

/// One experiment configuration.
///
/// `PartialEq` compares every field: the scenario fuzzer's shrinker relies
/// on it to detect fixpoints, and the round-trip tests use it to prove
/// JSON serialization is lossless.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Application name (`jacobi2d`, `wave2d`, `mol3d`, `stencil3d`).
    pub app: String,
    /// Cores (multiple of 4; the paper uses 4–32).
    pub cores: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// LB strategy registry name (`nolb`, `cloudrefine`, …).
    pub strategy: String,
    /// LB period in iterations.
    pub lb_period: usize,
    /// Interference pattern.
    pub bg: BgPattern,
    /// Scheduler weight of background tasks (1.0 = fair share; the Mol3D
    /// scenarios use [`Scenario::OS_PREFERENCE`]).
    pub bg_weight: f64,
    /// Seed (perturbs per-chare jitter; experiments average 3 seeds).
    pub seed: u64,
    /// Record a Projections-style trace.
    pub trace: bool,
    /// Scheduled PE/node failures (empty = failure-free run).
    #[serde(default)]
    pub fail: Vec<FailSpec>,
    /// Telemetry-corruption model applied to every `/proc/stat` read
    /// (`None` = clean counters).
    #[serde(default)]
    pub telemetry: Option<TelemetrySpec>,
    /// Network chaos model: seeded loss, duplication, reordering, jitter,
    /// bandwidth collapse and transient partitions applied to every
    /// cross-node message (`None` = clean interconnect).
    #[serde(default)]
    pub net_fault: Option<NetFaultSpec>,
    /// Elastic cluster membership: spot preemption notices (with lead
    /// time) and autoscale acquisitions, with instants expressed as
    /// fractions of the expected base app time (`None` = static cluster).
    #[serde(default)]
    pub membership: Option<MembershipSpec>,
    /// Steady-state fast-forward mode (bit-identical macro-stepping of
    /// undisturbed LB windows; default `auto` = on unless tracing).
    #[serde(default)]
    pub fast_forward: FastForward,
    /// Relative per-core speeds (empty = uniform). Models static
    /// heterogeneity — the paper's "VM to physical machine mapping"
    /// extraneous factor; plumbed into [`RunConfig::pe_speeds`].
    #[serde(default)]
    pub pe_speeds: Vec<f64>,
}

impl Scenario {
    /// The OS preference factor the paper observed for Mol3D's background
    /// job (chosen to reproduce the ~400 % noLB timing penalty of
    /// Fig. 2(c); see DESIGN.md substitutions).
    pub const OS_PREFERENCE: f64 = 4.0;

    /// A paper-style scenario: the 2-core background job, CloudRefine vs
    /// whatever `strategy` says, 100 iterations, LB every 10.
    ///
    /// The background job's per-core demand is `bg_weight × base app time`
    /// so that — like the paper's 2-core Wave2D run — it persists for the
    /// whole interfered noLB execution (a job holding a `w : 1` share of
    /// the core consumes `w × base` CPU while the app crawls through at
    /// `1/(1+w)` speed).
    pub fn paper(app: &str, cores: usize, strategy: &str) -> Self {
        let bg_weight =
            if app.eq_ignore_ascii_case("mol3d") { Self::OS_PREFERENCE } else { 1.0 };
        Scenario {
            app: app.to_string(),
            cores,
            iterations: 100,
            strategy: strategy.to_string(),
            lb_period: 10,
            bg: BgPattern::TwoCore { demand_frac: bg_weight },
            bg_weight,
            seed: 1,
            trace: false,
            fail: Vec::new(),
            telemetry: None,
            net_fault: None,
            membership: None,
            fast_forward: FastForward::default(),
            pe_speeds: Vec::new(),
        }
    }

    /// Noisy-cloud preset: the paper scenario with the guarded strategy
    /// stack and every `/proc/stat` read corrupted by the default
    /// [`TelemetrySpec::noisy_cloud`] model — the headline experiment rerun
    /// under dirty telemetry.
    pub fn noisy_cloud(app: &str, cores: usize, strategy: &str) -> Self {
        Scenario {
            telemetry: Some(TelemetrySpec::noisy_cloud()),
            ..Self::paper(app, cores, strategy)
        }
    }

    /// Flaky-cloud preset: the paper scenario rerun over a degraded
    /// interconnect — ~1 % message loss, duplication, reordering, latency
    /// jitter, occasional bandwidth collapse, and one transient full-rack
    /// partition mid-run (see [`NetFaultSpec::flaky_cloud`]). Migrations
    /// go through the reliable retry/abort protocol.
    pub fn flaky_cloud(app: &str, cores: usize, strategy: &str) -> Self {
        Scenario {
            net_fault: Some(NetFaultSpec::flaky_cloud()),
            ..Self::paper(app, cores, strategy)
        }
    }

    /// Failure-drill preset: the paper scenario (interference included)
    /// plus a permanent kill of the last core at 40 % of the expected run
    /// — failure and interference overlapping, the hardest recovery case.
    pub fn failure_drill(app: &str, cores: usize, strategy: &str) -> Self {
        Scenario {
            fail: vec![FailSpec {
                node: false,
                index: cores - 1,
                at_frac: 0.4,
                restore_frac: None,
            }],
            ..Self::paper(app, cores, strategy)
        }
    }

    /// Spot-storm preset: the paper scenario (interference included) plus
    /// the [`MembershipSpec::spot_storm`] membership schedule — a
    /// replacement node acquired at 30 %, then both original nodes
    /// preempted with lead time (one at 40 %, one at 80 %). The hardest
    /// elastic case that is still survivable: the runtime must drain every
    /// original node onto capacity that did not exist at t = 0.
    pub fn spot_storm(app: &str, cores: usize, strategy: &str) -> Self {
        Scenario {
            membership: Some(MembershipSpec::spot_storm()),
            ..Self::paper(app, cores, strategy)
        }
    }

    /// Scale preset: a clean, interference-free short run with the
    /// fast-forward engine pinned ON — the configuration the 32k-core /
    /// 1M-chare scale bench and tests use. The short horizon (30
    /// iterations, LB every 3) keeps the live event-by-event prefix
    /// small; every steady-state window after the first capture
    /// macro-steps analytically, so wall-clock stays within a CI budget
    /// even at paper-×1000 cluster sizes.
    pub fn scale(app: &str, cores: usize, strategy: &str) -> Self {
        Scenario {
            bg: BgPattern::None,
            iterations: 30,
            lb_period: 3,
            fast_forward: FastForward::On,
            ..Self::paper(app, cores, strategy)
        }
    }

    /// Autoscale preset: the paper scenario plus the
    /// [`MembershipSpec::autoscale`] schedule — two nodes acquired as the
    /// cluster scales up, one original node preempted later as it scales
    /// back down.
    pub fn autoscale(app: &str, cores: usize, strategy: &str) -> Self {
        Scenario {
            membership: Some(MembershipSpec::autoscale()),
            ..Self::paper(app, cores, strategy)
        }
    }

    /// Same scenario without interference (the normalization base). Also
    /// strips failures, telemetry corruption and membership churn: the
    /// base is the clean, static machine.
    pub fn base_of(&self) -> Scenario {
        Scenario {
            bg: BgPattern::None,
            strategy: "nolb".to_string(),
            trace: false,
            fail: Vec::new(),
            telemetry: None,
            net_fault: None,
            membership: None,
            ..self.clone()
        }
    }

    /// Application names [`Scenario::build_app`] understands.
    pub const KNOWN_APPS: [&'static str; 4] = ["jacobi2d", "wave2d", "mol3d", "stencil3d"];

    /// Check the scenario for configuration errors a JSON file (or a
    /// fuzzer) can smuggle past the CLI parsers: unknown app or strategy,
    /// broken cluster shape, out-of-range fault targets, malformed speed
    /// vectors and non-finite knobs. Every failure here must surface as
    /// `RuntimeError::InvalidConfig` from `try_run_scenario`, never a
    /// panic.
    pub fn validate(&self) -> Result<(), String> {
        let app = self.app.to_ascii_lowercase();
        if !Self::KNOWN_APPS.contains(&app.as_str()) {
            return Err(format!(
                "unknown application {:?} (expected one of {:?})",
                self.app,
                Self::KNOWN_APPS
            ));
        }
        if self.cores == 0 || !self.cores.is_multiple_of(4) {
            return Err(format!("cores must be a positive multiple of 4, got {}", self.cores));
        }
        if self.iterations == 0 {
            return Err("iterations must be >= 1".to_string());
        }
        if self.lb_period == 0 {
            return Err("lb_period must be >= 1".to_string());
        }
        if cloudlb_balance::strategy::by_name(&self.strategy).is_none() {
            return Err(format!("unknown LB strategy {:?}", self.strategy));
        }
        if !(self.bg_weight > 0.0 && self.bg_weight.is_finite()) {
            return Err(format!("bg_weight must be positive and finite, got {}", self.bg_weight));
        }
        match self.bg {
            BgPattern::None | BgPattern::Phased => {}
            BgPattern::TwoCore { demand_frac } => {
                if !(demand_frac >= 0.0 && demand_frac.is_finite()) {
                    return Err(format!("bg demand_frac must be >= 0, got {demand_frac}"));
                }
            }
            BgPattern::SingleCore { core, start_frac } => {
                if core >= self.cores {
                    return Err(format!(
                        "bg core {core} out of range for {} cores",
                        self.cores
                    ));
                }
                if !(start_frac >= 0.0 && start_frac.is_finite()) {
                    return Err(format!("bg start_frac must be >= 0, got {start_frac}"));
                }
            }
        }
        let nodes = self.cores / 4;
        for spec in &self.fail {
            let limit = if spec.node { nodes } else { self.cores };
            let what = if spec.node { "node" } else { "core" };
            if spec.index >= limit {
                return Err(format!(
                    "failure spec targets {what} {} beyond the {limit}-{what} cluster",
                    spec.index
                ));
            }
            if !(spec.at_frac >= 0.0 && spec.at_frac.is_finite()) {
                return Err(format!("failure kill time must be >= 0, got {}", spec.at_frac));
            }
            if let Some(r) = spec.restore_frac {
                if !(r > spec.at_frac && r.is_finite()) {
                    return Err(format!(
                        "failure restore ({r}) must come after the kill ({})",
                        spec.at_frac
                    ));
                }
            }
        }
        if let Some(net) = &self.net_fault {
            net.validate(nodes)?;
        }
        if let Some(m) = &self.membership {
            m.validate(nodes)?;
        }
        if !self.pe_speeds.is_empty() {
            if self.pe_speeds.len() != self.cores {
                return Err(format!(
                    "pe_speeds length {} != core count {}",
                    self.pe_speeds.len(),
                    self.cores
                ));
            }
            if !self.pe_speeds.iter().all(|s| *s > 0.0 && s.is_finite()) {
                return Err(format!("pe_speeds must be positive: {:?}", self.pe_speeds));
            }
        }
        Ok(())
    }

    /// Instantiate the application with this scenario's seed folded into
    /// its jitter stream.
    pub fn build_app(&self) -> Box<dyn IterativeApp> {
        let pes = self.cores;
        match self.app.to_ascii_lowercase().as_str() {
            "jacobi2d" => {
                let mut a = Jacobi2D::for_pes(pes);
                a.seed ^= self.seed;
                Box::new(a)
            }
            "wave2d" => {
                let mut a = Wave2D::for_pes(pes);
                a.seed ^= self.seed;
                Box::new(a)
            }
            "mol3d" => {
                let mut a = Mol3D::for_pes(pes);
                a.seed ^= self.seed;
                Box::new(a)
            }
            "stencil3d" => {
                let mut a = Stencil3D::for_pes(pes);
                a.seed ^= self.seed;
                Box::new(a)
            }
            other => panic!("unknown application {other:?}"),
        }
    }

    /// Expected interference-free app duration from the cost model:
    /// `iterations × (Σ task costs) / cores`. Used to size background
    /// demand and arrival times.
    pub fn base_time_estimate(&self, app: &dyn IterativeApp) -> f64 {
        let total: f64 = (0..app.num_chares()).map(|i| app.task_cost(i, 0)).sum();
        self.iterations as f64 * total / self.cores as f64
    }

    /// Total cores in the grown cluster: the initial `cores` plus one
    /// 4-core node for every membership acquisition. Acquired nodes start
    /// latent (dead until their acquire instant), so the *initial* cluster
    /// still has exactly `cores` active cores; this is the bound chare
    /// placements must respect once the cluster has fully expanded.
    pub fn total_cores(&self) -> usize {
        let acquired = self.membership.as_ref().map_or(0, |m| m.acquisitions.len());
        self.cores + 4 * acquired
    }

    /// Time-averaged active capacity as a fraction of the initial `cores`,
    /// integrating scheduled failures and membership churn over the run.
    ///
    /// The accounting is deliberately conservative: a noticed node stops
    /// counting at its *notice* instant (the runtime starts draining it
    /// immediately, so its cores are lame ducks from then on), and an
    /// acquired node starts counting only after its worst-case warm-up
    /// (`at + warmup + jitter`). The horizon is the later of the nominal
    /// run end and the last scheduled event, and instantaneous capacity is
    /// floored at one core. The fuzzer's bounded-makespan oracle divides
    /// by this to price elastic capacity loss.
    pub fn capacity_avg_frac(&self) -> f64 {
        // (instant, capacity delta in cores), fractions of base app time.
        let mut deltas: Vec<(f64, f64)> = Vec::new();
        let mut last = 0.0f64;
        for spec in &self.fail {
            let n = if spec.node { 4.0 } else { 1.0 };
            deltas.push((spec.at_frac, -n));
            last = last.max(spec.at_frac);
            if let Some(r) = spec.restore_frac {
                deltas.push((r, n));
                last = last.max(r);
            }
        }
        if let Some(m) = &self.membership {
            for nt in &m.notices {
                deltas.push((nt.at_frac, -4.0));
                last = last.max(nt.at_frac + nt.lead_frac);
            }
            for acq in &m.acquisitions {
                let ready = acq.at_frac + m.warmup_frac + m.warmup_jitter_frac;
                deltas.push((ready, 4.0));
                last = last.max(ready);
            }
        }
        if deltas.is_empty() {
            return 1.0;
        }
        deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let horizon = last.max(1.0);
        let mut cap = self.cores as f64;
        let mut t = 0.0f64;
        let mut integral = 0.0f64;
        for (at, d) in deltas {
            let at = at.clamp(0.0, horizon);
            integral += cap.max(1.0) * (at - t);
            cap += d;
            t = at;
        }
        integral += cap.max(1.0) * (horizon - t);
        (integral / (self.cores as f64 * horizon)).max(1.0 / self.cores as f64)
    }

    /// Makespan of the *capacity-tracking clean twin*: a hypothetical run
    /// that does the measured clean twin's work (`cores × clean_s`
    /// core-seconds) at a throughput following this scenario's capacity
    /// trajectory — noticed nodes become lame ducks at their NOTICE
    /// instant, acquired nodes contribute after worst-case warm-up, and
    /// failed nodes drop at their kill instant. Event times are absolute
    /// (`frac × base_s`, matching how the scripts are scheduled), and the
    /// integration runs until the work completes, so a tail executed on a
    /// shrunken cluster is priced at the shrunken rate. Throughput is
    /// floored at one core, so this always terminates.
    pub fn capacity_tracking_makespan(&self, clean_s: f64, base_s: f64) -> f64 {
        let work = self.cores as f64 * clean_s.max(0.0);
        let mut deltas: Vec<(f64, f64)> = Vec::new();
        for spec in &self.fail {
            let n = if spec.node { 4.0 } else { 1.0 };
            deltas.push((spec.at_frac * base_s, -n));
            if let Some(r) = spec.restore_frac {
                deltas.push((r * base_s, n));
            }
        }
        if let Some(m) = &self.membership {
            for nt in &m.notices {
                deltas.push((nt.at_frac * base_s, -4.0));
            }
            for acq in &m.acquisitions {
                let ready = acq.at_frac + m.warmup_frac + m.warmup_jitter_frac;
                deltas.push((ready * base_s, 4.0));
            }
        }
        deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut cap = self.cores as f64;
        let mut t = 0.0f64;
        let mut done = 0.0f64;
        for (at, d) in deltas {
            let at = at.max(t);
            let rate = cap.max(1.0);
            if done + rate * (at - t) >= work {
                return t + (work - done) / rate;
            }
            done += rate * (at - t);
            cap += d;
            t = at;
        }
        t + (work - done) / cap.max(1.0)
    }

    /// The runtime configuration for this scenario. With an active
    /// membership spec the cluster is built at its fully-expanded size
    /// ([`Scenario::total_cores`]); the executor parks acquired nodes as
    /// latent until their scheduled acquire instant.
    pub fn run_config(&self) -> RunConfig {
        let mut cfg = RunConfig::paper(self.total_cores(), self.iterations);
        cfg.lb = LbConfig {
            strategy: self.strategy.clone(),
            period: self.lb_period,
            ..LbConfig::default()
        };
        cfg.seed = self.seed;
        cfg.cluster.trace = self.trace;
        cfg.fast_forward = self.fast_forward;
        cfg.pe_speeds = self.pe_speeds.clone();
        // Speeds are specified for the initial cores; acquired cores run
        // at nominal speed.
        if !cfg.pe_speeds.is_empty() {
            cfg.pe_speeds.resize(self.total_cores(), 1.0);
        }
        cfg
    }

    /// The interference script for this scenario (needs the app for demand
    /// sizing).
    pub fn bg_script(&self, app: &dyn IterativeApp) -> BgScript {
        let base = self.base_time_estimate(app);
        match self.bg {
            BgPattern::None => BgScript::none(),
            BgPattern::TwoCore { demand_frac } => BgScript::steady(
                0,
                &[0, 1],
                Time::ZERO,
                Some(Dur::from_secs_f64(base * demand_frac)),
                self.bg_weight,
            ),
            BgPattern::SingleCore { core, start_frac } => BgScript::steady(
                0,
                &[core],
                Time::ZERO + Dur::from_secs_f64(base * start_frac),
                None,
                self.bg_weight,
            ),
            BgPattern::Phased => {
                // Fig. 3: interference on core 1 for the first ~40 % of the
                // run, a gap, then on core 3 until past the end.
                let a = BgScript::pulse(
                    0,
                    1,
                    Time::ZERO + Dur::from_secs_f64(base * 0.05),
                    Time::ZERO + Dur::from_secs_f64(base * 0.45),
                    self.bg_weight,
                );
                let b = BgScript::pulse(
                    1,
                    3,
                    Time::ZERO + Dur::from_secs_f64(base * 0.65),
                    Time::ZERO + Dur::from_secs_f64(base * 3.0),
                    self.bg_weight,
                );
                a.merge(b)
            }
        }
    }

    /// The failure schedule for this scenario, with fractional times
    /// scaled by the expected base duration (needs the app for sizing,
    /// like [`Scenario::bg_script`]).
    pub fn fail_script(&self, app: &dyn IterativeApp) -> FailureScript {
        let base = self.base_time_estimate(app);
        let at = |frac: f64| Time::ZERO + Dur::from_secs_f64(base * frac);
        let mut script = FailureScript::none();
        for spec in &self.fail {
            let part = match (spec.node, spec.restore_frac) {
                (false, None) => FailureScript::kill_core(spec.index, at(spec.at_frac)),
                (false, Some(r)) => {
                    FailureScript::core_outage(spec.index, at(spec.at_frac), at(r))
                }
                (true, None) => FailureScript::kill_node(spec.index, at(spec.at_frac)),
                (true, Some(r)) => {
                    FailureScript::node_outage(spec.index, at(spec.at_frac), at(r))
                }
            };
            script = script.merge(part);
        }
        script
    }

    /// The membership schedule for this scenario: notice/revoke/acquire/
    /// warmup instants scaled by the expected base duration, acquisition
    /// node ids assigned past the initial cluster, warm-up jitter drawn
    /// from the seeded membership stream. Empty when the scenario has no
    /// active membership spec.
    pub fn membership_script(&self, app: &dyn IterativeApp) -> MembershipScript {
        match &self.membership {
            Some(spec) if spec.is_active() => {
                spec.to_script(self.base_time_estimate(app), self.cores / 4, self.seed)
            }
            _ => MembershipScript::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_defaults() {
        let s = Scenario::paper("jacobi2d", 8, "cloudrefine");
        assert_eq!(s.cores, 8);
        assert_eq!(s.bg_weight, 1.0);
        let m = Scenario::paper("mol3d", 8, "cloudrefine");
        assert_eq!(m.bg_weight, Scenario::OS_PREFERENCE);
    }

    #[test]
    fn fast_forward_defaults_to_auto_and_plumbs_through() {
        let mut s = Scenario::paper("jacobi2d", 4, "cloudrefine");
        assert_eq!(s.fast_forward, FastForward::Auto);
        assert_eq!(s.run_config().fast_forward, FastForward::Auto);
        s.fast_forward = FastForward::Off;
        assert_eq!(s.run_config().fast_forward, FastForward::Off);
        // The normalization base keeps the caller's choice.
        assert_eq!(s.base_of().fast_forward, FastForward::Off);
    }

    #[test]
    fn scale_preset_is_clean_short_and_macro_stepped() {
        let s = Scenario::scale("jacobi2d", 32768, "hiercloudrefine");
        assert_eq!(s.bg, BgPattern::None, "scale runs are interference-free");
        assert_eq!(s.iterations, 30);
        assert_eq!(s.lb_period, 3);
        assert_eq!(s.fast_forward, FastForward::On);
        assert!(s.validate().is_ok());
        assert_eq!(s.run_config().fast_forward, FastForward::On);
    }

    #[test]
    fn base_scenario_strips_interference() {
        let s = Scenario::paper("wave2d", 4, "cloudrefine");
        let b = s.base_of();
        assert_eq!(b.bg, BgPattern::None);
        assert_eq!(b.strategy, "nolb");
        assert_eq!(b.cores, s.cores);
    }

    #[test]
    fn noisy_cloud_preset_sets_and_base_strips_telemetry() {
        let s = Scenario::noisy_cloud("jacobi2d", 4, "robustcloudrefine");
        let spec = s.telemetry.expect("preset must corrupt telemetry");
        assert!(spec.is_active());
        assert!(matches!(s.bg, BgPattern::TwoCore { .. }), "interference stays on");
        assert!(s.base_of().telemetry.is_none(), "the base run reads clean counters");
    }

    #[test]
    fn flaky_cloud_preset_sets_and_base_strips_net_faults() {
        let s = Scenario::flaky_cloud("jacobi2d", 8, "cloudrefine");
        let spec = s.net_fault.as_ref().expect("preset must degrade the network");
        assert!(spec.is_active());
        assert!(!spec.partitions.is_empty(), "flaky_cloud schedules a partition");
        assert!(matches!(s.bg, BgPattern::TwoCore { .. }), "interference stays on");
        assert!(s.base_of().net_fault.is_none(), "the base run uses a clean network");
    }

    #[test]
    fn build_app_respects_seed() {
        let mut s = Scenario::paper("jacobi2d", 4, "nolb");
        let a = s.build_app();
        s.seed = 99;
        let b = s.build_app();
        // Different seeds → different jitter → different costs somewhere.
        let differs = (0..a.num_chares()).any(|i| a.task_cost(i, 0) != b.task_cost(i, 0));
        assert!(differs);
    }

    #[test]
    fn base_time_estimate_is_positive_and_scales() {
        let s4 = Scenario::paper("jacobi2d", 4, "nolb");
        let a4 = s4.build_app();
        let t4 = s4.base_time_estimate(a4.as_ref());
        assert!(t4 > 0.0);
        let s8 = Scenario::paper("jacobi2d", 8, "nolb");
        let a8 = s8.build_app();
        let t8 = s8.base_time_estimate(a8.as_ref());
        // Twice the cores and twice the work → similar per-run time.
        assert!((t8 / t4 - 1.0).abs() < 0.25, "t4 {t4} t8 {t8}");
    }

    #[test]
    fn two_core_script_targets_cores_0_and_1() {
        let s = Scenario::paper("wave2d", 4, "nolb");
        let app = s.build_app();
        let script = s.bg_script(app.as_ref());
        assert_eq!(script.actions.len(), 2);
        assert_eq!(script.max_core(), Some(1));
    }

    #[test]
    fn fail_spec_parsing() {
        assert_eq!(
            FailSpec::parse("core:2@0.5"),
            Ok(FailSpec { node: false, index: 2, at_frac: 0.5, restore_frac: None })
        );
        assert_eq!(
            FailSpec::parse("node:1@0.3~0.8"),
            Ok(FailSpec { node: true, index: 1, at_frac: 0.3, restore_frac: Some(0.8) })
        );
        assert!(FailSpec::parse("cpu:1@0.5").is_err());
        assert!(FailSpec::parse("core:x@0.5").is_err());
        assert!(FailSpec::parse("core:1").is_err());
        assert!(FailSpec::parse("core:1@0.8~0.2").is_err(), "restore before kill");
        assert!(FailSpec::parse("core:1@-0.5").is_err());
    }

    #[test]
    fn fail_script_scales_by_base_time() {
        let mut s = Scenario::paper("wave2d", 4, "cloudrefine");
        s.fail = vec![
            FailSpec { node: false, index: 3, at_frac: 0.5, restore_frac: None },
            FailSpec { node: true, index: 0, at_frac: 0.2, restore_frac: Some(0.4) },
        ];
        let app = s.build_app();
        let script = s.fail_script(app.as_ref());
        assert_eq!(script.actions.len(), 3); // kill + (kill, restore)
        assert!(script.has_kills());
        let base = s.base_time_estimate(app.as_ref());
        let times: Vec<f64> =
            script.actions.iter().map(|(t, _)| t.since(Time::ZERO).as_secs_f64()).collect();
        // Times quantize to whole microseconds, so compare at that resolution.
        assert!((times[0] - 0.2 * base).abs() < 2e-6, "{} vs {}", times[0], 0.2 * base);
        assert!((times[1] - 0.4 * base).abs() < 2e-6, "{} vs {}", times[1], 0.4 * base);
        assert!((times[2] - 0.5 * base).abs() < 2e-6, "{} vs {}", times[2], 0.5 * base);
    }

    #[test]
    fn failure_drill_preset_and_base_strip() {
        let s = Scenario::failure_drill("jacobi2d", 8, "cloudrefine");
        assert_eq!(s.fail.len(), 1);
        assert_eq!(s.fail[0].index, 7);
        assert!(matches!(s.bg, BgPattern::TwoCore { .. }), "interference stays on");
        // The normalization base must be failure-free as well.
        assert!(s.base_of().fail.is_empty());
    }

    #[test]
    fn validate_accepts_presets_and_rejects_garbage() {
        for s in [
            Scenario::paper("jacobi2d", 8, "cloudrefine"),
            Scenario::noisy_cloud("mol3d", 4, "robustcloudrefine"),
            Scenario::flaky_cloud("wave2d", 8, "gatedcloudrefine"),
            Scenario::failure_drill("stencil3d", 4, "hysteresiscloudrefine"),
            Scenario::spot_storm("jacobi2d", 8, "cloudrefine"),
            Scenario::autoscale("wave2d", 8, "cloudrefine"),
        ] {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.app));
        }
        let ok = Scenario::paper("jacobi2d", 8, "cloudrefine");
        let cases: Vec<(Scenario, &str)> = vec![
            (Scenario { app: "linpack".into(), ..ok.clone() }, "unknown application"),
            (Scenario { cores: 6, ..ok.clone() }, "multiple of 4"),
            (Scenario { iterations: 0, ..ok.clone() }, "iterations"),
            (Scenario { lb_period: 0, ..ok.clone() }, "lb_period"),
            (Scenario { strategy: "wat".into(), ..ok.clone() }, "unknown LB strategy"),
            (Scenario { bg_weight: 0.0, ..ok.clone() }, "bg_weight"),
            (
                Scenario {
                    bg: BgPattern::SingleCore { core: 8, start_frac: 0.5 },
                    ..ok.clone()
                },
                "bg core 8 out of range",
            ),
            (
                Scenario {
                    fail: vec![FailSpec {
                        node: false,
                        index: 8,
                        at_frac: 0.5,
                        restore_frac: None,
                    }],
                    ..ok.clone()
                },
                "targets core 8",
            ),
            (
                Scenario {
                    fail: vec![FailSpec {
                        node: true,
                        index: 2,
                        at_frac: 0.5,
                        restore_frac: None,
                    }],
                    ..ok.clone()
                },
                "targets node 2",
            ),
            (
                Scenario {
                    fail: vec![FailSpec {
                        node: false,
                        index: 0,
                        at_frac: 0.8,
                        restore_frac: Some(0.2),
                    }],
                    ..ok.clone()
                },
                "after the kill",
            ),
            (Scenario { pe_speeds: vec![1.0; 3], ..ok.clone() }, "pe_speeds length"),
            (Scenario { pe_speeds: vec![0.0; 8], ..ok.clone() }, "must be positive"),
            (
                Scenario {
                    membership: Some(MembershipSpec {
                        notices: vec![cloudlb_sim::NoticeSpec {
                            node: 5,
                            at_frac: 0.3,
                            lead_frac: 0.2,
                        }],
                        ..MembershipSpec::default()
                    }),
                    ..ok.clone()
                },
                "membership notice targets node 5",
            ),
            (
                // Presets notice node 1; a 4-core cluster only has node 0.
                Scenario::spot_storm("jacobi2d", 4, "cloudrefine"),
                "membership notice targets node 1",
            ),
        ];
        for (bad, want) in cases {
            let err = bad.validate().expect_err(want);
            assert!(err.contains(want), "error {err:?} should mention {want:?}");
        }
    }

    #[test]
    fn pe_speeds_plumb_into_run_config() {
        let mut s = Scenario::paper("jacobi2d", 8, "cloudrefine");
        s.pe_speeds = vec![1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5];
        assert_eq!(s.run_config().pe_speeds, s.pe_speeds);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn scenario_json_round_trips_losslessly() {
        // Exercise every optional field at once: if the vendored derive
        // drops or defaults anything, PartialEq catches it.
        let mut s = Scenario::flaky_cloud("mol3d", 8, "robustcloudrefine");
        s.telemetry = Some(cloudlb_sim::TelemetrySpec::noisy_cloud());
        s.fail = vec![
            FailSpec { node: false, index: 7, at_frac: 0.4, restore_frac: None },
            FailSpec { node: true, index: 1, at_frac: 0.2, restore_frac: Some(0.6) },
        ];
        s.bg = BgPattern::SingleCore { core: 3, start_frac: 0.25 };
        s.membership = Some(MembershipSpec::spot_storm());
        s.fast_forward = FastForward::Off;
        s.pe_speeds = vec![1.0, 1.0, 0.5, 1.0, 1.0, 0.75, 1.0, 1.0];
        s.trace = true;
        s.seed = 0xDEAD_BEEF;
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // And the defaulted fields really default when absent.
        let minimal: Scenario = serde_json::from_str(
            r#"{"app":"jacobi2d","cores":8,"iterations":10,"strategy":"nolb",
                "lb_period":5,"bg":"None","bg_weight":1.0,"seed":7,"trace":false}"#,
        )
        .unwrap();
        assert!(minimal.fail.is_empty());
        assert!(minimal.telemetry.is_none());
        assert!(minimal.net_fault.is_none());
        assert!(minimal.membership.is_none());
        assert_eq!(minimal.fast_forward, FastForward::Auto);
        assert!(minimal.pe_speeds.is_empty());
    }

    #[test]
    fn spot_storm_preset_and_base_strip() {
        let s = Scenario::spot_storm("jacobi2d", 8, "cloudrefine");
        let spec = s.membership.as_ref().expect("preset must schedule churn");
        assert!(spec.is_active());
        assert_eq!(spec.notices.len(), 2);
        assert!(matches!(s.bg, BgPattern::TwoCore { .. }), "interference stays on");
        assert!(s.base_of().membership.is_none(), "the base run is a static cluster");
        let a = Scenario::autoscale("wave2d", 8, "cloudrefine");
        assert_eq!(a.membership.as_ref().unwrap().acquisitions.len(), 2);
    }

    #[test]
    fn total_cores_counts_acquired_nodes() {
        let s = Scenario::paper("jacobi2d", 8, "cloudrefine");
        assert_eq!(s.total_cores(), 8);
        let storm = Scenario::spot_storm("jacobi2d", 8, "cloudrefine");
        assert_eq!(storm.total_cores(), 12); // one acquisition = one 4-core node
        let auto = Scenario::autoscale("jacobi2d", 8, "cloudrefine");
        assert_eq!(auto.total_cores(), 16);
    }

    #[test]
    fn run_config_builds_the_expanded_cluster_and_pads_speeds() {
        let mut s = Scenario::spot_storm("jacobi2d", 8, "cloudrefine");
        let cfg = s.run_config();
        assert_eq!(cfg.cluster.nodes * cfg.cluster.cores_per_node, 12);
        // Speeds given for the initial 8 cores pad to nominal for the rest.
        s.pe_speeds = vec![0.5; 8];
        let cfg = s.run_config();
        assert_eq!(cfg.pe_speeds.len(), 12);
        assert_eq!(&cfg.pe_speeds[..8], &[0.5; 8][..]);
        assert_eq!(&cfg.pe_speeds[8..], &[1.0; 4][..]);
        assert!(s.validate().is_ok(), "speeds are validated against the initial cores");
    }

    #[test]
    fn membership_script_scales_by_base_time_and_numbers_past_the_cluster() {
        let s = Scenario::spot_storm("jacobi2d", 8, "cloudrefine");
        let app = s.build_app();
        let script = s.membership_script(app.as_ref());
        assert_eq!(script.actions.len(), 6); // 2×(notice+revoke) + acquire + warmup
        assert_eq!(script.num_acquired_nodes(), 1);
        assert_eq!(script.max_node(), Some(2), "acquired node numbered after nodes 0..2");
        assert!(script.has_revocations());
        let base = s.base_time_estimate(app.as_ref());
        let first = script.actions[0].0.since(Time::ZERO).as_secs_f64();
        assert!((first - 0.30 * base).abs() < 2e-6, "{first} vs {}", 0.30 * base);
        // The clean twin schedules nothing.
        assert!(s.base_of().membership_script(app.as_ref()).is_empty());
    }

    #[test]
    fn capacity_avg_frac_integrates_churn() {
        let s = Scenario::paper("jacobi2d", 8, "cloudrefine");
        assert_eq!(s.capacity_avg_frac(), 1.0, "static cluster is full capacity");
        // spot_storm on 8 cores: +4 cores ready at 0.32, −4 at the 0.40
        // notice, −4 at the 0.80 notice; horizon = last revoke at 1.10.
        // ∫ = 8(.32) + 12(.08) + 8(.40) + 4(.30) = 7.92 over 8 × 1.10.
        let storm = Scenario::spot_storm("jacobi2d", 8, "cloudrefine");
        assert!((storm.capacity_avg_frac() - 0.9).abs() < 1e-9);
        // A permanent single-core kill at 50 %: 8 cores for half the run,
        // 7 after → 7.5/8.
        let mut failed = Scenario::paper("jacobi2d", 8, "cloudrefine");
        failed.fail =
            vec![FailSpec { node: false, index: 7, at_frac: 0.5, restore_frac: None }];
        assert!((failed.capacity_avg_frac() - 7.5 / 8.0).abs() < 1e-9);
        // Capacity never integrates below one core.
        let mut doomed = Scenario::paper("jacobi2d", 8, "cloudrefine");
        doomed.fail = (0..8)
            .map(|i| FailSpec { node: false, index: i, at_frac: 0.1, restore_frac: None })
            .collect();
        assert!(doomed.capacity_avg_frac() >= 1.0 / 8.0);
    }

    #[test]
    fn capacity_tracking_makespan_integrates_until_the_work_is_done() {
        // No churn: 8 cores the whole way, so the tracking twin IS the
        // clean twin.
        let s = Scenario::paper("jacobi2d", 8, "cloudrefine");
        assert!((s.capacity_tracking_makespan(2.0, 1.0) - 2.0).abs() < 1e-9);
        // spot_storm on 8 cores with base 1 s and clean makespan 1 s
        // (work = 8 core·s): 8 cores to 0.32, 12 to the 0.40 notice, 8 to
        // the 0.80 notice, 4 after. ∫ to 0.80 = 2.56 + 0.96 + 3.20 = 6.72;
        // the remaining 1.28 runs at 4 cores → 0.80 + 0.32 = 1.12 s.
        let storm = Scenario::spot_storm("jacobi2d", 8, "cloudrefine");
        assert!((storm.capacity_tracking_makespan(1.0, 1.0) - 1.12).abs() < 1e-9);
        // Work finishing before the first event never pays for later churn.
        assert!((storm.capacity_tracking_makespan(0.25, 1.0) - 0.25).abs() < 1e-9);
        // Losing every core still terminates (throughput floored at one).
        let mut doomed = Scenario::paper("jacobi2d", 8, "cloudrefine");
        doomed.fail = (0..8)
            .map(|i| FailSpec { node: false, index: i, at_frac: 0.1, restore_frac: None })
            .collect();
        let t = doomed.capacity_tracking_makespan(1.0, 1.0);
        assert!(t.is_finite() && t > 1.0, "{t}");
    }

    #[test]
    fn phased_script_has_two_pulses_in_order() {
        let s = Scenario {
            bg: BgPattern::Phased,
            ..Scenario::paper("wave2d", 4, "cloudrefine")
        };
        let app = s.build_app();
        let script = s.bg_script(app.as_ref());
        assert_eq!(script.actions.len(), 4);
        let times: Vec<_> = script.actions.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
