//! Declarative run scenarios mirroring the paper's experimental setup.
//!
//! §V: "we use 8 nodes (32 cores) of a testbed … In order to create
//! interference with our parallel runs we run a 2-core job of Wave2D as
//! the background load on two of the cores allocated to the application
//! under test." The background job's CPU demand is sized from the
//! application's own cost model so that the jobs genuinely coexist (the
//! paper runs both to completion and reports both penalties).
//!
//! The Mol3D runs add the paper's observed OS preference: "we saw a
//! significant preference to the background load in the case of Mol3D" —
//! modelled as a larger scheduler weight for the interfering tasks.

use cloudlb_apps::{Jacobi2D, Mol3D, Stencil3D, Wave2D};
use cloudlb_runtime::{FastForward, IterativeApp, LbConfig, RunConfig};
use cloudlb_sim::interference::BgScript;
use cloudlb_sim::{Dur, FailureScript, NetFaultSpec, TelemetrySpec, Time};
use serde::{Deserialize, Serialize};

/// Interference pattern for a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BgPattern {
    /// No interference (the normalization base runs).
    None,
    /// The paper's steady 2-core background job on cores 0 and 1, starting
    /// at t = 0, with per-core demand `demand_frac × (expected base app
    /// time)`.
    TwoCore {
        /// Background CPU demand relative to the base app duration.
        demand_frac: f64,
    },
    /// Figure 1: a 1-core job arriving on the given core partway through.
    SingleCore {
        /// Interfered core.
        core: usize,
        /// Arrival as a fraction of the expected base app time.
        start_frac: f64,
    },
    /// Figure 3: a job on core 1 that departs, then a job on core 3.
    Phased,
}

/// One scheduled PE/node failure, with instants expressed as fractions of
/// the expected interference-free app duration — so the same spec ports
/// across applications and core counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailSpec {
    /// Kill a whole node instead of a single core.
    #[serde(default)]
    pub node: bool,
    /// Core index (or node index when `node` is set).
    pub index: usize,
    /// Kill instant as a fraction of the expected base app time.
    pub at_frac: f64,
    /// Optional restore instant (same scale); `None` = permanent loss.
    #[serde(default)]
    pub restore_frac: Option<f64>,
}

impl FailSpec {
    /// Parse the CLI syntax: `core:2@0.5` kills core 2 at 50 % of the
    /// expected run; `node:1@0.3~0.8` takes node 1 down between 30 % and
    /// 80 %.
    pub fn parse(s: &str) -> Result<FailSpec, String> {
        let (kind, rest) =
            s.split_once(':').ok_or_else(|| format!("bad failure spec {s:?}: missing ':'"))?;
        let node = match kind {
            "core" => false,
            "node" => true,
            other => return Err(format!("bad failure spec {s:?}: unknown target {other:?}")),
        };
        let (idx, when) =
            rest.split_once('@').ok_or_else(|| format!("bad failure spec {s:?}: missing '@'"))?;
        let index: usize =
            idx.parse().map_err(|_| format!("bad failure spec {s:?}: index {idx:?}"))?;
        let (at, restore) = match when.split_once('~') {
            Some((a, r)) => (a, Some(r)),
            None => (when, None),
        };
        let at_frac: f64 =
            at.parse().map_err(|_| format!("bad failure spec {s:?}: time {at:?}"))?;
        let restore_frac = match restore {
            Some(r) => Some(
                r.parse::<f64>().map_err(|_| format!("bad failure spec {s:?}: time {r:?}"))?,
            ),
            None => None,
        };
        if !(at_frac >= 0.0 && at_frac.is_finite()) {
            return Err(format!("bad failure spec {s:?}: kill time must be >= 0"));
        }
        if let Some(r) = restore_frac {
            if !(r > at_frac && r.is_finite()) {
                return Err(format!("bad failure spec {s:?}: restore must come after the kill"));
            }
        }
        Ok(FailSpec { node, index, at_frac, restore_frac })
    }
}

/// One experiment configuration.
///
/// `PartialEq` compares every field: the scenario fuzzer's shrinker relies
/// on it to detect fixpoints, and the round-trip tests use it to prove
/// JSON serialization is lossless.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Application name (`jacobi2d`, `wave2d`, `mol3d`, `stencil3d`).
    pub app: String,
    /// Cores (multiple of 4; the paper uses 4–32).
    pub cores: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// LB strategy registry name (`nolb`, `cloudrefine`, …).
    pub strategy: String,
    /// LB period in iterations.
    pub lb_period: usize,
    /// Interference pattern.
    pub bg: BgPattern,
    /// Scheduler weight of background tasks (1.0 = fair share; the Mol3D
    /// scenarios use [`Scenario::OS_PREFERENCE`]).
    pub bg_weight: f64,
    /// Seed (perturbs per-chare jitter; experiments average 3 seeds).
    pub seed: u64,
    /// Record a Projections-style trace.
    pub trace: bool,
    /// Scheduled PE/node failures (empty = failure-free run).
    #[serde(default)]
    pub fail: Vec<FailSpec>,
    /// Telemetry-corruption model applied to every `/proc/stat` read
    /// (`None` = clean counters).
    #[serde(default)]
    pub telemetry: Option<TelemetrySpec>,
    /// Network chaos model: seeded loss, duplication, reordering, jitter,
    /// bandwidth collapse and transient partitions applied to every
    /// cross-node message (`None` = clean interconnect).
    #[serde(default)]
    pub net_fault: Option<NetFaultSpec>,
    /// Steady-state fast-forward mode (bit-identical macro-stepping of
    /// undisturbed LB windows; default `auto` = on unless tracing).
    #[serde(default)]
    pub fast_forward: FastForward,
    /// Relative per-core speeds (empty = uniform). Models static
    /// heterogeneity — the paper's "VM to physical machine mapping"
    /// extraneous factor; plumbed into [`RunConfig::pe_speeds`].
    #[serde(default)]
    pub pe_speeds: Vec<f64>,
}

impl Scenario {
    /// The OS preference factor the paper observed for Mol3D's background
    /// job (chosen to reproduce the ~400 % noLB timing penalty of
    /// Fig. 2(c); see DESIGN.md substitutions).
    pub const OS_PREFERENCE: f64 = 4.0;

    /// A paper-style scenario: the 2-core background job, CloudRefine vs
    /// whatever `strategy` says, 100 iterations, LB every 10.
    ///
    /// The background job's per-core demand is `bg_weight × base app time`
    /// so that — like the paper's 2-core Wave2D run — it persists for the
    /// whole interfered noLB execution (a job holding a `w : 1` share of
    /// the core consumes `w × base` CPU while the app crawls through at
    /// `1/(1+w)` speed).
    pub fn paper(app: &str, cores: usize, strategy: &str) -> Self {
        let bg_weight =
            if app.eq_ignore_ascii_case("mol3d") { Self::OS_PREFERENCE } else { 1.0 };
        Scenario {
            app: app.to_string(),
            cores,
            iterations: 100,
            strategy: strategy.to_string(),
            lb_period: 10,
            bg: BgPattern::TwoCore { demand_frac: bg_weight },
            bg_weight,
            seed: 1,
            trace: false,
            fail: Vec::new(),
            telemetry: None,
            net_fault: None,
            fast_forward: FastForward::default(),
            pe_speeds: Vec::new(),
        }
    }

    /// Noisy-cloud preset: the paper scenario with the guarded strategy
    /// stack and every `/proc/stat` read corrupted by the default
    /// [`TelemetrySpec::noisy_cloud`] model — the headline experiment rerun
    /// under dirty telemetry.
    pub fn noisy_cloud(app: &str, cores: usize, strategy: &str) -> Self {
        Scenario {
            telemetry: Some(TelemetrySpec::noisy_cloud()),
            ..Self::paper(app, cores, strategy)
        }
    }

    /// Flaky-cloud preset: the paper scenario rerun over a degraded
    /// interconnect — ~1 % message loss, duplication, reordering, latency
    /// jitter, occasional bandwidth collapse, and one transient full-rack
    /// partition mid-run (see [`NetFaultSpec::flaky_cloud`]). Migrations
    /// go through the reliable retry/abort protocol.
    pub fn flaky_cloud(app: &str, cores: usize, strategy: &str) -> Self {
        Scenario {
            net_fault: Some(NetFaultSpec::flaky_cloud()),
            ..Self::paper(app, cores, strategy)
        }
    }

    /// Failure-drill preset: the paper scenario (interference included)
    /// plus a permanent kill of the last core at 40 % of the expected run
    /// — failure and interference overlapping, the hardest recovery case.
    pub fn failure_drill(app: &str, cores: usize, strategy: &str) -> Self {
        Scenario {
            fail: vec![FailSpec {
                node: false,
                index: cores - 1,
                at_frac: 0.4,
                restore_frac: None,
            }],
            ..Self::paper(app, cores, strategy)
        }
    }

    /// Same scenario without interference (the normalization base). Also
    /// strips failures and telemetry corruption: the base is the clean
    /// machine.
    pub fn base_of(&self) -> Scenario {
        Scenario {
            bg: BgPattern::None,
            strategy: "nolb".to_string(),
            trace: false,
            fail: Vec::new(),
            telemetry: None,
            net_fault: None,
            ..self.clone()
        }
    }

    /// Application names [`Scenario::build_app`] understands.
    pub const KNOWN_APPS: [&'static str; 4] = ["jacobi2d", "wave2d", "mol3d", "stencil3d"];

    /// Check the scenario for configuration errors a JSON file (or a
    /// fuzzer) can smuggle past the CLI parsers: unknown app or strategy,
    /// broken cluster shape, out-of-range fault targets, malformed speed
    /// vectors and non-finite knobs. Every failure here must surface as
    /// `RuntimeError::InvalidConfig` from `try_run_scenario`, never a
    /// panic.
    pub fn validate(&self) -> Result<(), String> {
        let app = self.app.to_ascii_lowercase();
        if !Self::KNOWN_APPS.contains(&app.as_str()) {
            return Err(format!(
                "unknown application {:?} (expected one of {:?})",
                self.app,
                Self::KNOWN_APPS
            ));
        }
        if self.cores == 0 || !self.cores.is_multiple_of(4) {
            return Err(format!("cores must be a positive multiple of 4, got {}", self.cores));
        }
        if self.iterations == 0 {
            return Err("iterations must be >= 1".to_string());
        }
        if self.lb_period == 0 {
            return Err("lb_period must be >= 1".to_string());
        }
        if cloudlb_balance::strategy::by_name(&self.strategy).is_none() {
            return Err(format!("unknown LB strategy {:?}", self.strategy));
        }
        if !(self.bg_weight > 0.0 && self.bg_weight.is_finite()) {
            return Err(format!("bg_weight must be positive and finite, got {}", self.bg_weight));
        }
        match self.bg {
            BgPattern::None | BgPattern::Phased => {}
            BgPattern::TwoCore { demand_frac } => {
                if !(demand_frac >= 0.0 && demand_frac.is_finite()) {
                    return Err(format!("bg demand_frac must be >= 0, got {demand_frac}"));
                }
            }
            BgPattern::SingleCore { core, start_frac } => {
                if core >= self.cores {
                    return Err(format!(
                        "bg core {core} out of range for {} cores",
                        self.cores
                    ));
                }
                if !(start_frac >= 0.0 && start_frac.is_finite()) {
                    return Err(format!("bg start_frac must be >= 0, got {start_frac}"));
                }
            }
        }
        let nodes = self.cores / 4;
        for spec in &self.fail {
            let limit = if spec.node { nodes } else { self.cores };
            let what = if spec.node { "node" } else { "core" };
            if spec.index >= limit {
                return Err(format!(
                    "failure spec targets {what} {} beyond the {limit}-{what} cluster",
                    spec.index
                ));
            }
            if !(spec.at_frac >= 0.0 && spec.at_frac.is_finite()) {
                return Err(format!("failure kill time must be >= 0, got {}", spec.at_frac));
            }
            if let Some(r) = spec.restore_frac {
                if !(r > spec.at_frac && r.is_finite()) {
                    return Err(format!(
                        "failure restore ({r}) must come after the kill ({})",
                        spec.at_frac
                    ));
                }
            }
        }
        if let Some(net) = &self.net_fault {
            net.validate(nodes)?;
        }
        if !self.pe_speeds.is_empty() {
            if self.pe_speeds.len() != self.cores {
                return Err(format!(
                    "pe_speeds length {} != core count {}",
                    self.pe_speeds.len(),
                    self.cores
                ));
            }
            if !self.pe_speeds.iter().all(|s| *s > 0.0 && s.is_finite()) {
                return Err(format!("pe_speeds must be positive: {:?}", self.pe_speeds));
            }
        }
        Ok(())
    }

    /// Instantiate the application with this scenario's seed folded into
    /// its jitter stream.
    pub fn build_app(&self) -> Box<dyn IterativeApp> {
        let pes = self.cores;
        match self.app.to_ascii_lowercase().as_str() {
            "jacobi2d" => {
                let mut a = Jacobi2D::for_pes(pes);
                a.seed ^= self.seed;
                Box::new(a)
            }
            "wave2d" => {
                let mut a = Wave2D::for_pes(pes);
                a.seed ^= self.seed;
                Box::new(a)
            }
            "mol3d" => {
                let mut a = Mol3D::for_pes(pes);
                a.seed ^= self.seed;
                Box::new(a)
            }
            "stencil3d" => {
                let mut a = Stencil3D::for_pes(pes);
                a.seed ^= self.seed;
                Box::new(a)
            }
            other => panic!("unknown application {other:?}"),
        }
    }

    /// Expected interference-free app duration from the cost model:
    /// `iterations × (Σ task costs) / cores`. Used to size background
    /// demand and arrival times.
    pub fn base_time_estimate(&self, app: &dyn IterativeApp) -> f64 {
        let total: f64 = (0..app.num_chares()).map(|i| app.task_cost(i, 0)).sum();
        self.iterations as f64 * total / self.cores as f64
    }

    /// The runtime configuration for this scenario.
    pub fn run_config(&self) -> RunConfig {
        let mut cfg = RunConfig::paper(self.cores, self.iterations);
        cfg.lb = LbConfig {
            strategy: self.strategy.clone(),
            period: self.lb_period,
            ..LbConfig::default()
        };
        cfg.seed = self.seed;
        cfg.cluster.trace = self.trace;
        cfg.fast_forward = self.fast_forward;
        cfg.pe_speeds = self.pe_speeds.clone();
        cfg
    }

    /// The interference script for this scenario (needs the app for demand
    /// sizing).
    pub fn bg_script(&self, app: &dyn IterativeApp) -> BgScript {
        let base = self.base_time_estimate(app);
        match self.bg {
            BgPattern::None => BgScript::none(),
            BgPattern::TwoCore { demand_frac } => BgScript::steady(
                0,
                &[0, 1],
                Time::ZERO,
                Some(Dur::from_secs_f64(base * demand_frac)),
                self.bg_weight,
            ),
            BgPattern::SingleCore { core, start_frac } => BgScript::steady(
                0,
                &[core],
                Time::ZERO + Dur::from_secs_f64(base * start_frac),
                None,
                self.bg_weight,
            ),
            BgPattern::Phased => {
                // Fig. 3: interference on core 1 for the first ~40 % of the
                // run, a gap, then on core 3 until past the end.
                let a = BgScript::pulse(
                    0,
                    1,
                    Time::ZERO + Dur::from_secs_f64(base * 0.05),
                    Time::ZERO + Dur::from_secs_f64(base * 0.45),
                    self.bg_weight,
                );
                let b = BgScript::pulse(
                    1,
                    3,
                    Time::ZERO + Dur::from_secs_f64(base * 0.65),
                    Time::ZERO + Dur::from_secs_f64(base * 3.0),
                    self.bg_weight,
                );
                a.merge(b)
            }
        }
    }

    /// The failure schedule for this scenario, with fractional times
    /// scaled by the expected base duration (needs the app for sizing,
    /// like [`Scenario::bg_script`]).
    pub fn fail_script(&self, app: &dyn IterativeApp) -> FailureScript {
        let base = self.base_time_estimate(app);
        let at = |frac: f64| Time::ZERO + Dur::from_secs_f64(base * frac);
        let mut script = FailureScript::none();
        for spec in &self.fail {
            let part = match (spec.node, spec.restore_frac) {
                (false, None) => FailureScript::kill_core(spec.index, at(spec.at_frac)),
                (false, Some(r)) => {
                    FailureScript::core_outage(spec.index, at(spec.at_frac), at(r))
                }
                (true, None) => FailureScript::kill_node(spec.index, at(spec.at_frac)),
                (true, Some(r)) => {
                    FailureScript::node_outage(spec.index, at(spec.at_frac), at(r))
                }
            };
            script = script.merge(part);
        }
        script
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_defaults() {
        let s = Scenario::paper("jacobi2d", 8, "cloudrefine");
        assert_eq!(s.cores, 8);
        assert_eq!(s.bg_weight, 1.0);
        let m = Scenario::paper("mol3d", 8, "cloudrefine");
        assert_eq!(m.bg_weight, Scenario::OS_PREFERENCE);
    }

    #[test]
    fn fast_forward_defaults_to_auto_and_plumbs_through() {
        let mut s = Scenario::paper("jacobi2d", 4, "cloudrefine");
        assert_eq!(s.fast_forward, FastForward::Auto);
        assert_eq!(s.run_config().fast_forward, FastForward::Auto);
        s.fast_forward = FastForward::Off;
        assert_eq!(s.run_config().fast_forward, FastForward::Off);
        // The normalization base keeps the caller's choice.
        assert_eq!(s.base_of().fast_forward, FastForward::Off);
    }

    #[test]
    fn base_scenario_strips_interference() {
        let s = Scenario::paper("wave2d", 4, "cloudrefine");
        let b = s.base_of();
        assert_eq!(b.bg, BgPattern::None);
        assert_eq!(b.strategy, "nolb");
        assert_eq!(b.cores, s.cores);
    }

    #[test]
    fn noisy_cloud_preset_sets_and_base_strips_telemetry() {
        let s = Scenario::noisy_cloud("jacobi2d", 4, "robustcloudrefine");
        let spec = s.telemetry.expect("preset must corrupt telemetry");
        assert!(spec.is_active());
        assert!(matches!(s.bg, BgPattern::TwoCore { .. }), "interference stays on");
        assert!(s.base_of().telemetry.is_none(), "the base run reads clean counters");
    }

    #[test]
    fn flaky_cloud_preset_sets_and_base_strips_net_faults() {
        let s = Scenario::flaky_cloud("jacobi2d", 8, "cloudrefine");
        let spec = s.net_fault.as_ref().expect("preset must degrade the network");
        assert!(spec.is_active());
        assert!(!spec.partitions.is_empty(), "flaky_cloud schedules a partition");
        assert!(matches!(s.bg, BgPattern::TwoCore { .. }), "interference stays on");
        assert!(s.base_of().net_fault.is_none(), "the base run uses a clean network");
    }

    #[test]
    fn build_app_respects_seed() {
        let mut s = Scenario::paper("jacobi2d", 4, "nolb");
        let a = s.build_app();
        s.seed = 99;
        let b = s.build_app();
        // Different seeds → different jitter → different costs somewhere.
        let differs = (0..a.num_chares()).any(|i| a.task_cost(i, 0) != b.task_cost(i, 0));
        assert!(differs);
    }

    #[test]
    fn base_time_estimate_is_positive_and_scales() {
        let s4 = Scenario::paper("jacobi2d", 4, "nolb");
        let a4 = s4.build_app();
        let t4 = s4.base_time_estimate(a4.as_ref());
        assert!(t4 > 0.0);
        let s8 = Scenario::paper("jacobi2d", 8, "nolb");
        let a8 = s8.build_app();
        let t8 = s8.base_time_estimate(a8.as_ref());
        // Twice the cores and twice the work → similar per-run time.
        assert!((t8 / t4 - 1.0).abs() < 0.25, "t4 {t4} t8 {t8}");
    }

    #[test]
    fn two_core_script_targets_cores_0_and_1() {
        let s = Scenario::paper("wave2d", 4, "nolb");
        let app = s.build_app();
        let script = s.bg_script(app.as_ref());
        assert_eq!(script.actions.len(), 2);
        assert_eq!(script.max_core(), Some(1));
    }

    #[test]
    fn fail_spec_parsing() {
        assert_eq!(
            FailSpec::parse("core:2@0.5"),
            Ok(FailSpec { node: false, index: 2, at_frac: 0.5, restore_frac: None })
        );
        assert_eq!(
            FailSpec::parse("node:1@0.3~0.8"),
            Ok(FailSpec { node: true, index: 1, at_frac: 0.3, restore_frac: Some(0.8) })
        );
        assert!(FailSpec::parse("cpu:1@0.5").is_err());
        assert!(FailSpec::parse("core:x@0.5").is_err());
        assert!(FailSpec::parse("core:1").is_err());
        assert!(FailSpec::parse("core:1@0.8~0.2").is_err(), "restore before kill");
        assert!(FailSpec::parse("core:1@-0.5").is_err());
    }

    #[test]
    fn fail_script_scales_by_base_time() {
        let mut s = Scenario::paper("wave2d", 4, "cloudrefine");
        s.fail = vec![
            FailSpec { node: false, index: 3, at_frac: 0.5, restore_frac: None },
            FailSpec { node: true, index: 0, at_frac: 0.2, restore_frac: Some(0.4) },
        ];
        let app = s.build_app();
        let script = s.fail_script(app.as_ref());
        assert_eq!(script.actions.len(), 3); // kill + (kill, restore)
        assert!(script.has_kills());
        let base = s.base_time_estimate(app.as_ref());
        let times: Vec<f64> =
            script.actions.iter().map(|(t, _)| t.since(Time::ZERO).as_secs_f64()).collect();
        // Times quantize to whole microseconds, so compare at that resolution.
        assert!((times[0] - 0.2 * base).abs() < 2e-6, "{} vs {}", times[0], 0.2 * base);
        assert!((times[1] - 0.4 * base).abs() < 2e-6, "{} vs {}", times[1], 0.4 * base);
        assert!((times[2] - 0.5 * base).abs() < 2e-6, "{} vs {}", times[2], 0.5 * base);
    }

    #[test]
    fn failure_drill_preset_and_base_strip() {
        let s = Scenario::failure_drill("jacobi2d", 8, "cloudrefine");
        assert_eq!(s.fail.len(), 1);
        assert_eq!(s.fail[0].index, 7);
        assert!(matches!(s.bg, BgPattern::TwoCore { .. }), "interference stays on");
        // The normalization base must be failure-free as well.
        assert!(s.base_of().fail.is_empty());
    }

    #[test]
    fn validate_accepts_presets_and_rejects_garbage() {
        for s in [
            Scenario::paper("jacobi2d", 8, "cloudrefine"),
            Scenario::noisy_cloud("mol3d", 4, "robustcloudrefine"),
            Scenario::flaky_cloud("wave2d", 8, "gatedcloudrefine"),
            Scenario::failure_drill("stencil3d", 4, "hysteresiscloudrefine"),
        ] {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.app));
        }
        let ok = Scenario::paper("jacobi2d", 8, "cloudrefine");
        let cases: Vec<(Scenario, &str)> = vec![
            (Scenario { app: "linpack".into(), ..ok.clone() }, "unknown application"),
            (Scenario { cores: 6, ..ok.clone() }, "multiple of 4"),
            (Scenario { iterations: 0, ..ok.clone() }, "iterations"),
            (Scenario { lb_period: 0, ..ok.clone() }, "lb_period"),
            (Scenario { strategy: "wat".into(), ..ok.clone() }, "unknown LB strategy"),
            (Scenario { bg_weight: 0.0, ..ok.clone() }, "bg_weight"),
            (
                Scenario {
                    bg: BgPattern::SingleCore { core: 8, start_frac: 0.5 },
                    ..ok.clone()
                },
                "bg core 8 out of range",
            ),
            (
                Scenario {
                    fail: vec![FailSpec {
                        node: false,
                        index: 8,
                        at_frac: 0.5,
                        restore_frac: None,
                    }],
                    ..ok.clone()
                },
                "targets core 8",
            ),
            (
                Scenario {
                    fail: vec![FailSpec {
                        node: true,
                        index: 2,
                        at_frac: 0.5,
                        restore_frac: None,
                    }],
                    ..ok.clone()
                },
                "targets node 2",
            ),
            (
                Scenario {
                    fail: vec![FailSpec {
                        node: false,
                        index: 0,
                        at_frac: 0.8,
                        restore_frac: Some(0.2),
                    }],
                    ..ok.clone()
                },
                "after the kill",
            ),
            (Scenario { pe_speeds: vec![1.0; 3], ..ok.clone() }, "pe_speeds length"),
            (Scenario { pe_speeds: vec![0.0; 8], ..ok.clone() }, "must be positive"),
        ];
        for (bad, want) in cases {
            let err = bad.validate().expect_err(want);
            assert!(err.contains(want), "error {err:?} should mention {want:?}");
        }
    }

    #[test]
    fn pe_speeds_plumb_into_run_config() {
        let mut s = Scenario::paper("jacobi2d", 8, "cloudrefine");
        s.pe_speeds = vec![1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5];
        assert_eq!(s.run_config().pe_speeds, s.pe_speeds);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn scenario_json_round_trips_losslessly() {
        // Exercise every optional field at once: if the vendored derive
        // drops or defaults anything, PartialEq catches it.
        let mut s = Scenario::flaky_cloud("mol3d", 8, "robustcloudrefine");
        s.telemetry = Some(cloudlb_sim::TelemetrySpec::noisy_cloud());
        s.fail = vec![
            FailSpec { node: false, index: 7, at_frac: 0.4, restore_frac: None },
            FailSpec { node: true, index: 1, at_frac: 0.2, restore_frac: Some(0.6) },
        ];
        s.bg = BgPattern::SingleCore { core: 3, start_frac: 0.25 };
        s.fast_forward = FastForward::Off;
        s.pe_speeds = vec![1.0, 1.0, 0.5, 1.0, 1.0, 0.75, 1.0, 1.0];
        s.trace = true;
        s.seed = 0xDEAD_BEEF;
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // And the defaulted fields really default when absent.
        let minimal: Scenario = serde_json::from_str(
            r#"{"app":"jacobi2d","cores":8,"iterations":10,"strategy":"nolb",
                "lb_period":5,"bg":"None","bg_weight":1.0,"seed":7,"trace":false}"#,
        )
        .unwrap();
        assert!(minimal.fail.is_empty());
        assert!(minimal.telemetry.is_none());
        assert!(minimal.net_fault.is_none());
        assert_eq!(minimal.fast_forward, FastForward::Auto);
        assert!(minimal.pe_speeds.is_empty());
    }

    #[test]
    fn phased_script_has_two_pulses_in_order() {
        let s = Scenario {
            bg: BgPattern::Phased,
            ..Scenario::paper("wave2d", 4, "cloudrefine")
        };
        let app = s.build_app();
        let script = s.bg_script(app.as_ref());
        assert_eq!(script.actions.len(), 4);
        let times: Vec<_> = script.actions.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
