//! Experiment execution: base / noLB / LB triples, seed averaging, and
//! the paper's metrics.
//!
//! For each `(application, core count)` cell the paper reports:
//! * **timing penalty** of the parallel job, with and without LB, as a
//!   percentage of the interference-free run (Fig. 2);
//! * **timing penalty of the background job** under both regimes (Fig. 2);
//! * **average power** per node and **energy overhead** normalized to the
//!   interference-free run (Fig. 4).
//!
//! `evaluate` reproduces one cell by running the three scenarios over a
//! set of seeds and averaging — the paper averages three repeated runs.
//!
//! # Parallel sweeps
//!
//! Every `(app, cores, arm, seed)` run is an independent deterministic
//! simulation, so [`evaluate_cells`] streams whole matrices through the
//! [`crate::pipeline`] work-stealing pipeline as sequence-numbered
//! packets. Results come back in submission order and are reduced with
//! exactly the serial code's fold, so averaged [`EvalPoint`]s are
//! bit-identical for any worker count (see `tests/parallel_sweep.rs`
//! and `tests/pipeline_stream.rs`); [`evaluate_cells_stream`] exposes
//! the same sweep with O(jobs + reorder window) peak live runs for
//! studies too large to materialize.

use crate::parallel::default_jobs;
use crate::pipeline::{pipeline_stream, PipelineConfig, PipelineStats};
use crate::scenario::Scenario;
use cloudlb_runtime::{FastForward, RunResult, RuntimeError, SimExecutor};
use cloudlb_sim::stats::mean;
use serde::{Deserialize, Serialize};

/// Execute a single scenario. Panics if an injected failure turns out
/// unrecoverable; use [`try_run_scenario`] for failure experiments.
pub fn run_scenario(s: &Scenario) -> RunResult {
    try_run_scenario(s).unwrap_or_else(|e| panic!("scenario failed: {e}"))
}

/// Execute a single scenario, reporting unrecoverable injected failures
/// as typed errors.
pub fn try_run_scenario(s: &Scenario) -> Result<RunResult, RuntimeError> {
    s.validate().map_err(RuntimeError::InvalidConfig)?;
    let app = s.build_app();
    let bg = s.bg_script(app.as_ref());
    let fail = s.fail_script(app.as_ref());
    let mut exec = SimExecutor::new(app.as_ref(), s.run_config(), bg).with_failures(fail);
    if let Some(spec) = s.telemetry {
        exec = exec.with_telemetry(spec);
    }
    if let Some(spec) = &s.net_fault {
        exec = exec.with_net_faults(spec.clone());
    }
    let membership = s.membership_script(app.as_ref());
    if !membership.is_empty() {
        exec = exec.with_membership(membership);
    }
    exec.try_run()
}

/// The cost of dirty counters: a telemetry-corrupted run compared against
/// the same scenario over clean telemetry, plus the validation and
/// decision counters that explain where the damage went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryImpact {
    /// Cores-per-window whose raw Eq. 2 value went negative.
    pub clamped_op: usize,
    /// Windows that read stale/dropped counters.
    pub missing_samples: usize,
    /// `Σ t_i > T_lb` violations.
    pub task_overrun: usize,
    /// `t_idle > T_lb` violations.
    pub implausible_idle: usize,
    /// Migrations suppressed by the hysteresis noise-floor gate.
    pub suppressed: usize,
    /// A→B→A oscillations damped.
    pub oscillations: usize,
    /// `O_p` outliers rejected by the robust estimator.
    pub outliers_rejected: usize,
    /// Migrations actually committed.
    pub migrations: usize,
    /// Wall-time penalty of the corruption:
    /// `(T_noisy − T_clean) / T_clean`.
    pub noise_penalty: f64,
}

/// Compare a telemetry-corrupted run against its clean-telemetry twin.
pub fn telemetry_impact(noisy: &RunResult, clean: &RunResult) -> TelemetryImpact {
    TelemetryImpact {
        clamped_op: noisy.telemetry.clamped_op,
        missing_samples: noisy.telemetry.missing_samples,
        task_overrun: noisy.telemetry.task_overrun,
        implausible_idle: noisy.telemetry.implausible_idle,
        suppressed: noisy.decisions.suppressed,
        oscillations: noisy.decisions.oscillations,
        outliers_rejected: noisy.decisions.outliers_rejected,
        migrations: noisy.migrations,
        noise_penalty: noisy.timing_penalty_vs(clean),
    }
}

/// The cost of a degraded interconnect: a network-chaos run compared
/// against the same scenario over a clean network, plus the damage
/// counters that explain where the time went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkImpact {
    /// Message copies destroyed by loss or partitions.
    pub lost_copies: u64,
    /// Ghost retransmissions forced by the reliable transport.
    pub retransmits: u64,
    /// Duplicate deliveries suppressed by sequence numbering.
    pub duplicates_dropped: u64,
    /// Migration data/ACK re-sends beyond the first attempt.
    pub migration_retries: u64,
    /// Migrations aborted on deadline/attempt exhaustion (the chare stayed
    /// on its source core and was re-planned at a later LB step).
    pub migration_aborts: u64,
    /// Scheduled partition time summed over windows, in seconds.
    pub partition_s: f64,
    /// Migrations actually committed.
    pub migrations: usize,
    /// Wall-time penalty of the chaos: `(T_flaky − T_clean) / T_clean`.
    pub net_penalty: f64,
}

/// Compare a network-chaos run against its clean-network twin.
pub fn network_impact(flaky: &RunResult, clean: &RunResult) -> NetworkImpact {
    NetworkImpact {
        lost_copies: flaky.net.lost_copies,
        retransmits: flaky.net.retransmits,
        duplicates_dropped: flaky.net.duplicates_dropped,
        migration_retries: flaky.net.migration_retries,
        migration_aborts: flaky.net.migration_aborts,
        partition_s: flaky.net.partition_us as f64 / 1e6,
        migrations: flaky.migrations,
        net_penalty: flaky.timing_penalty_vs(clean),
    }
}

/// The cost of surviving failures: a failure-injected run compared against
/// the same scenario without its failure schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureImpact {
    /// Cores killed during the run.
    pub failures: usize,
    /// Rollback/replay cycles completed.
    pub recoveries: usize,
    /// Chare-iterations re-executed during replay.
    pub replayed_iters: usize,
    /// Seconds spent in detection, restore and re-balancing pauses.
    pub recovery_time_s: f64,
    /// Wall-time penalty of the failures: `(T_fail − T_clean) / T_clean`.
    pub failure_penalty: f64,
}

/// Compare a failure-injected run against its failure-free twin.
pub fn failure_impact(failed: &RunResult, clean: &RunResult) -> FailureImpact {
    FailureImpact {
        failures: failed.failures,
        recoveries: failed.recoveries,
        replayed_iters: failed.replayed_iters,
        recovery_time_s: failed.recovery_time.as_secs_f64(),
        failure_penalty: failed.timing_penalty_vs(clean),
    }
}

/// The cost of elastic membership churn: an elastic run compared against a
/// *capacity-tracking* clean twin — a hypothetical run doing the measured
/// clean twin's work at a throughput that follows the scenario's capacity
/// trajectory — so losing half the machine for the tail of the run is
/// priced as capacity, not blamed on the evacuation machinery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticityImpact {
    /// Preemption notices delivered.
    pub notices: usize,
    /// Nodes hard-revoked.
    pub nodes_revoked: usize,
    /// Nodes acquired mid-run.
    pub acquisitions: usize,
    /// Acquired nodes that completed warm-up.
    pub warmups: usize,
    /// Node evacuations started on notice.
    pub evacuations_attempted: usize,
    /// Evacuations that emptied the node before its revocation.
    pub evacuations_completed: usize,
    /// Chares drained off doomed nodes before revocation.
    pub chares_drained: usize,
    /// Chares rescued by an in-flight transfer landing after revocation.
    pub chares_rescued: usize,
    /// Chares lost to revocation and restored from checkpoint (rollback).
    pub chares_rolled_back: usize,
    /// Raw wall-time penalty: `(T_elastic − T_clean) / T_clean`.
    pub penalty: f64,
    /// Time-averaged active capacity of the elastic run, as a fraction of
    /// the initial cores ([`Scenario::capacity_avg_frac`]).
    pub capacity_avg_frac: f64,
    /// Capacity-adjusted penalty: `T_elastic / T_tracking − 1`, where
    /// `T_tracking` is the capacity-tracking clean twin's makespan
    /// ([`Scenario::capacity_tracking_makespan`]) — what the churn cost
    /// beyond the capacity it took away.
    pub capacity_adjusted_penalty: f64,
}

/// Compare an elastic-membership run against its static-cluster twin.
pub fn elasticity_impact(
    elastic: &RunResult,
    clean: &RunResult,
    scn: &Scenario,
) -> ElasticityImpact {
    let cap = scn.capacity_avg_frac();
    let t_elastic = elastic.app_time.as_secs_f64();
    let t_clean = clean.app_time.as_secs_f64().max(f64::MIN_POSITIVE);
    let base_s = scn.base_time_estimate(scn.build_app().as_ref());
    let t_tracking = scn.capacity_tracking_makespan(t_clean, base_s).max(f64::MIN_POSITIVE);
    ElasticityImpact {
        notices: elastic.elastic.notices,
        nodes_revoked: elastic.elastic.nodes_revoked,
        acquisitions: elastic.elastic.acquisitions,
        warmups: elastic.elastic.warmups,
        evacuations_attempted: elastic.elastic.evacuations_attempted,
        evacuations_completed: elastic.elastic.evacuations_completed,
        chares_drained: elastic.elastic.chares_drained,
        chares_rescued: elastic.elastic.chares_rescued,
        chares_rolled_back: elastic.elastic.chares_rolled_back,
        penalty: elastic.timing_penalty_vs(clean),
        capacity_avg_frac: cap,
        capacity_adjusted_penalty: t_elastic / t_tracking - 1.0,
    }
}

/// Averaged metrics for one `(app, cores)` cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    /// Application name.
    pub app: String,
    /// Core count.
    pub cores: usize,
    /// App timing penalty without LB (fraction, e.g. 1.0 = +100 %).
    pub penalty_nolb: f64,
    /// App timing penalty with the paper's balancer.
    pub penalty_lb: f64,
    /// Background-job timing penalty without LB.
    pub bg_penalty_nolb: f64,
    /// Background-job timing penalty with LB.
    pub bg_penalty_lb: f64,
    /// Average power per node, interference-free base run (W).
    pub power_base_w: f64,
    /// Average power per node without LB (W).
    pub power_nolb_w: f64,
    /// Average power per node with LB (W).
    pub power_lb_w: f64,
    /// Energy overhead vs base without LB (fraction).
    pub energy_overhead_nolb: f64,
    /// Energy overhead vs base with LB (fraction).
    pub energy_overhead_lb: f64,
    /// Mean migrations per LB run.
    pub migrations: f64,
    /// Mean LB steps per LB run.
    pub lb_steps: f64,
    /// Simulator events processed across every run of the cell (base,
    /// noLB and LB arms, all seeds) — the numerator of the bench
    /// harness's events/sec figure. Includes the pops the fast-forward
    /// engine skipped, so the figure is mode-independent.
    pub sim_events: u64,
    /// Largest pending-event backlog any run of the cell reached.
    pub peak_queue_depth: usize,
    /// Steady-state LB windows macro-stepped across every run of the cell.
    #[serde(default)]
    pub ff_windows: usize,
    /// Event pops those replayed windows skipped (subset of `sim_events`).
    #[serde(default)]
    pub events_skipped: u64,
}

impl EvalPoint {
    /// Fractional reduction of the app timing penalty achieved by LB
    /// (the paper's headline claims ≥ 0.5 here).
    pub fn penalty_reduction(&self) -> f64 {
        if self.penalty_nolb <= 0.0 {
            return 0.0;
        }
        1.0 - self.penalty_lb / self.penalty_nolb
    }

    /// Fractional reduction of the energy overhead achieved by LB.
    pub fn energy_reduction(&self) -> f64 {
        if self.energy_overhead_nolb <= 0.0 {
            return 0.0;
        }
        1.0 - self.energy_overhead_lb / self.energy_overhead_nolb
    }
}

/// One `(app, cores)` cell of the paper matrix, to be evaluated as a
/// base / noLB / LB triple per seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Application name (`jacobi2d`, `wave2d`, `mol3d`, `stencil3d`).
    pub app: String,
    /// Core count.
    pub cores: usize,
    /// Iterations per run (the figures use 100).
    pub iterations: usize,
    /// Registry name of the balanced arm's strategy.
    pub strategy: String,
    /// Fast-forward mode applied to every arm of the cell (default `auto`).
    #[serde(default)]
    pub fast_forward: FastForward,
}

impl CellSpec {
    /// The paper-matrix cell for `app` on `cores` cores.
    pub fn paper(app: &str, cores: usize, iterations: usize, strategy: &str) -> Self {
        CellSpec {
            app: app.to_string(),
            cores,
            iterations,
            strategy: strategy.to_string(),
            fast_forward: FastForward::default(),
        }
    }

    /// The `[base, noLB, LB]` scenario triple for one seed, in the arm
    /// order the reduction consumes them.
    fn arms(&self, seed: u64) -> [Scenario; 3] {
        let mut lb_scn = Scenario::paper(&self.app, self.cores, &self.strategy);
        lb_scn.iterations = self.iterations;
        lb_scn.seed = seed;
        lb_scn.fast_forward = self.fast_forward;
        let mut nolb_scn = Scenario { strategy: "nolb".into(), ..lb_scn.clone() };
        nolb_scn.seed = seed;
        let base_scn = lb_scn.base_of();
        [base_scn, nolb_scn, lb_scn]
    }
}

/// Evaluate many cells at once through the streaming pipeline (see
/// [`crate::pipeline`]): every `(cell, seed, arm)` run is a packet
/// fanned out over `jobs` work-stealing workers, and finished runs are
/// folded per cell in seed order as they stream back. This is the
/// `collect_all` path — it materializes one [`EvalPoint`] per cell (but
/// never more than O(jobs + reorder window) `RunResult`s). Bit-identical
/// to running [`evaluate`] serially per cell, for any `jobs`.
pub fn evaluate_cells(cells: &[CellSpec], seeds: &[u64], jobs: usize) -> Vec<EvalPoint> {
    let mut out = Vec::with_capacity(cells.len());
    evaluate_cells_stream(cells, seeds, jobs, |_ci, point| out.push(point));
    out
}

/// The memory-bounded sweep driver: stream every `(cell, seed, arm)` run
/// through the pipeline and hand each finished cell's [`EvalPoint`] to
/// `consume(cell_index, point)` **in cell order**. Scenarios are
/// generated lazily and at most `jobs + reorder_window` runs are alive
/// at once, so arbitrarily large cell lists sweep at flat memory — the
/// consumer decides what to keep (e.g. fold into a
/// [`crate::stream_agg::StreamSummary`]).
///
/// The per-cell fold is exactly the serial code's fold (same push order,
/// same [`mean`] calls), so the emitted points are bit-identical to the
/// serial path for any worker count.
pub fn evaluate_cells_stream<C>(
    cells: &[CellSpec],
    seeds: &[u64],
    jobs: usize,
    mut consume: C,
) -> PipelineStats
where
    C: FnMut(usize, EvalPoint),
{
    assert!(!seeds.is_empty());
    let cfg = PipelineConfig::new(jobs);
    let runs = cells
        .iter()
        .flat_map(|cell| seeds.iter().flat_map(move |&seed| cell.arms(seed)));

    let per_cell = seeds.len() * 3;
    let mut reducer: Option<CellReducer> = None;
    let stats = pipeline_stream(&cfg, runs, |scn| run_scenario(&scn), |seq, result| {
        let ci = seq / per_cell;
        let r = reducer.get_or_insert_with(|| CellReducer::new(cells[ci].clone()));
        r.push(result);
        if seq % per_cell == per_cell - 1 {
            let done = reducer.take().expect("reducer exists at cell boundary");
            consume(ci, done.finalize());
        }
    });
    debug_assert!(reducer.is_none(), "every cell must close on a triple boundary");
    stats
}

/// Incremental per-cell fold: consumes one [`RunResult`] at a time in
/// `[base, noLB, LB] × seed` submission order and averages into an
/// [`EvalPoint`]. The push sequence and the final [`mean`] calls are
/// exactly the batch code's fold, so the averages are reproducible to
/// the last bit while only the current triple's runs stay alive.
struct CellReducer {
    cell: CellSpec,
    /// Arms of the in-progress triple ([base, noLB]; LB folds eagerly).
    base: Option<RunResult>,
    nolb: Option<RunResult>,
    penalty_nolb: Vec<f64>,
    penalty_lb: Vec<f64>,
    bg_nolb: Vec<f64>,
    bg_lb: Vec<f64>,
    power_base: Vec<f64>,
    power_nolb: Vec<f64>,
    power_lb: Vec<f64>,
    energy_nolb: Vec<f64>,
    energy_lb: Vec<f64>,
    migrations: Vec<f64>,
    lb_steps: Vec<f64>,
    sim_events: u64,
    peak_queue_depth: usize,
    ff_windows: usize,
    events_skipped: u64,
}

impl CellReducer {
    fn new(cell: CellSpec) -> Self {
        CellReducer {
            cell,
            base: None,
            nolb: None,
            penalty_nolb: Vec::new(),
            penalty_lb: Vec::new(),
            bg_nolb: Vec::new(),
            bg_lb: Vec::new(),
            power_base: Vec::new(),
            power_nolb: Vec::new(),
            power_lb: Vec::new(),
            energy_nolb: Vec::new(),
            energy_lb: Vec::new(),
            migrations: Vec::new(),
            lb_steps: Vec::new(),
            sim_events: 0,
            peak_queue_depth: 0,
            ff_windows: 0,
            events_skipped: 0,
        }
    }

    /// Feed the next run of this cell (submission order: base, noLB, LB
    /// per seed). The third arm completes a triple and folds it.
    fn push(&mut self, run: RunResult) {
        match (&self.base, &self.nolb) {
            (None, _) => self.base = Some(run),
            (Some(_), None) => self.nolb = Some(run),
            (Some(_), Some(_)) => {
                let base = self.base.take().expect("base arm present");
                let nolb = self.nolb.take().expect("noLB arm present");
                let lb = run;
                self.penalty_nolb.push(nolb.timing_penalty_vs(&base));
                self.penalty_lb.push(lb.timing_penalty_vs(&base));
                if let Some(p) = nolb.bg_penalties.get(&0) {
                    self.bg_nolb.push(*p);
                }
                if let Some(p) = lb.bg_penalties.get(&0) {
                    self.bg_lb.push(*p);
                }
                self.power_base.push(base.energy.avg_power_per_node_w);
                self.power_nolb.push(nolb.energy.avg_power_per_node_w);
                self.power_lb.push(lb.energy.avg_power_per_node_w);
                self.energy_nolb.push(nolb.energy_overhead_vs(&base));
                self.energy_lb.push(lb.energy_overhead_vs(&base));
                self.migrations.push(lb.migrations as f64);
                self.lb_steps.push(lb.lb_steps as f64);
                for r in [&base, &nolb, &lb] {
                    self.sim_events += r.sim_events;
                    self.peak_queue_depth = self.peak_queue_depth.max(r.peak_queue_depth);
                    self.ff_windows += r.ff_windows;
                    self.events_skipped += r.events_skipped;
                }
            }
        }
    }

    fn finalize(self) -> EvalPoint {
        assert!(
            self.base.is_none() && self.nolb.is_none(),
            "cell finalized mid-triple"
        );
        EvalPoint {
            app: self.cell.app.clone(),
            cores: self.cell.cores,
            penalty_nolb: mean(&self.penalty_nolb),
            penalty_lb: mean(&self.penalty_lb),
            bg_penalty_nolb: mean(&self.bg_nolb),
            bg_penalty_lb: mean(&self.bg_lb),
            power_base_w: mean(&self.power_base),
            power_nolb_w: mean(&self.power_nolb),
            power_lb_w: mean(&self.power_lb),
            energy_overhead_nolb: mean(&self.energy_nolb),
            energy_overhead_lb: mean(&self.energy_lb),
            migrations: mean(&self.migrations),
            lb_steps: mean(&self.lb_steps),
            sim_events: self.sim_events,
            peak_queue_depth: self.peak_queue_depth,
            ff_windows: self.ff_windows,
            events_skipped: self.events_skipped,
        }
    }
}

/// Run the base / noLB / LB triple for one cell, averaged over `seeds`.
///
/// `lb_strategy` is the balanced arm's registry name (the paper's scheme
/// is `cloudrefine`; ablations swap in others). `iterations` scales run
/// length (the figures use 100). Runs are spread across
/// [`crate::parallel::default_jobs`] workers (`CLOUDLB_JOBS` / `--jobs`);
/// the result is bit-identical for any worker count.
pub fn evaluate(
    app: &str,
    cores: usize,
    iterations: usize,
    lb_strategy: &str,
    seeds: &[u64],
) -> EvalPoint {
    evaluate_jobs(app, cores, iterations, lb_strategy, seeds, default_jobs())
}

/// [`evaluate`] with an explicit worker count.
pub fn evaluate_jobs(
    app: &str,
    cores: usize,
    iterations: usize,
    lb_strategy: &str,
    seeds: &[u64],
    jobs: usize,
) -> EvalPoint {
    let cell = CellSpec::paper(app, cores, iterations, lb_strategy);
    evaluate_cells(std::slice::from_ref(&cell), seeds, jobs)
        .pop()
        .expect("one cell in, one point out")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small but end-to-end cell: Jacobi2D on 4 cores over the paper's
    /// 100-iteration horizon (shorter runs leave the pre-first-LB window
    /// dominating the average). This is the paper's whole story in one
    /// assertion set, so it is worth its couple of seconds.
    #[test]
    fn jacobi_4core_cell_reproduces_paper_shape() {
        let p = evaluate("jacobi2d", 4, 100, "cloudrefine", &[1]);
        // Interference with fair sharing roughly doubles the noLB run.
        assert!(p.penalty_nolb > 0.6, "noLB penalty {:.2}", p.penalty_nolb);
        // 4 cores is the hardest cell (the capacity bound is 4/3, and
        // Algorithm 1 stops refining once interfered cores stop looking
        // heavy): the paper's own Fig. 2 is worst here too. Require a 40 %
        // cut at P = 4; the ≥ 50 % headline is asserted at P ≥ 8 by the
        // claim_headline integration test.
        assert!(
            p.penalty_reduction() >= 0.4,
            "reduction {:.2} (noLB {:.2} → LB {:.2})",
            p.penalty_reduction(),
            p.penalty_nolb,
            p.penalty_lb
        );
        // LB runs hotter but uses less energy (Fig. 4 shape).
        assert!(p.power_lb_w > p.power_nolb_w, "{:.1} vs {:.1}", p.power_lb_w, p.power_nolb_w);
        assert!(p.energy_overhead_lb < p.energy_overhead_nolb);
        assert!(p.migrations > 0.0);
    }

    #[test]
    fn cells_are_identical_with_and_without_fast_forward() {
        let mut on = CellSpec::paper("jacobi2d", 4, 40, "cloudrefine");
        on.fast_forward = FastForward::On;
        let mut off = on.clone();
        off.fast_forward = FastForward::Off;
        let mut points = evaluate_cells(&[on, off], &[1, 2], 2);
        let p_off = points.pop().unwrap();
        let p_on = points.pop().unwrap();
        assert!(p_on.ff_windows > 0, "the base arm's clean windows must replay");
        assert!(p_on.events_skipped > 0);
        assert_eq!(p_off.ff_windows, 0);
        let scrub = |mut p: EvalPoint| {
            p.ff_windows = 0;
            p.events_skipped = 0;
            p
        };
        assert_eq!(scrub(p_on), scrub(p_off), "macro-stepping must not move any metric");
    }

    #[test]
    fn invalid_scenarios_are_typed_errors_not_panics() {
        // Oracle-discovered panics converted to RuntimeError::InvalidConfig:
        // each of these used to unwind somewhere inside the runtime stack.
        let ok = Scenario::paper("jacobi2d", 8, "cloudrefine");
        let bad = [
            Scenario { app: "linpack".into(), ..ok.clone() },
            Scenario { strategy: "wat".into(), ..ok.clone() },
            Scenario { pe_speeds: vec![1.0; 3], ..ok.clone() },
            Scenario { cores: 6, ..ok.clone() },
        ];
        for s in bad {
            match try_run_scenario(&s) {
                Err(cloudlb_runtime::RuntimeError::InvalidConfig(_)) => {}
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn evaluate_is_deterministic_per_seed() {
        let a = evaluate("wave2d", 4, 20, "cloudrefine", &[7]);
        let b = evaluate("wave2d", 4, 20, "cloudrefine", &[7]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "!seeds.is_empty()")]
    fn evaluate_requires_seeds() {
        evaluate("jacobi2d", 4, 10, "cloudrefine", &[]);
    }

    #[test]
    fn noisy_cloud_scenario_runs_and_reports_impact() {
        let mut noisy = Scenario::noisy_cloud("wave2d", 4, "robustcloudrefine");
        noisy.iterations = 30;
        let mut clean = noisy.clone();
        clean.telemetry = None;
        let n = run_scenario(&noisy);
        let c = run_scenario(&clean);
        let impact = telemetry_impact(&n, &c);
        assert!(
            impact.clamped_op
                + impact.missing_samples
                + impact.task_overrun
                + impact.implausible_idle
                > 0,
            "corruption must trip the validators: {impact:?}"
        );
        assert!(n.iter_times.len() == 30, "ground truth still completes");
    }

    #[test]
    fn flaky_cloud_scenario_runs_and_reports_impact() {
        let mut flaky = Scenario::flaky_cloud("jacobi2d", 8, "cloudrefine");
        flaky.iterations = 30;
        let mut clean = flaky.clone();
        clean.net_fault = None;
        let f = run_scenario(&flaky);
        let c = run_scenario(&clean);
        assert_eq!(f.iter_times.len(), 30, "chaos delays the app but never loses work");
        let impact = network_impact(&f, &c);
        assert!(
            impact.lost_copies + impact.retransmits + impact.duplicates_dropped > 0,
            "flaky_cloud must damage some traffic: {impact:?}"
        );
        assert!(impact.partition_s > 0.0);
        // Chare conservation under chaos: same multiset of cores hosting
        // every chare exactly once.
        assert_eq!(f.final_mapping.len(), c.final_mapping.len());
        assert!(f.final_mapping.iter().all(|&p| p < 8));
    }

    #[test]
    fn spot_storm_scenario_evacuates_and_reports_impact() {
        let mut storm = Scenario::spot_storm("jacobi2d", 8, "cloudrefine");
        storm.iterations = 30;
        let mut clean = storm.clone();
        clean.membership = None;
        let e = run_scenario(&storm);
        let c = run_scenario(&clean);
        assert_eq!(e.iter_times.len(), 30, "the storm is survivable");
        let impact = elasticity_impact(&e, &c, &storm);
        assert!(impact.notices >= 1, "{impact:?}");
        assert!(impact.nodes_revoked >= 1);
        assert_eq!(impact.acquisitions, 1);
        assert_eq!(impact.warmups, 1);
        assert!(impact.evacuations_attempted >= 1);
        assert_eq!(impact.chares_rolled_back, 0, "notice lead covers the drain");
        assert!(impact.capacity_avg_frac > 0.0 && impact.capacity_avg_frac <= 1.5);
        assert!(impact.capacity_adjusted_penalty <= impact.penalty);
        // The clean twin saw no churn at all.
        assert_eq!(c.elastic, cloudlb_runtime::ElasticStats::default());
    }

    #[test]
    fn autoscale_scenario_uses_acquired_nodes() {
        let mut scn = Scenario::autoscale("jacobi2d", 8, "cloudrefine");
        scn.iterations = 40;
        let r = run_scenario(&scn);
        assert_eq!(r.iter_times.len(), 40);
        assert_eq!(r.elastic.acquisitions, 2);
        assert_eq!(r.elastic.warmups, 2);
        // Some chare ends up on capacity that attached mid-run.
        assert!(
            r.final_mapping.iter().any(|&p| p >= 8),
            "acquired cores must take work: {:?}",
            r.final_mapping
        );
    }

    #[test]
    fn failure_drill_survives_and_reports_impact() {
        let mut drill = Scenario::failure_drill("wave2d", 4, "cloudrefine");
        drill.iterations = 30;
        let mut clean = drill.clone();
        clean.fail.clear();
        let failed = try_run_scenario(&drill).expect("drill must be recoverable");
        let base = run_scenario(&clean);
        assert_eq!(failed.iter_times.len(), 30);
        let impact = failure_impact(&failed, &base);
        assert_eq!(impact.failures, 1);
        assert_eq!(impact.recoveries, 1);
        assert!(impact.replayed_iters > 0);
        assert!(impact.recovery_time_s > 0.0);
        assert!(impact.failure_penalty > 0.0, "losing a core must cost time");
        // The dead core hosts nothing at the end.
        assert!(failed.final_mapping.iter().all(|&p| p != 3));
    }
}
