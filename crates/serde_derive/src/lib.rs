//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io `serde_derive` is unavailable in this build
//! environment, so this proc-macro crate derives the vendored `serde`
//! facade's value-model traits (`Serialize` → `to_value`, `Deserialize` →
//! `from_value`) for the shapes this workspace actually uses:
//!
//! * named-field structs (fields may be private; `#[serde(default)]` on a
//!   field falls back to `Default::default()` when the key is absent);
//! * tuple structs (arity 1 serializes transparently like serde newtypes,
//!   arity ≥ 2 as an array);
//! * enums with unit, named-field and tuple variants, externally tagged
//!   exactly like stock serde (`"Unit"`, `{"Var":{..}}`, `{"Var":[..]}`).
//!
//! Generic types are not supported (none in this workspace derive serde).
//! Parsing walks the token stream directly; code is emitted as text and
//! re-parsed, which keeps the crate dependency-free (no syn/quote).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A single named field.
struct Field {
    name: String,
    default: FieldDefault,
}

/// How an absent key is filled in during deserialization.
#[derive(Clone, PartialEq)]
enum FieldDefault {
    /// No `#[serde(default)]`: the key is required.
    Required,
    /// `#[serde(default)]`: fall back to `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]`: fall back to calling `path()`. The
    /// stub used to silently treat this as the trait form, which turned
    /// e.g. `RunConfig::fail_detect_s` (default 0.05 s) into 0.0 on any
    /// scenario/config JSON that omitted the key.
    Path(String),
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

/// The parsed shape of the deriving type.
enum Shape {
    Struct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

/// Parse an attribute group (the `[...]` after `#`): `serde(default)` or
/// `serde(default = "path")`. Any *other* serde attribute is a hard error —
/// the stub must never silently drop semantics it does not implement
/// (`rename_all`, `skip`, …), because that corrupts round-trips without a
/// compile-time trace.
fn attr_serde_default(group: &proc_macro::Group) -> FieldDefault {
    let mut toks = group.stream().into_iter();
    let (serde_kw, inner) = match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(inner))) => (i.to_string(), inner),
        _ => return FieldDefault::Required,
    };
    if serde_kw != "serde" {
        return FieldDefault::Required;
    }
    let mut inner_toks = inner.stream().into_iter();
    match inner_toks.next() {
        Some(TokenTree::Ident(d)) if d.to_string() == "default" => match inner_toks.next() {
            None => FieldDefault::Trait,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => match inner_toks.next() {
                Some(TokenTree::Literal(lit)) => {
                    let s = lit.to_string();
                    let path = s.trim_matches('"').to_string();
                    assert!(
                        !path.is_empty() && path != s,
                        "serde stub: `default = ...` expects a quoted fn path, got {s}"
                    );
                    FieldDefault::Path(path)
                }
                t => panic!("serde stub: `default =` expects a string literal, got {t:?}"),
            },
            Some(t) => panic!("serde stub: unsupported tokens after `default`: {t}"),
        },
        Some(other) => panic!(
            "serde stub: unsupported serde attribute `{other}` (only `default` and \
             `default = \"path\"` are implemented)"
        ),
        None => FieldDefault::Required,
    }
}

/// Consume leading attributes from `toks`, reporting the field's default
/// policy if any attribute was a `#[serde(default...)]`.
fn skip_attrs(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> FieldDefault {
    let mut default = FieldDefault::Required;
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    let d = attr_serde_default(&g);
                    if d != FieldDefault::Required {
                        default = d;
                    }
                }
            }
            _ => return default,
        }
    }
}

/// Consume an optional `pub` / `pub(...)` visibility.
fn skip_vis(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(i)) = toks.peek() {
        if i.to_string() == "pub" {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

/// Skip a field's type: everything up to (not including) a comma at
/// angle-bracket depth zero, or the end of the group.
fn skip_type(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i32;
    while let Some(t) = toks.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        toks.next();
    }
}

/// Parse the `{ ... }` of a named-field struct or struct variant.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut toks = group.stream().into_iter().peekable();
    loop {
        let default = skip_attrs(&mut toks);
        skip_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(name)) => {
                // consume `:`
                let colon = toks.next();
                assert!(
                    matches!(&colon, Some(TokenTree::Punct(p)) if p.as_char() == ':'),
                    "expected `:` after field `{name}`"
                );
                skip_type(&mut toks);
                fields.push(Field { name: name.to_string(), default });
                // consume trailing `,` if present
                if let Some(TokenTree::Punct(p)) = toks.peek() {
                    if p.as_char() == ',' {
                        toks.next();
                    }
                }
            }
            None => return fields,
            Some(t) => panic!("unexpected token in field list: {t}"),
        }
    }
}

/// Count the fields of a tuple struct / tuple variant `( ... )`.
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for t in group.stream() {
        any = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => commas += 1,
            _ => {}
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

/// Parse the `{ ... }` of an enum into variants.
fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = group.stream().into_iter().peekable();
    loop {
        skip_attrs(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(name)) => {
                let kind = match toks.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g);
                        toks.next();
                        VariantKind::Named(fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = tuple_arity(g);
                        toks.next();
                        VariantKind::Tuple(arity)
                    }
                    _ => VariantKind::Unit,
                };
                variants.push(Variant { name: name.to_string(), kind });
                if let Some(TokenTree::Punct(p)) = toks.peek() {
                    if p.as_char() == ',' {
                        toks.next();
                    }
                }
            }
            None => return variants,
            Some(t) => panic!("unexpected token in enum body: {t}"),
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        t => panic!("expected `struct` or `enum`, got {t:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        t => panic!("expected type name, got {t:?}"),
    };
    // Reject generics: this stub derives concrete impls only.
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive does not support generic type `{name}`");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(&g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(&g))
            }
            t => panic!("unsupported struct body for `{name}`: {t:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(&g))
            }
            t => panic!("unsupported enum body for `{name}`: {t:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };
    Input { name, shape }
}

// --------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let mut s = String::from(
                "let mut __o: Vec<(String, serde::Value)> = Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__o.push((\"{0}\".to_string(), serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("serde::Value::Object(__o)");
            s
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{0} => serde::Value::Str(\"{0}\".to_string()),\n",
                        v.name
                    )),
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "__f.push((\"{0}\".to_string(), serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __f: Vec<(String, serde::Value)> = Vec::new();\n\
                             {pushes}\
                             serde::Value::Object(vec![(\"{v}\".to_string(), serde::Value::Object(__f))])\n\
                             }}\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(__a0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => serde::Value::Object(vec![(\"{v}\".to_string(), {inner})]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_named_ctor(path: &str, ty_label: &str, fields: &[Field], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| match &f.default {
            FieldDefault::Trait => {
                format!("{0}: serde::de_field_default({src}, \"{ty_label}\", \"{0}\")?", f.name)
            }
            FieldDefault::Path(path) => format!(
                "{0}: serde::de_field_default_with({src}, \"{ty_label}\", \"{0}\", {path})?",
                f.name
            ),
            FieldDefault::Required => {
                format!("{0}: serde::de_field({src}, \"{ty_label}\", \"{0}\")?", f.name)
            }
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            format!("Ok({})", gen_named_ctor(name, name, fields, "__v"))
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::de_elem(__v, \"{name}\", {i})?"))
                .collect();
            format!("Ok({name}({}))", elems.join(", "))
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{0}\" => Ok({name}::{0}),\n",
                        v.name
                    )),
                    VariantKind::Named(fields) => {
                        let path = format!("{name}::{}", v.name);
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => Ok({ctor}),\n",
                            v = v.name,
                            ctor = gen_named_ctor(&path, &path, fields, "__inner"),
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let args = if *n == 1 {
                            "serde::Deserialize::from_value(__inner)?".to_string()
                        } else {
                            (0..*n)
                                .map(|i| format!("serde::de_elem(__inner, \"{name}\", {i})?"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        };
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => Ok({name}::{v}({args})),\n",
                            v = v.name,
                        ));
                    }
                }
            }
            let str_arm = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "serde::Value::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __other => Err(serde::Error::new(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                     }},\n"
                )
            };
            let obj_arm = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                     let (__tag, __inner) = &__m[0];\n\
                     match __tag.as_str() {{\n\
                     {tagged_arms}\
                     __other => Err(serde::Error::new(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                     }}\n\
                     }},\n"
                )
            };
            format!(
                "match __v {{\n\
                 {str_arm}\
                 {obj_arm}\
                 _ => Err(serde::Error::new(\"{name}: expected string or single-key object\".to_string())),\n\
                 }}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
