//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serde-compatible surface: `Serialize`/`Deserialize` traits
//! over an in-memory [`Value`] tree, plus the derive macros re-exported
//! from the sibling `serde_derive` stub. `serde_json` (also vendored)
//! renders and parses `Value` as JSON text.
//!
//! The data model is deliberately tiny — exactly what this workspace's
//! types need: null, bool, integers, floats, strings, arrays, and
//! insertion-ordered objects. Externally tagged enums, transparent
//! newtypes, and `#[serde(default)]` match stock serde's wire format, so
//! swapping the real crates back in would not change any JSON this
//! repository produces.

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON-like value: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (JSON number without sign or fraction).
    U64(u64),
    /// Negative integer (JSON number with sign, no fraction).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Numeric view of the value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned view of the value, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// `value["key"]` indexing; missing keys yield `Value::Null` like serde_json.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, ix: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(ix).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Wrap a message.
    pub fn new(msg: String) -> Self {
        Error { msg }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ----------------------------------------------------- derive-codegen aids

/// Look up a required struct field (derive-generated code calls this).
pub fn de_field<T: Deserialize>(v: &Value, ty: &str, field: &str) -> Result<T, Error> {
    match v.get(field) {
        Some(fv) => T::from_value(fv).map_err(|e| Error::new(format!("{ty}.{field}: {e}"))),
        None if matches!(v, Value::Object(_)) => {
            Err(Error::new(format!("{ty}: missing field `{field}`")))
        }
        None => Err(Error::new(format!("{ty}: expected object"))),
    }
}

/// Look up a `#[serde(default)]` struct field: absent keys yield
/// `Default::default()`.
pub fn de_field_default<T: Deserialize + Default>(
    v: &Value,
    ty: &str,
    field: &str,
) -> Result<T, Error> {
    if !matches!(v, Value::Object(_)) {
        return Err(Error::new(format!("{ty}: expected object")));
    }
    match v.get(field) {
        Some(fv) => T::from_value(fv).map_err(|e| Error::new(format!("{ty}.{field}: {e}"))),
        None => Ok(T::default()),
    }
}

/// Look up a `#[serde(default = "path")]` struct field: absent keys yield
/// `path()` (derive-generated code calls this).
pub fn de_field_default_with<T: Deserialize>(
    v: &Value,
    ty: &str,
    field: &str,
    default: impl FnOnce() -> T,
) -> Result<T, Error> {
    if !matches!(v, Value::Object(_)) {
        return Err(Error::new(format!("{ty}: expected object")));
    }
    match v.get(field) {
        Some(fv) => T::from_value(fv).map_err(|e| Error::new(format!("{ty}.{field}: {e}"))),
        None => Ok(default()),
    }
}

/// Index into a serialized tuple (derive-generated code calls this).
pub fn de_elem<T: Deserialize>(v: &Value, ty: &str, ix: usize) -> Result<T, Error> {
    match v {
        Value::Array(a) => match a.get(ix) {
            Some(ev) => T::from_value(ev).map_err(|e| Error::new(format!("{ty}[{ix}]: {e}"))),
            None => Err(Error::new(format!("{ty}: missing tuple element {ix}"))),
        },
        _ => Err(Error::new(format!("{ty}: expected array"))),
    }
}

// -------------------------------------------------------- primitive impls

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::F64(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as $t),
                    _ => Err(Error::new(format!("expected {}", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::F64(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(Error::new(format!("expected {}", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::new("expected number".to_string()))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|n| n as f32).ok_or_else(|| Error::new("expected number".to_string()))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool".to_string())),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string".to_string())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::new("expected array".to_string())),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) if a.len() == 2 => {
                Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
            }
            _ => Err(Error::new("expected 2-element array".to_string())),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) if a.len() == 3 => {
                Ok((A::from_value(&a[0])?, B::from_value(&a[1])?, C::from_value(&a[2])?))
            }
            _ => Err(Error::new("expected 3-element array".to_string())),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
