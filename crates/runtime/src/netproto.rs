//! Reliable migration transfers over a faulty network.
//!
//! [`crate::migration::transfer_time`] prices a plan against the *clean*
//! wire model and assumes every transfer succeeds — fire and forget. On a
//! flaky network that assumption breaks: a chare's state can be lost
//! mid-transfer, duplicated, or marooned behind a partition. This module
//! runs each migration through an explicit ARQ protocol instead:
//!
//! * every transfer carries a sequence number; the destination suppresses
//!   duplicate data copies idempotently and re-ACKs them;
//! * the source retransmits on a per-transfer RTO (initialized from the
//!   transfer's expected round trip, doubled per retry, capped) until an
//!   ACK arrives;
//! * a transfer that exhausts its attempt budget or its wall-clock
//!   deadline is **aborted**: the chare stays on the source, the mapping
//!   stays consistent, and the executor reports the chare through
//!   `LbStats::failed_tasks` so the next LB step re-plans around it.
//!
//! As in `transfer_time`, transfers out of one source core serialize on
//! that core's NIC while different sources proceed in parallel; the LB
//! step ends when the slowest source resolves (commit or abort).

use cloudlb_balance::Migration;
use cloudlb_sim::netfault::{FaultyNetwork, SendOutcome};
use cloudlb_sim::{Cluster, Dur, Time};
use serde::{Deserialize, Serialize};

/// Tunables of the reliable migration protocol. Defaults are generous
/// enough that a clean network never aborts, while a partition longer
/// than ~the deadline reliably does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationProto {
    /// Data-send attempts per migration before giving up (≥ 1).
    #[serde(default)]
    pub max_attempts: u32,
    /// Per-migration wall-clock deadline, seconds, measured from the
    /// instant the source NIC starts this transfer.
    #[serde(default)]
    pub deadline_s: f64,
    /// Size of an ACK message on the wire.
    #[serde(default)]
    pub ack_bytes: usize,
}

impl Default for MigrationProto {
    fn default() -> Self {
        MigrationProto { max_attempts: 8, deadline_s: 0.5, ack_bytes: 64 }
    }
}

impl MigrationProto {
    /// Zero-valued fields (from a sparse config file) fall back to the
    /// defaults; explicit values are clamped to sane floors.
    pub fn normalized(self) -> Self {
        let d = MigrationProto::default();
        MigrationProto {
            max_attempts: if self.max_attempts == 0 { d.max_attempts } else { self.max_attempts },
            deadline_s: if self.deadline_s <= 0.0 { d.deadline_s } else { self.deadline_s },
            ack_bytes: if self.ack_bytes == 0 { d.ack_bytes } else { self.ack_bytes },
        }
    }
}

/// How a plan's transfers resolved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransferOutcome {
    /// Migrations whose state transfer was ACKed — safe to commit.
    pub committed: Vec<Migration>,
    /// Migrations aborted on timeout/attempt exhaustion — the chare stays
    /// on its source core.
    pub aborted: Vec<Migration>,
    /// Instant the slowest source NIC went idle again.
    pub done_at: Time,
}

/// Run every transfer in `plan` through the ARQ protocol on `ch`,
/// starting at `now`. Updates the channel's `migration_retries`,
/// `migration_aborts` and `duplicates_dropped` counters.
pub fn run_transfers(
    plan: &[Migration],
    ch: &mut FaultyNetwork,
    cluster: &Cluster,
    proto: &MigrationProto,
    now: Time,
    state_bytes: impl Fn(usize) -> usize,
    num_pes: usize,
) -> TransferOutcome {
    let proto = proto.normalized();
    let mut nic_free = vec![now; num_pes];
    let mut out = TransferOutcome { done_at: now, ..TransferOutcome::default() };
    for m in plan {
        let bytes = state_bytes(m.task.0 as usize);
        let start = nic_free[m.from];
        if cluster.same_node(m.from, m.to) {
            // In-process handoff over shared memory: nothing to lose.
            let end = start + ch.model().migration_delay(bytes, true);
            nic_free[m.from] = end;
            out.done_at = out.done_at.max(end);
            out.committed.push(*m);
            continue;
        }
        let (from_node, to_node) = (cluster.node_of(m.from), cluster.node_of(m.to));
        let deadline = start + Dur::from_secs_f64(proto.deadline_s);
        let mut send = start;
        let mut rto = ch.rto_for(bytes);
        let mut attempts = 0u32;
        let mut data_landed = false;
        let mut acked: Option<Time> = None;
        let mut gave_up = start;
        loop {
            attempts += 1;
            if let SendOutcome::Delivered { arrival } = ch.try_send(send, bytes, from_node, to_node)
            {
                if data_landed {
                    // A retransmitted copy of a seq the destination
                    // already holds: suppressed, but still re-ACKed.
                    ch.stats.duplicates_dropped += 1;
                }
                data_landed = true;
                if let SendOutcome::Delivered { arrival: ack } =
                    ch.try_send(arrival, proto.ack_bytes, to_node, from_node)
                {
                    acked = Some(ack);
                    break;
                }
            }
            let next = send + rto;
            gave_up = next.min(deadline);
            if attempts >= proto.max_attempts || next > deadline {
                break;
            }
            rto = ch.next_rto(rto);
            send = next;
        }
        ch.stats.migration_retries += u64::from(attempts - 1);
        match acked {
            Some(end) => {
                nic_free[m.from] = end;
                out.done_at = out.done_at.max(end);
                out.committed.push(*m);
            }
            None => {
                ch.stats.migration_aborts += 1;
                nic_free[m.from] = gave_up;
                out.done_at = out.done_at.max(gave_up);
                out.aborted.push(*m);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudlb_balance::TaskId;
    use cloudlb_sim::netfault::{NetFaultSpec, PartitionScope, PartitionWindow};
    use cloudlb_sim::{ClusterConfig, NetworkModel};

    fn mig(task: u64, from: usize, to: usize) -> Migration {
        Migration { task: TaskId(task), from, to }
    }

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig { nodes: 2, cores_per_node: 2, trace: false })
    }

    fn channel(spec: NetFaultSpec, seed: u64) -> FaultyNetwork {
        FaultyNetwork::new(spec, NetworkModel::default(), seed, Dur::from_secs_f64(1.0))
    }

    #[test]
    fn clean_network_commits_everything_without_retries() {
        let mut ch = channel(NetFaultSpec::none(), 1);
        let plan = vec![mig(0, 0, 2), mig(1, 1, 3), mig(2, 0, 1)];
        let out =
            run_transfers(&plan, &mut ch, &cluster(), &MigrationProto::default(), Time::ZERO, |_| 10_000, 4);
        assert_eq!(out.committed, plan);
        assert!(out.aborted.is_empty());
        assert_eq!(ch.stats.migration_retries, 0);
        assert_eq!(ch.stats.migration_aborts, 0);
        assert!(out.done_at > Time::ZERO);
    }

    #[test]
    fn transfers_serialize_per_source_nic() {
        let mut ch = channel(NetFaultSpec::none(), 1);
        // Two cross-node transfers out of core 0, one out of core 1.
        let plan = vec![mig(0, 0, 2), mig(1, 0, 3), mig(2, 1, 2)];
        let out =
            run_transfers(&plan, &mut ch, &cluster(), &MigrationProto::default(), Time::ZERO, |_| 1_000_000, 4);
        let one_way = NetworkModel::default().delay(1_000_000, false);
        // Core 0 pays two serialized data trips (plus two ACK trips).
        assert!(out.done_at.since(Time::ZERO) > one_way + one_way);
    }

    #[test]
    fn loss_retries_then_commits() {
        let spec = NetFaultSpec { loss: 0.5, ..NetFaultSpec::none() };
        let mut ch = channel(spec, 9);
        let plan: Vec<Migration> = (0..16).map(|k| mig(k, 0, 2)).collect();
        let out =
            run_transfers(&plan, &mut ch, &cluster(), &MigrationProto::default(), Time::ZERO, |_| 4_096, 4);
        assert!(ch.stats.migration_retries > 0, "50% loss must force retries");
        assert_eq!(out.committed.len() + out.aborted.len(), plan.len());
        assert!(!out.committed.is_empty());
    }

    #[test]
    fn partition_aborts_and_the_chare_stays_home() {
        let spec = NetFaultSpec {
            partitions: vec![PartitionWindow {
                scope: PartitionScope::Rack,
                from_frac: 0.0,
                to_frac: 1.0,
            }],
            ..NetFaultSpec::none()
        };
        let mut ch = channel(spec, 3);
        let plan = vec![mig(0, 0, 2), mig(1, 1, 0)];
        let out =
            run_transfers(&plan, &mut ch, &cluster(), &MigrationProto::default(), Time::ZERO, |_| 10_000, 4);
        // mig(1, 1, 0) is intra-node (cores 0 and 1 share node 0) and
        // commits; the cross-node one is marooned and aborts.
        assert_eq!(out.aborted, vec![mig(0, 0, 2)]);
        assert_eq!(out.committed, vec![mig(1, 1, 0)]);
        assert_eq!(ch.stats.migration_aborts, 1);
        // The abort resolves by the deadline, not at the partition's heal.
        let deadline = Time::ZERO + Dur::from_secs_f64(MigrationProto::default().deadline_s);
        assert!(out.done_at <= deadline);
    }

    #[test]
    fn outcome_is_deterministic_per_seed() {
        let run = |seed| {
            let mut ch = channel(NetFaultSpec::flaky_cloud(), seed);
            let plan: Vec<Migration> = (0..8).map(|k| mig(k, (k as usize) % 4, (k as usize + 2) % 4)).collect();
            let out = run_transfers(
                &plan,
                &mut ch,
                &cluster(),
                &MigrationProto::default(),
                Time::ZERO,
                |_| 65_536,
                4,
            );
            (out, ch.stats)
        };
        assert_eq!(run(5), run(5));
        // Different seeds draw different jitter, so at least the timing
        // (and usually the damage counters too) must diverge.
        assert_ne!(run(5), run(6), "different seeds should see different outcomes");
    }

    #[test]
    fn sparse_proto_config_normalizes_to_defaults() {
        let zeroed = MigrationProto { max_attempts: 0, deadline_s: 0.0, ack_bytes: 0 };
        assert_eq!(zeroed.normalized(), MigrationProto::default());
        let custom = MigrationProto { max_attempts: 3, deadline_s: 0.1, ack_bytes: 128 };
        assert_eq!(custom.normalized(), custom);
    }
}
