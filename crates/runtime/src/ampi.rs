//! AMPI-style veneer: MPI-shaped programs on the migratable runtime.
//!
//! Paper §III: "MPI programs can leverage the capabilities of Charm++
//! runtime system using the adaptive implementation of MPI (AMPI) where
//! user specifies large number of MPI processes implemented as user-level
//! threads by the runtime" — i.e. over-decompose into many ranks, let the
//! runtime migrate them.
//!
//! This module is the equivalent veneer for `cloudlb`: an
//! [`AmpiProgram`] describes a bulk-synchronous MPI program (`size` ranks,
//! a static peer topology, one `superstep` per iteration that receives
//! last superstep's messages and posts this superstep's sends), and
//! [`AmpiAdapter`] turns it into an
//! `IterativeApp` (see [`crate::program`]) whose chares are the
//! ranks. Both executors — including live migration between OS threads —
//! then work unmodified, exactly the benefit the paper attributes to AMPI.
//!
//! Restrictions vs. real AMPI (documented in DESIGN.md): communication is
//! BSP (every rank exchanges one message with each declared peer per
//! superstep; no wildcard receives, no mid-step blocking calls). The
//! paper's workloads — iterative stencils and MD — fit this shape.

use crate::program::{ChareKernel, IterativeApp};

/// One MPI-style rank: user state plus a superstep function.
pub trait AmpiRank: Send {
    /// Execute one superstep. `inbox` holds `(peer, data)` for every peer
    /// (sorted by peer; empty on superstep 0). Must return exactly one
    /// message per declared peer.
    fn superstep(&mut self, step: usize, inbox: &[(usize, Vec<f64>)]) -> Vec<(usize, Vec<f64>)>;

    /// Digest of rank state, for migration-safety checks.
    fn checksum(&self) -> f64;

    /// PUP the rank state for serialized migration (optional; see
    /// [`crate::pup`]).
    fn pack(&self) -> Option<Vec<u8>> {
        None
    }
}

/// An MPI-style bulk-synchronous program.
pub trait AmpiProgram: Send + Sync {
    /// Program name.
    fn name(&self) -> &'static str;

    /// `MPI_Comm_size`: number of ranks. The paper prescribes many more
    /// ranks than cores ("virtualization ratio" in AMPI terms).
    fn size(&self) -> usize;

    /// Ranks this rank exchanges messages with, every superstep. Must be
    /// symmetric and self-free.
    fn peers(&self, rank: usize) -> Vec<usize>;

    /// Instantiate rank state.
    fn make_rank(&self, rank: usize) -> Box<dyn AmpiRank>;

    /// Reconstruct a rank from PUPed bytes (optional counterpart of
    /// [`AmpiRank::pack`]).
    fn unpack_rank(&self, rank: usize, bytes: &[u8]) -> Option<Box<dyn AmpiRank>> {
        let _ = (rank, bytes);
        None
    }

    /// CPU seconds of `rank`'s superstep (simulator cost model).
    fn rank_cost(&self, rank: usize, step: usize) -> f64;

    /// Message payload size in bytes between two peers.
    fn message_bytes(&self, _from: usize, _to: usize) -> usize {
        1024
    }

    /// Migratable state size of a rank.
    fn state_bytes(&self, _rank: usize) -> usize {
        64 * 1024
    }
}

/// Adapts an [`AmpiProgram`] to the runtime's [`IterativeApp`] interface:
/// ranks become chares, supersteps become iterations.
pub struct AmpiAdapter<P: AmpiProgram>(pub P);

impl<P: AmpiProgram> IterativeApp for AmpiAdapter<P> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn num_chares(&self) -> usize {
        self.0.size()
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        self.0.peers(idx)
    }

    fn message_bytes(&self, from: usize, to: usize) -> usize {
        self.0.message_bytes(from, to)
    }

    fn state_bytes(&self, idx: usize) -> usize {
        self.0.state_bytes(idx)
    }

    fn task_cost(&self, idx: usize, iter: usize) -> f64 {
        self.0.rank_cost(idx, iter)
    }

    fn make_kernel(&self, idx: usize) -> Box<dyn ChareKernel> {
        Box::new(RankKernel {
            rank: idx,
            peers: self.0.peers(idx),
            state_bytes: self.0.state_bytes(idx),
            inner: self.0.make_rank(idx),
        })
    }

    fn unpack_kernel(&self, idx: usize, bytes: &[u8]) -> Option<Box<dyn ChareKernel>> {
        self.0.unpack_rank(idx, bytes).map(|inner| {
            Box::new(RankKernel {
                rank: idx,
                peers: self.0.peers(idx),
                state_bytes: self.0.state_bytes(idx),
                inner,
            }) as Box<dyn ChareKernel>
        })
    }
}

/// Kernel wrapper enforcing the BSP contract on user superstep code.
struct RankKernel {
    rank: usize,
    peers: Vec<usize>,
    state_bytes: usize,
    inner: Box<dyn AmpiRank>,
}

impl ChareKernel for RankKernel {
    fn compute(&mut self, iter: usize, inbox: &[(usize, Vec<f64>)]) -> Vec<(usize, Vec<f64>)> {
        let out = self.inner.superstep(iter, inbox);
        // BSP contract: exactly one message to each declared peer.
        assert_eq!(
            out.len(),
            self.peers.len(),
            "rank {}: superstep {iter} sent {} messages, expected one per peer ({})",
            self.rank,
            out.len(),
            self.peers.len()
        );
        for (to, _) in &out {
            assert!(
                self.peers.contains(to),
                "rank {}: message to non-peer {to}",
                self.rank
            );
        }
        out
    }

    fn checksum(&self) -> f64 {
        self.inner.checksum()
    }

    fn state_bytes(&self) -> usize {
        self.state_bytes
    }

    fn pack(&self) -> Option<Vec<u8>> {
        self.inner.pack()
    }
}

/// A ready-made AMPI demo program: 1-D ring halo exchange with a skewed
/// per-rank workload (ranks in the upper half do `skew`× the flops) —
/// the "existing MPI application" the paper says can benefit unmodified.
#[derive(Debug, Clone)]
pub struct RingHalo {
    /// Number of ranks.
    pub ranks: usize,
    /// CPU seconds of a light rank's superstep.
    pub cost_s: f64,
    /// Work multiplier for the upper half of the ranks.
    pub skew: f64,
}

impl RingHalo {
    /// `ranks` ranks (≥ 3) with the given base cost and skew.
    pub fn new(ranks: usize, cost_s: f64, skew: f64) -> Self {
        assert!(ranks >= 3, "ring needs >= 3 ranks");
        assert!(skew >= 1.0);
        RingHalo { ranks, cost_s, skew }
    }
}

impl AmpiProgram for RingHalo {
    fn name(&self) -> &'static str {
        "ampi-ring-halo"
    }

    fn size(&self) -> usize {
        self.ranks
    }

    fn peers(&self, rank: usize) -> Vec<usize> {
        vec![(rank + self.ranks - 1) % self.ranks, (rank + 1) % self.ranks]
    }

    fn make_rank(&self, rank: usize) -> Box<dyn AmpiRank> {
        let n = self.ranks;
        Box::new(RingHaloRank {
            left: (rank + n - 1) % n,
            right: (rank + 1) % n,
            value: rank as f64,
            left_sum: 0.0,
            right_sum: 0.0,
        })
    }

    fn rank_cost(&self, rank: usize, _step: usize) -> f64 {
        if rank >= self.ranks / 2 {
            self.cost_s * self.skew
        } else {
            self.cost_s
        }
    }

    fn unpack_rank(&self, rank: usize, bytes: &[u8]) -> Option<Box<dyn AmpiRank>> {
        let n = self.ranks;
        let mut r = crate::pup::PupReader::new(bytes);
        let rank_state = RingHaloRank {
            left: (rank + n - 1) % n,
            right: (rank + 1) % n,
            value: r.f64(),
            left_sum: r.f64(),
            right_sum: r.f64(),
        };
        assert!(r.exhausted(), "trailing bytes in ring-halo PUP buffer");
        Some(Box::new(rank_state))
    }
}

struct RingHaloRank {
    left: usize,
    right: usize,
    value: f64,
    left_sum: f64,
    right_sum: f64,
}

impl AmpiRank for RingHaloRank {
    fn pack(&self) -> Option<Vec<u8>> {
        let mut w = crate::pup::PupWriter::new();
        w.f64(self.value).f64(self.left_sum).f64(self.right_sum);
        Some(w.finish())
    }

    fn superstep(&mut self, _step: usize, inbox: &[(usize, Vec<f64>)]) -> Vec<(usize, Vec<f64>)> {
        // Accumulate halo values by sender (inbox is sorted by peer).
        for (from, data) in inbox {
            let s: f64 = data.iter().sum();
            if *from == self.left {
                self.left_sum += s;
            } else {
                self.right_sum += s;
            }
        }
        self.value = 0.5 * self.value + 0.25 * (self.left_sum - self.right_sum).tanh() + 1.0;
        vec![(self.left, vec![self.value]), (self.right, vec![self.value, self.value])]
    }

    fn checksum(&self) -> f64 {
        self.value + self.left_sum + self.right_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LbConfig, RunConfig};
    use crate::program::validate_app;
    use crate::sim_exec::SimExecutor;
    use crate::thread_exec::{serial_reference, ThreadExecutor, ThreadRunConfig};
    use cloudlb_sim::interference::BgScript;
    use cloudlb_sim::ClusterConfig;

    fn app() -> AmpiAdapter<RingHalo> {
        AmpiAdapter(RingHalo::new(16, 0.001, 2.0))
    }

    #[test]
    fn adapter_produces_a_valid_app() {
        validate_app(&app());
        assert_eq!(app().num_chares(), 16);
        assert_eq!(app().neighbors(0), vec![15, 1]);
    }

    #[test]
    fn skew_shows_up_in_costs() {
        let a = app();
        assert_eq!(a.task_cost(0, 0), 0.001);
        assert_eq!(a.task_cost(15, 0), 0.002);
    }

    #[test]
    fn runs_under_the_simulator_and_balances_skew() {
        // Internal (application) imbalance: the classic AMPI benefit —
        // over-decomposed ranks get balanced without interference.
        let a = app();
        let mut cfg = RunConfig {
            cluster: ClusterConfig { nodes: 1, cores_per_node: 4, trace: false },
            ..RunConfig::paper(4, 60)
        };
        cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 10, ..Default::default() };
        let lb = SimExecutor::new(&a, cfg.clone(), BgScript::none()).run();
        cfg.lb.strategy = "nolb".into();
        let nolb = SimExecutor::new(&a, cfg, BgScript::none()).run();
        assert!(lb.migrations > 0, "skewed ranks must trigger migrations");
        assert!(
            lb.app_time.as_secs_f64() < 0.9 * nolb.app_time.as_secs_f64(),
            "LB {:.4}s !< noLB {:.4}s",
            lb.app_time.as_secs_f64(),
            nolb.app_time.as_secs_f64()
        );
    }

    #[test]
    fn migrates_live_between_threads_without_corruption() {
        let a = AmpiAdapter(RingHalo::new(12, 0.0, 1.0));
        let mut cfg = ThreadRunConfig::new(3, 10);
        cfg.lb = LbConfig { strategy: "greedy".into(), period: 3, ..Default::default() };
        let run = ThreadExecutor::run(&a, cfg).expect("run");
        assert_eq!(run.checksums, serial_reference(&a, 10));
    }

    #[test]
    fn migrates_as_pup_bytes_between_threads() {
        let a = AmpiAdapter(RingHalo::new(12, 0.0, 1.0));
        let mut cfg = ThreadRunConfig::new(3, 10);
        cfg.lb = LbConfig { strategy: "greedy".into(), period: 3, ..Default::default() };
        cfg.serialize_migration = true;
        let run = ThreadExecutor::run(&a, cfg).expect("run");
        assert!(run.migrations > 0);
        assert_eq!(run.checksums, serial_reference(&a, 10));
    }

    struct BadRank;
    impl AmpiRank for BadRank {
        fn superstep(&mut self, _: usize, _: &[(usize, Vec<f64>)]) -> Vec<(usize, Vec<f64>)> {
            Vec::new() // violates the one-message-per-peer contract
        }
        fn checksum(&self) -> f64 {
            0.0
        }
    }
    struct BadProgram;
    impl AmpiProgram for BadProgram {
        fn name(&self) -> &'static str {
            "bad"
        }
        fn size(&self) -> usize {
            3
        }
        fn peers(&self, rank: usize) -> Vec<usize> {
            vec![(rank + 2) % 3, (rank + 1) % 3]
        }
        fn make_rank(&self, _: usize) -> Box<dyn AmpiRank> {
            Box::new(BadRank)
        }
        fn rank_cost(&self, _: usize, _: usize) -> f64 {
            0.0
        }
    }

    #[test]
    #[should_panic(expected = "expected one per peer")]
    fn bsp_contract_is_enforced() {
        let a = AmpiAdapter(BadProgram);
        let mut k = a.make_kernel(0);
        k.compute(0, &[]);
    }

    #[test]
    #[should_panic(expected = ">= 3 ranks")]
    fn tiny_ring_rejected() {
        RingHalo::new(2, 0.001, 1.0);
    }
}
