//! Typed runtime errors.
//!
//! The executors used to treat every channel hiccup as a bug and panic
//! (`.expect("workers alive")`). In a fault-tolerant runtime those paths
//! are *expected*: a PE can die mid-run, a worker thread can panic, a
//! barrier can hang. This module gives every such condition a typed,
//! Display-able error so callers can distinguish "the run failed
//! gracefully after exhausting recovery" from "the runtime has a bug"
//! (which still panics via assertions).

use std::fmt;

/// Why a run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A channel endpoint disconnected outside the shutdown protocol.
    ChannelClosed {
        /// Which link broke (e.g. `"coordinator control queue"`).
        endpoint: String,
    },
    /// A worker thread panicked and recovery was impossible (checkpoints
    /// disabled or the app's chares do not PUP).
    WorkerPanicked {
        /// The worker that died.
        pe: usize,
        /// Panic payload rendered to text.
        detail: String,
    },
    /// A worker kept dying: the bounded-retry supervisor gave up.
    TooManyRestarts {
        /// The worker whose death exhausted the budget.
        pe: usize,
        /// Restarts attempted before giving up.
        attempts: usize,
    },
    /// The AtSync watchdog fired: no progress message arrived in time,
    /// so a hung or silently-dead PE is blocking the barrier.
    WatchdogTimeout {
        /// Protocol phase that hung (e.g. `"atsync barrier"`).
        phase: String,
        /// How long the coordinator waited, in milliseconds.
        waited_ms: u64,
    },
    /// A failure was injected but every PE is now dead.
    AllPesDead,
    /// A PE failure could not be recovered: checkpointing is disabled, no
    /// snapshot exists yet, or a chare's owner and buddy copies were both
    /// lost in the same failure.
    Unrecoverable {
        /// What made recovery impossible.
        reason: String,
    },
    /// A migration plan entry disagrees with the live mapping: the plan
    /// was built from a stale snapshot (e.g. the chare moved or its
    /// transfer was aborted since planning). The entry is skipped; the
    /// rest of the plan still commits.
    StalePlan {
        /// The chare whose plan entry went stale.
        task: u64,
        /// Where the plan believed the chare lived.
        expected: usize,
        /// Where the mapping actually has it.
        actual: usize,
    },
    /// The run configuration is unusable (e.g. zero PEs).
    InvalidConfig(String),
    /// An AtSync/LB protocol invariant was violated by a message. On the
    /// worker side these surface as panics (and are caught by the
    /// supervisor); on the coordinator side they end the run gracefully.
    Protocol(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ChannelClosed { endpoint } => {
                write!(f, "channel closed unexpectedly: {endpoint}")
            }
            RuntimeError::WorkerPanicked { pe, detail } => {
                write!(f, "worker {pe} panicked and could not be recovered: {detail}")
            }
            RuntimeError::TooManyRestarts { pe, attempts } => {
                write!(f, "worker {pe} still failing after {attempts} restarts; giving up")
            }
            RuntimeError::WatchdogTimeout { phase, waited_ms } => {
                write!(f, "watchdog: no progress in {phase} for {waited_ms} ms")
            }
            RuntimeError::AllPesDead => write!(f, "every PE has failed; nothing left to run on"),
            RuntimeError::Unrecoverable { reason } => {
                write!(f, "unrecoverable PE failure: {reason}")
            }
            RuntimeError::StalePlan { task, expected, actual } => {
                write!(f, "stale plan: task {task} is on {actual}, not {expected}")
            }
            RuntimeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RuntimeError::Protocol(msg) => write!(f, "runtime protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Render a `catch_unwind` payload as text for [`RuntimeError::WorkerPanicked`].
pub fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
