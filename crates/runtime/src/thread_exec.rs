//! Real multi-threaded executor with live object migration.
//!
//! One OS thread per PE; chares are boxed kernels owned by exactly one
//! worker at a time. Ghost messages and migrations travel over crossbeam
//! channels; a coordinator thread runs the AtSync/LB protocol. Interference
//! is *injected*: a background schedule makes a worker burn
//! `weight × task_cpu` of extra CPU around each task in the affected
//! iteration range — the portable equivalent of a co-scheduled noisy
//! neighbour under CFS (on a laptop we cannot pin interfering processes to
//! specific cores the way the paper's testbed does, so the executor
//! reproduces the *schedule* a fair-share OS would produce).
//!
//! This executor exists to demonstrate that the runtime design is real —
//! kernels compute actual numbers, migration moves live state, and the
//! instrumentation (Eq. 2) works from observable quantities only. The
//! paper's figures are generated with the deterministic simulator.

use crate::config::{InitialMap, InstrumentMode, LbConfig};
use crate::msg::{CtrlMsg, InboxEntry, ThreadSample, WorkerMsg};
use crate::program::IterativeApp;
use cloudlb_balance::{LbStats, TaskId, TaskInfo};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Interference injected on one PE over an iteration range.
#[derive(Debug, Clone, Copy)]
pub struct ThreadBg {
    /// Affected worker.
    pub pe: usize,
    /// First iteration (inclusive) whose tasks are slowed.
    pub from_iter: usize,
    /// Last iteration (exclusive).
    pub to_iter: usize,
    /// Background weight: each task burns `weight × cpu` extra.
    pub weight: f64,
}

/// Thread-executor configuration.
#[derive(Debug, Clone)]
pub struct ThreadRunConfig {
    /// Number of worker threads (PEs).
    pub pes: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// LB setup (strategy, period, instrumentation mode).
    pub lb: LbConfig,
    /// Injected interference.
    pub bg: Vec<ThreadBg>,
    /// Initial placement.
    pub initial_map: InitialMap,
    /// Migrate chares as PUPed bytes instead of moving the boxed kernel
    /// (requires the app to implement `pack`/`unpack_kernel`). This is the
    /// path a distributed deployment would take; tests use it to prove
    /// serialization round-trips preserve state exactly.
    pub serialize_migration: bool,
}

impl ThreadRunConfig {
    /// Small default: `pes` workers, `iterations` iterations, no bg.
    pub fn new(pes: usize, iterations: usize) -> Self {
        ThreadRunConfig {
            pes,
            iterations,
            lb: LbConfig::default(),
            bg: Vec::new(),
            initial_map: InitialMap::Block,
            serialize_migration: false,
        }
    }
}

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadRunResult {
    /// Wall time of the whole run.
    pub wall: std::time::Duration,
    /// Final checksum of every chare (order-independent digest of state).
    pub checksums: BTreeMap<usize, f64>,
    /// LB steps executed.
    pub lb_steps: usize,
    /// Migrations committed.
    pub migrations: usize,
    /// Final chare→PE mapping.
    pub final_mapping: Vec<usize>,
    /// Per-PE total task CPU µs (for balance assertions).
    pub per_pe_task_us: Vec<u64>,
}

/// The threaded executor.
pub struct ThreadExecutor;

impl ThreadExecutor {
    /// Run `app` under `cfg`. Panics on protocol violations (they indicate
    /// bugs, not recoverable conditions).
    pub fn run(app: &dyn IterativeApp, cfg: ThreadRunConfig) -> ThreadRunResult {
        assert!(cfg.pes > 0 && cfg.iterations > 0);
        crate::program::validate_app(app);
        let n = app.num_chares();
        let mapping: Arc<Vec<AtomicUsize>> = Arc::new(
            cfg.initial_map
                .place(n, cfg.pes)
                .into_iter()
                .map(AtomicUsize::new)
                .collect(),
        );

        let (ctrl_tx, ctrl_rx) = unbounded::<CtrlMsg>();
        let mut worker_tx: Vec<Sender<WorkerMsg>> = Vec::with_capacity(cfg.pes);
        let mut worker_rx: Vec<Option<Receiver<WorkerMsg>>> = Vec::with_capacity(cfg.pes);
        for _ in 0..cfg.pes {
            let (tx, rx) = unbounded();
            worker_tx.push(tx);
            worker_rx.push(Some(rx));
        }

        let start = Instant::now();
        let result = std::thread::scope(|scope| {
            for (pe, slot) in worker_rx.iter_mut().enumerate() {
                let rx = slot.take().expect("receiver taken once");
                let txs = worker_tx.clone();
                let ctrl = ctrl_tx.clone();
                let mapping = Arc::clone(&mapping);
                let cfg = cfg.clone();
                scope.spawn(move || {
                    Worker::new(pe, app, cfg, rx, txs, ctrl, mapping, start).run();
                });
            }
            drop(ctrl_tx);
            coordinator(app, &cfg, ctrl_rx, &worker_tx, &mapping)
        });
        ThreadRunResult { wall: start.elapsed(), ..result }
    }
}

fn coordinator(
    app: &dyn IterativeApp,
    cfg: &ThreadRunConfig,
    ctrl_rx: Receiver<CtrlMsg>,
    worker_tx: &[Sender<WorkerMsg>],
    mapping: &[AtomicUsize],
) -> ThreadRunResult {
    let n = app.num_chares();
    let mut strategy = cfg.lb.make_strategy();
    let mut parked: HashSet<usize> = HashSet::new();
    let mut finished = 0usize;
    let mut lb_steps = 0usize;
    let mut migrations = 0usize;
    let mut in_lb = false;
    let mut stats_replies: Vec<Option<(Vec<ThreadSample>, u64, u64)>> = vec![None; cfg.pes];
    let mut pending_arrivals = 0usize;
    let mut planned: Vec<(usize, usize)> = Vec::new();

    while finished < n {
        match ctrl_rx.recv().expect("workers alive") {
            CtrlMsg::Parked { pe: _, chare } => {
                assert!(parked.insert(chare), "chare {chare} parked twice");
                if parked.len() == n - finished && !in_lb {
                    // Barrier full → collect this window's measurements.
                    in_lb = true;
                    for tx in worker_tx {
                        tx.send(WorkerMsg::CollectStats).expect("worker alive");
                    }
                }
            }
            CtrlMsg::Stats { pe, samples, idle_us, window_us } => {
                stats_replies[pe] = Some((samples, idle_us, window_us));
                if stats_replies.iter().all(Option::is_some) {
                    // Build the LB database (Eq. 1–3) from observables.
                    let mut db = LbStats::new(cfg.pes);
                    let mut per_task = vec![(0u64, 0u64); n];
                    let mut pe_task_us = vec![0u64; cfg.pes];
                    let mut bg = vec![0.0f64; cfg.pes];
                    for (pe, reply) in stats_replies.iter_mut().enumerate() {
                        let (samples, idle_us, window_us) = reply.take().expect("checked");
                        for s in &samples {
                            per_task[s.chare].0 += s.cpu_us;
                            per_task[s.chare].1 += s.wall_us;
                            pe_task_us[pe] += match cfg.lb.instrument {
                                InstrumentMode::CpuTime => s.cpu_us,
                                InstrumentMode::WallTime => s.wall_us,
                            };
                        }
                        bg[pe] = (window_us.saturating_sub(pe_task_us[pe]).saturating_sub(idle_us))
                            as f64
                            / 1e6;
                    }
                    db.bg_load = bg;
                    db.tasks = (0..n)
                        .map(|i| TaskInfo {
                            id: TaskId(i as u64),
                            pe: mapping[i].load(Ordering::SeqCst),
                            load: match cfg.lb.instrument {
                                InstrumentMode::CpuTime => per_task[i].0,
                                InstrumentMode::WallTime => per_task[i].1,
                            } as f64
                                / 1e6,
                            bytes: app.state_bytes(i) as u64,
                        })
                        .collect();
                    let plan = strategy.plan(&db);
                    cloudlb_balance::strategy::validate_plan(&db, &plan);
                    lb_steps += 1;
                    migrations += plan.len();
                    // Commit the mapping *before* any movement so ghosts
                    // route to the new owners.
                    for m in &plan {
                        mapping[m.task.0 as usize].store(m.to, Ordering::SeqCst);
                    }
                    planned = plan.iter().map(|m| (m.task.0 as usize, m.to)).collect();
                    pending_arrivals = plan.len();
                    if plan.is_empty() {
                        resume(worker_tx, &mut in_lb, &mut parked);
                    } else {
                        let mut by_src: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
                        for m in &plan {
                            by_src.entry(m.from).or_default().push((m.task.0 as usize, m.to));
                        }
                        for (src, moves) in by_src {
                            worker_tx[src].send(WorkerMsg::DoMigrations(moves)).expect("alive");
                        }
                    }
                }
            }
            CtrlMsg::MigArrived { chare } => {
                assert!(planned.iter().any(|(c, _)| *c == chare), "unexpected arrival {chare}");
                pending_arrivals -= 1;
                if pending_arrivals == 0 {
                    resume(worker_tx, &mut in_lb, &mut parked);
                }
            }
            CtrlMsg::Finished { chare: _ } => {
                finished += 1;
            }
            CtrlMsg::Final { .. } => unreachable!("Final before Shutdown"),
        }
    }

    // All chares done: collect final state.
    for tx in worker_tx {
        tx.send(WorkerMsg::Shutdown).expect("worker alive");
    }
    let mut checksums = BTreeMap::new();
    let mut per_pe_task_us = vec![0u64; cfg.pes];
    let mut finals = 0;
    while finals < cfg.pes {
        if let CtrlMsg::Final { pe, checksums: cs, total_task_us } =
            ctrl_rx.recv().expect("workers finishing")
        {
            for (chare, sum) in cs {
                checksums.insert(chare, sum);
            }
            per_pe_task_us[pe] = total_task_us;
            finals += 1;
        } // stragglers from the main phase are benign here

    }
    assert_eq!(checksums.len(), n, "missing checksums");

    ThreadRunResult {
        wall: std::time::Duration::ZERO, // filled by caller
        checksums,
        lb_steps,
        migrations,
        final_mapping: mapping.iter().map(|m| m.load(Ordering::SeqCst)).collect(),
        per_pe_task_us,
    }
}

fn resume(worker_tx: &[Sender<WorkerMsg>], in_lb: &mut bool, parked: &mut HashSet<usize>) {
    *in_lb = false;
    parked.clear();
    for tx in worker_tx {
        tx.send(WorkerMsg::Resume).expect("worker alive");
    }
}

struct Worker<'a> {
    pe: usize,
    app: &'a dyn IterativeApp,
    cfg: ThreadRunConfig,
    rx: Receiver<WorkerMsg>,
    txs: Vec<Sender<WorkerMsg>>,
    ctrl: Sender<CtrlMsg>,
    mapping: Arc<Vec<AtomicUsize>>,
    start: Instant,

    kernels: HashMap<usize, Box<dyn crate::program::ChareKernel>>,
    next_iter: HashMap<usize, usize>,
    /// Buffered ghosts: (chare, iter) → entries. May hold data for chares
    /// not (yet) owned here.
    inbox: HashMap<(usize, usize), InboxEntry>,
    ready: VecDeque<usize>,
    parked: HashSet<usize>,
    in_lb: bool,

    samples: Vec<ThreadSample>,
    idle_us: u64,
    window_start_us: u64,
    total_task_us: u64,
}

impl<'a> Worker<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        pe: usize,
        app: &'a dyn IterativeApp,
        cfg: ThreadRunConfig,
        rx: Receiver<WorkerMsg>,
        txs: Vec<Sender<WorkerMsg>>,
        ctrl: Sender<CtrlMsg>,
        mapping: Arc<Vec<AtomicUsize>>,
        start: Instant,
    ) -> Self {
        let mut kernels = HashMap::new();
        let mut next_iter = HashMap::new();
        for chare in 0..app.num_chares() {
            if mapping[chare].load(Ordering::SeqCst) == pe {
                kernels.insert(chare, app.make_kernel(chare));
                next_iter.insert(chare, 0usize);
            }
        }
        Worker {
            pe,
            app,
            cfg,
            rx,
            txs,
            ctrl,
            mapping,
            start,
            ready: kernels.keys().copied().collect::<std::collections::BTreeSet<_>>().into_iter().collect(),
            kernels,
            next_iter,
            inbox: HashMap::new(),
            parked: HashSet::new(),
            in_lb: false,
            samples: Vec::new(),
            idle_us: 0,
            window_start_us: 0,
            total_task_us: 0,
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn bg_weight(&self, iter: usize) -> f64 {
        self.cfg
            .bg
            .iter()
            .filter(|b| b.pe == self.pe && (b.from_iter..b.to_iter).contains(&iter))
            .map(|b| b.weight)
            .sum()
    }

    fn run(mut self) {
        loop {
            // Execute everything ready (unless an LB step is in progress).
            while !self.in_lb {
                let Some(chare) = self.ready.pop_front() else { break };
                self.execute(chare);
            }
            // Block for the next message, accounting the wait as idle.
            let t0 = Instant::now();
            let Ok(msg) = self.rx.recv() else { return };
            self.idle_us += t0.elapsed().as_micros() as u64;
            if !self.handle(msg) {
                return;
            }
        }
    }

    fn execute(&mut self, chare: usize) {
        let iter = self.next_iter[&chare];
        let mut entries = self.inbox.remove(&(chare, iter)).unwrap_or_default();
        // Protocol guarantee: inbox sorted by sender, so float accumulation
        // order (and therefore checksums) is independent of message timing.
        entries.sort_by_key(|e| e.0);
        let kernel = self.kernels.get_mut(&chare).expect("ready implies owned");

        let t0 = Instant::now();
        let out = kernel.compute(iter, &entries);
        let cpu_us = t0.elapsed().as_micros().max(1) as u64;

        // Inject interference: burn weight × cpu of extra wall time, the
        // schedule a fair-share OS would have imposed.
        let w = self.bg_weight(iter);
        if w > 0.0 {
            let burn = std::time::Duration::from_micros((cpu_us as f64 * w) as u64);
            let spin = Instant::now();
            while spin.elapsed() < burn {
                std::hint::spin_loop();
            }
        }
        let wall_us = t0.elapsed().as_micros().max(1) as u64;
        self.samples.push(ThreadSample { chare, cpu_us, wall_us });
        self.total_task_us += cpu_us;

        // Route ghosts for the next iteration.
        let next = iter + 1;
        if next < self.cfg.iterations {
            for (nb, data) in out {
                let dst = self.mapping[nb].load(Ordering::SeqCst);
                let msg = WorkerMsg::Ghost { chare: nb, iter: next, from: chare, data };
                if dst == self.pe {
                    self.handle_ghost(nb, next, chare, match msg {
                        WorkerMsg::Ghost { data, .. } => data,
                        _ => unreachable!(),
                    });
                } else {
                    self.txs[dst].send(msg).expect("peer alive");
                }
            }
        }

        *self.next_iter.get_mut(&chare).expect("owned") = next;
        if next >= self.cfg.iterations {
            self.ctrl.send(CtrlMsg::Finished { chare }).expect("coordinator alive");
        } else if next.is_multiple_of(self.cfg.lb.period) {
            self.parked.insert(chare);
            self.ctrl.send(CtrlMsg::Parked { pe: self.pe, chare }).expect("coordinator alive");
        } else {
            self.check_ready(chare);
        }
    }

    fn check_ready(&mut self, chare: usize) {
        if self.parked.contains(&chare) || !self.kernels.contains_key(&chare) {
            return;
        }
        let Some(&iter) = self.next_iter.get(&chare) else { return };
        if iter >= self.cfg.iterations {
            return;
        }
        let have = self.inbox.get(&(chare, iter)).map_or(0, |v| v.len());
        let expected = self.app.neighbors(chare).len();
        if have >= expected && !self.ready.contains(&chare) {
            self.ready.push_back(chare);
        }
    }

    fn handle_ghost(&mut self, chare: usize, iter: usize, from: usize, data: Vec<f64>) {
        let owner = self.mapping[chare].load(Ordering::SeqCst);
        if owner != self.pe {
            // The chare moved (or never lived here): forward.
            self.txs[owner]
                .send(WorkerMsg::Ghost { chare, iter, from, data })
                .expect("peer alive");
            return;
        }
        self.inbox.entry((chare, iter)).or_default().push((from, data));
        self.check_ready(chare);
    }

    /// Install a migrated-in chare; it stays parked until Resume.
    fn install(
        &mut self,
        chare: usize,
        kernel: Box<dyn crate::program::ChareKernel>,
        next_iter: usize,
        pending: HashMap<usize, InboxEntry>,
    ) {
        self.kernels.insert(chare, kernel);
        self.next_iter.insert(chare, next_iter);
        for (iter, mut entries) in pending {
            self.inbox.entry((chare, iter)).or_default().append(&mut entries);
        }
        self.parked.insert(chare);
        self.ctrl.send(CtrlMsg::MigArrived { chare }).expect("coordinator alive");
    }

    /// Returns `false` on shutdown.
    fn handle(&mut self, msg: WorkerMsg) -> bool {
        match msg {
            WorkerMsg::Ghost { chare, iter, from, data } => {
                self.handle_ghost(chare, iter, from, data);
            }
            WorkerMsg::CollectStats => {
                self.in_lb = true;
                let now = self.now_us();
                self.ctrl
                    .send(CtrlMsg::Stats {
                        pe: self.pe,
                        samples: std::mem::take(&mut self.samples),
                        idle_us: self.idle_us,
                        window_us: now - self.window_start_us,
                    })
                    .expect("coordinator alive");
            }
            WorkerMsg::DoMigrations(moves) => {
                for (chare, to) in moves {
                    let kernel = self.kernels.remove(&chare).expect("migrating owned chare");
                    let next_iter = self.next_iter.remove(&chare).expect("owned");
                    self.parked.remove(&chare);
                    let pending: HashMap<usize, InboxEntry> = {
                        let keys: Vec<(usize, usize)> = self
                            .inbox
                            .keys()
                            .filter(|(c, _)| *c == chare)
                            .copied()
                            .collect();
                        keys.into_iter()
                            .map(|k| (k.1, self.inbox.remove(&k).expect("present")))
                            .collect()
                    };
                    let msg = if self.cfg.serialize_migration {
                        let bytes = kernel.pack().unwrap_or_else(|| {
                            panic!("serialize_migration set but chare {chare} does not pack")
                        });
                        WorkerMsg::MigrateBytes { chare, bytes, next_iter, pending }
                    } else {
                        WorkerMsg::Migrate { chare, kernel, next_iter, pending }
                    };
                    self.txs[to].send(msg).expect("peer alive");
                }
            }
            WorkerMsg::Migrate { chare, kernel, next_iter, pending } => {
                self.install(chare, kernel, next_iter, pending);
            }
            WorkerMsg::MigrateBytes { chare, bytes, next_iter, pending } => {
                let kernel = self.app.unpack_kernel(chare, &bytes).unwrap_or_else(|| {
                    panic!("received PUPed chare {chare} but the app cannot unpack")
                });
                self.install(chare, kernel, next_iter, pending);
            }
            WorkerMsg::Resume => {
                self.in_lb = false;
                self.idle_us = 0;
                self.window_start_us = self.now_us();
                let owned: Vec<usize> = {
                    let mut v: Vec<usize> = self.parked.drain().collect();
                    v.sort_unstable();
                    v
                };
                for chare in owned {
                    self.check_ready(chare);
                }
            }
            WorkerMsg::Shutdown => {
                let checksums =
                    self.kernels.iter().map(|(c, k)| (*c, k.checksum())).collect::<Vec<_>>();
                self.ctrl
                    .send(CtrlMsg::Final {
                        pe: self.pe,
                        checksums,
                        total_task_us: self.total_task_us,
                    })
                    .expect("coordinator alive");
                return false;
            }
        }
        true
    }
}

/// Single-threaded reference execution: runs every chare's kernel in
/// program order and returns the final checksums. Used to prove that
/// parallel execution with migrations computes the same numbers.
pub fn serial_reference(app: &dyn IterativeApp, iterations: usize) -> BTreeMap<usize, f64> {
    let n = app.num_chares();
    let mut kernels: Vec<_> = (0..n).map(|i| app.make_kernel(i)).collect();
    // inbox[chare] for the current iteration.
    let mut inbox: Vec<InboxEntry> = vec![Vec::new(); n];
    for iter in 0..iterations {
        let mut next_inbox: Vec<InboxEntry> = vec![Vec::new(); n];
        for (chare, kernel) in kernels.iter_mut().enumerate() {
            // Same protocol guarantee as the workers: sorted by sender.
            inbox[chare].sort_by_key(|e| e.0);
            let out = kernel.compute(iter, &inbox[chare]);
            for (nb, data) in out {
                next_inbox[nb].push((chare, data));
            }
        }
        inbox = next_inbox;
    }
    kernels.iter().enumerate().map(|(i, k)| (i, k.checksum())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SyntheticApp;

    fn cfg(pes: usize, iters: usize, strategy: &str, period: usize) -> ThreadRunConfig {
        ThreadRunConfig {
            pes,
            iterations: iters,
            lb: LbConfig { strategy: strategy.into(), period, ..Default::default() },
            bg: Vec::new(),
            initial_map: InitialMap::Block,
            serialize_migration: false,
        }
    }

    #[test]
    fn parallel_matches_serial_reference_without_lb() {
        let app = SyntheticApp::ring(12, 0.0);
        let r = ThreadExecutor::run(&app, cfg(3, 8, "nolb", 4));
        let reference = serial_reference(&app, 8);
        assert_eq!(r.checksums, reference);
        assert_eq!(r.migrations, 0);
        // Boundaries fall before iteration 4 only (iteration 8 is the end).
        assert_eq!(r.lb_steps, 1);
    }

    #[test]
    fn migrations_preserve_numerics() {
        // Interference on pe0 forces the balancer to move live chares; the
        // computation must be unaffected.
        let app = SyntheticApp::ring(16, 0.0);
        let mut c = cfg(4, 12, "cloudrefine", 4);
        c.bg.push(ThreadBg { pe: 0, from_iter: 0, to_iter: 12, weight: 3.0 });
        let r = ThreadExecutor::run(&app, c);
        let reference = serial_reference(&app, 12);
        assert_eq!(r.checksums, reference);
        assert!(r.lb_steps >= 1);
    }

    #[test]
    fn greedy_forces_migrations_and_stays_correct() {
        let app = SyntheticApp::ring(10, 0.0);
        let r = ThreadExecutor::run(&app, cfg(2, 9, "greedy", 3));
        assert_eq!(r.checksums, serial_reference(&app, 9));
        // Greedy rebalances from scratch; with 10 chares on 2 pes it
        // almost surely moves something at some step.
        assert!(r.final_mapping.iter().all(|&p| p < 2));
    }

    #[test]
    fn single_pe_run_works() {
        let app = SyntheticApp::ring(5, 0.0);
        let r = ThreadExecutor::run(&app, cfg(1, 6, "cloudrefine", 2));
        assert_eq!(r.checksums, serial_reference(&app, 6));
        assert_eq!(r.final_mapping, vec![0; 5]);
    }

    #[test]
    fn serialized_migration_matches_move_migration() {
        let app = SyntheticApp::ring(16, 0.0);
        let mut c = cfg(4, 12, "cloudrefine", 4);
        c.bg.push(ThreadBg { pe: 0, from_iter: 0, to_iter: 12, weight: 3.0 });
        c.serialize_migration = true;
        let r = ThreadExecutor::run(&app, c);
        assert_eq!(r.checksums, serial_reference(&app, 12));
    }

    #[test]
    fn period_longer_than_run_means_no_lb() {
        let app = SyntheticApp::ring(6, 0.0);
        let r = ThreadExecutor::run(&app, cfg(2, 5, "cloudrefine", 50));
        assert_eq!(r.lb_steps, 0);
        assert_eq!(r.migrations, 0);
        assert_eq!(r.checksums, serial_reference(&app, 5));
    }

    #[test]
    fn more_workers_than_chares() {
        let app = SyntheticApp::ring(3, 0.0);
        let r = ThreadExecutor::run(&app, cfg(6, 4, "cloudrefine", 2));
        assert_eq!(r.checksums, serial_reference(&app, 4));
        assert!(r.final_mapping.iter().all(|&p| p < 6));
    }

    #[test]
    fn interference_on_multiple_workers_still_correct() {
        let app = SyntheticApp::ring(16, 0.0);
        let mut c = cfg(4, 12, "cloudrefine", 4);
        c.bg.push(ThreadBg { pe: 0, from_iter: 0, to_iter: 6, weight: 2.0 });
        c.bg.push(ThreadBg { pe: 2, from_iter: 6, to_iter: 12, weight: 3.0 });
        let r = ThreadExecutor::run(&app, c);
        assert_eq!(r.checksums, serial_reference(&app, 12));
    }

    #[test]
    fn per_pe_task_time_is_recorded() {
        let app = SyntheticApp::ring(8, 0.0);
        let r = ThreadExecutor::run(&app, cfg(2, 4, "nolb", 2));
        assert_eq!(r.per_pe_task_us.len(), 2);
        assert!(r.per_pe_task_us.iter().all(|&us| us > 0));
    }
}
