//! Real multi-threaded executor with live object migration and a
//! supervision layer for fault tolerance.
//!
//! One OS thread per PE; chares are boxed kernels owned by exactly one
//! worker at a time. Ghost messages and migrations travel over mpsc
//! channels; a coordinator runs the AtSync/LB protocol. Interference
//! is *injected*: a background schedule makes a worker burn
//! `weight × task_cpu` of extra CPU around each task in the affected
//! iteration range — the portable equivalent of a co-scheduled noisy
//! neighbour under CFS (on a laptop we cannot pin interfering processes to
//! specific cores the way the paper's testbed does, so the executor
//! reproduces the *schedule* a fair-share OS would produce).
//!
//! # Fault tolerance
//!
//! Worker threads run under a supervisor shim: panics are caught with
//! [`std::panic::catch_unwind`] and reported to the coordinator as
//! [`CtrlMsg::WorkerDied`]. The coordinator then runs the global-rollback
//! protocol of [`crate::checkpoint`]:
//!
//! 1. respawn a fresh worker for the dead PE (bounded retries, exponential
//!    backoff);
//! 2. broadcast [`WorkerMsg::Rollback`] — every worker discards all chare
//!    state, adopts a new *epoch* and the replacement's channel;
//! 3. re-install every chare from the last complete checkpoint via
//!    [`WorkerMsg::Restore`];
//! 4. resume; the application replays from the checkpointed iteration.
//!
//! Messages carry the epoch they were produced in; anything from before
//! the rollback is stale (its iterations will be re-executed) and dropped
//! on receipt. Kernels are deterministic and inboxes are sorted by sender
//! before compute, so a replayed run reaches bit-identical state.
//!
//! Checkpoint consistency needs no quiescence detection: checkpoints are
//! taken at a *full* AtSync barrier, and mpsc delivery respects causality —
//! a worker's ghost send is enqueued before its `Parked` notification, the
//! coordinator only sends `Checkpoint` after receiving *every* `Parked`,
//! so every ghost for the boundary iteration is already in (or ahead of)
//! its receiver's queue when `Checkpoint` arrives. The snapshot therefore
//! captures kernel state *and* the settled ghost inbox.
//!
//! Every protocol `recv` on the coordinator is guarded by a watchdog
//! timeout, so a silently hung PE surfaces as
//! [`RuntimeError::WatchdogTimeout`] instead of a frozen barrier.
//!
//! This executor exists to demonstrate that the runtime design is real —
//! kernels compute actual numbers, migration moves live state, and the
//! instrumentation (Eq. 2) works from observable quantities only. The
//! paper's figures are generated with the deterministic simulator.

use crate::checkpoint::{ChareCheckpoint, CheckpointStore};
use crate::config::{InitialMap, InstrumentMode, LbConfig};
use crate::error::{panic_detail, RuntimeError};
use crate::msg::{CtrlMsg, InboxEntry, ThreadSample, WorkerMsg};
use crate::program::IterativeApp;
use cloudlb_balance::{LbStats, TaskId, TaskInfo};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Interference injected on one PE over an iteration range.
#[derive(Debug, Clone, Copy)]
pub struct ThreadBg {
    /// Affected worker.
    pub pe: usize,
    /// First iteration (inclusive) whose tasks are slowed.
    pub from_iter: usize,
    /// Last iteration (exclusive).
    pub to_iter: usize,
    /// Background weight: each task burns `weight × cpu` extra.
    pub weight: f64,
}

/// A failure injected into a worker thread (each fires at most once per
/// run, even across restarts — a replacement worker does not re-trigger
/// faults already fired).
#[derive(Debug, Clone, Copy)]
pub enum ThreadFault {
    /// Worker `pe` panics just before executing a chare at iteration `iter`.
    Panic {
        /// The worker that dies.
        pe: usize,
        /// Iteration whose execution triggers the panic.
        iter: usize,
    },
    /// Worker `pe` stalls for `ms` milliseconds before executing at `iter`
    /// (exercises the AtSync watchdog).
    Hang {
        /// The worker that hangs.
        pe: usize,
        /// Iteration whose execution triggers the stall.
        iter: usize,
        /// Stall length in milliseconds.
        ms: u64,
    },
}

pub use crate::checkpoint::CheckpointPolicy;

/// Thread-executor configuration.
#[derive(Debug, Clone)]
pub struct ThreadRunConfig {
    /// Number of worker threads (PEs).
    pub pes: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// LB setup (strategy, period, instrumentation mode).
    pub lb: LbConfig,
    /// Injected interference.
    pub bg: Vec<ThreadBg>,
    /// Initial placement.
    pub initial_map: InitialMap,
    /// Migrate chares as PUPed bytes instead of moving the boxed kernel
    /// (requires the app to implement `pack`/`unpack_kernel`). This is the
    /// path a distributed deployment would take; tests use it to prove
    /// serialization round-trips preserve state exactly.
    pub serialize_migration: bool,
    /// Checkpoint placement policy.
    pub checkpoints: CheckpointPolicy,
    /// Total worker restarts the supervisor attempts before giving up
    /// with [`RuntimeError::TooManyRestarts`].
    pub max_restarts: usize,
    /// Base delay before respawning a dead worker; doubles per restart.
    pub restart_backoff: Duration,
    /// Longest the coordinator waits for any protocol message before
    /// declaring the barrier hung ([`RuntimeError::WatchdogTimeout`]).
    pub watchdog: Duration,
    /// Failures to inject.
    pub inject: Vec<ThreadFault>,
}

impl ThreadRunConfig {
    /// Small default: `pes` workers, `iterations` iterations, no bg, no
    /// faults, checkpoints at every boundary.
    pub fn new(pes: usize, iterations: usize) -> Self {
        ThreadRunConfig {
            pes,
            iterations,
            lb: LbConfig::default(),
            bg: Vec::new(),
            initial_map: InitialMap::Block,
            serialize_migration: false,
            checkpoints: CheckpointPolicy::EveryBoundary,
            max_restarts: 3,
            restart_backoff: Duration::from_millis(5),
            watchdog: Duration::from_secs(60),
            inject: Vec::new(),
        }
    }
}

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadRunResult {
    /// Wall time of the whole run.
    pub wall: std::time::Duration,
    /// Final checksum of every chare (order-independent digest of state).
    pub checksums: BTreeMap<usize, f64>,
    /// LB steps executed (replayed windows count again).
    pub lb_steps: usize,
    /// Migrations committed.
    pub migrations: usize,
    /// Final chare→PE mapping.
    pub final_mapping: Vec<usize>,
    /// Per-PE total task CPU µs (for balance assertions).
    pub per_pe_task_us: Vec<u64>,
    /// Worker restarts performed by the supervisor.
    pub restarts: usize,
    /// Checkpoints taken (including the initial iteration-0 snapshot).
    pub checkpoints: usize,
}

/// The threaded executor.
pub struct ThreadExecutor;

impl ThreadExecutor {
    /// Run `app` under `cfg`.
    ///
    /// Returns an error — never panics — when the run cannot complete:
    /// unrecoverable worker death, exhausted restart budget, watchdog
    /// timeout, or invalid configuration. Protocol violations that
    /// indicate runtime bugs still surface as
    /// [`RuntimeError::Protocol`].
    pub fn run(
        app: &dyn IterativeApp,
        cfg: ThreadRunConfig,
    ) -> Result<ThreadRunResult, RuntimeError> {
        if cfg.pes == 0 {
            return Err(RuntimeError::InvalidConfig("pes must be > 0".into()));
        }
        if cfg.iterations == 0 {
            return Err(RuntimeError::InvalidConfig("iterations must be > 0".into()));
        }
        if cfg.lb.period == 0 {
            return Err(RuntimeError::InvalidConfig("lb.period must be > 0".into()));
        }
        crate::program::validate_app(app);
        let n = app.num_chares();
        let placement = cfg.initial_map.place(n, cfg.pes);
        let mapping: Arc<Vec<AtomicUsize>> =
            Arc::new(placement.iter().copied().map(AtomicUsize::new).collect());
        let fired: Arc<Vec<AtomicBool>> =
            Arc::new(cfg.inject.iter().map(|_| AtomicBool::new(false)).collect());

        // Iteration-0 checkpoint: pristine kernels, no pending ghosts.
        // Taken before spawning so even a failure in the very first window
        // is recoverable.
        let store = match cfg.checkpoints {
            CheckpointPolicy::Disabled => CheckpointStore::disabled(),
            _ => {
                let mut s = CheckpointStore { usable: true, ..Default::default() };
                let mut all = Vec::with_capacity(n);
                for (chare, &owner) in placement.iter().enumerate().take(n) {
                    match app.make_kernel(chare).pack() {
                        Some(bytes) => all.push(ChareCheckpoint {
                            chare,
                            bytes,
                            next_iter: 0,
                            pending: Vec::new(),
                            owner,
                        }),
                        None => {
                            s.usable = false;
                            break;
                        }
                    }
                }
                if s.usable {
                    s.install(0, all);
                }
                s
            }
        };
        let initial_checkpoints = usize::from(store.usable);

        let (ctrl_tx, ctrl_rx) = channel::<CtrlMsg>();
        let mut worker_tx: Vec<Sender<WorkerMsg>> = Vec::with_capacity(cfg.pes);
        let mut worker_rx: Vec<Option<Receiver<WorkerMsg>>> = Vec::with_capacity(cfg.pes);
        for _ in 0..cfg.pes {
            let (tx, rx) = channel();
            worker_tx.push(tx);
            worker_rx.push(Some(rx));
        }

        let start = Instant::now();
        let result = std::thread::scope(|scope| {
            let seed = WorkerSeed {
                app,
                cfg: cfg.clone(),
                mapping: Arc::clone(&mapping),
                ctrl: ctrl_tx.clone(),
                start,
                fired,
            };
            for (pe, slot) in worker_rx.iter_mut().enumerate() {
                let rx = slot.take().expect("receiver taken once");
                spawn_worker(scope, seed.clone(), pe, rx, worker_tx.clone(), 0, false);
            }
            let coord = Coordinator {
                scope,
                seed,
                n,
                ctrl_rx,
                worker_tx,
                strategy: cfg.lb.make_strategy(),
                store,
                epoch: 0,
                phase: Phase::Computing,
                barrier_iter: 0,
                parked: HashSet::new(),
                finished: HashSet::new(),
                stats_replies: vec![None; cfg.pes],
                ckpt_replies: vec![None; cfg.pes],
                planned: Vec::new(),
                pending_arrivals: 0,
                lb_steps: 0,
                migrations: 0,
                restarts: 0,
                checkpoints: initial_checkpoints,
            };
            coord.run()
        });
        result.map(|r| ThreadRunResult { wall: start.elapsed(), ..r })
    }
}

/// Everything a worker thread needs at spawn time; kept by the
/// coordinator so replacement workers can be created mid-run.
struct WorkerSeed<'env> {
    app: &'env dyn IterativeApp,
    cfg: ThreadRunConfig,
    mapping: Arc<Vec<AtomicUsize>>,
    ctrl: Sender<CtrlMsg>,
    start: Instant,
    fired: Arc<Vec<AtomicBool>>,
}

impl Clone for WorkerSeed<'_> {
    fn clone(&self) -> Self {
        WorkerSeed {
            app: self.app,
            cfg: self.cfg.clone(),
            mapping: Arc::clone(&self.mapping),
            ctrl: self.ctrl.clone(),
            start: self.start,
            fired: Arc::clone(&self.fired),
        }
    }
}

/// Spawn a worker under the supervisor shim: a panic anywhere inside the
/// worker is caught and reported as [`CtrlMsg::WorkerDied`] — sent after
/// all the worker's regular messages (the thread is past its last send by
/// the time the shim runs), which is what lets the coordinator treat
/// `WorkerDied` as "no further traffic from this PE".
fn spawn_worker<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    seed: WorkerSeed<'env>,
    pe: usize,
    rx: Receiver<WorkerMsg>,
    txs: Vec<Sender<WorkerMsg>>,
    epoch: usize,
    fresh: bool,
) {
    scope.spawn(move || {
        let ctrl = seed.ctrl.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Worker::new(pe, seed, rx, txs, epoch, fresh).run()
        }));
        match outcome {
            Ok(Ok(())) => {}
            // The control channel itself broke: the coordinator is gone
            // (the run is already ending in an error); nothing to report.
            Ok(Err(_)) => {}
            Err(payload) => {
                let _ = ctrl.send(CtrlMsg::WorkerDied {
                    pe,
                    detail: panic_detail(payload.as_ref()),
                });
            }
        }
    });
}

/// Coordinator protocol state, used for watchdog labels and for rejecting
/// messages that violate the AtSync/LB protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Computing,
    Checkpointing,
    Collecting,
    Migrating,
}

impl Phase {
    fn label(self) -> &'static str {
        match self {
            Phase::Computing => "atsync barrier",
            Phase::Checkpointing => "checkpoint collection",
            Phase::Collecting => "stats collection",
            Phase::Migrating => "migration commit",
        }
    }
}

struct Coordinator<'scope, 'env: 'scope> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    seed: WorkerSeed<'env>,
    n: usize,
    ctrl_rx: Receiver<CtrlMsg>,
    worker_tx: Vec<Sender<WorkerMsg>>,
    strategy: Box<dyn cloudlb_balance::LbStrategy>,
    store: CheckpointStore,
    epoch: usize,
    phase: Phase,
    barrier_iter: usize,
    parked: HashSet<usize>,
    finished: HashSet<usize>,
    stats_replies: Vec<Option<(Vec<ThreadSample>, u64, u64)>>,
    ckpt_replies: Vec<Option<Option<Vec<ChareCheckpoint>>>>,
    planned: Vec<(usize, usize)>,
    pending_arrivals: usize,
    lb_steps: usize,
    migrations: usize,
    restarts: usize,
    checkpoints: usize,
}

impl Coordinator<'_, '_> {
    fn run(mut self) -> Result<ThreadRunResult, RuntimeError> {
        let r = self.run_inner();
        if r.is_err() {
            // Unblock every worker so the thread scope can join. Workers
            // that already died ignore this (send fails, which is fine).
            self.abort();
        }
        r
    }

    fn run_inner(&mut self) -> Result<ThreadRunResult, RuntimeError> {
        while self.finished.len() < self.n {
            let msg = self.recv()?;
            self.dispatch(msg)?;
        }
        self.shutdown()
    }

    /// Watchdog-guarded receive: a quiet channel means a hung (or
    /// silently dead) PE is blocking the protocol.
    fn recv(&self) -> Result<CtrlMsg, RuntimeError> {
        match self.ctrl_rx.recv_timeout(self.seed.cfg.watchdog) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(RuntimeError::WatchdogTimeout {
                phase: self.phase.label().into(),
                waited_ms: self.seed.cfg.watchdog.as_millis() as u64,
            }),
            Err(RecvTimeoutError::Disconnected) => Err(RuntimeError::ChannelClosed {
                endpoint: "coordinator control queue".into(),
            }),
        }
    }

    /// Best-effort broadcast. A failed send means the receiver died; its
    /// `WorkerDied` notification is already queued (panics always produce
    /// one), so recovery is driven from there rather than here.
    fn broadcast(&self, make: impl Fn() -> WorkerMsg) {
        for tx in &self.worker_tx {
            let _ = tx.send(make());
        }
    }

    fn abort(&self) {
        self.broadcast(|| WorkerMsg::Shutdown);
    }

    fn dispatch(&mut self, msg: CtrlMsg) -> Result<(), RuntimeError> {
        match msg {
            CtrlMsg::Parked { pe: _, chare, iter } => {
                if self.phase != Phase::Computing {
                    return Err(RuntimeError::Protocol(format!(
                        "chare {chare} parked during {}",
                        self.phase.label()
                    )));
                }
                if !self.parked.insert(chare) {
                    return Err(RuntimeError::Protocol(format!("chare {chare} parked twice")));
                }
                self.barrier_iter = iter;
                if self.parked.len() == self.n - self.finished.len() {
                    self.barrier_full();
                }
            }
            CtrlMsg::Finished { chare } => {
                if !self.finished.insert(chare) {
                    return Err(RuntimeError::Protocol(format!("chare {chare} finished twice")));
                }
            }
            CtrlMsg::CheckpointData { pe, chares } => self.on_checkpoint_data(pe, chares)?,
            CtrlMsg::Stats { pe, samples, idle_us, window_us } => {
                self.on_stats(pe, samples, idle_us, window_us)?
            }
            CtrlMsg::MigArrived { chare } => self.on_arrival(chare)?,
            CtrlMsg::WorkerDied { pe, detail } => self.recover(pe, detail)?,
            CtrlMsg::Final { .. } => {
                return Err(RuntimeError::Protocol("Final before Shutdown".into()));
            }
            // Trailing acks from an interrupted recovery attempt; the
            // live attempt's wait loops already got what they needed.
            CtrlMsg::RolledBack { .. } | CtrlMsg::Restored { .. } => {}
        }
        Ok(())
    }

    /// All live chares are parked: snapshot first (if due), then run LB.
    fn barrier_full(&mut self) {
        if self.checkpoint_due() {
            self.phase = Phase::Checkpointing;
            self.ckpt_replies = vec![None; self.seed.cfg.pes];
            self.broadcast(|| WorkerMsg::Checkpoint);
        } else {
            self.start_collect();
        }
    }

    fn checkpoint_due(&self) -> bool {
        self.store.usable && self.seed.cfg.checkpoints.due(self.barrier_iter)
    }

    fn start_collect(&mut self) {
        self.phase = Phase::Collecting;
        self.stats_replies = vec![None; self.seed.cfg.pes];
        self.broadcast(|| WorkerMsg::CollectStats);
    }

    fn on_checkpoint_data(
        &mut self,
        pe: usize,
        chares: Option<Vec<ChareCheckpoint>>,
    ) -> Result<(), RuntimeError> {
        if self.phase != Phase::Checkpointing {
            return Err(RuntimeError::Protocol(format!(
                "checkpoint data from pe {pe} during {}",
                self.phase.label()
            )));
        }
        self.ckpt_replies[pe] = Some(chares);
        if !self.ckpt_replies.iter().all(Option::is_some) {
            return Ok(());
        }
        let replies: Vec<Option<Vec<ChareCheckpoint>>> =
            self.ckpt_replies.iter_mut().map(|r| r.take().expect("checked")).collect();
        if replies.iter().any(Option::is_none) {
            // Some chare does not PUP; checkpointing is off for good.
            self.store.usable = false;
        } else {
            let all: Vec<ChareCheckpoint> = replies.into_iter().flatten().flatten().collect();
            if all.len() != self.n {
                return Err(RuntimeError::Protocol(format!(
                    "checkpoint covers {} of {} chares",
                    all.len(),
                    self.n
                )));
            }
            self.store.install(self.barrier_iter, all);
            self.checkpoints += 1;
        }
        self.start_collect();
        Ok(())
    }

    fn on_stats(
        &mut self,
        pe: usize,
        samples: Vec<ThreadSample>,
        idle_us: u64,
        window_us: u64,
    ) -> Result<(), RuntimeError> {
        if self.phase != Phase::Collecting {
            return Err(RuntimeError::Protocol(format!(
                "stats from pe {pe} during {}",
                self.phase.label()
            )));
        }
        self.stats_replies[pe] = Some((samples, idle_us, window_us));
        if !self.stats_replies.iter().all(Option::is_some) {
            return Ok(());
        }
        let cfg = &self.seed.cfg;
        // Build the LB database (Eq. 1–3) from observables.
        let mut db = LbStats::new(cfg.pes);
        let mut per_task = vec![(0u64, 0u64); self.n];
        let mut pe_task_us = vec![0u64; cfg.pes];
        let mut bg = vec![0.0f64; cfg.pes];
        for (pe, reply) in self.stats_replies.iter_mut().enumerate() {
            let (samples, idle_us, window_us) = reply.take().expect("checked");
            for s in &samples {
                per_task[s.chare].0 += s.cpu_us;
                per_task[s.chare].1 += s.wall_us;
                pe_task_us[pe] += match cfg.lb.instrument {
                    InstrumentMode::CpuTime => s.cpu_us,
                    InstrumentMode::WallTime => s.wall_us,
                };
            }
            bg[pe] =
                (window_us.saturating_sub(pe_task_us[pe]).saturating_sub(idle_us)) as f64 / 1e6;
        }
        db.bg_load = bg;
        db.tasks = (0..self.n)
            .map(|i| TaskInfo {
                id: TaskId(i as u64),
                pe: self.seed.mapping[i].load(Ordering::SeqCst),
                load: match cfg.lb.instrument {
                    InstrumentMode::CpuTime => per_task[i].0,
                    InstrumentMode::WallTime => per_task[i].1,
                } as f64
                    / 1e6,
                bytes: self.seed.app.state_bytes(i) as u64,
            })
            .collect();
        let plan = self.strategy.plan(&db);
        cloudlb_balance::strategy::validate_plan(&db, &plan);
        self.lb_steps += 1;
        self.migrations += plan.len();
        // Commit the mapping *before* any movement so ghosts route to the
        // new owners.
        for m in &plan {
            self.seed.mapping[m.task.0 as usize].store(m.to, Ordering::SeqCst);
        }
        self.planned = plan.iter().map(|m| (m.task.0 as usize, m.to)).collect();
        self.pending_arrivals = plan.len();
        if plan.is_empty() {
            self.resume();
        } else {
            self.phase = Phase::Migrating;
            let mut by_src: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
            for m in &plan {
                by_src.entry(m.from).or_default().push((m.task.0 as usize, m.to));
            }
            for (src, moves) in by_src {
                let _ = self.worker_tx[src].send(WorkerMsg::DoMigrations(moves));
            }
        }
        Ok(())
    }

    fn on_arrival(&mut self, chare: usize) -> Result<(), RuntimeError> {
        if self.phase != Phase::Migrating || !self.planned.iter().any(|(c, _)| *c == chare) {
            return Err(RuntimeError::Protocol(format!("unexpected migration arrival {chare}")));
        }
        self.pending_arrivals -= 1;
        if self.pending_arrivals == 0 {
            self.resume();
        }
        Ok(())
    }

    fn resume(&mut self) {
        self.phase = Phase::Computing;
        self.parked.clear();
        self.broadcast(|| WorkerMsg::Resume);
    }

    /// Global rollback after a worker death: respawn, roll every worker
    /// back, restore all chares from the last checkpoint, resume. Loops
    /// if further workers die mid-recovery; bounded by `max_restarts`.
    fn recover(&mut self, dead_pe: usize, detail: String) -> Result<(), RuntimeError> {
        let (mut dead_pe, mut detail) = (dead_pe, detail);
        'attempt: loop {
            if !self.store.restorable(self.n) {
                return Err(RuntimeError::WorkerPanicked { pe: dead_pe, detail });
            }
            self.restarts += 1;
            if self.restarts > self.seed.cfg.max_restarts {
                return Err(RuntimeError::TooManyRestarts {
                    pe: dead_pe,
                    attempts: self.restarts - 1,
                });
            }
            // Exponential backoff: a crash loop should not spin the CPU.
            let exp = (self.restarts - 1).min(6) as u32;
            std::thread::sleep(self.seed.cfg.restart_backoff * 2u32.pow(exp));

            // Respawn the dead PE on a fresh channel and a new epoch.
            let (tx, rx) = channel();
            self.worker_tx[dead_pe] = tx;
            self.epoch += 1;
            spawn_worker(
                self.scope,
                self.seed.clone(),
                dead_pe,
                rx,
                self.worker_tx.clone(),
                self.epoch,
                true,
            );
            self.broadcast(|| WorkerMsg::Rollback {
                epoch: self.epoch,
                peers: self.worker_tx.clone(),
            });

            // Wait until every worker has discarded pre-rollback state.
            let mut acked = vec![false; self.seed.cfg.pes];
            while !acked.iter().all(|&a| a) {
                match self.recv()? {
                    CtrlMsg::RolledBack { pe, epoch } if epoch == self.epoch => acked[pe] = true,
                    CtrlMsg::WorkerDied { pe, detail: d } => {
                        (dead_pe, detail) = (pe, d);
                        continue 'attempt;
                    }
                    // Anything else predates the rollback and is stale.
                    _ => {}
                }
            }

            // Re-install every chare from the checkpoint at its current
            // mapping owner (the placement the LB last committed).
            let mut expected = 0usize;
            for ck in self.store.chares.values() {
                let dst = self.seed.mapping[ck.chare].load(Ordering::SeqCst);
                if self.worker_tx[dst].send(WorkerMsg::Restore(ck.clone())).is_ok() {
                    expected += 1;
                }
            }
            let mut restored = 0usize;
            while restored < expected {
                match self.recv()? {
                    CtrlMsg::Restored { .. } => restored += 1,
                    CtrlMsg::WorkerDied { pe, detail: d } => {
                        (dead_pe, detail) = (pe, d);
                        continue 'attempt;
                    }
                    _ => {}
                }
            }

            // Reset protocol state and replay from the checkpoint.
            self.parked.clear();
            self.finished.clear();
            self.stats_replies = vec![None; self.seed.cfg.pes];
            self.ckpt_replies = vec![None; self.seed.cfg.pes];
            self.planned.clear();
            self.pending_arrivals = 0;
            self.resume();
            return Ok(());
        }
    }

    /// All chares done: collect final state.
    fn shutdown(&mut self) -> Result<ThreadRunResult, RuntimeError> {
        let mut expected = 0usize;
        for tx in &self.worker_tx {
            if tx.send(WorkerMsg::Shutdown).is_ok() {
                expected += 1;
            }
        }
        let mut checksums = BTreeMap::new();
        let mut per_pe_task_us = vec![0u64; self.seed.cfg.pes];
        let mut finals = 0usize;
        while finals < expected {
            match self.recv()? {
                CtrlMsg::Final { pe, checksums: cs, total_task_us } => {
                    for (chare, sum) in cs {
                        checksums.insert(chare, sum);
                    }
                    per_pe_task_us[pe] = total_task_us;
                    finals += 1;
                }
                CtrlMsg::WorkerDied { .. } => expected = expected.saturating_sub(1),
                _ => {} // stragglers from the main phase are benign here
            }
        }
        if checksums.len() != self.n {
            return Err(RuntimeError::Protocol(format!(
                "final report covers {} of {} chares",
                checksums.len(),
                self.n
            )));
        }
        Ok(ThreadRunResult {
            wall: std::time::Duration::ZERO, // filled by caller
            checksums,
            lb_steps: self.lb_steps,
            migrations: self.migrations,
            final_mapping: self
                .seed
                .mapping
                .iter()
                .map(|m| m.load(Ordering::SeqCst))
                .collect(),
            per_pe_task_us,
            restarts: self.restarts,
            checkpoints: self.checkpoints,
        })
    }
}

struct Worker<'a> {
    pe: usize,
    app: &'a dyn IterativeApp,
    cfg: ThreadRunConfig,
    rx: Receiver<WorkerMsg>,
    txs: Vec<Sender<WorkerMsg>>,
    ctrl: Sender<CtrlMsg>,
    mapping: Arc<Vec<AtomicUsize>>,
    start: Instant,
    fired: Arc<Vec<AtomicBool>>,
    epoch: usize,

    kernels: HashMap<usize, Box<dyn crate::program::ChareKernel>>,
    next_iter: HashMap<usize, usize>,
    /// Buffered ghosts: (chare, iter) → entries. May hold data for chares
    /// not (yet) owned here.
    inbox: HashMap<(usize, usize), InboxEntry>,
    ready: VecDeque<usize>,
    parked: HashSet<usize>,
    in_lb: bool,

    samples: Vec<ThreadSample>,
    idle_us: u64,
    window_start_us: u64,
    total_task_us: u64,
}

impl<'a> Worker<'a> {
    fn new(
        pe: usize,
        seed: WorkerSeed<'a>,
        rx: Receiver<WorkerMsg>,
        txs: Vec<Sender<WorkerMsg>>,
        epoch: usize,
        fresh: bool,
    ) -> Self {
        let WorkerSeed { app, cfg, mapping, ctrl, start, fired } = seed;
        let mut kernels = HashMap::new();
        let mut next_iter = HashMap::new();
        // A fresh (replacement) worker starts empty and waits for its
        // chares to arrive via `Restore`.
        if !fresh {
            for chare in 0..app.num_chares() {
                if mapping[chare].load(Ordering::SeqCst) == pe {
                    kernels.insert(chare, app.make_kernel(chare));
                    next_iter.insert(chare, 0usize);
                }
            }
        }
        Worker {
            pe,
            app,
            cfg,
            rx,
            txs,
            ctrl,
            mapping,
            start,
            fired,
            epoch,
            ready: kernels
                .keys()
                .copied()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect(),
            kernels,
            next_iter,
            inbox: HashMap::new(),
            parked: HashSet::new(),
            in_lb: fresh,
            samples: Vec::new(),
            idle_us: 0,
            window_start_us: 0,
            total_task_us: 0,
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn bg_weight(&self, iter: usize) -> f64 {
        self.cfg
            .bg
            .iter()
            .filter(|b| b.pe == self.pe && (b.from_iter..b.to_iter).contains(&iter))
            .map(|b| b.weight)
            .sum()
    }

    /// Report to the coordinator; failure means it is gone and the run is
    /// already over, so the worker unwinds quietly with a typed error.
    fn ctrl_send(&self, msg: CtrlMsg) -> Result<(), RuntimeError> {
        self.ctrl.send(msg).map_err(|_| RuntimeError::ChannelClosed {
            endpoint: format!("control queue from pe {}", self.pe),
        })
    }

    fn run(mut self) -> Result<(), RuntimeError> {
        loop {
            // Execute everything ready (unless an LB step is in progress).
            while !self.in_lb {
                let Some(chare) = self.ready.pop_front() else { break };
                self.execute(chare)?;
            }
            // Block for the next message, accounting the wait as idle.
            let t0 = Instant::now();
            // All senders gone: orderly teardown (run already ended).
            let Ok(msg) = self.rx.recv() else { return Ok(()) };
            self.idle_us += t0.elapsed().as_micros() as u64;
            if !self.handle(msg)? {
                return Ok(());
            }
        }
    }

    /// Fire any injected fault scheduled for this PE and iteration.
    /// The shared `fired` flags make each fault one-shot across restarts.
    fn maybe_inject(&self, iter: usize) {
        for (ix, f) in self.cfg.inject.iter().enumerate() {
            match *f {
                ThreadFault::Panic { pe, iter: at }
                    if pe == self.pe && at == iter && !self.fired[ix].swap(true, Ordering::SeqCst) =>
                {
                    panic!("injected fault: worker {pe} panics at iteration {at}");
                }
                ThreadFault::Hang { pe, iter: at, ms }
                    if pe == self.pe && at == iter && !self.fired[ix].swap(true, Ordering::SeqCst) =>
                {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                _ => {}
            }
        }
    }

    fn execute(&mut self, chare: usize) -> Result<(), RuntimeError> {
        let iter = self.next_iter[&chare];
        self.maybe_inject(iter);
        let mut entries = self.inbox.remove(&(chare, iter)).unwrap_or_default();
        // Protocol guarantee: inbox sorted by sender, so float accumulation
        // order (and therefore checksums) is independent of message timing.
        entries.sort_by_key(|e| e.0);
        let kernel = self.kernels.get_mut(&chare).expect("ready implies owned");

        let t0 = Instant::now();
        let out = kernel.compute(iter, &entries);
        let cpu_us = t0.elapsed().as_micros().max(1) as u64;

        // Inject interference: burn weight × cpu of extra wall time, the
        // schedule a fair-share OS would have imposed.
        let w = self.bg_weight(iter);
        if w > 0.0 {
            let burn = std::time::Duration::from_micros((cpu_us as f64 * w) as u64);
            let spin = Instant::now();
            while spin.elapsed() < burn {
                std::hint::spin_loop();
            }
        }
        let wall_us = t0.elapsed().as_micros().max(1) as u64;
        self.samples.push(ThreadSample { chare, cpu_us, wall_us });
        self.total_task_us += cpu_us;

        // Route ghosts for the next iteration. A send to a dead peer is
        // dropped silently: its death notification is already en route and
        // the rollback will replay this iteration anyway.
        let next = iter + 1;
        if next < self.cfg.iterations {
            for (nb, data) in out {
                let dst = self.mapping[nb].load(Ordering::SeqCst);
                if dst == self.pe {
                    self.handle_ghost(nb, next, chare, data);
                } else {
                    let _ = self.txs[dst].send(WorkerMsg::Ghost {
                        chare: nb,
                        iter: next,
                        from: chare,
                        data,
                        epoch: self.epoch,
                    });
                }
            }
        }

        *self.next_iter.get_mut(&chare).expect("owned") = next;
        if next >= self.cfg.iterations {
            self.ctrl_send(CtrlMsg::Finished { chare })?;
        } else if next.is_multiple_of(self.cfg.lb.period) {
            self.parked.insert(chare);
            self.ctrl_send(CtrlMsg::Parked { pe: self.pe, chare, iter: next })?;
        } else {
            self.check_ready(chare);
        }
        Ok(())
    }

    fn check_ready(&mut self, chare: usize) {
        if self.parked.contains(&chare) || !self.kernels.contains_key(&chare) {
            return;
        }
        let Some(&iter) = self.next_iter.get(&chare) else { return };
        if iter >= self.cfg.iterations {
            return;
        }
        let have = self.inbox.get(&(chare, iter)).map_or(0, |v| v.len());
        // Iteration 0 consumes no ghosts (they feed iterations ≥ 1), so a
        // chare restored to the initial checkpoint is immediately ready.
        let expected = if iter == 0 { 0 } else { self.app.neighbors(chare).len() };
        if have >= expected && !self.ready.contains(&chare) {
            self.ready.push_back(chare);
        }
    }

    fn handle_ghost(&mut self, chare: usize, iter: usize, from: usize, data: Vec<f64>) {
        let owner = self.mapping[chare].load(Ordering::SeqCst);
        if owner != self.pe {
            // The chare moved (or never lived here): forward.
            let _ = self.txs[owner].send(WorkerMsg::Ghost {
                chare,
                iter,
                from,
                data,
                epoch: self.epoch,
            });
            return;
        }
        self.inbox.entry((chare, iter)).or_default().push((from, data));
        self.check_ready(chare);
    }

    /// Install a migrated-in chare; it stays parked until Resume.
    fn install(
        &mut self,
        chare: usize,
        kernel: Box<dyn crate::program::ChareKernel>,
        next_iter: usize,
        pending: HashMap<usize, InboxEntry>,
    ) -> Result<(), RuntimeError> {
        self.kernels.insert(chare, kernel);
        self.next_iter.insert(chare, next_iter);
        for (iter, mut entries) in pending {
            self.inbox.entry((chare, iter)).or_default().append(&mut entries);
        }
        self.parked.insert(chare);
        self.ctrl_send(CtrlMsg::MigArrived { chare })
    }

    /// Returns `Ok(false)` on shutdown.
    fn handle(&mut self, msg: WorkerMsg) -> Result<bool, RuntimeError> {
        match msg {
            WorkerMsg::Ghost { chare, iter, from, data, epoch } => {
                // Stale epochs predate a rollback; those iterations will
                // be replayed, so the data must not be double-counted.
                if epoch == self.epoch {
                    self.handle_ghost(chare, iter, from, data);
                }
            }
            WorkerMsg::CollectStats => {
                self.in_lb = true;
                let now = self.now_us();
                let samples = std::mem::take(&mut self.samples);
                self.ctrl_send(CtrlMsg::Stats {
                    pe: self.pe,
                    samples,
                    idle_us: self.idle_us,
                    window_us: now - self.window_start_us,
                })?;
            }
            WorkerMsg::DoMigrations(moves) => {
                for (chare, to) in moves {
                    let kernel = self.kernels.remove(&chare).expect("migrating owned chare");
                    let next_iter = self.next_iter.remove(&chare).expect("owned");
                    self.parked.remove(&chare);
                    let pending: HashMap<usize, InboxEntry> = {
                        let keys: Vec<(usize, usize)> = self
                            .inbox
                            .keys()
                            .filter(|(c, _)| *c == chare)
                            .copied()
                            .collect();
                        keys.into_iter()
                            .map(|k| (k.1, self.inbox.remove(&k).expect("present")))
                            .collect()
                    };
                    let msg = if self.cfg.serialize_migration {
                        let bytes = kernel.pack().unwrap_or_else(|| {
                            panic!("serialize_migration set but chare {chare} does not pack")
                        });
                        WorkerMsg::MigrateBytes {
                            chare,
                            bytes,
                            next_iter,
                            pending,
                            epoch: self.epoch,
                        }
                    } else {
                        WorkerMsg::Migrate { chare, kernel, next_iter, pending, epoch: self.epoch }
                    };
                    let _ = self.txs[to].send(msg);
                }
            }
            WorkerMsg::Migrate { chare, kernel, next_iter, pending, epoch } => {
                if epoch == self.epoch {
                    self.install(chare, kernel, next_iter, pending)?;
                }
            }
            WorkerMsg::MigrateBytes { chare, bytes, next_iter, pending, epoch } => {
                if epoch == self.epoch {
                    let kernel = self.app.unpack_kernel(chare, &bytes).unwrap_or_else(|| {
                        panic!("received PUPed chare {chare} but the app cannot unpack")
                    });
                    self.install(chare, kernel, next_iter, pending)?;
                }
            }
            WorkerMsg::Checkpoint => {
                // All chares are parked (full barrier) and every ghost for
                // the boundary iteration has been delivered (causal FIFO;
                // see module docs), so this snapshot is consistent.
                self.in_lb = true;
                let mut chares: Vec<usize> = self.kernels.keys().copied().collect();
                chares.sort_unstable();
                let mut out = Vec::with_capacity(chares.len());
                let mut ok = true;
                for chare in chares {
                    match self.kernels[&chare].pack() {
                        Some(bytes) => {
                            let pending: Vec<(usize, InboxEntry)> = self
                                .inbox
                                .iter()
                                .filter(|((c, _), _)| *c == chare)
                                .map(|((_, it), e)| (*it, e.clone()))
                                .collect();
                            out.push(ChareCheckpoint {
                                chare,
                                bytes,
                                next_iter: self.next_iter[&chare],
                                pending,
                                owner: self.pe,
                            });
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                self.ctrl_send(CtrlMsg::CheckpointData {
                    pe: self.pe,
                    chares: ok.then_some(out),
                })?;
            }
            WorkerMsg::Rollback { epoch, peers } => {
                // A peer died. Drop everything from before the failure;
                // our chares come back via Restore, everyone else's state
                // is replayed from the checkpoint.
                self.epoch = epoch;
                self.txs = peers;
                self.kernels.clear();
                self.next_iter.clear();
                self.inbox.clear();
                self.ready.clear();
                self.parked.clear();
                self.samples.clear();
                self.idle_us = 0;
                self.in_lb = true; // hold until Resume
                self.ctrl_send(CtrlMsg::RolledBack { pe: self.pe, epoch })?;
            }
            WorkerMsg::Restore(ck) => {
                let kernel = self.app.unpack_kernel(ck.chare, &ck.bytes).unwrap_or_else(|| {
                    panic!("restore: app cannot unpack chare {}", ck.chare)
                });
                self.kernels.insert(ck.chare, kernel);
                self.next_iter.insert(ck.chare, ck.next_iter);
                for (iter, entries) in ck.pending {
                    self.inbox.entry((ck.chare, iter)).or_default().extend(entries);
                }
                self.parked.insert(ck.chare);
                self.ctrl_send(CtrlMsg::Restored { chare: ck.chare })?;
            }
            WorkerMsg::Resume => {
                self.in_lb = false;
                self.idle_us = 0;
                self.window_start_us = self.now_us();
                let owned: Vec<usize> = {
                    let mut v: Vec<usize> = self.parked.drain().collect();
                    v.sort_unstable();
                    v
                };
                for chare in owned {
                    self.check_ready(chare);
                }
            }
            WorkerMsg::Shutdown => {
                let checksums =
                    self.kernels.iter().map(|(c, k)| (*c, k.checksum())).collect::<Vec<_>>();
                self.ctrl_send(CtrlMsg::Final {
                    pe: self.pe,
                    checksums,
                    total_task_us: self.total_task_us,
                })?;
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Single-threaded reference execution: runs every chare's kernel in
/// program order and returns the final checksums. Used to prove that
/// parallel execution with migrations computes the same numbers.
pub fn serial_reference(app: &dyn IterativeApp, iterations: usize) -> BTreeMap<usize, f64> {
    let n = app.num_chares();
    let mut kernels: Vec<_> = (0..n).map(|i| app.make_kernel(i)).collect();
    // inbox[chare] for the current iteration.
    let mut inbox: Vec<InboxEntry> = vec![Vec::new(); n];
    for iter in 0..iterations {
        let mut next_inbox: Vec<InboxEntry> = vec![Vec::new(); n];
        for (chare, kernel) in kernels.iter_mut().enumerate() {
            // Same protocol guarantee as the workers: sorted by sender.
            inbox[chare].sort_by_key(|e| e.0);
            let out = kernel.compute(iter, &inbox[chare]);
            for (nb, data) in out {
                next_inbox[nb].push((chare, data));
            }
        }
        inbox = next_inbox;
    }
    kernels.iter().enumerate().map(|(i, k)| (i, k.checksum())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SyntheticApp;

    fn cfg(pes: usize, iters: usize, strategy: &str, period: usize) -> ThreadRunConfig {
        ThreadRunConfig {
            lb: LbConfig { strategy: strategy.into(), period, ..Default::default() },
            ..ThreadRunConfig::new(pes, iters)
        }
    }

    #[test]
    fn parallel_matches_serial_reference_without_lb() {
        let app = SyntheticApp::ring(12, 0.0);
        let r = ThreadExecutor::run(&app, cfg(3, 8, "nolb", 4)).expect("run");
        let reference = serial_reference(&app, 8);
        assert_eq!(r.checksums, reference);
        assert_eq!(r.migrations, 0);
        // Boundaries fall before iteration 4 only (iteration 8 is the end).
        assert_eq!(r.lb_steps, 1);
        assert_eq!(r.restarts, 0);
        // Initial snapshot plus the boundary at iteration 4.
        assert_eq!(r.checkpoints, 2);
    }

    #[test]
    fn migrations_preserve_numerics() {
        // Interference on pe0 forces the balancer to move live chares; the
        // computation must be unaffected.
        let app = SyntheticApp::ring(16, 0.0);
        let mut c = cfg(4, 12, "cloudrefine", 4);
        c.bg.push(ThreadBg { pe: 0, from_iter: 0, to_iter: 12, weight: 3.0 });
        let r = ThreadExecutor::run(&app, c).expect("run");
        let reference = serial_reference(&app, 12);
        assert_eq!(r.checksums, reference);
        assert!(r.lb_steps >= 1);
    }

    #[test]
    fn greedy_forces_migrations_and_stays_correct() {
        let app = SyntheticApp::ring(10, 0.0);
        let r = ThreadExecutor::run(&app, cfg(2, 9, "greedy", 3)).expect("run");
        assert_eq!(r.checksums, serial_reference(&app, 9));
        // Greedy rebalances from scratch; with 10 chares on 2 pes it
        // almost surely moves something at some step.
        assert!(r.final_mapping.iter().all(|&p| p < 2));
    }

    #[test]
    fn single_pe_run_works() {
        let app = SyntheticApp::ring(5, 0.0);
        let r = ThreadExecutor::run(&app, cfg(1, 6, "cloudrefine", 2)).expect("run");
        assert_eq!(r.checksums, serial_reference(&app, 6));
        assert_eq!(r.final_mapping, vec![0; 5]);
    }

    #[test]
    fn serialized_migration_matches_move_migration() {
        let app = SyntheticApp::ring(16, 0.0);
        let mut c = cfg(4, 12, "cloudrefine", 4);
        c.bg.push(ThreadBg { pe: 0, from_iter: 0, to_iter: 12, weight: 3.0 });
        c.serialize_migration = true;
        let r = ThreadExecutor::run(&app, c).expect("run");
        assert_eq!(r.checksums, serial_reference(&app, 12));
    }

    #[test]
    fn period_longer_than_run_means_no_lb() {
        let app = SyntheticApp::ring(6, 0.0);
        let r = ThreadExecutor::run(&app, cfg(2, 5, "cloudrefine", 50)).expect("run");
        assert_eq!(r.lb_steps, 0);
        assert_eq!(r.migrations, 0);
        assert_eq!(r.checksums, serial_reference(&app, 5));
    }

    #[test]
    fn more_workers_than_chares() {
        let app = SyntheticApp::ring(3, 0.0);
        let r = ThreadExecutor::run(&app, cfg(6, 4, "cloudrefine", 2)).expect("run");
        assert_eq!(r.checksums, serial_reference(&app, 4));
        assert!(r.final_mapping.iter().all(|&p| p < 6));
    }

    #[test]
    fn interference_on_multiple_workers_still_correct() {
        let app = SyntheticApp::ring(16, 0.0);
        let mut c = cfg(4, 12, "cloudrefine", 4);
        c.bg.push(ThreadBg { pe: 0, from_iter: 0, to_iter: 6, weight: 2.0 });
        c.bg.push(ThreadBg { pe: 2, from_iter: 6, to_iter: 12, weight: 3.0 });
        let r = ThreadExecutor::run(&app, c).expect("run");
        assert_eq!(r.checksums, serial_reference(&app, 12));
    }

    #[test]
    fn per_pe_task_time_is_recorded() {
        let app = SyntheticApp::ring(8, 0.0);
        let r = ThreadExecutor::run(&app, cfg(2, 4, "nolb", 2)).expect("run");
        assert_eq!(r.per_pe_task_us.len(), 2);
        assert!(r.per_pe_task_us.iter().all(|&us| us > 0));
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let app = SyntheticApp::ring(4, 0.0);
        assert!(matches!(
            ThreadExecutor::run(&app, cfg(0, 4, "nolb", 2)),
            Err(RuntimeError::InvalidConfig(_))
        ));
        assert!(matches!(
            ThreadExecutor::run(&app, cfg(2, 0, "nolb", 2)),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn injected_panic_recovers_and_matches_reference() {
        let app = SyntheticApp::ring(12, 0.0);
        let mut c = cfg(4, 12, "cloudrefine", 3);
        // Inject inside the first LB window: placement is still the initial
        // one there, so PE 2 definitely executes iteration 1. (Later windows
        // depend on measured stats, which real threads make nondeterministic.)
        c.inject.push(ThreadFault::Panic { pe: 2, iter: 1 });
        let r = ThreadExecutor::run(&app, c).expect("recovered run completes");
        assert_eq!(r.restarts, 1);
        assert_eq!(r.checksums, serial_reference(&app, 12));
    }

    #[test]
    fn panic_without_checkpoints_fails_gracefully() {
        let app = SyntheticApp::ring(8, 0.0);
        let mut c = cfg(2, 8, "nolb", 4);
        c.checkpoints = CheckpointPolicy::Disabled;
        c.inject.push(ThreadFault::Panic { pe: 1, iter: 2 });
        match ThreadExecutor::run(&app, c) {
            Err(RuntimeError::WorkerPanicked { pe, detail }) => {
                assert_eq!(pe, 1);
                assert!(detail.contains("injected fault"), "detail: {detail}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn restart_budget_is_enforced() {
        let app = SyntheticApp::ring(8, 0.0);
        let mut c = cfg(2, 12, "nolb", 3);
        c.max_restarts = 2;
        c.inject.push(ThreadFault::Panic { pe: 0, iter: 1 });
        c.inject.push(ThreadFault::Panic { pe: 0, iter: 2 });
        c.inject.push(ThreadFault::Panic { pe: 1, iter: 4 });
        match ThreadExecutor::run(&app, c) {
            Err(RuntimeError::TooManyRestarts { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected TooManyRestarts, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_catches_hung_worker() {
        let app = SyntheticApp::ring(8, 0.0);
        let mut c = cfg(2, 8, "nolb", 4);
        c.watchdog = Duration::from_millis(250);
        c.inject.push(ThreadFault::Hang { pe: 1, iter: 2, ms: 2000 });
        match ThreadExecutor::run(&app, c) {
            Err(RuntimeError::WatchdogTimeout { .. }) => {}
            other => panic!("expected WatchdogTimeout, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_period_policy_controls_snapshot_count() {
        let app = SyntheticApp::ring(6, 0.0);
        let mut c = cfg(2, 12, "nolb", 2);
        // LB boundaries at 2,4,6,8,10; snapshots due at 4 and 8 (+initial).
        c.checkpoints = CheckpointPolicy::Period(4);
        let r = ThreadExecutor::run(&app, c).expect("run");
        assert_eq!(r.checkpoints, 3);

        let mut c = cfg(2, 12, "nolb", 2);
        c.checkpoints = CheckpointPolicy::Disabled;
        let r = ThreadExecutor::run(&app, c).expect("run");
        assert_eq!(r.checkpoints, 0);
    }
}
