//! Iteration-completion tracking (the runtime's reduction substrate).
//!
//! Charm++ applications detect iteration boundaries with contribute/reduce;
//! here a counter plays that role: every chare contributes once per
//! iteration, and when all have, the iteration's completion instant is
//! recorded. Iteration *times* — the quantity the paper's Figures 1 and 3
//! visualize as timeline lengths — are the gaps between completions.

use cloudlb_sim::{Dur, Time};

/// Tracks per-iteration completion across all chares.
#[derive(Debug)]
pub struct IterationTracker {
    num_chares: usize,
    /// Contributions received per iteration (dense, grows as needed).
    counts: Vec<usize>,
    /// Completion instant of each fully finished iteration.
    completions: Vec<Option<Time>>,
}

impl IterationTracker {
    /// Track `num_chares` contributors over `iterations` iterations.
    pub fn new(num_chares: usize, iterations: usize) -> Self {
        assert!(num_chares > 0);
        IterationTracker {
            num_chares,
            counts: vec![0; iterations],
            completions: vec![None; iterations],
        }
    }

    /// Record that one chare finished `iter` at `now`. Returns `true` when
    /// this contribution completed the iteration.
    pub fn contribute(&mut self, iter: usize, now: Time) -> bool {
        let c = &mut self.counts[iter];
        *c += 1;
        assert!(*c <= self.num_chares, "over-contribution at iteration {iter}");
        if *c == self.num_chares {
            self.completions[iter] = Some(now);
            true
        } else {
            false
        }
    }

    /// Forget all progress on iterations `from..` (recovery replay: after
    /// a rollback to the checkpoint at iteration `from`, every surviving
    /// and restored chare re-contributes those iterations from scratch).
    pub fn rollback(&mut self, from: usize) {
        for c in self.counts.iter_mut().skip(from) {
            *c = 0;
        }
        for c in self.completions.iter_mut().skip(from) {
            *c = None;
        }
    }

    /// Completion instant of `iter`, if all chares contributed.
    pub fn completion(&self, iter: usize) -> Option<Time> {
        self.completions.get(iter).copied().flatten()
    }

    /// `true` once every iteration completed.
    pub fn all_done(&self) -> bool {
        self.completions.iter().all(|c| c.is_some())
    }

    /// Per-iteration wall times (gap between consecutive completions; the
    /// first iteration is measured from time zero). Panics if incomplete.
    pub fn iteration_times(&self) -> Vec<Dur> {
        let mut prev = Time::ZERO;
        self.completions
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let t = c.unwrap_or_else(|| panic!("iteration {i} incomplete"));
                let d = t.since(prev);
                prev = t;
                d
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_only_when_all_contribute() {
        let mut tr = IterationTracker::new(3, 2);
        assert!(!tr.contribute(0, Time::from_us(10)));
        assert!(!tr.contribute(0, Time::from_us(20)));
        assert_eq!(tr.completion(0), None);
        assert!(tr.contribute(0, Time::from_us(30)));
        assert_eq!(tr.completion(0), Some(Time::from_us(30)));
        assert!(!tr.all_done());
    }

    #[test]
    fn iteration_times_are_gaps() {
        let mut tr = IterationTracker::new(1, 3);
        tr.contribute(0, Time::from_us(100));
        tr.contribute(1, Time::from_us(250));
        tr.contribute(2, Time::from_us(600));
        assert!(tr.all_done());
        let times: Vec<u64> = tr.iteration_times().iter().map(|d| d.as_us()).collect();
        assert_eq!(times, vec![100, 150, 350]);
    }

    #[test]
    fn rollback_forgets_suffix_only() {
        let mut tr = IterationTracker::new(1, 3);
        tr.contribute(0, Time::from_us(100));
        tr.contribute(1, Time::from_us(250));
        tr.rollback(1);
        assert_eq!(tr.completion(0), Some(Time::from_us(100)));
        assert_eq!(tr.completion(1), None);
        // Replay: iteration 1 may now be contributed again without
        // tripping the over-contribution assert.
        tr.contribute(1, Time::from_us(900));
        tr.contribute(2, Time::from_us(950));
        assert!(tr.all_done());
    }

    #[test]
    #[should_panic(expected = "over-contribution")]
    fn over_contribution_is_caught() {
        let mut tr = IterationTracker::new(1, 1);
        tr.contribute(0, Time::ZERO);
        tr.contribute(0, Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn times_require_completion() {
        let tr = IterationTracker::new(2, 1);
        tr.iteration_times();
    }
}
