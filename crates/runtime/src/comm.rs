//! Flat CSR (compressed sparse row) view of the application's
//! communication graph.
//!
//! [`crate::program::IterativeApp::neighbors`] allocates a fresh `Vec` per
//! call, which the executor used to pay on *every task completion* — the
//! hottest loop in the simulator. The topology never changes during a run,
//! so the executor now builds this flat adjacency once and walks plain
//! `u32` arrays instead: one `offsets` slot per chare delimiting its edge
//! range, with parallel `neighbors`/`bytes` arrays per directed edge. Both
//! the slow (event-by-event) and fast-forward paths share it.

use crate::program::IterativeApp;

/// Immutable CSR adjacency with per-edge ghost-message sizes.
///
/// Edges are directed: the edge range of chare `c` lists every neighbor
/// `nb` that `c` sends to, with `bytes` holding
/// [`IterativeApp::message_bytes`]`(c, nb)` for that direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommCsr {
    /// `offsets[c]..offsets[c + 1]` delimits chare `c`'s edges.
    offsets: Vec<u32>,
    /// Destination chare per edge.
    neighbors: Vec<u32>,
    /// Ghost-message payload per edge (bytes, in the edge's direction).
    bytes: Vec<u32>,
}

impl CommCsr {
    /// Flatten `app`'s neighbor lists. Called once per run; panics if the
    /// graph exceeds `u32` indexing (4 G chares/edges — far beyond any
    /// simulated decomposition) or a message exceeds 4 GiB.
    pub fn build(app: &dyn IterativeApp) -> Self {
        let n = app.num_chares();
        assert!(u32::try_from(n).is_ok(), "chare count {n} overflows CSR indexing");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        let mut bytes = Vec::new();
        offsets.push(0u32);
        for chare in 0..n {
            for nb in app.neighbors(chare) {
                neighbors.push(nb as u32);
                let b = app.message_bytes(chare, nb);
                bytes.push(u32::try_from(b).unwrap_or_else(|_| {
                    panic!("message {chare}->{nb} of {b} bytes overflows CSR")
                }));
            }
            let end = u32::try_from(neighbors.len()).expect("edge count overflows CSR");
            offsets.push(end);
        }
        CommCsr { offsets, neighbors, bytes }
    }

    /// Number of chares (rows).
    pub fn num_chares(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total directed edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Out-degree of `chare` — its expected ghost count per iteration
    /// (neighbor lists are symmetric, per [`crate::program::validate_app`]).
    pub fn degree(&self, chare: usize) -> usize {
        (self.offsets[chare + 1] - self.offsets[chare]) as usize
    }

    /// Edge-index range of `chare`, for indexed walks that must not hold a
    /// borrow across loop bodies.
    pub fn row(&self, chare: usize) -> std::ops::Range<usize> {
        self.offsets[chare] as usize..self.offsets[chare + 1] as usize
    }

    /// Destination of edge `e`.
    pub fn neighbor(&self, e: usize) -> usize {
        self.neighbors[e] as usize
    }

    /// Payload bytes of edge `e`.
    pub fn edge_bytes(&self, e: usize) -> usize {
        self.bytes[e] as usize
    }

    /// Iterate `(neighbor, bytes)` over `chare`'s out-edges.
    pub fn neighbors_of(&self, chare: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.row(chare).map(move |e| (self.neighbor(e), self.edge_bytes(e)))
    }

    /// Bytes `from` sends `to` per iteration, or `None` when they are not
    /// adjacent. Linear in `from`'s degree (stencil degrees are ≤ 6).
    pub fn bytes_between(&self, from: usize, to: usize) -> Option<usize> {
        self.neighbors_of(from).find(|&(nb, _)| nb == to).map(|(_, b)| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SyntheticApp;

    #[test]
    fn csr_matches_the_trait_adjacency() {
        let app = SyntheticApp::ring(16, 0.001);
        let csr = CommCsr::build(&app);
        assert_eq!(csr.num_chares(), 16);
        assert_eq!(csr.num_edges(), 32, "ring: two neighbors each");
        for chare in 0..16 {
            let want = app.neighbors(chare);
            assert_eq!(csr.degree(chare), want.len());
            let got: Vec<usize> = csr.neighbors_of(chare).map(|(nb, _)| nb).collect();
            assert_eq!(got, want, "chare {chare} adjacency");
            for (nb, bytes) in csr.neighbors_of(chare) {
                assert_eq!(bytes, app.message_bytes(chare, nb), "{chare}->{nb}");
            }
        }
    }

    #[test]
    fn indexed_row_walk_agrees_with_iterator() {
        let app = SyntheticApp::ring(8, 0.001);
        let csr = CommCsr::build(&app);
        for chare in 0..8 {
            let via_iter: Vec<(usize, usize)> = csr.neighbors_of(chare).collect();
            let via_index: Vec<(usize, usize)> =
                csr.row(chare).map(|e| (csr.neighbor(e), csr.edge_bytes(e))).collect();
            assert_eq!(via_iter, via_index);
        }
    }

    #[test]
    fn bytes_between_finds_only_real_edges() {
        let app = SyntheticApp::ring(8, 0.001);
        let csr = CommCsr::build(&app);
        assert_eq!(csr.bytes_between(0, 1), Some(app.message_bytes(0, 1)));
        assert_eq!(csr.bytes_between(0, 7), Some(app.message_bytes(0, 7)));
        assert_eq!(csr.bytes_between(0, 4), None, "ring: 0 and 4 not adjacent");
    }
}
