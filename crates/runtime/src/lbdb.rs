//! The runtime side of the load-balancing database: measurement windows
//! and the paper's background-load estimation.
//!
//! Between two LB steps ("the window", length `T_lb`) the runtime records
//! every task execution. At the LB step it combines those measurements
//! with `/proc/stat` idle counters to estimate each core's background load
//! per the paper's Eq. 2:
//!
//! ```text
//! O_p = T_lb − Σ_i t_i^p − t_idle^p
//! ```
//!
//! and produces the [`LbStats`] snapshot handed to a strategy.

use crate::config::InstrumentMode;
use cloudlb_balance::{LbStats, TaskId, TaskInfo};
use cloudlb_sim::{Dur, ProcStat, Time};
use serde::{Deserialize, Serialize};

/// Relative slack granted before a reading is flagged (counters and the
/// wall clock legitimately disagree by a scheduling quantum or two).
const REL_TOL: f64 = 0.01;

/// One core's Eq. 2 estimate with its validation verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpEstimate {
    /// Raw Eq. 2 value `T_lb − Σ t_i − t_idle`, possibly negative.
    pub raw: f64,
    /// Usable background load: `raw` clamped at zero.
    pub value: f64,
    /// Confidence in `[0, 1]`: 1.0 when the window's counters passed every
    /// plausibility check, lower the more impossible the readings were.
    pub confidence: f64,
}

/// Per-window telemetry validation counters. Under clean telemetry every
/// field stays zero; corrupted counters show up here instead of being
/// silently papered over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowQuality {
    /// Cores whose raw Eq. 2 value came out negative (an impossible
    /// background load, previously clamped without a trace).
    pub clamped_op: usize,
    /// Cores whose counters covered well under the window (`busy + idle ≪
    /// T_lb`): a dropped or stale `/proc/stat` snapshot.
    pub missing_samples: usize,
    /// Cores where the instrumented task time exceeded the window
    /// (`Σ t_i > T_lb`).
    pub task_overrun: usize,
    /// Cores reporting more idle time than the window is long
    /// (`t_idle > T_lb`).
    pub implausible_idle: usize,
}

impl WindowQuality {
    /// Accumulate another window's counters into this one.
    pub fn merge(&mut self, other: &WindowQuality) {
        self.clamped_op += other.clamped_op;
        self.missing_samples += other.missing_samples;
        self.task_overrun += other.task_overrun;
        self.implausible_idle += other.implausible_idle;
    }

    /// Total anomalies across all categories.
    pub fn total(&self) -> usize {
        self.clamped_op + self.missing_samples + self.task_overrun + self.implausible_idle
    }
}

/// One task execution measurement.
#[derive(Debug, Clone, Copy)]
pub struct TaskSample {
    /// Which chare ran.
    pub task: TaskId,
    /// Core it ran on.
    pub pe: usize,
    /// Pure CPU consumed.
    pub cpu: Dur,
    /// Wall-clock extent (≥ CPU under interference).
    pub wall: Dur,
}

/// Accumulates measurements for one LB window.
#[derive(Debug)]
pub struct LbWindow {
    num_pes: usize,
    start: Time,
    start_stat: ProcStat,
    /// Per-task accumulated (cpu, wall) this window, dense by task index.
    per_task: Vec<(Dur, Dur)>,
    /// Per-PE sum of the *instrumented* task times this window.
    pe_task_time: Vec<Dur>,
    mode: InstrumentMode,
}

impl LbWindow {
    /// Open a window at `start` with the given `/proc/stat` baseline.
    pub fn open(
        num_pes: usize,
        num_tasks: usize,
        start: Time,
        start_stat: ProcStat,
        mode: InstrumentMode,
    ) -> Self {
        assert_eq!(start_stat.cores.len(), num_pes, "procstat/PE mismatch");
        LbWindow {
            num_pes,
            start,
            start_stat,
            per_task: vec![(Dur::ZERO, Dur::ZERO); num_tasks],
            pe_task_time: vec![Dur::ZERO; num_pes],
            mode,
        }
    }

    /// Reset this window in place at `start` with a fresh `/proc/stat`
    /// baseline, reusing the per-task and per-PE buffers. The executor
    /// reopens a window at every LB boundary; recycling the two vectors
    /// keeps that path allocation-free.
    pub fn reopen(&mut self, start: Time, start_stat: ProcStat) {
        assert_eq!(start_stat.cores.len(), self.num_pes, "procstat/PE mismatch");
        self.start = start;
        self.start_stat = start_stat;
        self.per_task.fill((Dur::ZERO, Dur::ZERO));
        self.pe_task_time.fill(Dur::ZERO);
    }

    /// Record one completed task execution.
    pub fn record(&mut self, s: TaskSample) {
        debug_assert!(s.wall >= s.cpu, "wall {} < cpu {}", s.wall, s.cpu);
        let (cpu, wall) = &mut self.per_task[s.task.0 as usize];
        *cpu += s.cpu;
        *wall += s.wall;
        self.pe_task_time[s.pe] += match self.mode {
            InstrumentMode::CpuTime => s.cpu,
            InstrumentMode::WallTime => s.wall,
        };
    }

    /// Window length so far.
    pub fn elapsed(&self, now: Time) -> Dur {
        now.since(self.start)
    }

    /// The paper's Eq. 2 per core, with each reading validated against the
    /// window instead of trusted blindly.
    ///
    /// A clean window satisfies `busy + idle ≈ T_lb` and yields
    /// `raw = T_lb − Σ t_i − t_idle ≥ 0`. Each violation lowers the core's
    /// confidence multiplicatively and bumps the matching
    /// [`WindowQuality`] counter:
    ///
    /// * counter coverage `(busy + idle) / T_lb` far from 1 — dropped,
    ///   stale or jittered snapshot;
    /// * negative `raw` — the impossible case `Σ t_i + t_idle > T_lb`;
    /// * `Σ t_i > T_lb` — instrumented task time overruns the window;
    /// * `t_idle > T_lb` — more idle than wall time.
    pub fn estimate_background(
        &self,
        now: Time,
        now_stat: &ProcStat,
    ) -> (Vec<OpEstimate>, WindowQuality) {
        let t_lb = self.elapsed(now).as_secs_f64();
        let mut quality = WindowQuality::default();
        let estimates = (0..self.num_pes)
            .map(|p| self.estimate_core(p, t_lb, now_stat, &mut quality))
            .collect();
        (estimates, quality)
    }

    /// One core's Eq. 2 estimate and validation (the body of
    /// [`LbWindow::estimate_background`], shared with the allocation-free
    /// [`LbWindow::build_stats_into`] path).
    fn estimate_core(
        &self,
        p: usize,
        t_lb: f64,
        now_stat: &ProcStat,
        quality: &mut WindowQuality,
    ) -> OpEstimate {
        let idle = now_stat.idle_since(&self.start_stat, p).as_secs_f64();
        let busy = now_stat.busy_since(&self.start_stat, p).as_secs_f64();
        let tasks = self.pe_task_time[p].as_secs_f64();
        let raw = t_lb - tasks - idle;
        if t_lb <= 0.0 {
            return OpEstimate { raw: 0.0, value: 0.0, confidence: 1.0 };
        }
        let mut confidence: f64 = 1.0;
        // Counters should account for the whole window.
        let coverage = (busy + idle) / t_lb;
        let deviation = (coverage - 1.0).abs();
        if deviation > REL_TOL {
            confidence *= (1.0 - deviation).clamp(0.0, 1.0);
            if coverage < 0.5 {
                quality.missing_samples += 1;
            }
        }
        if raw < -REL_TOL * t_lb {
            quality.clamped_op += 1;
            confidence *= (1.0 + raw / t_lb).clamp(0.0, 1.0);
        }
        if tasks > (1.0 + REL_TOL) * t_lb {
            quality.task_overrun += 1;
            confidence *= (t_lb / tasks).clamp(0.0, 1.0);
        }
        if idle > (1.0 + REL_TOL) * t_lb {
            quality.implausible_idle += 1;
            confidence *= (t_lb / idle).clamp(0.0, 1.0);
        }
        OpEstimate { raw, value: raw.max(0.0), confidence }
    }

    /// The clamped Eq. 2 values only (compatibility view over
    /// [`LbWindow::estimate_background`]).
    pub fn background_loads(&self, now: Time, now_stat: &ProcStat) -> Vec<f64> {
        self.estimate_background(now, now_stat).0.into_iter().map(|e| e.value).collect()
    }

    /// Build the strategy snapshot: per-task instrumented loads, the
    /// current mapping, per-task state bytes, `O_p` per core with its
    /// confidence tags, and this window's validation counters.
    pub fn build_stats(
        &self,
        now: Time,
        now_stat: &ProcStat,
        mapping: &[usize],
        state_bytes: impl Fn(usize) -> u64,
    ) -> (LbStats, WindowQuality) {
        let mut stats = LbStats::new(self.num_pes);
        let quality = self.build_stats_into(now, now_stat, mapping, state_bytes, &mut stats);
        (stats, quality)
    }

    /// [`LbWindow::build_stats`] into a caller-owned snapshot, reusing its
    /// vectors. The executor holds one `LbStats` scratch across the whole
    /// run, so at steady state an LB boundary allocates nothing — at 1M
    /// chares the per-window task rebuild would otherwise dominate the
    /// allocator. Every field is rewritten from scratch; advisory fields
    /// (`comm`, `failed_tasks`, `doomed`, `fresh`) are cleared for the
    /// caller to refill.
    pub fn build_stats_into(
        &self,
        now: Time,
        now_stat: &ProcStat,
        mapping: &[usize],
        state_bytes: impl Fn(usize) -> u64,
        stats: &mut LbStats,
    ) -> WindowQuality {
        assert_eq!(mapping.len(), self.per_task.len(), "mapping/task mismatch");
        stats.num_pes = self.num_pes;
        stats.tasks.clear();
        stats.tasks.extend(self.per_task.iter().enumerate().map(|(i, &(cpu, wall))| TaskInfo {
            id: TaskId(i as u64),
            pe: mapping[i],
            load: match self.mode {
                InstrumentMode::CpuTime => cpu.as_secs_f64(),
                InstrumentMode::WallTime => wall.as_secs_f64(),
            },
            bytes: state_bytes(i),
        }));
        stats.comm.clear();
        stats.failed_tasks.clear();
        stats.doomed.clear();
        stats.fresh.clear();
        let t_lb = self.elapsed(now).as_secs_f64();
        let mut quality = WindowQuality::default();
        stats.bg_load.clear();
        stats.confidence.clear();
        for p in 0..self.num_pes {
            let e = self.estimate_core(p, t_lb, now_stat, &mut quality);
            stats.bg_load.push(e.value);
            stats.confidence.push(e.confidence);
        }
        stats.validate();
        quality
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudlb_sim::core_sched::CoreStat;

    fn stat(per_core: &[(u64, u64, u64)]) -> ProcStat {
        ProcStat {
            cores: per_core
                .iter()
                .map(|&(fg, bg, idle)| CoreStat { fg_us: fg, bg_us: bg, idle_us: idle })
                .collect(),
        }
    }

    #[test]
    fn eq2_recovers_background_load_exactly() {
        // Window of 10 s on 2 cores. Core 0: 4 s of tasks, 3 s bg, 3 s
        // idle. Core 1: 8 s of tasks, no bg, 2 s idle.
        let start = stat(&[(0, 0, 0), (0, 0, 0)]);
        let mut w = LbWindow::open(2, 2, Time::ZERO, start, InstrumentMode::CpuTime);
        w.record(TaskSample {
            task: TaskId(0),
            pe: 0,
            cpu: Dur::from_secs_f64(4.0),
            wall: Dur::from_secs_f64(7.0),
        });
        w.record(TaskSample {
            task: TaskId(1),
            pe: 1,
            cpu: Dur::from_secs_f64(8.0),
            wall: Dur::from_secs_f64(8.0),
        });
        let end_stat = stat(&[(4_000_000, 3_000_000, 3_000_000), (8_000_000, 0, 2_000_000)]);
        let bg = w.background_loads(Time::from_us(10_000_000), &end_stat);
        assert!((bg[0] - 3.0).abs() < 1e-9, "{bg:?}");
        assert!(bg[1].abs() < 1e-9, "{bg:?}");
    }

    #[test]
    fn wall_mode_attributes_interference_to_tasks() {
        // Same scenario under wall-time instrumentation: the task on core 0
        // absorbs its co-scheduled bg time; Eq. 2 then sees only the bg
        // that ran outside task windows.
        let start = stat(&[(0, 0, 0)]);
        let mut w = LbWindow::open(1, 1, Time::ZERO, start, InstrumentMode::WallTime);
        w.record(TaskSample {
            task: TaskId(0),
            pe: 0,
            cpu: Dur::from_secs_f64(4.0),
            wall: Dur::from_secs_f64(8.0), // 4 s of bg interleaved
        });
        // Core busy the whole 10 s: 4 fg + 6 bg, zero idle.
        let end_stat = stat(&[(4_000_000, 6_000_000, 0)]);
        let now = Time::from_us(10_000_000);
        let bg = w.background_loads(now, &end_stat);
        // 10 − 8 (wall-inflated task) − 0 idle = 2 s (the bg outside task).
        assert!((bg[0] - 2.0).abs() < 1e-9, "{bg:?}");
        let (stats, _) = w.build_stats(now, &end_stat, &[0], |_| 128);
        assert!((stats.tasks[0].load - 8.0).abs() < 1e-9);
    }

    #[test]
    fn eq2_clamps_negative_noise_and_counts_it() {
        let start = stat(&[(0, 0, 0)]);
        let mut w = LbWindow::open(1, 1, Time::ZERO, start, InstrumentMode::CpuTime);
        w.record(TaskSample {
            task: TaskId(0),
            pe: 0,
            cpu: Dur::from_secs_f64(6.0),
            wall: Dur::from_secs_f64(6.0),
        });
        // Idle counter claims 5 s: 10 − 6 − 5 < 0 → clamp, but counted.
        let end_stat = stat(&[(6_000_000, 0, 5_000_000)]);
        let now = Time::from_us(10_000_000);
        let bg = w.background_loads(now, &end_stat);
        assert_eq!(bg[0], 0.0);
        let (estimates, quality) = w.estimate_background(now, &end_stat);
        assert!((estimates[0].raw - (-1.0)).abs() < 1e-9, "{estimates:?}");
        assert_eq!(quality.clamped_op, 1);
        assert!(estimates[0].confidence < 1.0, "impossible reading must cost confidence");
    }

    #[test]
    fn clean_window_has_full_confidence_and_no_anomalies() {
        let start = stat(&[(0, 0, 0), (0, 0, 0)]);
        let mut w = LbWindow::open(2, 2, Time::ZERO, start, InstrumentMode::CpuTime);
        w.record(TaskSample {
            task: TaskId(0),
            pe: 0,
            cpu: Dur::from_secs_f64(4.0),
            wall: Dur::from_secs_f64(4.0),
        });
        let end_stat = stat(&[(4_000_000, 3_000_000, 3_000_000), (0, 0, 10_000_000)]);
        let now = Time::from_us(10_000_000);
        let (estimates, quality) = w.estimate_background(now, &end_stat);
        assert_eq!(quality, WindowQuality::default());
        assert!(estimates.iter().all(|e| e.confidence == 1.0), "{estimates:?}");
        let (stats, _) = w.build_stats(now, &end_stat, &[0, 1], |_| 0);
        assert_eq!(stats.confidence, vec![1.0, 1.0]);
    }

    #[test]
    fn stale_counters_flagged_as_missing_sample() {
        // The end snapshot froze at the window open: zero coverage.
        let start = stat(&[(0, 0, 0)]);
        let w = LbWindow::open(1, 1, Time::ZERO, start, InstrumentMode::CpuTime);
        let end_stat = stat(&[(0, 0, 0)]);
        let (estimates, quality) = w.estimate_background(Time::from_us(10_000_000), &end_stat);
        assert_eq!(quality.missing_samples, 1);
        assert!(estimates[0].confidence < 0.1, "{estimates:?}");
        // The phantom O_p (all 10 s look like background) is still clamped
        // into the usable value but carries ~zero confidence.
        assert!((estimates[0].value - 10.0).abs() < 1e-9);
    }

    #[test]
    fn implausible_idle_and_task_overrun_detected() {
        let start = stat(&[(0, 0, 0), (0, 0, 0)]);
        let mut w = LbWindow::open(2, 2, Time::ZERO, start, InstrumentMode::CpuTime);
        // Core 0: tasks claim 15 s inside a 10 s window.
        w.record(TaskSample {
            task: TaskId(0),
            pe: 0,
            cpu: Dur::from_secs_f64(15.0),
            wall: Dur::from_secs_f64(15.0),
        });
        // Core 1: idle counter claims 14 s inside a 10 s window.
        let end_stat = stat(&[(10_000_000, 0, 0), (0, 0, 14_000_000)]);
        let (estimates, quality) = w.estimate_background(Time::from_us(10_000_000), &end_stat);
        assert_eq!(quality.task_overrun, 1);
        assert_eq!(quality.implausible_idle, 1);
        assert_eq!(quality.clamped_op, 2, "both cores' raw Eq. 2 went negative");
        assert!(estimates[0].confidence < 1.0 && estimates[1].confidence < 1.0);
    }

    #[test]
    fn window_quality_merge_accumulates() {
        let mut a = WindowQuality { clamped_op: 1, missing_samples: 2, ..Default::default() };
        let b = WindowQuality { clamped_op: 3, implausible_idle: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.clamped_op, 4);
        assert_eq!(a.missing_samples, 2);
        assert_eq!(a.implausible_idle, 1);
        assert_eq!(a.total(), 7);
    }

    #[test]
    fn build_stats_uses_mapping_and_bytes() {
        let start = stat(&[(0, 0, 0), (0, 0, 0)]);
        let mut w = LbWindow::open(2, 3, Time::ZERO, start, InstrumentMode::CpuTime);
        for (i, pe) in [(0u64, 1usize), (1, 0), (2, 1)] {
            w.record(TaskSample {
                task: TaskId(i),
                pe,
                cpu: Dur::from_ms(10 * (i + 1)),
                wall: Dur::from_ms(10 * (i + 1)),
            });
        }
        let end_stat = stat(&[(20_000, 0, 980_000), (40_000, 0, 960_000)]);
        let (stats, _) =
            w.build_stats(Time::from_us(1_000_000), &end_stat, &[1, 0, 1], |i| 100 + i as u64);
        assert_eq!(stats.tasks.len(), 3);
        assert_eq!(stats.tasks[0].pe, 1);
        assert_eq!(stats.tasks[2].bytes, 102);
        assert!((stats.tasks[1].load - 0.02).abs() < 1e-9);
    }

    #[test]
    fn multiple_samples_per_task_accumulate() {
        let start = stat(&[(0, 0, 0)]);
        let mut w = LbWindow::open(1, 1, Time::ZERO, start, InstrumentMode::CpuTime);
        for _ in 0..5 {
            w.record(TaskSample {
                task: TaskId(0),
                pe: 0,
                cpu: Dur::from_ms(2),
                wall: Dur::from_ms(2),
            });
        }
        let end_stat = stat(&[(10_000, 0, 90_000)]);
        let (stats, _) = w.build_stats(Time::from_us(100_000), &end_stat, &[0], |_| 0);
        assert!((stats.tasks[0].load - 0.01).abs() < 1e-9);
    }
}
