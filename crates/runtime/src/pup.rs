//! PUP — pack/unpack support for serialized chare migration.
//!
//! Charm++ migrates objects by PUPing them into a byte buffer, shipping
//! the buffer, and reconstructing at the destination. Inside one Rust
//! process the thread executor can simply *move* a boxed kernel, but the
//! byte path is what a distributed deployment would use — so kernels can
//! opt into it ([`crate::program::ChareKernel::pack`] /
//! [`crate::program::IterativeApp::unpack_kernel`]) and the thread
//! executor exercises it when
//! [`serialize_migration`](crate::thread_exec::ThreadRunConfig::serialize_migration)
//! is set, verifying that serialization round-trips preserve state
//! exactly.
//!
//! This module holds the tiny, dependency-free buffer codec those
//! implementations share (little-endian, length-prefixed vectors).

/// Serializer: appends primitive values to a growing buffer.
#[derive(Debug, Default)]
pub struct PupWriter {
    buf: Vec<u8>,
}

impl PupWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `usize` (as `u64`).
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Append an `f64`.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed `f64` slice.
    pub fn f64s(&mut self, vs: &[f64]) -> &mut Self {
        self.usize(vs.len());
        for v in vs {
            self.f64(*v);
        }
        self
    }

    /// Finish and take the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Deserializer over a byte slice; panics on malformed input (migration
/// buffers are produced by this crate — corruption is a bug, not a
/// recoverable condition).
#[derive(Debug)]
pub struct PupReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> PupReader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        PupReader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        s
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Read a `usize`.
    pub fn usize(&mut self) -> usize {
        self.u64() as usize
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Read a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Vec<f64> {
        let n = self.usize();
        (0..n).map(|_| self.f64()).collect()
    }

    /// `true` when every byte has been consumed (catches format drift).
    pub fn exhausted(&self) -> bool {
        self.at == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_payload() {
        let mut w = PupWriter::new();
        w.u64(42).f64(-1.5).f64s(&[1.0, 2.0, 3.0]).usize(7);
        let buf = w.finish();
        let mut r = PupReader::new(&buf);
        assert_eq!(r.u64(), 42);
        assert_eq!(r.f64(), -1.5);
        assert_eq!(r.f64s(), vec![1.0, 2.0, 3.0]);
        assert_eq!(r.usize(), 7);
        assert!(r.exhausted());
    }

    #[test]
    fn empty_vector_roundtrips() {
        let mut w = PupWriter::new();
        w.f64s(&[]);
        let buf = w.finish();
        let mut r = PupReader::new(&buf);
        assert!(r.f64s().is_empty());
        assert!(r.exhausted());
    }

    #[test]
    fn nan_and_infinities_survive() {
        let mut w = PupWriter::new();
        w.f64(f64::NAN).f64(f64::INFINITY).f64(f64::NEG_INFINITY);
        let buf = w.finish();
        let mut r = PupReader::new(&buf);
        assert!(r.f64().is_nan());
        assert_eq!(r.f64(), f64::INFINITY);
        assert_eq!(r.f64(), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic]
    fn truncated_buffer_panics() {
        let mut r = PupReader::new(&[1, 2, 3]);
        r.u64();
    }
}
