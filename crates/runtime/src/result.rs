//! Run outcome: everything the experiment harness needs to compute the
//! paper's metrics (timing penalty, BG penalty, power, energy overhead).

use crate::lbdb::WindowQuality;
use cloudlb_balance::DecisionQuality;
use cloudlb_sim::core_sched::BgJobId;
use cloudlb_sim::power::EnergyReport;
use cloudlb_sim::{Dur, NetStats, Time};
use cloudlb_trace::TraceLog;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Elastic-membership counters: what the proactive-evacuation machinery
/// did with spot preemption notices and autoscale acquisitions. All zeros
/// on a run with static membership.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElasticStats {
    /// Preemption notices received.
    pub notices: usize,
    /// Nodes hard-revoked at their notice deadline.
    pub nodes_revoked: usize,
    /// Nodes acquired (attached mid-run).
    pub acquisitions: usize,
    /// Acquired nodes that completed the warm-up handshake.
    pub warmups: usize,
    /// Evacuations started (notices that found live cores to drain).
    pub evacuations_attempted: usize,
    /// Evacuations whose node was empty when revocation fired — no
    /// checkpoint rollback was needed.
    pub evacuations_completed: usize,
    /// Chares streamed out over the migration protocol before the
    /// deadline.
    pub chares_drained: usize,
    /// Still-stranded chares saved by a targeted rescue checkpoint at the
    /// revocation instant (current state preserved, no epoch lost).
    pub chares_rescued: usize,
    /// Chares lost with their node and restored via global checkpoint
    /// rollback (the reactive path proactive evacuation exists to avoid).
    pub chares_rolled_back: usize,
}

/// Result of one application run.
///
/// `PartialEq` compares every field (including the trace): the parallel
/// sweep engine relies on it to assert bit-identical results against the
/// serial path.
#[derive(Debug, PartialEq)]
pub struct RunResult {
    /// Wall time from start to the last chare finishing the last iteration.
    pub app_time: Dur,
    /// Per-iteration wall times.
    pub iter_times: Vec<Dur>,
    /// Energy/power over the application's execution window.
    pub energy: EnergyReport,
    /// Timing penalty of each *finite* background job that completed:
    /// `(wall − standalone) / standalone`.
    pub bg_penalties: BTreeMap<BgJobId, f64>,
    /// Number of LB steps that ran.
    pub lb_steps: usize,
    /// Total migrations committed.
    pub migrations: usize,
    /// Total bytes migrated.
    pub migration_bytes: u64,
    /// Final chare→core mapping.
    pub final_mapping: Vec<usize>,
    /// Ghost messages delivered between cores of the same node.
    pub local_msgs: u64,
    /// Ghost messages that crossed nodes (paying the virtualized network).
    pub remote_msgs: u64,
    /// Projections-style trace, when enabled.
    pub trace: Option<TraceLog>,
    /// Instant the application finished.
    pub end_time: Time,
    /// PE/node kill events applied during the run.
    pub failures: usize,
    /// Recoveries completed (checkpoint restore + re-balance + replay).
    pub recoveries: usize,
    /// Iterations of work re-executed during replay, summed over chares.
    pub replayed_iters: usize,
    /// Total time spent detecting failures and restoring state (excludes
    /// the replayed compute itself).
    pub recovery_time: Dur,
    /// Telemetry-validation anomalies accumulated over every measurement
    /// window (clamped `O_p`, stale counters, …). All zeros under clean
    /// telemetry.
    pub telemetry: WindowQuality,
    /// Decision-quality counters from the strategy stack (migrations
    /// suppressed by hysteresis, oscillations damped, `O_p` outliers
    /// rejected). All zeros for unguarded strategies.
    pub decisions: DecisionQuality,
    /// Network-chaos damage report (lost copies, retransmits, duplicate
    /// suppressions, migration retries/aborts, scheduled partition time).
    /// All zeros on a clean network.
    pub net: NetStats,
    /// Simulator events processed over the run: event-queue pops plus the
    /// pops the fast-forward engine skipped analytically — so the figure is
    /// bit-identical whether or not windows were macro-stepped. The
    /// denominator-free half of the bench harness's events/sec figure.
    pub sim_events: u64,
    /// High-water mark of pending events in the simulator's queue.
    pub peak_queue_depth: usize,
    /// Steady-state LB windows the fast-forward engine replayed
    /// analytically instead of simulating event by event.
    pub ff_windows: usize,
    /// Event pops the replayed windows avoided (already folded into
    /// `sim_events`).
    pub events_skipped: u64,
    /// Elastic-membership counters (notices, evacuations, rescues). All
    /// zeros under static membership.
    pub elastic: ElasticStats,
}

impl RunResult {
    /// Mean iteration time in seconds.
    pub fn mean_iter_s(&self) -> f64 {
        if self.iter_times.is_empty() {
            return 0.0;
        }
        self.iter_times.iter().map(|d| d.as_secs_f64()).sum::<f64>() / self.iter_times.len() as f64
    }

    /// The paper's application timing penalty against a reference
    /// (interference-free) run: `(T − T_ref) / T_ref`.
    pub fn timing_penalty_vs(&self, reference: &RunResult) -> f64 {
        let base = reference.app_time.as_secs_f64();
        assert!(base > 0.0, "reference run has zero duration");
        self.app_time.as_secs_f64() / base - 1.0
    }

    /// The paper's energy overhead against a reference run:
    /// `(E − E_ref) / E_ref`.
    pub fn energy_overhead_vs(&self, reference: &RunResult) -> f64 {
        let base = reference.energy.energy_j;
        assert!(base > 0.0, "reference run consumed zero energy");
        self.energy.energy_j / base - 1.0
    }

    /// Zero the fast-forward observability counters (`ff_windows`,
    /// `events_skipped`), leaving every physics-bearing field untouched.
    /// The differential tests compare a fast-forwarded run against a plain
    /// one with `assert_eq!` after scrubbing both: the *only* permitted
    /// difference is how much work the engine skipped.
    pub fn scrub_ff(mut self) -> Self {
        self.ff_windows = 0;
        self.events_skipped = 0;
        self
    }

    /// Chare-conservation oracle: every one of the `chares` chares must be
    /// mapped to exactly one core in `[0, cores)`, and no chare may sit on
    /// a core listed in `dead` (cores permanently lost to failures). This
    /// is the invariant migrations and recoveries must preserve; the
    /// scenario fuzzer (`cloudlb-vopr`) checks it after every run.
    pub fn check_conservation(
        &self,
        chares: usize,
        cores: usize,
        dead: &[usize],
    ) -> Result<(), String> {
        if self.final_mapping.len() != chares {
            return Err(format!(
                "conservation: {} chares mapped, expected {chares}",
                self.final_mapping.len()
            ));
        }
        for (chare, &pe) in self.final_mapping.iter().enumerate() {
            if pe >= cores {
                return Err(format!(
                    "conservation: chare {chare} on core {pe}, cluster has {cores}"
                ));
            }
            if dead.contains(&pe) {
                return Err(format!("conservation: chare {chare} left on dead core {pe}"));
            }
        }
        Ok(())
    }

    /// Fraction of ghost messages that crossed nodes (0 when no messages
    /// were sent).
    pub fn remote_msg_fraction(&self) -> f64 {
        let total = self.local_msgs + self.remote_msgs;
        if total == 0 {
            0.0
        } else {
            self.remote_msgs as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(app_s: f64, energy_j: f64) -> RunResult {
        RunResult {
            app_time: Dur::from_secs_f64(app_s),
            iter_times: vec![Dur::from_secs_f64(app_s / 2.0); 2],
            energy: EnergyReport { energy_j, ..Default::default() },
            bg_penalties: BTreeMap::new(),
            lb_steps: 0,
            migrations: 0,
            migration_bytes: 0,
            final_mapping: vec![],
            local_msgs: 0,
            remote_msgs: 0,
            trace: None,
            end_time: Time::from_us((app_s * 1e6) as u64),
            failures: 0,
            recoveries: 0,
            replayed_iters: 0,
            recovery_time: Dur::ZERO,
            telemetry: WindowQuality::default(),
            decisions: DecisionQuality::default(),
            net: NetStats::default(),
            sim_events: 0,
            peak_queue_depth: 0,
            ff_windows: 0,
            events_skipped: 0,
            elastic: ElasticStats::default(),
        }
    }

    #[test]
    fn scrub_ff_zeroes_only_the_ff_counters() {
        let mut r = result(2.0, 10.0);
        r.ff_windows = 7;
        r.events_skipped = 12345;
        r.sim_events = 999;
        let s = r.scrub_ff();
        assert_eq!(s.ff_windows, 0);
        assert_eq!(s.events_skipped, 0);
        assert_eq!(s.sim_events, 999, "sim_events is physics, not scrubbed");
        let mut want = result(2.0, 10.0);
        want.sim_events = 999;
        assert_eq!(s, want);
    }

    #[test]
    fn penalties_are_relative() {
        let base = result(10.0, 1000.0);
        let run = result(15.0, 1200.0);
        assert!((run.timing_penalty_vs(&base) - 0.5).abs() < 1e-12);
        assert!((run.energy_overhead_vs(&base) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mean_iteration_time() {
        let r = result(10.0, 1.0);
        assert!((r.mean_iter_s() - 5.0).abs() < 1e-12);
        let empty = RunResult { iter_times: vec![], ..result(1.0, 1.0) };
        assert_eq!(empty.mean_iter_s(), 0.0);
    }

    #[test]
    fn remote_fraction() {
        let mut r = result(1.0, 1.0);
        assert_eq!(r.remote_msg_fraction(), 0.0);
        r.local_msgs = 3;
        r.remote_msgs = 1;
        assert!((r.remote_msg_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn zero_reference_rejected() {
        result(1.0, 1.0).timing_penalty_vs(&result(0.0, 1.0));
    }

    #[test]
    fn conservation_oracle_accepts_and_rejects() {
        let mut r = result(1.0, 1.0);
        r.final_mapping = vec![0, 1, 2, 1];
        assert!(r.check_conservation(4, 4, &[]).is_ok());
        // Wrong chare count.
        assert!(r.check_conservation(5, 4, &[]).unwrap_err().contains("4 chares mapped"));
        // Core out of range.
        assert!(r.check_conservation(4, 2, &[]).unwrap_err().contains("on core 2"));
        // Chare stranded on a dead core.
        assert!(r.check_conservation(4, 4, &[2]).unwrap_err().contains("dead core 2"));
    }
}
