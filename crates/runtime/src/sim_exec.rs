//! The deterministic simulated executor.
//!
//! Drives an `IterativeApp` (see [`crate::program`]) over the
//! `cloudlb-sim` cluster in virtual time. Execution is message-driven, as
//! in Charm++: a chare runs iteration `k` once it has received all of its
//! neighbors' ghost messages for `k`, computes (consuming CPU on its core,
//! shared with any interfering background tasks), then sends ghosts for
//! `k+1`. Every `period` iterations the chares park at an AtSync barrier,
//! the runtime builds the LB database (task measurements + Eq. 2
//! background loads), runs the configured strategy, commits migrations
//! (charging network transfer time), and resumes.
//!
//! # Fault tolerance
//!
//! A [`FailureScript`] kills and restores cores (or whole nodes) at
//! scheduled instants. The executor keeps an application checkpoint —
//! `(boundary iteration, mapping)`, taken after the migration commit at
//! AtSync boundaries selected by [`crate::checkpoint::CheckpointPolicy`] —
//! and recovers from a kill with the classic global-rollback protocol:
//!
//! 1. every surviving core abandons its in-flight task; all undelivered
//!    messages are invalidated (an epoch counter tags every message, so
//!    stale deliveries are dropped rather than chased down);
//! 2. the checkpointed mapping is restored; chares owned by a dead core
//!    come back from the replica on their *buddy* core
//!    ([`Cluster::buddy_of`] — the same slot on the next node, so a node
//!    failure never takes both copies);
//! 3. the LB strategy re-runs over the *surviving* cores (the database is
//!    compacted so a dead core's zero load cannot attract work), with
//!    [`cloudlb_balance::sanitize_plan`] as a safety net against any plan
//!    still referencing a dead target;
//! 4. after a pause pricing failure detection, the strategy step and the
//!    post-restore state transfers, every chare replays from the
//!    checkpointed iteration.
//!
//! Restored cores re-join empty and receive work again at the next regular
//! LB boundary. Everything — scheduling, interference, failures,
//! measurement, migration — is bit-for-bit reproducible from the
//! configuration.

use crate::atsync::AtSync;
use crate::comm::CommCsr;
use crate::config::{FastForward, RunConfig};
use crate::error::RuntimeError;
use crate::fastforward::{Capture, FfMsg, FfSample, WindowStart, WindowTemplate};
use crate::lbdb::{LbWindow, TaskSample, WindowQuality};
use crate::migration;
use crate::netproto;
use crate::program::{validate_app, IterativeApp};
use crate::reduction::IterationTracker;
use crate::result::{ElasticStats, RunResult};
use cloudlb_balance::{LbStats, LbStrategy, Migration, TaskId, TaskInfo};
use cloudlb_sim::core_sched::CoreEvent;
use cloudlb_sim::interference::{BgAction, BgLedger, BgScript};
use cloudlb_sim::{
    Cluster, Dur, EventHandle, EventQueue, FailureAction, FailureScript, FaultyNetwork, FgLabel,
    MembershipAction, MembershipScript, NetFaultSpec, ProcStat, TelemetryChannel, TelemetrySpec,
    Time,
};
use cloudlb_trace::Activity;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Events driving the simulation.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A ghost message for `iter` arrives at `chare`. Stale epochs (sent
    /// before a rollback) are dropped on delivery. `dup` marks a duplicate
    /// copy fabricated by the faulty network: the receiver's sequence
    /// numbering suppresses it on arrival (it was already counted in
    /// [`cloudlb_sim::NetStats::duplicates_dropped`] when generated).
    Msg { chare: usize, iter: usize, epoch: u32, dup: bool },
    /// Revisit a core because an entity completes there.
    Wake,
    /// Apply an interference action.
    Bg(BgAction),
    /// The LB step (strategy + migrations) finished.
    LbDone { epoch: u32 },
    /// Apply a failure action (kill/restore a core or node).
    Fail(FailureAction),
    /// The recovery pause (detection + restore + re-balance) finished.
    Recovered { epoch: u32 },
    /// Apply an elastic-membership action (notice/revoke/acquire/warm-up).
    Membership(MembershipAction),
    /// A proactively evacuated chare's state transfer lands on core `to`.
    /// Scheduled at notice time; stale epochs (a rollback intervened) are
    /// dropped.
    Evac { chare: usize, to: usize, epoch: u32 },
}

/// Per-chare lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CState {
    /// Waiting for ghost messages for `next_iter`.
    Waiting,
    /// In its PE's ready queue.
    Queued,
    /// Executing on its PE.
    Running,
    /// Parked at the AtSync barrier.
    Parked,
    /// Completed all iterations.
    Finished,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    chare: usize,
    iter: usize,
    start: Time,
    cpu: Dur,
}

/// Simulated-run executor. Construct, then [`SimExecutor::run`].
pub struct SimExecutor<'a> {
    app: &'a dyn IterativeApp,
    cfg: RunConfig,
    bg: BgScript,
    fail: FailureScript,
    telemetry: TelemetrySpec,
    net_fault: NetFaultSpec,
    membership: MembershipScript,
}

impl<'a> SimExecutor<'a> {
    /// Prepare a run of `app` under `cfg` with interference `bg`.
    pub fn new(app: &'a dyn IterativeApp, cfg: RunConfig, bg: BgScript) -> Self {
        validate_app(app);
        if let Some(c) = bg.max_core() {
            assert!(c < cfg.cluster.total_cores(), "bg script targets core {c} beyond cluster");
        }
        assert!(cfg.iterations > 0, "need at least one iteration");
        SimExecutor {
            app,
            cfg,
            bg,
            fail: FailureScript::none(),
            telemetry: TelemetrySpec::none(),
            net_fault: NetFaultSpec::none(),
            membership: MembershipScript::none(),
        }
    }

    /// Corrupt every `/proc/stat` read (and its paired clock) through the
    /// seeded telemetry channel described by `spec`. The ground-truth
    /// simulation is untouched — only what the runtime *measures* lies.
    pub fn with_telemetry(mut self, spec: TelemetrySpec) -> Self {
        self.telemetry = spec;
        self
    }

    /// Inject the failure schedule `fail` into the run. A script targeting
    /// a core beyond the cluster surfaces as
    /// [`RuntimeError::InvalidConfig`] from [`SimExecutor::try_run`] — user
    /// input (`--fail`) reaches this path, so it must not panic.
    pub fn with_failures(mut self, fail: FailureScript) -> Self {
        self.fail = fail;
        self
    }

    /// Degrade the interconnect through the seeded chaos layer described
    /// by `spec`: ghost messages suffer loss (masked by retransmission
    /// delay), duplication, reordering, jitter and bandwidth collapse, and
    /// migrations run through the reliable ARQ protocol in
    /// [`crate::netproto`] instead of the analytic clean-network costing.
    /// An inactive spec leaves the run byte-identical to the clean path.
    /// Invalid specs (partition endpoints beyond the cluster) surface as
    /// [`RuntimeError::InvalidConfig`] from [`SimExecutor::try_run`].
    pub fn with_net_faults(mut self, spec: NetFaultSpec) -> Self {
        self.net_fault = spec;
        self
    }

    /// Inject the elastic-membership schedule `script`: spot preemption
    /// notices (followed by hard revocations) against initial nodes, and
    /// acquisitions of the cluster's *trailing* nodes, which start dead
    /// (latent capacity) and attach when their `Acquire` action fires. An
    /// inconsistent script — out-of-range nodes, acquisitions that are not
    /// the trailing nodes, notices against acquired nodes — surfaces as
    /// [`RuntimeError::InvalidConfig`] from [`SimExecutor::try_run`].
    pub fn with_membership(mut self, script: MembershipScript) -> Self {
        self.membership = script;
        self
    }

    /// Execute the run to completion and return its metrics. Panics if a
    /// failure turns out unrecoverable; use [`SimExecutor::try_run`] when
    /// injecting failures.
    pub fn run(self) -> RunResult {
        self.try_run().unwrap_or_else(|e| panic!("simulated run failed: {e}"))
    }

    /// Execute the run to completion, reporting unrecoverable failures
    /// (checkpointing disabled, both checkpoint copies lost, all PEs dead)
    /// as typed errors instead of panicking.
    pub fn try_run(self) -> Result<RunResult, RuntimeError> {
        let strategy =
            self.cfg.lb.try_strategy().map_err(RuntimeError::InvalidConfig)?;
        self.try_run_with_strategy(strategy)
    }

    /// Execute with an explicit strategy object (bypasses the registry;
    /// used for the gain-gated wrapper and custom strategies).
    pub fn run_with_strategy(self, strategy: Box<dyn LbStrategy>) -> RunResult {
        self.try_run_with_strategy(strategy)
            .unwrap_or_else(|e| panic!("simulated run failed: {e}"))
    }

    /// Fallible variant of [`SimExecutor::run_with_strategy`].
    pub fn try_run_with_strategy(
        self,
        strategy: Box<dyn LbStrategy>,
    ) -> Result<RunResult, RuntimeError> {
        let total = self.cfg.cluster.total_cores();
        if let Err(e) = self.cfg.try_resolved_speeds() {
            return Err(RuntimeError::InvalidConfig(e));
        }
        if let Some(c) = self.fail.max_core(self.cfg.cluster.cores_per_node) {
            if c >= total {
                return Err(RuntimeError::InvalidConfig(format!(
                    "failure script targets core {c} beyond the {total}-core cluster"
                )));
            }
        }
        if let Err(e) = self.net_fault.validate(self.cfg.cluster.nodes) {
            return Err(RuntimeError::InvalidConfig(format!("network fault spec: {e}")));
        }
        if let Err(e) = validate_membership(&self.membership, self.cfg.cluster.nodes) {
            return Err(RuntimeError::InvalidConfig(e));
        }
        Sim::new(
            self.app,
            self.cfg,
            &self.bg,
            &self.fail,
            self.telemetry,
            self.net_fault,
            &self.membership,
            strategy,
        )
        .run()
    }
}

/// Distinct nodes acquired by `script`, ascending.
fn acquired_nodes(script: &MembershipScript) -> Vec<usize> {
    let mut nodes: Vec<usize> = script
        .actions
        .iter()
        .filter_map(|(_, a)| match a {
            MembershipAction::Acquire { node } => Some(*node),
            _ => None,
        })
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// Check a membership script against a cluster of `nodes` nodes: every
/// referenced node in range, acquisitions exactly the trailing nodes (the
/// latent capacity appended after the initial cluster), at least one
/// initial node left, and no notice/revocation against an acquired node.
fn validate_membership(script: &MembershipScript, nodes: usize) -> Result<(), String> {
    if script.is_empty() {
        return Ok(());
    }
    if let Some(max) = script.max_node() {
        if max >= nodes {
            return Err(format!(
                "membership script targets node {max} but the cluster has {nodes} nodes"
            ));
        }
    }
    let acquired = acquired_nodes(script);
    if acquired.len() >= nodes {
        return Err("membership script acquires every node; the initial cluster would be empty"
            .to_string());
    }
    for (i, &node) in acquired.iter().enumerate() {
        let want = nodes - acquired.len() + i;
        if node != want {
            return Err(format!(
                "membership acquisitions must target the cluster's trailing nodes \
                 (expected node {want}, got {node})"
            ));
        }
    }
    for (_, a) in &script.actions {
        match a {
            MembershipAction::Notice { node, .. } | MembershipAction::Revoke { node }
                if acquired.binary_search(node).is_ok() =>
            {
                return Err(format!(
                    "membership script notices/revokes node {node}, which is acquired mid-run"
                ));
            }
            MembershipAction::WarmupDone { node } if acquired.binary_search(node).is_err() => {
                return Err(format!(
                    "membership warm-up for node {node}, which is never acquired"
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Project a full-core-space LB database onto the alive cores. Returns the
/// compacted stats plus `alive_idx`, mapping compact → global core indices.
fn compact_stats(stats: &LbStats, alive: &[bool]) -> (LbStats, Vec<usize>) {
    let alive_idx: Vec<usize> = (0..stats.num_pes).filter(|&p| alive[p]).collect();
    let mut inv = vec![usize::MAX; stats.num_pes];
    for (c, &p) in alive_idx.iter().enumerate() {
        inv[p] = c;
    }
    let mut compact = LbStats::new(alive_idx.len());
    compact.bg_load = alive_idx.iter().map(|&p| stats.bg_load[p]).collect();
    compact.tasks = stats
        .tasks
        .iter()
        .map(|t| {
            assert!(alive[t.pe], "task {:?} mapped to dead core {}", t.id, t.pe);
            TaskInfo { pe: inv[t.pe], ..*t }
        })
        .collect();
    compact.comm = stats.comm.clone();
    if !stats.confidence.is_empty() {
        compact.confidence = alive_idx.iter().map(|&p| stats.confidence[p]).collect();
    }
    if !stats.doomed.is_empty() {
        compact.doomed = alive_idx.iter().map(|&p| stats.doomed[p]).collect();
    }
    if !stats.fresh.is_empty() {
        compact.fresh = alive_idx.iter().map(|&p| stats.fresh[p]).collect();
    }
    compact.failed_tasks = stats.failed_tasks.clone();
    (compact, alive_idx)
}

struct Sim<'a> {
    app: &'a dyn IterativeApp,
    cfg: RunConfig,
    strategy: Box<dyn LbStrategy>,

    queue: EventQueue<Ev>,
    cluster: Cluster,
    ledger: BgLedger,
    /// Background jobs seen starting (for penalty reporting).
    seen_bg: Vec<u32>,

    /// chare → core.
    mapping: Vec<usize>,
    /// Per-core FIFO of ready chares.
    ready: Vec<VecDeque<usize>>,
    /// Per-core running task record.
    running: Vec<Option<Running>>,
    /// Per-core pending Wake handle and its instant.
    wake: Vec<Option<(EventHandle, Time)>>,
    /// Ghost counters, structure-of-arrays: two slots per chare at
    /// `chare * 2 + (iter & 1)`. At most two in-flight iterations' worth
    /// of ghosts exist per chare at any instant, so the parity bit
    /// disambiguates them; `inbox_iter` tags which iteration a slot's
    /// count belongs to (a stale tag reads as zero). Replaces a
    /// `HashMap<(chare, iter), count>` whose rehashing dominated the
    /// delivery hot path at 1M chares.
    inbox_count: Vec<u32>,
    /// Iteration tag per inbox slot (see `inbox_count`).
    inbox_iter: Vec<usize>,
    /// chare → next iteration to execute.
    next_iter: Vec<usize>,
    /// chare → expected ghosts per iteration (= neighbor count).
    expected: Vec<usize>,
    state: Vec<CState>,

    tracker: IterationTracker,
    atsync: AtSync,
    window: LbWindow,
    /// Scratch buffer for core completions, reused across every event-loop
    /// iteration (the hottest allocation in the repo before it was hoisted).
    completions: Vec<(Time, CoreEvent)>,
    /// The per-window communication graph, identical every window (the
    /// topology and LB period are fixed), built once and memcpy'd in.
    comm_template: Vec<cloudlb_balance::CommEdge>,
    /// Corrupts every `/proc/stat` read when telemetry noise is enabled.
    telemetry: Option<TelemetryChannel>,
    /// Degrades every cross-node message when network chaos is enabled;
    /// `None` keeps the clean path byte-identical to earlier builds.
    netfault: Option<FaultyNetwork>,
    /// Chares whose migration aborted since the last LB step; reported to
    /// the strategy through `LbStats::failed_tasks` so it re-plans around
    /// (or re-attempts) them.
    pending_failed: Vec<TaskId>,
    /// Validation anomalies accumulated over all closed windows.
    window_quality: WindowQuality,
    /// Relative speed per core (occupancy = work / speed).
    speeds: Vec<f64>,

    /// Flat CSR adjacency shared by the ghost-send hot loop, the expected
    /// ghost counts and the per-window comm graph.
    comm: CommCsr,
    /// Resolved once from the config: whether the fast-forward engine may
    /// consider macro-stepping at all (mode allows it, costs are
    /// noise-free). Individual windows are additionally vetted.
    ff_enabled: bool,
    /// Capture in progress for the window currently running live.
    ff_capture: Option<Capture>,
    /// Set by [`Sim::start_lb`] when a capture reaches its window's end;
    /// the run loop closes it *after* the event popped at that instant has
    /// been fully handled. Closing inline from the completion-settling
    /// phase would scan the queue while a same-instant boundary ghost sits
    /// in the pop buffer — already out of the queue, not yet in the inbox —
    /// and bake a template that silently drops that ghost (deadlocking
    /// every replay of it).
    ff_close_pending: bool,
    /// Last successfully captured steady-state window.
    ff_template: Option<WindowTemplate>,
    /// Windows replayed analytically.
    ff_windows: usize,
    /// Event pops those replays skipped (folded back into `sim_events`).
    events_skipped: u64,
    /// Scratch for sequence-ordering live queue entries during the
    /// steady-state replay check (reused every boundary).
    ff_seq_scratch: Vec<(u64, FfMsg)>,
    /// The LB-database snapshot, owned across windows so a boundary at 1M
    /// chares rebuilds it in place instead of reallocating every vector.
    stats_scratch: LbStats,

    /// Current rollback epoch; messages and LbDone/Recovered events from
    /// older epochs are stale and dropped.
    epoch: u32,
    /// Last application checkpoint: `(iteration, mapping)`. `None` when
    /// checkpointing is disabled.
    ckpt: Option<(usize, Vec<usize>)>,
    /// Iteration of the LB boundary currently in progress.
    lb_boundary: usize,

    finished: usize,
    app_end: Option<Time>,
    energy: Option<cloudlb_sim::power::EnergyReport>,
    pending_bg: usize,
    lb_steps: usize,
    migrations: usize,
    migration_bytes: u64,
    local_msgs: u64,
    remote_msgs: u64,
    failures: usize,
    recoveries: usize,
    replayed_iters: usize,
    recovery_time: Dur,

    /// Per-core spot-notice flag: a doomed core is a zero-capacity source
    /// that must fully empty before its node's revocation deadline.
    doomed: Vec<bool>,
    /// Per-core "acquired but still warming up" flag: the core is alive but
    /// not yet a migration target.
    warming: Vec<bool>,
    /// Per-core "just warmed up" flag: strategies should eagerly refill
    /// these empty cores. One-shot — cleared after the next planning pass.
    fresh: Vec<bool>,
    /// Proactively evacuated chares with a state transfer in flight:
    /// chare → planned destination core. Lookups only (never iterated), so
    /// the hashing order cannot leak into the simulation.
    pending_evac: HashMap<usize, usize>,
    /// Evacuated chares that were Running/Queued when their core was
    /// revoked mid-transfer: they must re-enter a ready queue on landing
    /// (their boundary ghosts were already consumed, so `maybe_ready`
    /// would never fire for them again).
    rescue_runnable: HashSet<usize>,
    /// Per-node: a proactive evacuation was started for this node's notice.
    evac_attempted: Vec<bool>,
    /// Elastic-membership counters reported in the result.
    elastic: ElasticStats,
}

impl<'a> Sim<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        app: &'a dyn IterativeApp,
        cfg: RunConfig,
        bg: &BgScript,
        fail: &FailureScript,
        telemetry: TelemetrySpec,
        net_fault: NetFaultSpec,
        membership: &MembershipScript,
        strategy: Box<dyn LbStrategy>,
    ) -> Self {
        let pes = cfg.cluster.total_cores();
        let n = app.num_chares();
        let mut cluster = Cluster::new(cfg.cluster.clone());
        // Nodes the membership script acquires mid-run are latent capacity:
        // they exist in the cluster's address space (always the trailing
        // nodes — validated up front) but start dead and only attach when
        // their `Acquire` action fires. The initial placement therefore
        // covers exactly the leading, active cores.
        let mut active_pes = pes;
        for node in acquired_nodes(membership) {
            for core in cluster.cores_of_node(node) {
                cluster.kill_core(core);
                active_pes -= 1;
            }
        }
        let mapping = cfg.initial_map.place(n, active_pes);
        let mut telemetry =
            telemetry.is_active().then(|| TelemetryChannel::new(telemetry, cfg.seed));
        // Fractional partition windows resolve against the same idealized
        // run-length estimate `Scenario` uses, so `rack:0.45~0.5` means
        // "around 45–50% through the run" regardless of cluster size.
        let netfault = net_fault.is_active().then(|| {
            let work: f64 = (0..n).map(|i| app.task_cost(i, 0)).sum();
            let horizon = Dur::from_secs_f64(cfg.iterations as f64 * work / pes as f64);
            FaultyNetwork::new(net_fault.clone(), cfg.network, cfg.seed, horizon)
        });
        let truth = ProcStat::snapshot(&cluster);
        let (start_stat, start_clock) = match &mut telemetry {
            Some(ch) => truth.observe_through(ch, Time::ZERO),
            None => (truth, Time::ZERO),
        };
        let window = LbWindow::open(pes, n, start_clock, start_stat, cfg.lb.instrument);

        let mut queue = EventQueue::new();
        let mut pending_bg = 0;
        for (t, action) in &bg.actions {
            if let BgAction::Start { demand: Some(_), .. } = action {
                pending_bg += 1;
            }
            queue.schedule(*t, Ev::Bg(*action));
        }
        for (t, action) in &fail.actions {
            queue.schedule(*t, Ev::Fail(*action));
        }
        for (t, action) in &membership.actions {
            queue.schedule(*t, Ev::Membership(*action));
        }

        // Flatten the topology once: the executor walks this CSR on every
        // task completion instead of re-allocating neighbor vectors.
        let comm = CommCsr::build(app);
        let expected = (0..n).map(|i| comm.degree(i)).collect();
        let tracker = IterationTracker::new(n, cfg.iterations);
        let atsync = AtSync::new(cfg.lb.period);
        let speeds = cfg.resolved_speeds();
        // Instrument the communication graph for comm-aware strategies:
        // each neighbor pair exchanges one message per direction per
        // iteration, `period` iterations per window. The graph never
        // changes between windows, so it is built exactly once.
        let period = cfg.lb.period as u64;
        let mut comm_template = Vec::new();
        for chare in 0..n {
            for (nb, fwd) in comm.neighbors_of(chare) {
                if nb > chare {
                    let back =
                        comm.bytes_between(nb, chare).expect("validate_app guarantees symmetry");
                    comm_template.push(cloudlb_balance::CommEdge {
                        a: TaskId(chare as u64),
                        b: TaskId(nb as u64),
                        bytes: (fwd + back) as u64 * period,
                    });
                }
            }
        }
        // Fast-forward is only sound when task costs are deterministic;
        // `Auto` additionally preserves exact Projections timelines.
        let ff_enabled = cfg.cost_noise_frac == 0.0
            && match cfg.fast_forward {
                FastForward::Off => false,
                FastForward::On => true,
                FastForward::Auto => !cfg.cluster.trace,
            };
        // The initial placement is itself a checkpoint: a failure before
        // the first boundary rolls back to iteration 0.
        let ckpt = (!matches!(cfg.checkpoints, crate::checkpoint::CheckpointPolicy::Disabled))
            .then(|| (0, mapping.clone()));

        Sim {
            app,
            strategy,
            queue,
            cluster,
            ledger: BgLedger::new(),
            seen_bg: Vec::new(),
            mapping,
            // Each PE's ready queue holds at most its share of the chares;
            // sizing them up front keeps the steady state reallocation-free.
            ready: (0..pes).map(|_| VecDeque::with_capacity(n.div_ceil(pes) + 1)).collect(),
            running: vec![None; pes],
            wake: vec![None; pes],
            inbox_count: vec![0; 2 * n],
            inbox_iter: vec![0; 2 * n],
            next_iter: vec![0; n],
            expected,
            state: vec![CState::Queued; n],
            tracker,
            atsync,
            window,
            completions: Vec::with_capacity(pes + 1),
            comm_template,
            telemetry,
            netfault,
            pending_failed: Vec::new(),
            window_quality: WindowQuality::default(),
            speeds,
            comm,
            ff_enabled,
            ff_capture: None,
            ff_close_pending: false,
            ff_template: None,
            ff_windows: 0,
            events_skipped: 0,
            ff_seq_scratch: Vec::new(),
            stats_scratch: LbStats::new(0),
            epoch: 0,
            ckpt,
            lb_boundary: 0,
            finished: 0,
            app_end: None,
            energy: None,
            pending_bg,
            lb_steps: 0,
            migrations: 0,
            migration_bytes: 0,
            local_msgs: 0,
            remote_msgs: 0,
            failures: 0,
            recoveries: 0,
            replayed_iters: 0,
            recovery_time: Dur::ZERO,
            doomed: vec![false; pes],
            warming: vec![false; pes],
            fresh: vec![false; pes],
            pending_evac: HashMap::new(),
            rescue_runnable: HashSet::new(),
            evac_attempted: vec![false; cfg.cluster.nodes],
            elastic: ElasticStats::default(),
            cfg,
        }
    }

    fn num_pes(&self) -> usize {
        self.ready.len()
    }

    /// Read the per-core counters and the wall clock the way the runtime
    /// would: through the telemetry channel when noise is enabled (jitter,
    /// skew, drops, …), straight from the simulator otherwise.
    fn observe(&mut self, now: Time) -> (ProcStat, Time) {
        let truth = ProcStat::snapshot(&self.cluster);
        match &mut self.telemetry {
            Some(ch) => truth.observe_through(ch, now),
            None => (truth, now),
        }
    }

    /// Reopen the measurement window at `now` over the current cluster
    /// shape, reading its baseline counters through the telemetry channel.
    /// Reuses the window's buffers (see [`LbWindow::reopen`]).
    fn reopen_window(&mut self, now: Time) {
        let (stat, clock) = self.observe(now);
        self.window.reopen(clock, stat);
    }

    fn run(mut self) -> Result<RunResult, RuntimeError> {
        // Iteration 0 needs no messages: everyone starts queued.
        for chare in 0..self.app.num_chares() {
            let pe = self.mapping[chare];
            self.ready[pe].push_back(chare);
        }
        for pe in 0..self.num_pes() {
            self.try_start(pe, Time::ZERO);
            self.reschedule_wake(pe);
        }

        while !(self.app_end.is_some() && self.pending_bg == 0) {
            let Some((t, ev)) = self.queue.pop() else {
                panic!(
                    "deadlock: event queue empty with app {} and {} bg tasks pending",
                    if self.app_end.is_some() { "done" } else { "RUNNING" },
                    self.pending_bg
                );
            };
            // Settle all cores up to `t`; completions land exactly at `t`
            // because wakes are kept in sync with composition changes.
            let mut completions = std::mem::take(&mut self.completions);
            self.cluster.advance_into(t, &mut completions);
            for &(ct, ce) in &completions {
                debug_assert_eq!(ct, t, "late completion discovered: {ce:?} at {ct:?} vs {t:?}");
                match ce {
                    CoreEvent::FgDone { core } => self.on_task_done(core, ct),
                    CoreEvent::BgDone { core: _, job } => {
                        self.ledger.on_task_done(job, ct);
                        self.pending_bg -= 1;
                    }
                }
            }
            self.completions = completions;
            match ev {
                Ev::Msg { dup: true, .. } => {} // duplicate copy: seq-suppressed
                Ev::Msg { chare, iter, epoch, dup: false } if epoch == self.epoch => {
                    self.on_msg(chare, iter, t)
                }
                Ev::Msg { .. } => {} // stale: sent before a rollback
                Ev::Wake => {} // completions already handled above
                Ev::Bg(action) => self.on_bg(action, t),
                Ev::LbDone { epoch } if epoch == self.epoch => self.on_lb_done(t),
                Ev::LbDone { .. } => {} // LB step interrupted by a failure
                Ev::Fail(action) => self.on_fail(action, t)?,
                Ev::Recovered { epoch } if epoch == self.epoch => self.on_recovered(t),
                Ev::Recovered { .. } => {} // superseded by a later failure
                Ev::Membership(action) => self.on_membership(action, t)?,
                Ev::Evac { chare, to, epoch } if epoch == self.epoch => {
                    self.on_evac(chare, to, t)?
                }
                Ev::Evac { .. } => {} // cancelled by a rollback
            }
            // Refresh wakes (no-op for cores whose next completion is
            // unchanged).
            for core in 0..self.num_pes() {
                self.reschedule_wake(core);
            }
            // A window that ended at `t` closes its capture only now, so a
            // boundary ghost that popped at the same instant as the final
            // park has reached the inbox and the template sees it. The
            // barrier's LbDone is still pending, so `t` is the boundary
            // instant the template expects.
            if self.ff_close_pending {
                self.ff_close_pending = false;
                self.ff_finish_capture(t);
            }
        }

        let end = self.app_end.expect("loop exited before app completion");
        let mut bg_penalties = BTreeMap::new();
        for job in &self.seen_bg {
            if let Some(p) = self.ledger.timing_penalty(*job) {
                bg_penalties.insert(*job, p);
            }
        }
        Ok(RunResult {
            app_time: end.since(Time::ZERO),
            iter_times: self.tracker.iteration_times(),
            energy: self.energy.expect("energy metered at app completion"),
            bg_penalties,
            lb_steps: self.lb_steps,
            migrations: self.migrations,
            migration_bytes: self.migration_bytes,
            final_mapping: self.mapping.clone(),
            local_msgs: self.local_msgs,
            remote_msgs: self.remote_msgs,
            trace: self.cluster.take_trace(),
            end_time: end,
            failures: self.failures,
            recoveries: self.recoveries,
            replayed_iters: self.replayed_iters,
            recovery_time: self.recovery_time,
            telemetry: self.window_quality,
            decisions: self.strategy.decision_quality(),
            net: self.netfault.as_ref().map(|c| c.stats).unwrap_or_default(),
            sim_events: self.queue.total_popped() + self.events_skipped,
            peak_queue_depth: self.queue.peak_depth(),
            ff_windows: self.ff_windows,
            events_skipped: self.events_skipped,
            elastic: self.elastic,
        })
    }

    /// Start the next ready task on `pe` if the core is alive and free and
    /// no LB step is in progress.
    fn try_start(&mut self, pe: usize, now: Time) {
        if !self.cluster.is_alive(pe) || self.atsync.lb_in_progress() || self.cluster.fg_busy(pe)
        {
            return;
        }
        let Some(chare) = self.ready[pe].pop_front() else {
            return;
        };
        debug_assert_eq!(self.state[chare], CState::Queued);
        let iter = self.next_iter[chare];
        // Occupancy on this core: work, perturbed by noise, divided by the
        // core's delivered speed.
        let cpu = Dur::from_secs_f64(
            self.app.task_cost(chare, iter) * self.cost_noise(chare, iter) / self.speeds[pe],
        );
        self.cluster.start_fg(pe, FgLabel { chare: chare as u64 }, cpu, 1.0);
        self.running[pe] = Some(Running { chare, iter, start: now, cpu });
        self.state[chare] = CState::Running;
    }

    fn on_task_done(&mut self, core: usize, now: Time) {
        let run = self.running[core].take().expect("FgDone without a running record");
        let Running { chare, iter, start, cpu } = run;
        self.state[chare] = CState::Waiting;
        self.window.record(TaskSample {
            task: TaskId(chare as u64),
            pe: core,
            cpu,
            wall: now.since(start),
        });
        if let Some(cap) = self.ff_capture.as_mut() {
            cap.samples.push(FfSample {
                rel: now.since(cap.started_at),
                chare,
                iter_off: iter - cap.boundary,
                cpu,
                wall: now.since(start),
            });
        }

        // Send ghosts for the next iteration (indexed CSR walk: the range
        // is computed up front so no borrow outlives the mutations below).
        let next = iter + 1;
        if next < self.cfg.iterations {
            for e in self.comm.row(chare) {
                let nb = self.comm.neighbor(e);
                let bytes = self.comm.edge_bytes(e);
                let (from_pe, to_pe) = (self.mapping[chare], self.mapping[nb]);
                let same = self.cluster.same_node(from_pe, to_pe);
                if same {
                    self.local_msgs += 1;
                } else {
                    self.remote_msgs += 1;
                }
                let epoch = self.epoch;
                match self.netfault.as_mut() {
                    None => {
                        let delay = self.cfg.network.delay(bytes, same);
                        self.queue
                            .schedule(now + delay, Ev::Msg { chare: nb, iter: next, epoch, dup: false });
                    }
                    Some(ch) => {
                        // Ghosts ride the reliable transport: losses show
                        // up as retransmission delay, duplicates as extra
                        // (suppressed) deliveries, partitions as stalls
                        // until the heal.
                        let d = ch.deliver(
                            now,
                            bytes,
                            same,
                            self.cluster.node_of(from_pe),
                            self.cluster.node_of(to_pe),
                        );
                        self.queue
                            .schedule(d.arrival, Ev::Msg { chare: nb, iter: next, epoch, dup: false });
                        if let Some(td) = d.dup {
                            self.queue
                                .schedule(td, Ev::Msg { chare: nb, iter: next, epoch, dup: true });
                        }
                    }
                }
            }
        }

        // Contribute to the iteration reduction.
        self.tracker.contribute(iter, now);

        // Decide this chare's continuation.
        if next >= self.cfg.iterations {
            self.state[chare] = CState::Finished;
            self.finished += 1;
            if self.finished == self.app.num_chares() {
                self.app_end = Some(now);
                self.energy = Some(self.cfg.power.meter(&self.cluster, now));
            }
        } else if self.atsync.is_boundary(next) {
            self.state[chare] = CState::Parked;
            self.next_iter[chare] = next;
            if self.atsync.park(chare, self.app.num_chares()) {
                self.lb_boundary = next;
                self.start_lb(now);
            }
        } else {
            self.next_iter[chare] = next;
            self.maybe_ready(chare, now);
        }

        self.try_start(core, now);
    }

    /// Inbox slot of `(chare, iter)` — the iteration's parity bit picks
    /// between the chare's two slots.
    fn inbox_slot(chare: usize, iter: usize) -> usize {
        chare * 2 + (iter & 1)
    }

    /// Ghosts received so far for `(chare, iter)`; a slot tagged with a
    /// different iteration holds no ghosts for this one.
    fn inbox_get(&self, chare: usize, iter: usize) -> usize {
        let s = Self::inbox_slot(chare, iter);
        if self.inbox_iter[s] == iter {
            self.inbox_count[s] as usize
        } else {
            0
        }
    }

    fn on_msg(&mut self, chare: usize, iter: usize, now: Time) {
        let s = Self::inbox_slot(chare, iter);
        if self.inbox_iter[s] != iter {
            // The two-slot invariant guarantees the slot's previous
            // iteration was fully consumed before this one reuses it.
            debug_assert_eq!(self.inbox_count[s], 0, "unconsumed ghosts overwritten");
            self.inbox_iter[s] = iter;
            self.inbox_count[s] = 0;
        }
        self.inbox_count[s] += 1;
        if self.state[chare] == CState::Waiting && self.next_iter[chare] == iter {
            self.maybe_ready(chare, now);
        }
    }

    /// Queue `chare` if all ghosts for its next iteration have arrived.
    fn maybe_ready(&mut self, chare: usize, now: Time) {
        debug_assert_eq!(self.state[chare], CState::Waiting);
        let iter = self.next_iter[chare];
        let have = self.inbox_get(chare, iter);
        if have >= self.expected[chare] {
            self.inbox_count[Self::inbox_slot(chare, iter)] = 0;
            let pe = self.mapping[chare];
            self.ready[pe].push_back(chare);
            self.state[chare] = CState::Queued;
            self.try_start(pe, now);
        }
    }

    fn on_bg(&mut self, action: BgAction, now: Time) {
        // Defensive: a window touched by interference is not steady-state
        // (the begin-of-window queue scan already declines such captures,
        // since every bg action is scheduled up front).
        self.ff_capture = None;
        match action {
            BgAction::Start { job, core, demand, weight } => {
                if !self.cluster.is_alive(core) {
                    // The interfering tenant's VM shared the failed
                    // hardware: the job never starts.
                    if demand.is_some() {
                        self.pending_bg -= 1;
                    }
                    if let Some(t) = self.cluster.trace_mut() {
                        t.marker(
                            now.as_us(),
                            format!("bg job {job} not started: core {core} is down"),
                        );
                    }
                    return;
                }
                self.cluster.add_bg(core, job, demand, weight);
                self.ledger.on_start(job, now, demand);
                if !self.seen_bg.contains(&job) {
                    self.seen_bg.push(job);
                }
                if let Some(t) = self.cluster.trace_mut() {
                    t.marker(now.as_us(), format!("bg job {job} starts on core {core}"));
                }
            }
            BgAction::Stop { job, core } => {
                self.cluster.remove_bg(core, job);
                if let Some(t) = self.cluster.trace_mut() {
                    t.marker(now.as_us(), format!("bg job {job} leaves core {core}"));
                }
            }
        }
    }

    fn on_fail(&mut self, action: FailureAction, now: Time) -> Result<(), RuntimeError> {
        // Defensive, as in `on_bg`: failures void any in-flight capture.
        self.ff_capture = None;
        let targets: Vec<usize> = match action {
            FailureAction::KillCore { core } => vec![core],
            FailureAction::KillNode { node } => self.cluster.cores_of_node(node).collect(),
            FailureAction::RestoreCore { core } => {
                self.cluster.restore_core(core);
                if let Some(t) = self.cluster.trace_mut() {
                    t.marker(now.as_us(), format!("core {core} restored"));
                }
                return Ok(());
            }
            FailureAction::RestoreNode { node } => {
                for core in self.cluster.cores_of_node(node) {
                    self.cluster.restore_core(core);
                }
                if let Some(t) = self.cluster.trace_mut() {
                    t.marker(now.as_us(), format!("node {node} restored"));
                }
                return Ok(());
            }
        };
        let killed: Vec<usize> =
            targets.into_iter().filter(|&c| self.cluster.is_alive(c)).collect();
        if killed.is_empty() {
            return Ok(()); // already dead: idempotent
        }
        for &core in &killed {
            let evicted = self.cluster.kill_core(core);
            for (job, finite) in &evicted.evicted_bg {
                if *finite {
                    // The job will never complete; it must not hold the
                    // simulation loop open.
                    self.pending_bg -= 1;
                }
                if let Some(t) = self.cluster.trace_mut() {
                    t.marker(now.as_us(), format!("bg job {job} lost with core {core}"));
                }
            }
            self.failures += 1;
            if let Some(t) = self.cluster.trace_mut() {
                t.marker(now.as_us(), format!("core {core} fails"));
            }
        }
        if self.app_end.is_some() {
            // The application already finished; the kill only tears down
            // leftover background work.
            return Ok(());
        }
        if self.cluster.num_alive() == 0 {
            return Err(RuntimeError::AllPesDead);
        }
        self.recover(now)
    }

    /// Global rollback to the last checkpoint: abandon all in-flight work,
    /// restore the checkpointed mapping (dead cores' chares from their
    /// buddies), re-balance over the survivors, and schedule the end of
    /// the recovery pause.
    fn recover(&mut self, now: Time) -> Result<(), RuntimeError> {
        let Some((k, ckpt_map)) = self.ckpt.clone() else {
            return Err(RuntimeError::Unrecoverable {
                reason: "a PE died but checkpointing is disabled (no snapshot to roll back to)"
                    .into(),
            });
        };
        // Invalidate every in-flight message and any pending LbDone or
        // earlier Recovered event.
        self.epoch += 1;

        // Abandon in-flight work everywhere (global rollback).
        for pe in 0..self.num_pes() {
            if self.running[pe].take().is_some() {
                self.cluster.abort_fg(pe);
            }
            self.ready[pe].clear();
        }
        self.inbox_count.fill(0);
        self.atsync.reset();
        // Cancel every in-flight proactive evacuation: the epoch bump
        // already drops their landing events.
        self.pending_evac.clear();
        self.rescue_runnable.clear();

        // Count the re-executed work, then rewind the reduction.
        for chare in 0..self.app.num_chares() {
            self.replayed_iters += self.next_iter[chare].saturating_sub(k);
            self.state[chare] = CState::Waiting;
        }
        self.tracker.rollback(k);
        self.finished = 0;

        // Restore the checkpointed placement; chares owned by a dead core
        // come back from the replica on their buddy. A warming core holds
        // no replica (it attached after the snapshot), so for restore
        // purposes it counts as unavailable.
        let alive: Vec<bool> = self
            .cluster
            .alive_mask()
            .into_iter()
            .zip(&self.warming)
            .map(|(a, &w)| a && !w)
            .collect();
        self.mapping = ckpt_map;
        let mut from_buddy = 0usize;
        for chare in 0..self.app.num_chares() {
            let owner = self.mapping[chare];
            if alive[owner] {
                continue;
            }
            let buddy = self.cluster.buddy_of(owner);
            if !alive[buddy] {
                return Err(RuntimeError::Unrecoverable {
                    reason: format!(
                        "chare {chare}: owner core {owner} and buddy core {buddy} both failed"
                    ),
                });
            }
            self.mapping[chare] = buddy;
            from_buddy += 1;
        }

        // Re-balance over the survivors using predicted next-iteration
        // costs (there is no fresh measurement window mid-rollback).
        let app = self.app;
        let mut stats = LbStats::new(self.num_pes());
        stats.tasks = (0..app.num_chares())
            .map(|i| TaskInfo {
                id: TaskId(i as u64),
                pe: self.mapping[i],
                load: app.task_cost(i, k) / self.speeds[self.mapping[i]],
                bytes: app.state_bytes(i) as u64,
            })
            .collect();
        stats.failed_tasks = std::mem::take(&mut self.pending_failed);
        if self.doomed.iter().any(|&d| d) {
            stats.doomed = self.doomed.clone();
        }
        if self.fresh.iter().any(|&f| f) {
            stats.fresh = self.fresh.clone();
        }
        let plan = self.plan_over_survivors(&stats);
        self.lb_steps += 1;
        // Price the pause: failure detection, the strategy step, and the
        // post-restore migrations. A buddy restore itself is free (the
        // replica is local to the buddy); onward moves are charged like
        // any migration — through the reliable protocol under chaos.
        let (plan, transfers_done) = self.resolve_transfers(plan, &stats, now);
        self.migration_bytes +=
            plan.iter().map(|m| app.state_bytes(m.task.0 as usize) as u64).sum::<u64>();
        let out = migration::commit(&mut self.mapping, &plan);
        self.migrations += out.applied;
        let cost = Dur::from_secs_f64(self.cfg.fail_detect_s + self.cfg.lb.step_cost_s)
            + transfers_done.since(now);
        self.recovery_time += cost;
        if let Some(t) = self.cluster.trace_mut() {
            t.marker(
                now.as_us(),
                format!(
                    "recovery: roll back to iteration {k}, {from_buddy} chare(s) from buddies, \
                     {} re-balancing migration(s)",
                    plan.len()
                ),
            );
        }
        self.queue.schedule(now + cost, Ev::Recovered { epoch: self.epoch });
        Ok(())
    }

    /// The recovery pause is over: every chare resumes from the checkpoint
    /// iteration. Snapshots include the ghosts buffered at the boundary
    /// (see [`crate::checkpoint::ChareCheckpoint::pending`]), so all
    /// chares are immediately runnable, exactly as at startup.
    fn on_recovered(&mut self, now: Time) {
        self.recoveries += 1;
        let k = self.ckpt.as_ref().map(|c| c.0).expect("recovered without a checkpoint");
        self.reopen_window(now);
        for chare in 0..self.app.num_chares() {
            self.next_iter[chare] = k;
            self.state[chare] = CState::Queued;
            self.ready[self.mapping[chare]].push_back(chare);
        }
        for pe in 0..self.num_pes() {
            self.try_start(pe, now);
        }
        if let Some(t) = self.cluster.trace_mut() {
            t.marker(now.as_us(), format!("recovery complete; replaying from iteration {k}"));
        }
    }

    /// Apply an elastic-membership action. Like failures and interference,
    /// membership changes void any in-flight fast-forward capture (the
    /// pre-scheduled events already keep such windows from being replayed).
    fn on_membership(&mut self, action: MembershipAction, now: Time) -> Result<(), RuntimeError> {
        self.ff_capture = None;
        match action {
            MembershipAction::Notice { node, revoke_at } => self.on_notice(node, revoke_at, now),
            MembershipAction::Revoke { node } => self.on_revoke(node, now),
            MembershipAction::Acquire { node } => {
                let mut any = false;
                for core in self.cluster.cores_of_node(node) {
                    if !self.cluster.is_alive(core) {
                        self.cluster.restore_core(core);
                        any = true;
                    }
                    self.warming[core] = true;
                }
                if any {
                    self.elastic.acquisitions += 1;
                }
                if let Some(t) = self.cluster.trace_mut() {
                    t.marker(now.as_us(), format!("node {node} acquired; warming up"));
                }
                Ok(())
            }
            MembershipAction::WarmupDone { node } => {
                let mut any = false;
                for core in self.cluster.cores_of_node(node) {
                    if self.warming[core] {
                        self.warming[core] = false;
                        if self.cluster.is_alive(core) {
                            self.fresh[core] = true;
                        }
                        any = true;
                    }
                }
                if any {
                    self.elastic.warmups += 1;
                }
                if let Some(t) = self.cluster.trace_mut() {
                    t.marker(now.as_us(), format!("node {node} warmed up; accepting work"));
                }
                Ok(())
            }
        }
    }

    /// A spot preemption notice: node `node` will be hard-revoked at
    /// `revoke_at`. Mark its cores doomed (zero-capacity sources for the
    /// balancer) and immediately start draining every chare it hosts,
    /// spread over the least-loaded eligible cores. Transfers whose
    /// arrival overruns the deadline are still sent: a chare whose state
    /// is in flight when the node dies is *rescued* when the transfer
    /// lands, instead of forcing a global rollback.
    fn on_notice(&mut self, node: usize, revoke_at: Time, now: Time) -> Result<(), RuntimeError> {
        self.elastic.notices += 1;
        let cores: Vec<usize> = self.cluster.cores_of_node(node).collect();
        let mut any_alive = false;
        for &core in &cores {
            if self.cluster.is_alive(core) {
                self.doomed[core] = true;
                any_alive = true;
            }
        }
        if let Some(t) = self.cluster.trace_mut() {
            t.marker(
                now.as_us(),
                format!("spot notice: node {node} revoked at {} us", revoke_at.as_us()),
            );
        }
        if !any_alive || self.app_end.is_some() {
            return Ok(());
        }
        // Evacuation targets: alive, not doomed themselves, warmed up.
        let eligible: Vec<usize> = (0..self.num_pes())
            .filter(|&p| self.cluster.is_alive(p) && !self.doomed[p] && !self.warming[p])
            .collect();
        if eligible.is_empty() {
            return Ok(()); // nowhere to drain to; the revocation rolls back
        }
        self.elastic.evacuations_attempted += 1;
        self.evac_attempted[node] = true;
        let evacuees: Vec<usize> =
            (0..self.app.num_chares()).filter(|&c| cores.contains(&self.mapping[c])).collect();
        // Projected chare counts so evacuees spread over the targets.
        let mut count = vec![0usize; self.num_pes()];
        for &pe in &self.mapping {
            count[pe] += 1;
        }
        // Per-source NIC serialization: one outbound state transfer at a
        // time per core, exactly like the migration paths.
        let mut nic_free = vec![now; self.num_pes()];
        let app = self.app;
        let num_pes = self.num_pes();
        let epoch = self.epoch;
        for &chare in &evacuees {
            let src = self.mapping[chare];
            let dest =
                *eligible.iter().min_by_key(|&&p| (count[p], p)).expect("eligible nonempty");
            let start = nic_free[src];
            let arrival = match self.netfault.as_mut() {
                None => {
                    let bytes = app.state_bytes(chare);
                    start
                        + self
                            .cfg
                            .network
                            .migration_delay(bytes, self.cluster.same_node(src, dest))
                }
                Some(ch) => {
                    // Under chaos the drain rides the reliable ARQ
                    // protocol, one transfer per chare.
                    let plan =
                        [Migration { task: TaskId(chare as u64), from: src, to: dest }];
                    let out = netproto::run_transfers(
                        &plan,
                        ch,
                        &self.cluster,
                        &self.cfg.migration_proto,
                        start,
                        |i| app.state_bytes(i),
                        num_pes,
                    );
                    nic_free[src] = out.done_at;
                    if out.committed.is_empty() {
                        continue; // aborted: the revocation will roll back
                    }
                    out.done_at
                }
            };
            nic_free[src] = arrival;
            self.queue.schedule(arrival, Ev::Evac { chare, to: dest, epoch });
            self.pending_evac.insert(chare, dest);
            count[dest] += 1;
            count[src] -= 1;
        }
        let launched = self.pending_evac.len();
        if let Some(t) = self.cluster.trace_mut() {
            t.marker(
                now.as_us(),
                format!("evacuating {launched} chare(s) off node {node} before revocation"),
            );
        }
        Ok(())
    }

    /// The notice deadline fires: node `node` is revoked. Chares already
    /// drained are unaffected; chares whose state transfer is still in
    /// flight are rescued when it lands; chares with no transfer under way
    /// are lost with the node and force a global checkpoint rollback.
    fn on_revoke(&mut self, node: usize, now: Time) -> Result<(), RuntimeError> {
        let killed: Vec<usize> =
            self.cluster.cores_of_node(node).filter(|&c| self.cluster.is_alive(c)).collect();
        if killed.is_empty() {
            return Ok(()); // already down (a failure script beat the notice)
        }
        for &core in &killed {
            let evicted = self.cluster.kill_core(core);
            for (job, finite) in &evicted.evicted_bg {
                if *finite {
                    self.pending_bg -= 1;
                }
                if let Some(t) = self.cluster.trace_mut() {
                    t.marker(now.as_us(), format!("bg job {job} lost with core {core}"));
                }
            }
            self.doomed[core] = false;
            // A chare caught mid-iteration or queued loses its slot; if its
            // state is in flight it must re-enter a ready queue on landing.
            if let Some(run) = self.running[core].take() {
                self.rescue_runnable.insert(run.chare);
                self.state[run.chare] = CState::Waiting;
            }
            while let Some(chare) = self.ready[core].pop_front() {
                self.rescue_runnable.insert(chare);
                self.state[chare] = CState::Waiting;
            }
            if let Some(t) = self.cluster.trace_mut() {
                t.marker(now.as_us(), format!("core {core} revoked"));
            }
        }
        self.elastic.nodes_revoked += 1;
        if self.app_end.is_some() {
            return Ok(());
        }
        if self.cluster.num_alive() == 0 {
            return Err(RuntimeError::AllPesDead);
        }
        let stranded: Vec<usize> =
            (0..self.app.num_chares()).filter(|&c| killed.contains(&self.mapping[c])).collect();
        if stranded.is_empty() {
            if self.evac_attempted[node] {
                self.elastic.evacuations_completed += 1;
            }
            if let Some(t) = self.cluster.trace_mut() {
                t.marker(now.as_us(), format!("node {node} empty at revocation: clean drain"));
            }
            return Ok(());
        }
        let lost =
            stranded.iter().filter(|&&c| !self.pending_evac.contains_key(&c)).count();
        if lost == 0 {
            // Every stranded chare's state is already in flight: commit at
            // landing, no rollback.
            if let Some(t) = self.cluster.trace_mut() {
                t.marker(
                    now.as_us(),
                    format!("{} chare(s) in flight at revocation: rescue pending", stranded.len()),
                );
            }
            return Ok(());
        }
        // The reactive path proactive evacuation exists to avoid: state
        // died with the node, roll everyone back to the checkpoint.
        self.elastic.chares_rolled_back += stranded.len();
        if let Some(t) = self.cluster.trace_mut() {
            t.marker(
                now.as_us(),
                format!("{lost} chare(s) lost with node {node}: rolling back"),
            );
        }
        self.recover(now)
    }

    /// A proactively evacuated chare's state transfer lands on `to`.
    /// Commits the move if the chare still needs one: its source is doomed
    /// (pre-deadline drain) or already revoked (rescue).
    fn on_evac(&mut self, chare: usize, to: usize, now: Time) -> Result<(), RuntimeError> {
        self.ff_capture = None;
        self.pending_evac.remove(&chare);
        let was_runnable = self.rescue_runnable.remove(&chare);
        let src = self.mapping[chare];
        let src_alive = self.cluster.is_alive(src);
        if src_alive && !self.doomed[src] {
            return Ok(()); // an LB step already moved it off the doomed core
        }
        let mut dest = to;
        if !self.cluster.is_alive(dest) || self.doomed[dest] || self.warming[dest] {
            // The planned target was lost or doomed in the meantime:
            // re-pick the emptiest eligible core.
            let mut count = vec![0usize; self.num_pes()];
            for &pe in &self.mapping {
                count[pe] += 1;
            }
            let best = (0..self.num_pes())
                .filter(|&p| self.cluster.is_alive(p) && !self.doomed[p] && !self.warming[p])
                .min_by_key(|&p| (count[p], p));
            match best {
                Some(p) => dest = p,
                None if src_alive => return Ok(()), // stay; revocation handles it
                None => {
                    // Rescued state with nowhere to land: fall back to the
                    // global rollback.
                    self.elastic.chares_rolled_back += 1;
                    return self.recover(now);
                }
            }
        }
        self.mapping[chare] = dest;
        self.migrations += 1;
        self.migration_bytes += self.app.state_bytes(chare) as u64;
        if src_alive {
            self.elastic.chares_drained += 1;
        } else {
            self.elastic.chares_rescued += 1;
        }
        if let Some(t) = self.cluster.trace_mut() {
            let verb = if src_alive { "drained" } else { "rescued" };
            t.marker(now.as_us(), format!("chare {chare} {verb} to core {dest}"));
        }
        match self.state[chare] {
            CState::Running => {
                // Mid-iteration on the doomed core: abandon the partial
                // work; the iteration re-runs at the destination.
                debug_assert!(src_alive, "a chare cannot be Running on a revoked core");
                if self.running[src].is_some_and(|r| r.chare == chare) {
                    self.running[src] = None;
                    self.cluster.abort_fg(src);
                }
                self.state[chare] = CState::Queued;
                self.ready[dest].push_back(chare);
                self.try_start(dest, now);
                self.try_start(src, now);
            }
            CState::Queued => {
                self.ready[src].retain(|&c| c != chare);
                self.ready[dest].push_back(chare);
                self.try_start(dest, now);
            }
            CState::Waiting => {
                if was_runnable {
                    // Its boundary ghosts were consumed before the
                    // revocation; requeue it directly.
                    self.state[chare] = CState::Queued;
                    self.ready[dest].push_back(chare);
                    self.try_start(dest, now);
                } else {
                    self.maybe_ready(chare, now);
                }
            }
            CState::Parked | CState::Finished => {} // pure remap
        }
        Ok(())
    }

    /// Run the strategy over the *eligible* cores only. With every core
    /// alive, none warming and none doomed, this is the plain full-space
    /// path. Otherwise the database is compacted onto the eligible cores
    /// first (a dead core's zero load would otherwise attract every task;
    /// a warming core is not yet a target), the resulting plan is
    /// sanitized as a safety net (which also keeps doomed cores
    /// source-only), and indices are translated back to global core space.
    fn plan_over_survivors(&mut self, stats: &LbStats) -> Vec<Migration> {
        let mut alive = self.cluster.alive_mask();
        for (pe, w) in self.warming.iter().enumerate() {
            if *w {
                alive[pe] = false;
            }
        }
        let plan = if alive.iter().all(|a| *a) && stats.doomed.is_empty() {
            let plan = self.strategy.plan(stats);
            cloudlb_balance::strategy::validate_plan(stats, &plan);
            plan
        } else {
            let (compact, alive_idx) = compact_stats(stats, &alive);
            let plan = self.strategy.plan(&compact);
            let all_alive = vec![true; alive_idx.len()];
            let san = cloudlb_balance::sanitize_plan(&compact, &plan, &all_alive);
            san.plan
                .into_iter()
                .map(|m| Migration { task: m.task, from: alive_idx[m.from], to: alive_idx[m.to] })
                .collect()
        };
        // Eager refill is one-shot: after one planning pass over the fresh
        // flags, warmed-up cores compete normally.
        for f in &mut self.fresh {
            *f = false;
        }
        plan
    }

    /// Resolve a plan's state transfers. On the clean path this is the
    /// analytic [`migration::transfer_time`] costing and every entry
    /// commits. Under network chaos each transfer runs through the ARQ
    /// protocol instead: aborted migrations are dropped from the plan
    /// (their chares stay home), recorded in `pending_failed` for the next
    /// LB step, and the surviving partial plan is re-sanitized as a safety
    /// net. Returns the committable plan and the instant transfers end.
    fn resolve_transfers(
        &mut self,
        plan: Vec<Migration>,
        stats: &LbStats,
        now: Time,
    ) -> (Vec<Migration>, Time) {
        let app = self.app;
        let num_pes = self.ready.len();
        let Some(ch) = self.netfault.as_mut() else {
            let cluster = &self.cluster;
            let transfer = migration::transfer_time(
                &plan,
                &self.cfg.network,
                |i| app.state_bytes(i),
                |a, b| cluster.same_node(a, b),
                num_pes,
            );
            return (plan, now + transfer);
        };
        let out = netproto::run_transfers(
            &plan,
            ch,
            &self.cluster,
            &self.cfg.migration_proto,
            now,
            |i| app.state_bytes(i),
            num_pes,
        );
        if out.aborted.is_empty() {
            return (out.committed, out.done_at);
        }
        // Graceful degradation: aborted chares stay on their source core,
        // the partial plan is re-sanitized, and the failed moves feed the
        // next LB step through `LbStats::failed_tasks`. Warming cores are
        // masked so a repair never targets a core that is not yet open.
        let mut alive = self.cluster.alive_mask();
        for (pe, w) in self.warming.iter().enumerate() {
            if *w {
                alive[pe] = false;
            }
        }
        let committed = cloudlb_balance::sanitize_plan(stats, &out.committed, &alive).plan;
        self.pending_failed.extend(out.aborted.iter().map(|m| m.task));
        if let Some(t) = self.cluster.trace_mut() {
            t.marker(
                now.as_us(),
                format!("{} migration(s) aborted on network timeout", out.aborted.len()),
            );
        }
        (committed, out.done_at)
    }

    fn start_lb(&mut self, now: Time) {
        self.atsync.begin_lb();
        let (now_stat, obs_now) = self.observe(now);
        let app = self.app;
        // The snapshot lives in a Sim-owned scratch so every window after
        // the first rebuilds it allocation-free.
        let mut stats = std::mem::replace(&mut self.stats_scratch, LbStats::new(0));
        let quality = self
            .window
            .build_stats_into(obs_now, &now_stat, &self.mapping, |i| app.state_bytes(i) as u64, &mut stats);
        self.window_quality.merge(&quality);
        // Attach the (constant) per-window communication graph in one
        // exactly-sized copy.
        stats.comm.clone_from(&self.comm_template);
        // Tell the strategy which moves the network refused last time.
        stats.failed_tasks = std::mem::take(&mut self.pending_failed);
        // Chares stranded on a revoked core with a rescue transfer still in
        // flight are presented at their landing destination: the strategy
        // may plan over them, but a move it makes is skipped as stale at
        // commit (`mapping` still says the dead core) — the landing commits
        // the real move.
        if !self.pending_evac.is_empty() {
            let alive = self.cluster.alive_mask();
            for t in &mut stats.tasks {
                if !alive[t.pe] {
                    if let Some(&dest) = self.pending_evac.get(&(t.id.0 as usize)) {
                        t.pe = dest;
                    }
                }
            }
        }
        // And which cores are under a spot notice (source-only) or were
        // just acquired (eagerly refill).
        if self.doomed.iter().any(|&d| d) {
            stats.doomed.clone_from(&self.doomed);
        }
        if self.fresh.iter().any(|&f| f) {
            stats.fresh.clone_from(&self.fresh);
        }
        let plan = self.plan_over_survivors(&stats);
        let (plan, transfers_done) = self.resolve_transfers(plan, &stats, now);
        self.stats_scratch = stats;
        let end = transfers_done + Dur::from_secs_f64(self.cfg.lb.step_cost_s);

        // Executor task ids are chare indices and their state bytes come
        // straight from the app, so the per-migration `stats.task` scan
        // (O(plan × tasks)) is unnecessary.
        self.migration_bytes +=
            plan.iter().map(|m| app.state_bytes(m.task.0 as usize) as u64).sum::<u64>();
        self.lb_steps += 1;
        let out = migration::commit(&mut self.mapping, &plan);
        self.migrations += out.applied;

        // Record the LB pause on every core's timeline.
        let num_pes = self.ready.len();
        if let Some(t) = self.cluster.trace_mut() {
            for e in &out.skipped {
                t.marker(now.as_us(), format!("migration skipped: {e}"));
            }
        }
        if let Some(t) = self.cluster.trace_mut() {
            t.marker(
                now.as_us(),
                format!("LB step {} ({} migrations)", self.lb_steps, plan.len()),
            );
            for pe in 0..num_pes {
                t.record(pe, now.as_us(), end.as_us(), Activity::LoadBalance);
            }
        }
        self.queue.schedule(end, Ev::LbDone { epoch: self.epoch });
        // Ask the run loop to close any open capture once the event popped
        // at this instant has been delivered (see `ff_close_pending`).
        self.ff_close_pending = true;
    }

    fn on_lb_done(&mut self, now: Time) {
        let released = self.atsync.release();
        // The boundary's post-migration state is the new checkpoint when
        // the policy says so.
        if self.cfg.checkpoints.due(self.lb_boundary) {
            self.ckpt = Some((self.lb_boundary, self.mapping.clone()));
            if let Some(t) = self.cluster.trace_mut() {
                t.marker(now.as_us(), format!("checkpoint at iteration {}", self.lb_boundary));
            }
        }
        // Open a fresh measurement window at the resume instant.
        self.reopen_window(now);
        // Steady state reached? Replay the captured window template in one
        // macro-step (the barrier re-parks immediately), or start capturing
        // this window so the next one can be replayed.
        if self.ff_enabled {
            if self.ff_try_replay(now) {
                return;
            }
            self.ff_begin_capture(now);
        }
        for chare in released {
            self.state[chare] = CState::Waiting;
            self.maybe_ready(chare, now);
        }
        for pe in 0..self.ready.len() {
            self.try_start(pe, now);
        }
    }

    /// Deterministic per-execution cost perturbation (see
    /// [`RunConfig::cost_noise_frac`]).
    fn cost_noise(&self, chare: usize, iter: usize) -> f64 {
        let f = self.cfg.cost_noise_frac;
        if f == 0.0 {
            return 1.0;
        }
        let key = self
            .cfg
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((chare as u64) << 32 | iter as u64);
        let u = cloudlb_sim::SimRng::new(key).f64();
        (1.0 + f * (2.0 * u - 1.0)).max(0.05)
    }

    /// `true` when the chaos layer cannot disturb any send in `[from, to]`.
    /// `to` is compared strictly because the window's last ghosts go out
    /// exactly at `to` (a partition opening then would already cut them).
    fn netfault_quiet_until(&self, from: Time, to: Time) -> bool {
        let Some(ch) = &self.netfault else { return true };
        match ch.next_disturbance_at(from) {
            None => true,
            Some(d) => d > to,
        }
    }

    /// Bit-exact fingerprint of the task costs the window starting at
    /// `boundary` will execute. Replay validity requires equality, so
    /// iteration-dependent applications decline safely.
    fn ff_cost_bits(&self, boundary: usize) -> Vec<u64> {
        let n = self.app.num_chares();
        let period = self.cfg.lb.period;
        let mut bits = Vec::with_capacity(n * period);
        for chare in 0..n {
            for off in 0..period {
                bits.push(self.app.task_cost(chare, boundary + off).to_bits());
            }
        }
        bits
    }

    /// Scan the live event queue at a window's release instant. A
    /// steady-state window may only have current-epoch, non-duplicate
    /// ghost messages for the `boundary` iteration in flight; anything
    /// else — pending interference or failure actions, stale-epoch
    /// leftovers, wakes — disqualifies it. Returns the in-flight ghosts in
    /// sequence order (so FIFO tie-breaks can be compared and replayed)
    /// plus the boundary-iteration inbox fingerprint, or `None`.
    fn ff_window_start(&self, now: Time, boundary: usize) -> Option<WindowStart> {
        let mut msgs: Vec<(u64, FfMsg)> = Vec::with_capacity(self.queue.len());
        for (_h, at, seq, ev) in self.queue.iter_live() {
            match *ev {
                Ev::Msg { chare, iter, epoch, dup: false }
                    if iter == boundary && epoch == self.epoch =>
                {
                    msgs.push((seq, FfMsg { rel: at.since(now), chare }));
                }
                _ => return None,
            }
        }
        msgs.sort_unstable_by_key(|&(seq, _)| seq);
        let mut inbox: Vec<(usize, usize)> = Vec::new();
        for chare in 0..self.app.num_chares() {
            for s in [Self::inbox_slot(chare, 0), Self::inbox_slot(chare, 1)] {
                let count = self.inbox_count[s] as usize;
                if count == 0 {
                    continue;
                }
                if self.inbox_iter[s] != boundary {
                    return None; // foreign-iteration ghosts buffered
                }
                inbox.push((chare, count));
            }
        }
        // The chare-major slot scan yields the counts already sorted.
        Some((msgs.into_iter().map(|(_, m)| m).collect(), inbox))
    }

    /// Open a capture of the window starting at `now` (all chares just
    /// released at `self.lb_boundary`) if it is provably steady-state so
    /// far. Conditions that only resolve at the window's end are
    /// re-checked by [`Sim::ff_finish_capture`].
    fn ff_begin_capture(&mut self, now: Time) {
        let b0 = self.lb_boundary;
        if b0 + self.cfg.lb.period >= self.cfg.iterations || self.cluster.any_bg() {
            return; // window would end the app, or GPS sharing is active
        }
        if !self.netfault_quiet_until(now, now) {
            return; // stochastic chaos, or a partition is already open
        }
        let Some((start_inflight, start_inbox)) = self.ff_window_start(now, b0) else {
            return;
        };
        self.queue.mark_window();
        self.ff_capture = Some(Capture {
            started_at: now,
            boundary: b0,
            start_stat: self.cluster.stats(),
            start_popped: self.queue.total_popped(),
            live_at_start: self.queue.len(),
            start_local: self.local_msgs,
            start_remote: self.remote_msgs,
            mapping: self.mapping.clone(),
            alive: self.cluster.alive_mask(),
            cost_bits: self.ff_cost_bits(b0),
            start_inflight,
            start_inbox,
            samples: Vec::with_capacity(self.app.num_chares() * self.cfg.lb.period),
        });
    }

    /// Close the capture opened at this window's release and turn it into
    /// a reusable template — or discard it if the window turned out not to
    /// be steady-state after all. Runs from the event loop's epilogue (not
    /// inline from [`Sim::start_lb`]) so a boundary ghost popped at the
    /// same instant as the final park has been delivered to the inbox
    /// before the scan; the deferral is requested via `ff_close_pending`.
    fn ff_finish_capture(&mut self, now: Time) {
        let Some(cap) = self.ff_capture.take() else { return };
        let b1 = cap.boundary + self.cfg.lb.period;
        debug_assert_eq!(b1, self.lb_boundary, "capture spans exactly one LB window");
        if !self.netfault_quiet_until(cap.started_at, now) {
            return; // a partition window opened while the capture ran
        }
        if cap.samples.len() != self.app.num_chares() * self.cfg.lb.period {
            return; // some task ran outside the window's iteration block
        }
        // Classify what is pending at the barrier: next-boundary ghosts in
        // flight (replayed as fresh events), the LbDone just scheduled,
        // and same-instant wakes that the dispatch epilogue is about to
        // cancel (every core idles once all chares park). Anything else
        // disqualifies the window.
        let mut lb_done = 0usize;
        let mut msgs: Vec<(u64, FfMsg)> = Vec::new();
        for (_h, at, seq, ev) in self.queue.iter_live() {
            match *ev {
                Ev::Msg { chare, iter, epoch, dup: false }
                    if iter == b1 && epoch == self.epoch =>
                {
                    msgs.push((seq, FfMsg { rel: at.since(cap.started_at), chare }));
                }
                Ev::Wake if at == now => {}
                Ev::LbDone { epoch } if epoch == self.epoch => lb_done += 1,
                _ => return,
            }
        }
        if lb_done != 1 {
            return;
        }
        msgs.sort_unstable_by_key(|&(seq, _)| seq);
        let mut end_inbox: Vec<(usize, usize)> = Vec::new();
        for chare in 0..self.app.num_chares() {
            for s in [Self::inbox_slot(chare, 0), Self::inbox_slot(chare, 1)] {
                let count = self.inbox_count[s] as usize;
                if count == 0 {
                    continue;
                }
                if self.inbox_iter[s] != b1 {
                    return;
                }
                end_inbox.push((chare, count));
            }
        }
        let stat_delta = ProcStat { cores: self.cluster.stats() }
            .delta_since(&ProcStat { cores: cap.start_stat });
        self.ff_template = Some(WindowTemplate {
            dur: now.since(cap.started_at),
            mapping: cap.mapping,
            alive: cap.alive,
            cost_bits: cap.cost_bits,
            start_inflight: cap.start_inflight,
            start_inbox: cap.start_inbox,
            end_inflight: msgs.into_iter().map(|(_, m)| m).collect(),
            end_inbox,
            samples: cap.samples,
            stat_delta,
            local_msgs: self.local_msgs - cap.start_local,
            remote_msgs: self.remote_msgs - cap.start_remote,
            events_popped: self.queue.total_popped() - cap.start_popped,
            peak_delta: self.queue.window_peak() - cap.live_at_start,
        });
    }

    /// Replay the stored template over the window starting at `now` if
    /// every validity condition holds: same boundary-relative costs, same
    /// mapping and alive mask, identical in-flight/buffered ghosts, quiet
    /// network through the window's end, and the window cannot finish the
    /// app. On success the executor jumps straight to the next AtSync park
    /// (with [`Sim::start_lb`] already invoked) and the caller must return
    /// without releasing the barrier. On mismatch the stale template is
    /// dropped so the next live window re-captures fresh state.
    fn ff_try_replay(&mut self, now: Time) -> bool {
        let Some(t) = self.ff_template.take() else { return false };
        let b0 = self.lb_boundary;
        let valid = b0 + self.cfg.lb.period < self.cfg.iterations
            && !self.cluster.any_bg()
            && t.mapping == self.mapping
            && t.alive == self.cluster.alive_mask()
            && self.netfault_quiet_until(now, now + t.dur)
            && self.ff_window_start_matches(now, b0, &t)
            && self.ff_cost_bits_match(b0, &t.cost_bits);
        if !valid {
            return false;
        }
        self.ff_replay(now, &t);
        self.ff_template = Some(t);
        true
    }

    /// Streaming equivalent of comparing [`Sim::ff_window_start`] against
    /// the template's fingerprint: `true` iff the live queue holds exactly
    /// the template's in-flight boundary ghosts (in sequence order) and
    /// the inbox holds exactly its boundary counts. Runs every steady
    /// boundary, so it reuses one scratch vector instead of materializing
    /// a fresh `WindowStart`.
    fn ff_window_start_matches(&mut self, now: Time, boundary: usize, t: &WindowTemplate) -> bool {
        let mut seqs = std::mem::take(&mut self.ff_seq_scratch);
        seqs.clear();
        let ok = 'scan: {
            for (_h, at, seq, ev) in self.queue.iter_live() {
                match *ev {
                    Ev::Msg { chare, iter, epoch, dup: false }
                        if iter == boundary && epoch == self.epoch =>
                    {
                        seqs.push((seq, FfMsg { rel: at.since(now), chare }));
                    }
                    _ => break 'scan false,
                }
            }
            seqs.sort_unstable_by_key(|&(seq, _)| seq);
            if !seqs.iter().map(|&(_, m)| m).eq(t.start_inflight.iter().copied()) {
                break 'scan false;
            }
            let mut want = t.start_inbox.iter().copied();
            for chare in 0..self.app.num_chares() {
                for s in [Self::inbox_slot(chare, 0), Self::inbox_slot(chare, 1)] {
                    let count = self.inbox_count[s] as usize;
                    if count == 0 {
                        continue;
                    }
                    if self.inbox_iter[s] != boundary || want.next() != Some((chare, count)) {
                        break 'scan false;
                    }
                }
            }
            want.next().is_none()
        };
        self.ff_seq_scratch = seqs;
        ok
    }

    /// `true` iff the window starting at `boundary` has exactly the cost
    /// fingerprint `bits` (as produced by [`Sim::ff_cost_bits`]). Streams
    /// the comparison so the per-boundary replay check allocates nothing —
    /// the eager `ff_cost_bits` rebuild it replaces was an O(chares ×
    /// period) allocation on every boundary at 1M chares.
    fn ff_cost_bits_match(&self, boundary: usize, bits: &[u64]) -> bool {
        let n = self.app.num_chares();
        let period = self.cfg.lb.period;
        bits.len() == n * period
            && (0..n).all(|chare| {
                (0..period).all(|off| {
                    bits[chare * period + off]
                        == self.app.task_cost(chare, boundary + off).to_bits()
                })
            })
    }

    /// Apply template `t` to the window starting at `now`: one analytic
    /// macro-step replacing the event-by-event simulation of `period`
    /// iterations, bit-identical in every observable (see `DESIGN.md` for
    /// the equivalence argument).
    fn ff_replay(&mut self, now: Time, t: &WindowTemplate) {
        let n = self.app.num_chares();
        let b0 = self.lb_boundary;
        let b1 = b0 + self.cfg.lb.period;
        let end = now + t.dur;
        // The in-flight boundary ghosts were verified against the
        // template; their delivery and consumption are baked into it, so
        // they are cancelled un-popped and credited via `events_skipped`.
        let live_before = self.queue.len();
        let stale: Vec<EventHandle> = self.queue.iter_live().map(|(h, ..)| h).collect();
        for h in stale {
            self.queue.cancel(h);
        }
        // Jump the cluster's accounting across the window in one step
        // (asserts per-core time conservation in debug builds).
        self.cluster.bulk_advance(end, &t.stat_delta);
        // Re-enact the externally visible effects of every task
        // completion, in the original order.
        for s in &t.samples {
            self.tracker.contribute(b0 + s.iter_off, now + s.rel);
            self.window.record(TaskSample {
                task: TaskId(s.chare as u64),
                pe: t.mapping[s.chare],
                cpu: s.cpu,
                wall: s.wall,
            });
        }
        self.inbox_count.fill(0);
        for &(chare, count) in &t.end_inbox {
            let s = Self::inbox_slot(chare, b1);
            self.inbox_iter[s] = b1;
            self.inbox_count[s] = count as u32;
        }
        // Re-scheduling in template sequence order preserves FIFO
        // tie-breaks among same-instant arrivals.
        for m in &t.end_inflight {
            self.queue
                .schedule(now + m.rel, Ev::Msg { chare: m.chare, iter: b1, epoch: self.epoch, dup: false });
        }
        self.local_msgs += t.local_msgs;
        self.remote_msgs += t.remote_msgs;
        self.events_skipped += t.events_popped;
        self.ff_windows += 1;
        // Every chare ran its `period` iterations and is parked again.
        for chare in 0..n {
            debug_assert_eq!(self.state[chare], CState::Parked);
            self.next_iter[chare] = b1;
            self.atsync.park(chare, n);
        }
        let num_pes = self.num_pes();
        if let Some(tr) = self.cluster.trace_mut() {
            tr.marker(now.as_us(), format!("fast-forward: iterations {b0}..{b1} coalesced"));
            for pe in 0..num_pes {
                tr.record(pe, now.as_us(), end.as_us(), Activity::FastForward);
            }
        }
        self.lb_boundary = b1;
        self.start_lb(end);
        // Account for the queue depth the skipped events would have
        // reached, so `peak_queue_depth` stays bit-identical.
        self.queue.raise_peak(live_before + t.peak_delta);
    }

    /// Keep exactly one pending Wake per core, at its next completion
    /// instant. Skips queue churn when that instant is unchanged.
    fn reschedule_wake(&mut self, core: usize) {
        let next = self.cluster.next_completion(core);
        match (self.wake[core], next) {
            (Some((_, t_old)), Some(t_new)) if t_old == t_new => {}
            (None, None) => {}
            (old, new) => {
                if let Some((h, _)) = old {
                    self.queue.cancel(h);
                }
                self.wake[core] = new.map(|t| (self.queue.schedule(t, Ev::Wake), t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointPolicy;
    use crate::config::{LbConfig, RunConfig};
    use crate::program::SyntheticApp;
    use cloudlb_sim::ClusterConfig;

    fn small_cfg(iters: usize, strategy: &str) -> RunConfig {
        RunConfig {
            cluster: ClusterConfig { nodes: 1, cores_per_node: 4, trace: false },
            lb: LbConfig { strategy: strategy.into(), period: 5, ..Default::default() },
            iterations: iters,
            ..RunConfig::paper(4, iters)
        }
    }

    #[test]
    fn interference_free_run_completes_with_uniform_iterations() {
        let app = SyntheticApp::ring(16, 0.001);
        let r = SimExecutor::new(&app, small_cfg(10, "nolb"), BgScript::none()).run();
        assert_eq!(r.iter_times.len(), 10);
        assert_eq!(r.lb_steps, 1); // boundary before iteration 5
        assert_eq!(r.migrations, 0);
        assert_eq!(r.failures, 0);
        assert_eq!(r.recoveries, 0);
        // 4 chares per core × 1 ms each ≈ 4 ms per iteration (+ latency).
        let mean = r.mean_iter_s();
        assert!((0.004..0.006).contains(&mean), "mean iter {mean}");
    }

    #[test]
    fn interference_doubles_nolb_iterations() {
        let app = SyntheticApp::ring(16, 0.001);
        let base = SimExecutor::new(&app, small_cfg(10, "nolb"), BgScript::none()).run();
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let run = SimExecutor::new(&app, small_cfg(10, "nolb"), bg).run();
        let penalty = run.timing_penalty_vs(&base);
        assert!(penalty > 0.7, "expected ~100% penalty, got {penalty}");
    }

    #[test]
    fn cloud_refine_reduces_penalty_and_migrates() {
        let app = SyntheticApp::ring(32, 0.001);
        let base = SimExecutor::new(&app, small_cfg(40, "nolb"), BgScript::none()).run();
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let nolb = SimExecutor::new(&app, small_cfg(40, "nolb"), bg.clone()).run();
        let lb = SimExecutor::new(&app, small_cfg(40, "cloudrefine"), bg).run();
        assert!(lb.migrations > 0, "balancer should migrate under interference");
        let p_nolb = nolb.timing_penalty_vs(&base);
        let p_lb = lb.timing_penalty_vs(&base);
        assert!(
            p_lb < 0.5 * p_nolb,
            "LB penalty {p_lb:.3} should be under half of noLB {p_nolb:.3}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let app = SyntheticApp::ring(16, 0.0005);
        let bg = BgScript::steady(3, &[1], Time::from_us(500), Some(Dur::from_ms(30)), 1.0);
        let a = SimExecutor::new(&app, small_cfg(12, "cloudrefine"), bg.clone()).run();
        let b = SimExecutor::new(&app, small_cfg(12, "cloudrefine"), bg).run();
        assert_eq!(a.app_time, b.app_time);
        assert_eq!(a.iter_times, b.iter_times);
        assert_eq!(a.final_mapping, b.final_mapping);
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn finite_bg_job_reports_penalty() {
        let app = SyntheticApp::ring(16, 0.001);
        // BG job with 20 ms of work per core on 2 cores, fair sharing.
        let bg = BgScript::steady(7, &[0, 1], Time::ZERO, Some(Dur::from_ms(20)), 1.0);
        let r = SimExecutor::new(&app, small_cfg(30, "nolb"), bg).run();
        let p = r.bg_penalties.get(&7).copied().expect("bg job finished");
        assert!(p > 0.3, "bg competed with the app, penalty {p}");
    }

    #[test]
    fn bg_job_mostly_alone_has_small_penalty() {
        // A short app (2 iterations) next to a long bg job: almost all of
        // the bg's work runs after the app ends, at full speed.
        let app = SyntheticApp::ring(16, 0.001);
        let bg = BgScript::steady(1, &[0, 1], Time::ZERO, Some(Dur::from_ms(200)), 1.0);
        let r = SimExecutor::new(&app, small_cfg(2, "nolb"), bg).run();
        let p = r.bg_penalties.get(&1).copied().expect("finished");
        assert!(p < 0.1, "bg barely impeded, penalty {p}");
        // Contrast: a bg job that competes for its whole life.
        let bg = BgScript::steady(2, &[0, 1], Time::ZERO, Some(Dur::from_ms(10)), 1.0);
        let r2 = SimExecutor::new(&app, small_cfg(30, "nolb"), bg).run();
        let p2 = r2.bg_penalties.get(&2).copied().expect("finished");
        assert!(p2 > p, "competing bg {p2} vs mostly-alone {p}");
    }

    #[test]
    fn trace_records_tasks_and_markers() {
        let app = SyntheticApp::ring(8, 0.001);
        let cfg = small_cfg(6, "cloudrefine").with_trace();
        let bg = BgScript::pulse(0, 2, Time::from_us(100), Time::from_us(20_000), 1.0);
        let r = SimExecutor::new(&app, cfg, bg).run();
        let trace = r.trace.expect("tracing enabled");
        assert!(trace.markers().iter().any(|(_, l)| l.contains("bg job 0 starts")));
        let tasks = trace.time_where(0, 0, u64::MAX, |a| matches!(a, Activity::Task { .. }));
        assert!(tasks > 0);
    }

    #[test]
    fn migration_cost_appears_in_wall_time() {
        let app = SyntheticApp::ring(32, 0.001);
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let mut cheap = small_cfg(40, "cloudrefine");
        cheap.lb.step_cost_s = 0.0001;
        let mut dear = cheap.clone();
        dear.lb.step_cost_s = 0.050;
        let fast = SimExecutor::new(&app, cheap, bg.clone()).run();
        let slow = SimExecutor::new(&app, dear, bg).run();
        assert!(slow.app_time > fast.app_time);
    }

    #[test]
    #[should_panic(expected = "beyond cluster")]
    fn bg_script_outside_cluster_rejected() {
        let app = SyntheticApp::ring(8, 0.001);
        let bg = BgScript::steady(0, &[99], Time::ZERO, None, 1.0);
        SimExecutor::new(&app, small_cfg(5, "nolb"), bg);
    }

    #[test]
    fn lb_period_counts_steps() {
        let app = SyntheticApp::ring(8, 0.001);
        let mut cfg = small_cfg(20, "nolb");
        cfg.lb.period = 4;
        let r = SimExecutor::new(&app, cfg, BgScript::none()).run();
        // Boundaries before iterations 4, 8, 12, 16 → 4 steps.
        assert_eq!(r.lb_steps, 4);
    }

    #[test]
    fn core_failure_recovers_and_completes() {
        let app = SyntheticApp::ring(16, 0.001);
        let clean = SimExecutor::new(&app, small_cfg(40, "cloudrefine"), BgScript::none()).run();
        // Kill core 2 mid-run (≈ iteration 12 of 40).
        let fail = FailureScript::kill_core(2, Time::from_us(50_000));
        let r = SimExecutor::new(&app, small_cfg(40, "cloudrefine"), BgScript::none())
            .with_failures(fail)
            .try_run()
            .expect("recoverable failure");
        assert_eq!(r.iter_times.len(), 40);
        assert_eq!(r.failures, 1);
        assert_eq!(r.recoveries, 1);
        assert!(r.replayed_iters > 0, "rollback must replay some work");
        assert!(r.recovery_time > Dur::ZERO);
        assert!(
            r.final_mapping.iter().all(|&p| p != 2),
            "no chare may end on the dead core: {:?}",
            r.final_mapping
        );
        assert!(
            r.app_time > clean.app_time,
            "losing a core must cost wall time ({:?} vs {:?})",
            r.app_time,
            clean.app_time
        );
    }

    #[test]
    fn failure_runs_are_deterministic() {
        let app = SyntheticApp::ring(16, 0.0008);
        let bg = BgScript::steady(1, &[0], Time::ZERO, None, 1.0);
        let fail = FailureScript::kill_core(3, Time::from_us(40_000));
        let run = || {
            SimExecutor::new(&app, small_cfg(30, "cloudrefine"), bg.clone())
                .with_failures(fail.clone())
                .try_run()
                .expect("recoverable")
        };
        let a = run();
        let b = run();
        assert_eq!(a.app_time, b.app_time);
        assert_eq!(a.final_mapping, b.final_mapping);
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!(a.replayed_iters, b.replayed_iters);
    }

    #[test]
    fn kill_without_checkpoints_is_a_typed_error() {
        let app = SyntheticApp::ring(16, 0.001);
        let mut cfg = small_cfg(20, "nolb");
        cfg.checkpoints = CheckpointPolicy::Disabled;
        let fail = FailureScript::kill_core(1, Time::from_us(10_000));
        let err = SimExecutor::new(&app, cfg, BgScript::none())
            .with_failures(fail)
            .try_run()
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Unrecoverable { .. }), "{err}");
    }

    #[test]
    fn node_outage_recovers_and_restored_node_rejoins() {
        // Two nodes: node 1 (cores 4..8) dies mid-run and comes back later.
        let app = SyntheticApp::ring(32, 0.001);
        let mut cfg = RunConfig::paper(8, 60);
        cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 5, ..Default::default() };
        let fail = FailureScript::node_outage(1, Time::from_us(30_000), Time::from_us(90_000));
        let r = SimExecutor::new(&app, cfg, BgScript::none())
            .with_failures(fail)
            .try_run()
            .expect("buddies live on node 0");
        assert_eq!(r.iter_times.len(), 60);
        assert_eq!(r.failures, 4, "all four cores of node 1 fail");
        assert_eq!(r.recoveries, 1, "one kill action, one rollback");
        // The restored cores re-join at a later LB boundary and host work
        // again by the end of the run.
        assert!(
            r.final_mapping.iter().any(|&p| p >= 4),
            "restored node never re-used: {:?}",
            r.final_mapping
        );
    }

    #[test]
    fn killing_every_core_reports_all_pes_dead() {
        let app = SyntheticApp::ring(8, 0.001);
        let fail = FailureScript::kill_node(0, Time::from_us(5_000));
        let err = SimExecutor::new(&app, small_cfg(20, "nolb"), BgScript::none())
            .with_failures(fail)
            .try_run()
            .unwrap_err();
        assert_eq!(err, RuntimeError::AllPesDead);
    }

    #[test]
    fn failure_trace_ledger_records_events() {
        let app = SyntheticApp::ring(16, 0.001);
        let cfg = small_cfg(30, "cloudrefine").with_trace();
        let fail = FailureScript::kill_core(1, Time::from_us(40_000));
        let r = SimExecutor::new(&app, cfg, BgScript::none())
            .with_failures(fail)
            .try_run()
            .expect("recoverable");
        let trace = r.trace.expect("tracing enabled");
        let markers = trace.markers();
        assert!(markers.iter().any(|(_, l)| l.contains("core 1 fails")));
        assert!(markers.iter().any(|(_, l)| l.contains("recovery: roll back")));
        assert!(markers.iter().any(|(_, l)| l.contains("recovery complete")));
        assert!(markers.iter().any(|(_, l)| l.contains("checkpoint at iteration")));
    }

    #[test]
    fn finite_bg_on_killed_core_does_not_hang_the_run() {
        let app = SyntheticApp::ring(16, 0.001);
        // A huge finite bg job on core 0 — it can only finish long after
        // the app. Killing core 0 evicts it; the loop must still exit.
        let bg = BgScript::steady(5, &[0], Time::ZERO, Some(Dur::from_ms(10_000)), 1.0);
        let fail = FailureScript::kill_core(0, Time::from_us(20_000));
        let r = SimExecutor::new(&app, small_cfg(20, "cloudrefine"), bg)
            .with_failures(fail)
            .try_run()
            .expect("recoverable");
        assert_eq!(r.iter_times.len(), 20);
        assert!(!r.bg_penalties.contains_key(&5), "evicted job reports no penalty");
    }

    #[test]
    fn noisy_telemetry_runs_are_deterministic_and_flag_anomalies() {
        use cloudlb_sim::TelemetrySpec;
        let app = SyntheticApp::ring(16, 0.001);
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let run = || {
            SimExecutor::new(&app, small_cfg(30, "cloudrefine"), bg.clone())
                .with_telemetry(TelemetrySpec::noisy_cloud())
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.app_time, b.app_time);
        assert_eq!(a.final_mapping, b.final_mapping);
        assert_eq!(a.telemetry, b.telemetry);
        assert!(a.telemetry.total() > 0, "noisy_cloud must trip the validators: {:?}", a.telemetry);
        // Ground truth is untouched: the app still completes every iteration.
        assert_eq!(a.iter_times.len(), 30);
    }

    #[test]
    fn clean_telemetry_reports_no_anomalies() {
        let app = SyntheticApp::ring(16, 0.001);
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let r = SimExecutor::new(&app, small_cfg(20, "cloudrefine"), bg).run();
        assert_eq!(r.telemetry, crate::lbdb::WindowQuality::default());
        assert_eq!(r.decisions, cloudlb_balance::DecisionQuality::default());
    }

    #[test]
    fn guarded_strategy_reports_decision_quality_under_noise() {
        use cloudlb_sim::TelemetrySpec;
        let app = SyntheticApp::ring(32, 0.001);
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let guarded =
            SimExecutor::new(&app, small_cfg(40, "robustcloudrefine"), bg.clone())
                .with_telemetry(TelemetrySpec::noisy_cloud())
                .run();
        let unguarded = SimExecutor::new(&app, small_cfg(40, "cloudrefine"), bg)
            .with_telemetry(TelemetrySpec::noisy_cloud())
            .run();
        assert!(
            guarded.migrations < unguarded.migrations,
            "guards must cut migrations: {} vs {}",
            guarded.migrations,
            unguarded.migrations
        );
        let q = guarded.decisions;
        assert!(q.suppressed + q.oscillations + q.outliers_rejected > 0, "{q:?}");
    }

    #[test]
    fn flaky_network_is_deterministic_and_reports_damage() {
        let app = SyntheticApp::ring(32, 0.001);
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let mut cfg = RunConfig::paper(8, 30);
        cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 5, ..Default::default() };
        let run = || {
            SimExecutor::new(&app, cfg.clone(), bg.clone())
                .with_net_faults(cloudlb_sim::NetFaultSpec::flaky_cloud())
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.app_time, b.app_time);
        assert_eq!(a.final_mapping, b.final_mapping);
        assert_eq!(a.net, b.net);
        // The app still completes every iteration — chaos delays work but
        // never loses it.
        assert_eq!(a.iter_times.len(), 30);
        assert!(
            a.net.lost_copies + a.net.retransmits + a.net.duplicates_dropped > 0,
            "flaky_cloud must damage some traffic: {:?}",
            a.net
        );
        assert!(a.net.partition_us > 0, "flaky_cloud schedules a partition");
        // Conservation: every chare exists exactly once, on a real core.
        assert_eq!(a.final_mapping.len(), 32);
        assert!(a.final_mapping.iter().all(|&p| p < 8));
    }

    #[test]
    fn clean_network_reports_zero_net_stats() {
        let app = SyntheticApp::ring(16, 0.001);
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let r = SimExecutor::new(&app, small_cfg(20, "cloudrefine"), bg).run();
        assert_eq!(r.net, cloudlb_sim::NetStats::default());
    }

    #[test]
    fn exhausted_retries_abort_migrations_and_the_run_still_completes() {
        use crate::netproto::MigrationProto;
        let app = SyntheticApp::ring(32, 0.001);
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let mut cfg = RunConfig::paper(8, 40);
        cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 5, ..Default::default() };
        // A brutal link (90% loss) and a stingy retry budget: most
        // cross-node transfers must abort.
        cfg.migration_proto = MigrationProto { max_attempts: 2, deadline_s: 0.002, ack_bytes: 64 };
        let spec = cloudlb_sim::NetFaultSpec { loss: 0.9, ..cloudlb_sim::NetFaultSpec::none() };
        let r = SimExecutor::new(&app, cfg, bg).with_net_faults(spec).run();
        assert_eq!(r.iter_times.len(), 40);
        assert!(r.net.migration_aborts > 0, "expected aborts: {:?}", r.net);
        // Aborted chares stayed home: the mapping is still consistent.
        assert_eq!(r.final_mapping.len(), 32);
        assert!(r.final_mapping.iter().all(|&p| p < 8));
    }

    #[test]
    fn bad_partition_spec_is_invalid_config() {
        use cloudlb_sim::{PartitionScope, PartitionWindow};
        let app = SyntheticApp::ring(8, 0.001);
        let mut spec = cloudlb_sim::NetFaultSpec::none();
        spec.partitions.push(PartitionWindow {
            scope: PartitionScope::NodePair { a: 0, b: 9 },
            from_frac: 0.1,
            to_frac: 0.2,
        });
        let err = SimExecutor::new(&app, small_cfg(5, "nolb"), BgScript::none())
            .with_net_faults(spec)
            .try_run()
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn failure_script_outside_cluster_is_invalid_config() {
        let app = SyntheticApp::ring(8, 0.001);
        let err = SimExecutor::new(&app, small_cfg(5, "nolb"), BgScript::none())
            .with_failures(FailureScript::kill_core(64, Time::ZERO))
            .try_run()
            .expect_err("core 64 does not exist");
        assert!(matches!(err, RuntimeError::InvalidConfig(_)), "got {err}");
    }

    fn with_ff(mut cfg: RunConfig, ff: crate::config::FastForward) -> RunConfig {
        cfg.fast_forward = ff;
        cfg
    }

    #[test]
    fn fast_forward_replays_clean_windows_bit_identically() {
        use crate::config::FastForward as Ff;
        let app = SyntheticApp::ring(16, 0.001);
        for strategy in ["nolb", "cloudrefine"] {
            let cfg = small_cfg(60, strategy);
            let on = SimExecutor::new(&app, with_ff(cfg.clone(), Ff::On), BgScript::none()).run();
            let off = SimExecutor::new(&app, with_ff(cfg, Ff::Off), BgScript::none()).run();
            assert_eq!(off.ff_windows, 0);
            assert_eq!(off.events_skipped, 0);
            assert!(on.ff_windows > 0, "{strategy}: clean run must replay windows");
            assert!(on.events_skipped > 0);
            assert_eq!(on.scrub_ff(), off, "{strategy}: replay must be bit-identical");
        }
    }

    #[test]
    fn fast_forward_declines_windows_with_background_load() {
        use crate::config::FastForward as Ff;
        let app = SyntheticApp::ring(16, 0.001);
        // Interference over the whole run: every window is disturbed.
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let cfg = small_cfg(40, "cloudrefine");
        let on = SimExecutor::new(&app, with_ff(cfg.clone(), Ff::On), bg.clone()).run();
        let off = SimExecutor::new(&app, with_ff(cfg, Ff::Off), bg).run();
        assert_eq!(on.ff_windows, 0, "bg-loaded windows must fall back");
        assert_eq!(on.scrub_ff(), off);
    }

    #[test]
    fn fast_forward_resumes_after_a_transient_disturbance() {
        use crate::config::FastForward as Ff;
        let app = SyntheticApp::ring(16, 0.001);
        // A short bg pulse early in the run; steady state afterwards.
        let bg = BgScript::steady(0, &[1], Time::from_us(10_000), Some(Dur::from_ms(20)), 1.0);
        let cfg = small_cfg(80, "cloudrefine");
        let on = SimExecutor::new(&app, with_ff(cfg.clone(), Ff::On), bg.clone()).run();
        let off = SimExecutor::new(&app, with_ff(cfg.clone(), Ff::Off), bg).run();
        let on_windows = on.ff_windows;
        assert_eq!(on.scrub_ff(), off, "fallback and resume must stay bit-identical");
        let clean =
            SimExecutor::new(&app, with_ff(cfg, Ff::On), BgScript::none()).run();
        assert!(
            on_windows > 0 && on_windows < clean.ff_windows,
            "disturbed run replays some but fewer windows: {} vs clean {}",
            on_windows,
            clean.ff_windows
        );
    }

    #[test]
    fn fast_forward_declines_under_stochastic_network_chaos() {
        use crate::config::FastForward as Ff;
        let app = SyntheticApp::ring(32, 0.001);
        let mut cfg = RunConfig::paper(8, 30);
        cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 5, ..Default::default() };
        let run = |ff| {
            SimExecutor::new(&app, with_ff(cfg.clone(), ff), BgScript::none())
                .with_net_faults(cloudlb_sim::NetFaultSpec::flaky_cloud())
                .run()
        };
        let on = run(Ff::On);
        let off = run(Ff::Off);
        assert_eq!(on.ff_windows, 0, "stochastic chaos disables the fast path");
        assert_eq!(on.scrub_ff(), off);
    }

    #[test]
    fn fast_forward_is_exact_across_a_failure_and_recovery() {
        use crate::config::FastForward as Ff;
        let app = SyntheticApp::ring(16, 0.001);
        let cfg = small_cfg(60, "cloudrefine");
        let fail = FailureScript::kill_core(2, Time::from_us(80_000));
        let run = |ff| {
            SimExecutor::new(&app, with_ff(cfg.clone(), ff), BgScript::none())
                .with_failures(fail.clone())
                .try_run()
                .expect("recoverable failure")
        };
        let on = run(Ff::On);
        let off = run(Ff::Off);
        let on_windows = on.ff_windows;
        assert_eq!(on.scrub_ff(), off, "failure + recovery must stay bit-identical");
        assert!(on_windows > 0, "steady windows around the failure still replay");
    }

    #[test]
    fn auto_mode_preserves_exact_timelines_under_tracing() {
        use crate::config::FastForward as Ff;
        let app = SyntheticApp::ring(16, 0.001);
        let cfg = small_cfg(40, "cloudrefine").with_trace();
        let auto = SimExecutor::new(&app, with_ff(cfg.clone(), Ff::Auto), BgScript::none()).run();
        assert_eq!(auto.ff_windows, 0, "auto must not coalesce traced runs");
        let off = SimExecutor::new(&app, with_ff(cfg.clone(), Ff::Off), BgScript::none()).run();
        assert_eq!(auto.scrub_ff(), off);
        // Forcing it on coalesces the timeline (and only the timeline).
        let on = SimExecutor::new(&app, with_ff(cfg, Ff::On), BgScript::none()).run();
        assert!(on.ff_windows > 0);
        let tr = on.trace.as_ref().expect("tracing enabled");
        let has_ff = (0..tr.num_pes())
            .any(|pe| tr.intervals(pe).iter().any(|iv| iv.activity == Activity::FastForward));
        assert!(has_ff, "forced-on traced runs mark coalesced windows");
        assert_eq!(on.app_time, off.app_time, "physics is unchanged even when the trace is lossy");
        assert_eq!(on.final_mapping, off.final_mapping);
        assert_eq!(on.sim_events, off.sim_events);
    }

    #[test]
    fn cost_noise_disables_the_fast_path() {
        use crate::config::FastForward as Ff;
        let app = SyntheticApp::ring(16, 0.001);
        let mut cfg = with_ff(small_cfg(40, "nolb"), Ff::On);
        cfg.cost_noise_frac = 0.05;
        let r = SimExecutor::new(&app, cfg, BgScript::none()).run();
        assert_eq!(r.ff_windows, 0, "noisy task costs must never replay");
    }

    #[test]
    fn fast_forward_preserves_event_accounting() {
        use crate::config::FastForward as Ff;
        let app = SyntheticApp::ring(16, 0.001);
        let cfg = small_cfg(60, "nolb");
        let on = SimExecutor::new(&app, with_ff(cfg.clone(), Ff::On), BgScript::none()).run();
        let off = SimExecutor::new(&app, with_ff(cfg, Ff::Off), BgScript::none()).run();
        // `sim_events` counts live pops + skipped pops: identical totals.
        assert_eq!(on.sim_events, off.sim_events);
        assert_eq!(on.peak_queue_depth, off.peak_queue_depth);
        assert!(on.events_skipped > 0);
        assert!(on.sim_events > on.events_skipped, "phase B always runs live");
    }

    fn two_node_cfg(iters: usize) -> RunConfig {
        let mut cfg = RunConfig::paper(8, iters);
        cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 5, ..Default::default() };
        cfg
    }

    fn notice_script(node: usize, at_us: u64, revoke_us: u64) -> MembershipScript {
        MembershipScript {
            actions: vec![
                (
                    Time::from_us(at_us),
                    MembershipAction::Notice { node, revoke_at: Time::from_us(revoke_us) },
                ),
                (Time::from_us(revoke_us), MembershipAction::Revoke { node }),
            ],
        }
    }

    #[test]
    fn long_lead_notice_drains_the_node_with_no_rollback() {
        let app = SyntheticApp::ring(32, 0.001);
        // Notice at 30 ms with a 70 ms lead: 16 chares × ~174 µs transfers
        // drain long before the deadline.
        let r = SimExecutor::new(&app, two_node_cfg(40), BgScript::none())
            .with_membership(notice_script(1, 30_000, 100_000))
            .try_run()
            .expect("survivable storm");
        assert_eq!(r.iter_times.len(), 40);
        assert_eq!(r.recoveries, 0, "proactive drain must avoid any rollback");
        assert_eq!(r.elastic.notices, 1);
        assert_eq!(r.elastic.nodes_revoked, 1);
        assert_eq!(r.elastic.evacuations_attempted, 1);
        assert_eq!(r.elastic.evacuations_completed, 1, "node must be empty at revocation");
        assert!(r.elastic.chares_drained > 0);
        assert_eq!(r.elastic.chares_rolled_back, 0);
        assert_eq!(r.failures, 0, "a revocation is not a failure");
        assert!(
            r.final_mapping.iter().all(|&p| p < 4),
            "no chare may end on the revoked node: {:?}",
            r.final_mapping
        );
    }

    #[test]
    fn short_lead_notice_rescues_in_flight_chares() {
        let app = SyntheticApp::ring(32, 0.001);
        // A 50 µs lead: shorter than a single cross-node state transfer
        // (~174 µs), so every evacuee is still in flight at revocation and
        // must be rescued on landing — zero epochs lost.
        let r = SimExecutor::new(&app, two_node_cfg(40), BgScript::none())
            .with_membership(notice_script(1, 30_000, 30_050))
            .try_run()
            .expect("rescue path is survivable");
        assert_eq!(r.iter_times.len(), 40);
        assert_eq!(r.recoveries, 0, "in-flight state must be rescued, not rolled back");
        assert!(r.elastic.chares_rescued > 0, "{:?}", r.elastic);
        assert_eq!(r.elastic.chares_rolled_back, 0);
        assert!(r.final_mapping.iter().all(|&p| p < 4));
    }

    #[test]
    fn acquired_node_warms_up_and_takes_work() {
        let app = SyntheticApp::ring(32, 0.001);
        // Node 1 is latent (acquired at 20 ms, warm at 25 ms): the run
        // starts on node 0's four cores and expands onto node 1.
        let script = MembershipScript {
            actions: vec![
                (Time::from_us(20_000), MembershipAction::Acquire { node: 1 }),
                (Time::from_us(25_000), MembershipAction::WarmupDone { node: 1 }),
            ],
        };
        let r = SimExecutor::new(&app, two_node_cfg(60), BgScript::none())
            .with_membership(script)
            .try_run()
            .expect("expansion is clean");
        assert_eq!(r.iter_times.len(), 60);
        assert_eq!(r.elastic.acquisitions, 1);
        assert_eq!(r.elastic.warmups, 1);
        assert_eq!(r.recoveries, 0);
        assert!(
            r.final_mapping.iter().any(|&p| p >= 4),
            "acquired node never took work: {:?}",
            r.final_mapping
        );
    }

    #[test]
    fn membership_runs_are_deterministic() {
        let app = SyntheticApp::ring(32, 0.001);
        // Three nodes: 0 and 1 initial, 2 acquired mid-run; node 0 is
        // noticed and revoked after the expansion.
        let script = MembershipScript {
            actions: vec![
                (Time::from_us(15_000), MembershipAction::Acquire { node: 2 }),
                (Time::from_us(20_000), MembershipAction::WarmupDone { node: 2 }),
                (
                    Time::from_us(40_000),
                    MembershipAction::Notice { node: 0, revoke_at: Time::from_us(80_000) },
                ),
                (Time::from_us(80_000), MembershipAction::Revoke { node: 0 }),
            ],
        };
        let mut cfg = RunConfig::paper(12, 40);
        cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 5, ..Default::default() };
        let run = || {
            SimExecutor::new(&app, cfg.clone(), BgScript::none())
                .with_membership(script.clone())
                .try_run()
                .expect("survivable")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "membership runs must be bit-identical");
        assert!(a.elastic.notices == 1 && a.elastic.acquisitions == 1, "{:?}", a.elastic);
    }

    #[test]
    fn invalid_membership_scripts_are_invalid_config() {
        let app = SyntheticApp::ring(8, 0.001);
        // Out-of-range node.
        let err = SimExecutor::new(&app, small_cfg(5, "nolb"), BgScript::none())
            .with_membership(notice_script(7, 1_000, 2_000))
            .try_run()
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidConfig(_)), "{err}");
        // Acquisition that is not a trailing node (node 0 of 2).
        let app2 = SyntheticApp::ring(32, 0.001);
        let script = MembershipScript {
            actions: vec![(Time::from_us(1_000), MembershipAction::Acquire { node: 0 })],
        };
        let err = SimExecutor::new(&app2, two_node_cfg(5), BgScript::none())
            .with_membership(script)
            .try_run()
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidConfig(_)), "{err}");
        // Warm-up for a node that is never acquired.
        let script = MembershipScript {
            actions: vec![(Time::from_us(1_000), MembershipAction::WarmupDone { node: 1 })],
        };
        let err = SimExecutor::new(&app2, two_node_cfg(5), BgScript::none())
            .with_membership(script)
            .try_run()
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn static_membership_reports_default_elastic_stats() {
        let app = SyntheticApp::ring(16, 0.001);
        let r = SimExecutor::new(&app, small_cfg(10, "cloudrefine"), BgScript::none()).run();
        assert_eq!(r.elastic, ElasticStats::default());
    }
}
