//! The deterministic simulated executor.
//!
//! Drives an `IterativeApp` (see [`crate::program`]) over the
//! `cloudlb-sim` cluster in virtual time. Execution is message-driven, as
//! in Charm++: a chare runs iteration `k` once it has received all of its
//! neighbors' ghost messages for `k`, computes (consuming CPU on its core,
//! shared with any interfering background tasks), then sends ghosts for
//! `k+1`. Every `period` iterations the chares park at an AtSync barrier,
//! the runtime builds the LB database (task measurements + Eq. 2
//! background loads), runs the configured strategy, commits migrations
//! (charging network transfer time), and resumes.
//!
//! Everything — scheduling, interference, measurement, migration — is
//! bit-for-bit reproducible from the configuration.

use crate::atsync::AtSync;
use crate::config::RunConfig;
use crate::lbdb::{LbWindow, TaskSample};
use crate::migration;
use crate::program::{validate_app, IterativeApp};
use crate::reduction::IterationTracker;
use crate::result::RunResult;
use cloudlb_balance::{LbStrategy, TaskId};
use cloudlb_sim::core_sched::CoreEvent;
use cloudlb_sim::interference::{BgAction, BgLedger, BgScript};
use cloudlb_sim::{Cluster, Dur, EventQueue, FgLabel, ProcStat, Time};
use cloudlb_trace::Activity;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Events driving the simulation.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A ghost message for `iter` arrives at `chare`.
    Msg { chare: usize, iter: usize },
    /// Revisit a core because an entity completes there.
    Wake,
    /// Apply an interference action.
    Bg(BgAction),
    /// The LB step (strategy + migrations) finished.
    LbDone,
}

/// Per-chare lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CState {
    /// Waiting for ghost messages for `next_iter`.
    Waiting,
    /// In its PE's ready queue.
    Queued,
    /// Executing on its PE.
    Running,
    /// Parked at the AtSync barrier.
    Parked,
    /// Completed all iterations.
    Finished,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    chare: usize,
    iter: usize,
    start: Time,
    cpu: Dur,
}

/// Simulated-run executor. Construct, then [`SimExecutor::run`].
pub struct SimExecutor<'a> {
    app: &'a dyn IterativeApp,
    cfg: RunConfig,
    bg: BgScript,
}

impl<'a> SimExecutor<'a> {
    /// Prepare a run of `app` under `cfg` with interference `bg`.
    pub fn new(app: &'a dyn IterativeApp, cfg: RunConfig, bg: BgScript) -> Self {
        validate_app(app);
        if let Some(c) = bg.max_core() {
            assert!(c < cfg.cluster.total_cores(), "bg script targets core {c} beyond cluster");
        }
        assert!(cfg.iterations > 0, "need at least one iteration");
        SimExecutor { app, cfg, bg }
    }

    /// Execute the run to completion and return its metrics.
    pub fn run(self) -> RunResult {
        let strategy = self.cfg.lb.make_strategy();
        self.run_with_strategy(strategy)
    }

    /// Execute with an explicit strategy object (bypasses the registry;
    /// used for the gain-gated wrapper and custom strategies).
    pub fn run_with_strategy(self, strategy: Box<dyn LbStrategy>) -> RunResult {
        Sim::new(self.app, self.cfg, &self.bg, strategy).run()
    }
}

struct Sim<'a> {
    app: &'a dyn IterativeApp,
    cfg: RunConfig,
    strategy: Box<dyn LbStrategy>,

    queue: EventQueue<Ev>,
    cluster: Cluster,
    ledger: BgLedger,
    /// Background jobs seen starting (for penalty reporting).
    seen_bg: Vec<u32>,

    /// chare → core.
    mapping: Vec<usize>,
    /// Per-core FIFO of ready chares.
    ready: Vec<VecDeque<usize>>,
    /// Per-core running task record.
    running: Vec<Option<Running>>,
    /// Per-core pending Wake handle and its instant.
    wake: Vec<Option<(u64, Time)>>,
    /// (chare, iter) → ghost messages received.
    inbox: HashMap<(usize, usize), usize>,
    /// chare → next iteration to execute.
    next_iter: Vec<usize>,
    /// chare → expected ghosts per iteration (= neighbor count).
    expected: Vec<usize>,
    state: Vec<CState>,

    tracker: IterationTracker,
    atsync: AtSync,
    window: LbWindow,
    /// Relative speed per core (occupancy = work / speed).
    speeds: Vec<f64>,

    finished: usize,
    app_end: Option<Time>,
    energy: Option<cloudlb_sim::power::EnergyReport>,
    pending_bg: usize,
    lb_steps: usize,
    migrations: usize,
    migration_bytes: u64,
    local_msgs: u64,
    remote_msgs: u64,
}

impl<'a> Sim<'a> {
    fn new(
        app: &'a dyn IterativeApp,
        cfg: RunConfig,
        bg: &BgScript,
        strategy: Box<dyn LbStrategy>,
    ) -> Self {
        let pes = cfg.cluster.total_cores();
        let n = app.num_chares();
        let cluster = Cluster::new(cfg.cluster.clone());
        let mapping = cfg.initial_map.place(n, pes);
        let start_stat = ProcStat::snapshot(&cluster);
        let window = LbWindow::open(pes, n, Time::ZERO, start_stat, cfg.lb.instrument);

        let mut queue = EventQueue::new();
        let mut pending_bg = 0;
        for (t, action) in &bg.actions {
            if let BgAction::Start { demand: Some(_), .. } = action {
                pending_bg += 1;
            }
            queue.schedule(*t, Ev::Bg(*action));
        }

        let expected = (0..n).map(|i| app.neighbors(i).len()).collect();
        let tracker = IterationTracker::new(n, cfg.iterations);
        let atsync = AtSync::new(cfg.lb.period);
        let speeds = cfg.resolved_speeds();

        Sim {
            app,
            strategy,
            queue,
            cluster,
            ledger: BgLedger::new(),
            seen_bg: Vec::new(),
            mapping,
            ready: vec![VecDeque::new(); pes],
            running: vec![None; pes],
            wake: vec![None; pes],
            inbox: HashMap::new(),
            next_iter: vec![0; n],
            expected,
            state: vec![CState::Queued; n],
            tracker,
            atsync,
            window,
            speeds,
            finished: 0,
            app_end: None,
            energy: None,
            pending_bg,
            lb_steps: 0,
            migrations: 0,
            migration_bytes: 0,
            local_msgs: 0,
            remote_msgs: 0,
            cfg,
        }
    }

    fn num_pes(&self) -> usize {
        self.ready.len()
    }

    fn run(mut self) -> RunResult {
        // Iteration 0 needs no messages: everyone starts queued.
        for chare in 0..self.app.num_chares() {
            let pe = self.mapping[chare];
            self.ready[pe].push_back(chare);
        }
        for pe in 0..self.num_pes() {
            self.try_start(pe, Time::ZERO);
            self.reschedule_wake(pe);
        }

        while !(self.app_end.is_some() && self.pending_bg == 0) {
            let Some((t, ev)) = self.queue.pop() else {
                panic!(
                    "deadlock: event queue empty with app {} and {} bg tasks pending",
                    if self.app_end.is_some() { "done" } else { "RUNNING" },
                    self.pending_bg
                );
            };
            // Settle all cores up to `t`; completions land exactly at `t`
            // because wakes are kept in sync with composition changes.
            let completions = self.cluster.advance_to(t);
            for (ct, ce) in completions {
                debug_assert_eq!(ct, t, "late completion discovered: {ce:?} at {ct:?} vs {t:?}");
                match ce {
                    CoreEvent::FgDone { core } => self.on_task_done(core, ct),
                    CoreEvent::BgDone { core: _, job } => {
                        self.ledger.on_task_done(job, ct);
                        self.pending_bg -= 1;
                    }
                }
            }
            match ev {
                Ev::Msg { chare, iter } => self.on_msg(chare, iter, t),
                Ev::Wake => {} // completions already handled above
                Ev::Bg(action) => self.on_bg(action, t),
                Ev::LbDone => self.on_lb_done(t),
            }
            // Refresh wakes (no-op for cores whose next completion is
            // unchanged).
            for core in 0..self.num_pes() {
                self.reschedule_wake(core);
            }
        }

        let end = self.app_end.expect("loop exited before app completion");
        let mut bg_penalties = BTreeMap::new();
        for job in &self.seen_bg {
            if let Some(p) = self.ledger.timing_penalty(*job) {
                bg_penalties.insert(*job, p);
            }
        }
        RunResult {
            app_time: end.since(Time::ZERO),
            iter_times: self.tracker.iteration_times(),
            energy: self.energy.expect("energy metered at app completion"),
            bg_penalties,
            lb_steps: self.lb_steps,
            migrations: self.migrations,
            migration_bytes: self.migration_bytes,
            final_mapping: self.mapping.clone(),
            local_msgs: self.local_msgs,
            remote_msgs: self.remote_msgs,
            trace: self.cluster.take_trace(),
            end_time: end,
        }
    }

    /// Start the next ready task on `pe` if the core is free and no LB step
    /// is in progress.
    fn try_start(&mut self, pe: usize, now: Time) {
        if self.atsync.lb_in_progress() || self.cluster.fg_busy(pe) {
            return;
        }
        let Some(chare) = self.ready[pe].pop_front() else {
            return;
        };
        debug_assert_eq!(self.state[chare], CState::Queued);
        let iter = self.next_iter[chare];
        // Occupancy on this core: work, perturbed by noise, divided by the
        // core's delivered speed.
        let cpu = Dur::from_secs_f64(
            self.app.task_cost(chare, iter) * self.cost_noise(chare, iter) / self.speeds[pe],
        );
        self.cluster.start_fg(pe, FgLabel { chare: chare as u64 }, cpu, 1.0);
        self.running[pe] = Some(Running { chare, iter, start: now, cpu });
        self.state[chare] = CState::Running;
    }

    fn on_task_done(&mut self, core: usize, now: Time) {
        let run = self.running[core].take().expect("FgDone without a running record");
        let Running { chare, iter, start, cpu } = run;
        self.state[chare] = CState::Waiting;
        self.window.record(TaskSample {
            task: TaskId(chare as u64),
            pe: core,
            cpu,
            wall: now.since(start),
        });

        // Send ghosts for the next iteration.
        let next = iter + 1;
        if next < self.cfg.iterations {
            for nb in self.app.neighbors(chare) {
                let bytes = self.app.message_bytes(chare, nb);
                let same = self.cluster.same_node(self.mapping[chare], self.mapping[nb]);
                if same {
                    self.local_msgs += 1;
                } else {
                    self.remote_msgs += 1;
                }
                let delay = self.cfg.network.delay(bytes, same);
                self.queue.schedule(now + delay, Ev::Msg { chare: nb, iter: next });
            }
        }

        // Contribute to the iteration reduction.
        self.tracker.contribute(iter, now);

        // Decide this chare's continuation.
        if next >= self.cfg.iterations {
            self.state[chare] = CState::Finished;
            self.finished += 1;
            if self.finished == self.app.num_chares() {
                self.app_end = Some(now);
                self.energy = Some(self.cfg.power.meter(&self.cluster, now));
            }
        } else if self.atsync.is_boundary(next) {
            self.state[chare] = CState::Parked;
            self.next_iter[chare] = next;
            if self.atsync.park(chare, self.app.num_chares()) {
                self.start_lb(now);
            }
        } else {
            self.next_iter[chare] = next;
            self.maybe_ready(chare, now);
        }

        self.try_start(core, now);
    }

    fn on_msg(&mut self, chare: usize, iter: usize, now: Time) {
        *self.inbox.entry((chare, iter)).or_insert(0) += 1;
        if self.state[chare] == CState::Waiting && self.next_iter[chare] == iter {
            self.maybe_ready(chare, now);
        }
    }

    /// Queue `chare` if all ghosts for its next iteration have arrived.
    fn maybe_ready(&mut self, chare: usize, now: Time) {
        debug_assert_eq!(self.state[chare], CState::Waiting);
        let iter = self.next_iter[chare];
        let have = self.inbox.get(&(chare, iter)).copied().unwrap_or(0);
        if have >= self.expected[chare] {
            self.inbox.remove(&(chare, iter));
            let pe = self.mapping[chare];
            self.ready[pe].push_back(chare);
            self.state[chare] = CState::Queued;
            self.try_start(pe, now);
        }
    }

    fn on_bg(&mut self, action: BgAction, now: Time) {
        match action {
            BgAction::Start { job, core, demand, weight } => {
                self.cluster.add_bg(core, job, demand, weight);
                self.ledger.on_start(job, now, demand);
                if !self.seen_bg.contains(&job) {
                    self.seen_bg.push(job);
                }
                if let Some(t) = self.cluster.trace_mut() {
                    t.marker(now.as_us(), format!("bg job {job} starts on core {core}"));
                }
            }
            BgAction::Stop { job, core } => {
                self.cluster.remove_bg(core, job);
                if let Some(t) = self.cluster.trace_mut() {
                    t.marker(now.as_us(), format!("bg job {job} leaves core {core}"));
                }
            }
        }
    }

    fn start_lb(&mut self, now: Time) {
        self.atsync.begin_lb();
        let now_stat = ProcStat::snapshot(&self.cluster);
        let app = self.app;
        let mut stats =
            self.window.build_stats(now, &now_stat, &self.mapping, |i| app.state_bytes(i) as u64);
        // Instrument the communication graph for comm-aware strategies:
        // each neighbor pair exchanges one message per direction per
        // iteration, `period` iterations per window.
        let period = self.cfg.lb.period as u64;
        for chare in 0..app.num_chares() {
            for nb in app.neighbors(chare) {
                if nb > chare {
                    let bytes = (app.message_bytes(chare, nb) + app.message_bytes(nb, chare))
                        as u64
                        * period;
                    stats.comm.push(cloudlb_balance::CommEdge {
                        a: TaskId(chare as u64),
                        b: TaskId(nb as u64),
                        bytes,
                    });
                }
            }
        }
        let plan = self.strategy.plan(&stats);
        cloudlb_balance::strategy::validate_plan(&stats, &plan);

        let transfer = {
            let cluster = &self.cluster;
            migration::transfer_time(
                &plan,
                &self.cfg.network,
                |i| app.state_bytes(i),
                |a, b| cluster.same_node(a, b),
                self.ready.len(),
            )
        };
        let cost = Dur::from_secs_f64(self.cfg.lb.step_cost_s) + transfer;

        self.migration_bytes +=
            plan.iter().map(|m| stats.task(m.task).map_or(0, |t| t.bytes)).sum::<u64>();
        self.migrations += plan.len();
        self.lb_steps += 1;
        migration::commit(&mut self.mapping, &plan);

        // Record the LB pause on every core's timeline.
        let end = now + cost;
        let num_pes = self.ready.len();
        if let Some(t) = self.cluster.trace_mut() {
            t.marker(
                now.as_us(),
                format!("LB step {} ({} migrations)", self.lb_steps, plan.len()),
            );
            for pe in 0..num_pes {
                t.record(pe, now.as_us(), end.as_us(), Activity::LoadBalance);
            }
        }
        self.queue.schedule(end, Ev::LbDone);
    }

    fn on_lb_done(&mut self, now: Time) {
        let released = self.atsync.release();
        // Open a fresh measurement window at the resume instant.
        self.window = LbWindow::open(
            self.ready.len(),
            self.app.num_chares(),
            now,
            ProcStat::snapshot(&self.cluster),
            self.cfg.lb.instrument,
        );
        for chare in released {
            self.state[chare] = CState::Waiting;
            self.maybe_ready(chare, now);
        }
        for pe in 0..self.ready.len() {
            self.try_start(pe, now);
        }
    }

    /// Deterministic per-execution cost perturbation (see
    /// [`RunConfig::cost_noise_frac`]).
    fn cost_noise(&self, chare: usize, iter: usize) -> f64 {
        let f = self.cfg.cost_noise_frac;
        if f == 0.0 {
            return 1.0;
        }
        let key = self
            .cfg
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((chare as u64) << 32 | iter as u64);
        let u = cloudlb_sim::SimRng::new(key).f64();
        (1.0 + f * (2.0 * u - 1.0)).max(0.05)
    }

    /// Keep exactly one pending Wake per core, at its next completion
    /// instant. Skips queue churn when that instant is unchanged.
    fn reschedule_wake(&mut self, core: usize) {
        let next = self.cluster.next_completion(core);
        match (self.wake[core], next) {
            (Some((_, t_old)), Some(t_new)) if t_old == t_new => {}
            (None, None) => {}
            (old, new) => {
                if let Some((h, _)) = old {
                    self.queue.cancel(h);
                }
                self.wake[core] = new.map(|t| (self.queue.schedule(t, Ev::Wake), t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LbConfig, RunConfig};
    use crate::program::SyntheticApp;
    use cloudlb_sim::ClusterConfig;

    fn small_cfg(iters: usize, strategy: &str) -> RunConfig {
        RunConfig {
            cluster: ClusterConfig { nodes: 1, cores_per_node: 4, trace: false },
            lb: LbConfig { strategy: strategy.into(), period: 5, ..Default::default() },
            iterations: iters,
            ..RunConfig::paper(4, iters)
        }
    }

    #[test]
    fn interference_free_run_completes_with_uniform_iterations() {
        let app = SyntheticApp::ring(16, 0.001);
        let r = SimExecutor::new(&app, small_cfg(10, "nolb"), BgScript::none()).run();
        assert_eq!(r.iter_times.len(), 10);
        assert_eq!(r.lb_steps, 1); // boundary before iteration 5
        assert_eq!(r.migrations, 0);
        // 4 chares per core × 1 ms each ≈ 4 ms per iteration (+ latency).
        let mean = r.mean_iter_s();
        assert!((0.004..0.006).contains(&mean), "mean iter {mean}");
    }

    #[test]
    fn interference_doubles_nolb_iterations() {
        let app = SyntheticApp::ring(16, 0.001);
        let base = SimExecutor::new(&app, small_cfg(10, "nolb"), BgScript::none()).run();
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let run = SimExecutor::new(&app, small_cfg(10, "nolb"), bg).run();
        let penalty = run.timing_penalty_vs(&base);
        assert!(penalty > 0.7, "expected ~100% penalty, got {penalty}");
    }

    #[test]
    fn cloud_refine_reduces_penalty_and_migrates() {
        let app = SyntheticApp::ring(32, 0.001);
        let base = SimExecutor::new(&app, small_cfg(40, "nolb"), BgScript::none()).run();
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let nolb = SimExecutor::new(&app, small_cfg(40, "nolb"), bg.clone()).run();
        let lb = SimExecutor::new(&app, small_cfg(40, "cloudrefine"), bg).run();
        assert!(lb.migrations > 0, "balancer should migrate under interference");
        let p_nolb = nolb.timing_penalty_vs(&base);
        let p_lb = lb.timing_penalty_vs(&base);
        assert!(
            p_lb < 0.5 * p_nolb,
            "LB penalty {p_lb:.3} should be under half of noLB {p_nolb:.3}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let app = SyntheticApp::ring(16, 0.0005);
        let bg = BgScript::steady(3, &[1], Time::from_us(500), Some(Dur::from_ms(30)), 1.0);
        let a = SimExecutor::new(&app, small_cfg(12, "cloudrefine"), bg.clone()).run();
        let b = SimExecutor::new(&app, small_cfg(12, "cloudrefine"), bg).run();
        assert_eq!(a.app_time, b.app_time);
        assert_eq!(a.iter_times, b.iter_times);
        assert_eq!(a.final_mapping, b.final_mapping);
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn finite_bg_job_reports_penalty() {
        let app = SyntheticApp::ring(16, 0.001);
        // BG job with 20 ms of work per core on 2 cores, fair sharing.
        let bg = BgScript::steady(7, &[0, 1], Time::ZERO, Some(Dur::from_ms(20)), 1.0);
        let r = SimExecutor::new(&app, small_cfg(30, "nolb"), bg).run();
        let p = r.bg_penalties.get(&7).copied().expect("bg job finished");
        assert!(p > 0.3, "bg competed with the app, penalty {p}");
    }

    #[test]
    fn bg_job_mostly_alone_has_small_penalty() {
        // A short app (2 iterations) next to a long bg job: almost all of
        // the bg's work runs after the app ends, at full speed.
        let app = SyntheticApp::ring(16, 0.001);
        let bg = BgScript::steady(1, &[0, 1], Time::ZERO, Some(Dur::from_ms(200)), 1.0);
        let r = SimExecutor::new(&app, small_cfg(2, "nolb"), bg).run();
        let p = r.bg_penalties.get(&1).copied().expect("finished");
        assert!(p < 0.1, "bg barely impeded, penalty {p}");
        // Contrast: a bg job that competes for its whole life.
        let bg = BgScript::steady(2, &[0, 1], Time::ZERO, Some(Dur::from_ms(10)), 1.0);
        let r2 = SimExecutor::new(&app, small_cfg(30, "nolb"), bg).run();
        let p2 = r2.bg_penalties.get(&2).copied().expect("finished");
        assert!(p2 > p, "competing bg {p2} vs mostly-alone {p}");
    }

    #[test]
    fn trace_records_tasks_and_markers() {
        let app = SyntheticApp::ring(8, 0.001);
        let cfg = small_cfg(6, "cloudrefine").with_trace();
        let bg = BgScript::pulse(0, 2, Time::from_us(100), Time::from_us(20_000), 1.0);
        let r = SimExecutor::new(&app, cfg, bg).run();
        let trace = r.trace.expect("tracing enabled");
        assert!(trace.markers().iter().any(|(_, l)| l.contains("bg job 0 starts")));
        let tasks = trace.time_where(0, 0, u64::MAX, |a| matches!(a, Activity::Task { .. }));
        assert!(tasks > 0);
    }

    #[test]
    fn migration_cost_appears_in_wall_time() {
        let app = SyntheticApp::ring(32, 0.001);
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let mut cheap = small_cfg(40, "cloudrefine");
        cheap.lb.step_cost_s = 0.0001;
        let mut dear = cheap.clone();
        dear.lb.step_cost_s = 0.050;
        let fast = SimExecutor::new(&app, cheap, bg.clone()).run();
        let slow = SimExecutor::new(&app, dear, bg).run();
        assert!(slow.app_time > fast.app_time);
    }

    #[test]
    #[should_panic(expected = "beyond cluster")]
    fn bg_script_outside_cluster_rejected() {
        let app = SyntheticApp::ring(8, 0.001);
        let bg = BgScript::steady(0, &[99], Time::ZERO, None, 1.0);
        SimExecutor::new(&app, small_cfg(5, "nolb"), bg);
    }

    #[test]
    fn lb_period_counts_steps() {
        let app = SyntheticApp::ring(8, 0.001);
        let mut cfg = small_cfg(20, "nolb");
        cfg.lb.period = 4;
        let r = SimExecutor::new(&app, cfg, BgScript::none()).run();
        // Boundaries before iterations 4, 8, 12, 16 → 4 steps.
        assert_eq!(r.lb_steps, 4);
    }
}
