//! Message types for the thread executor.
//!
//! Worker↔worker traffic carries ghost exchanges and live chare
//! migrations; worker↔coordinator traffic carries the AtSync/LB protocol.
//! Everything is `Send` (kernels are boxed `Send` trait objects), which is
//! what makes ownership-transfer migration safe in Rust: a chare is *moved*
//! between threads, never shared.

use crate::program::ChareKernel;
use std::collections::HashMap;

/// Ghost payload: `(neighbor_index, data)` pairs buffered per iteration.
pub type InboxEntry = Vec<(usize, Vec<f64>)>;

/// Worker-bound messages.
pub enum WorkerMsg {
    /// A ghost message for `chare` at iteration `iter`, sent by `from`.
    Ghost {
        /// Destination chare.
        chare: usize,
        /// Iteration the payload feeds.
        iter: usize,
        /// Sending chare (the receiver's neighbor index).
        from: usize,
        /// Payload.
        data: Vec<f64>,
    },
    /// A migrating chare: its live kernel plus any buffered ghosts.
    Migrate {
        /// The chare being moved.
        chare: usize,
        /// Its live state.
        kernel: Box<dyn ChareKernel>,
        /// The iteration it will execute next.
        next_iter: usize,
        /// Ghosts it had already received, keyed by iteration.
        pending: HashMap<usize, InboxEntry>,
    },
    /// A migrating chare shipped as PUPed bytes (Charm++-style serialized
    /// migration; the destination reconstructs via
    /// `IterativeApp::unpack_kernel`).
    MigrateBytes {
        /// The chare being moved.
        chare: usize,
        /// Its packed state.
        bytes: Vec<u8>,
        /// The iteration it will execute next.
        next_iter: usize,
        /// Ghosts it had already received, keyed by iteration.
        pending: HashMap<usize, InboxEntry>,
    },
    /// Coordinator asks for this window's measurements.
    CollectStats,
    /// Coordinator instructs this worker to emigrate chares: `(chare, to)`.
    DoMigrations(Vec<(usize, usize)>),
    /// LB step finished; resume execution and open a new window.
    Resume,
    /// Run is over; report final state and exit.
    Shutdown,
}

/// One task measurement in the thread executor (microsecond units).
#[derive(Debug, Clone, Copy)]
pub struct ThreadSample {
    /// Which chare ran.
    pub chare: usize,
    /// Kernel compute time (µs) — the "CPU time" of the paper's Eq. 2.
    pub cpu_us: u64,
    /// Wall extent including injected interference (µs).
    pub wall_us: u64,
}

/// Coordinator-bound messages.
pub enum CtrlMsg {
    /// A chare parked at the AtSync barrier on `pe`.
    Parked {
        /// Reporting worker.
        pe: usize,
        /// The parked chare.
        chare: usize,
    },
    /// Reply to `CollectStats`.
    Stats {
        /// Reporting worker.
        pe: usize,
        /// Task measurements since the window opened.
        samples: Vec<ThreadSample>,
        /// Time spent blocked waiting for messages (µs).
        idle_us: u64,
        /// Window wall time (µs).
        window_us: u64,
    },
    /// A migrated chare was installed at its destination.
    MigArrived {
        /// The chare that arrived.
        chare: usize,
    },
    /// A chare completed its final iteration.
    Finished {
        /// The chare that finished.
        chare: usize,
    },
    /// Final report at shutdown: checksums of the chares the worker owns.
    Final {
        /// Reporting worker.
        pe: usize,
        /// `(chare, checksum)` pairs.
        checksums: Vec<(usize, f64)>,
        /// Total task CPU µs executed by this worker over the whole run.
        total_task_us: u64,
    },
}
